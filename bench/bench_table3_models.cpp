// Table 3 — models for evaluation: ONNX-node count, parameters and
// theoretical GFLOP at bs=1 from PRoof's analytical model, side by side with
// the paper's published values.
#include "bench_util.hpp"

using namespace proof;

namespace {

struct PaperRow {
  double params_m;
  double gflop;
};

// Table 3 columns from the paper (params in M, GFLOP at bs=1).
PaperRow paper_row(int index) {
  static const PaperRow kRows[] = {
      {67.0, 48.718},  {859.5, 4747.726}, {5.3, 0.851},   {19.3, 3.209},
      {13.6, 3.939},   {23.9, 6.030},     {59.9, 25.403}, {2.0, 0.205},
      {3.5, 0.621},    {21.8, 7.338},     {25.5, 8.207},  {1.4, 0.084},
      {2.3, 0.294},    {2.8, 0.434},      {28.8, 9.133},  {50.5, 17.723},
      {88.9, 31.183},  {5.7, 2.558},      {22.1, 9.298},  {86.6, 35.329}};
  return kRows[index - 1];
}

}  // namespace

int main() {
  bench::banner("Table 3: Models for evaluation (analytical model, bs=1)");
  report::TextTable table({"#", "Model name", "Type", "Nodes", "Params (M)",
                           "GFLOP", "paper Params", "paper GFLOP"});
  report::CsvWriter csv({"index", "model", "type", "nodes", "params_m", "gflop",
                         "paper_params_m", "paper_gflop"});
  for (const models::ModelSpec& spec : models::model_zoo()) {
    const AnalyzeRepresentation ar(spec.build());
    const PaperRow paper = paper_row(spec.table3_index);
    const double params_m = static_cast<double>(ar.param_count()) / 1e6;
    const double gflop = ar.total_flops() / 1e9;
    table.add_row({std::to_string(spec.table3_index), spec.display, spec.type,
                   std::to_string(ar.num_nodes()), units::fixed(params_m, 1),
                   units::fixed(gflop, 3), units::fixed(paper.params_m, 1),
                   units::fixed(paper.gflop, 3)});
    csv.add_row({std::to_string(spec.table3_index), spec.id, spec.type,
                 std::to_string(ar.num_nodes()), units::fixed(params_m, 3),
                 units::fixed(gflop, 3), units::fixed(paper.params_m, 1),
                 units::fixed(paper.gflop, 3)});
  }
  std::cout << table.to_string();
  std::cout << "\nNote: node counts differ from the paper where PyTorch's ONNX\n"
               "export ceremony (Shape/Constant/Gather chains) adds bookkeeping\n"
               "nodes; params and GFLOP are the comparable columns.\n";
  const std::string path = bench::artifact_dir() + "/table3_models.csv";
  csv.save(path);
  bench::note_artifact(path);
  return 0;
}

// Indexed graph IR speedup: interned-id lookups + CSR adjacency + cached
// topological order vs the seed's std::map-based lookup layer.
//
// Method: the same uncached, single-threaded prepare+analyze workload
// (backend graph optimization, lowering, layer mapping, analysis) runs under
// Graph::LookupMode::kIndexed and kLegacyMaps, alternating A/B per
// repetition so drift hits both sides equally; best-of-N times are compared.
// kLegacyMaps routes every name lookup through ordered-map mirrors and
// recomputes the topological order on every call, faithfully reproducing the
// pre-interning implementation.
//
// Correctness gate: the full profile report (timing fields zeroed) must be
// byte-identical between the two modes for every model.
//
// `--smoke` runs one rep of the smallest model only — a CI-friendly check
// that both modes still work and agree, with no speedup assertion.
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

using namespace proof;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ProfileOptions options_for(const std::string& model_id) {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.dtype = DType::kF16;
  opt.batch = model_id == "sd_unet" ? 4 : 8;
  opt.mode = MetricMode::kPredicted;
  return opt;
}

/// One timed pass: uncached engine preparation + analysis + mapping (the
/// paths the graph index serves).  Latency simulation and report assembly are
/// excluded — they are lookup-free and identical in both modes.
double timed_prepare(const Graph& model, const ProfileOptions& opt) {
  const hw::PlatformDesc& platform =
      hw::PlatformRegistry::instance().get(opt.platform_id);
  const backends::Backend& backend =
      backends::BackendRegistry::instance().get(platform.runtime);
  backends::BuildConfig config;
  config.dtype = opt.dtype;
  config.batch = opt.batch;
  const double t0 = now_s();
  const auto prep = prepare_engine(model, backend, platform, config);
  const double elapsed = now_s() - t0;
  PROOF_CHECK(prep != nullptr && !prep->engine.layers().empty(),
              "preparation produced no layers");
  return elapsed;
}

/// Full profile serialized with the wall-clock-dependent fields zeroed, so
/// two runs of identical analysis produce identical bytes.
std::string normalized_report_json(const Graph& model, const ProfileOptions& opt) {
  ProfileReport report = Profiler(opt).run(model);
  report.analysis_time_s = 0.0;
  report.counter_profiling_time_s = 0.0;
  return report_to_json(report);
}

struct ModelResult {
  std::string id;
  double legacy_s = std::numeric_limits<double>::infinity();
  double indexed_s = std::numeric_limits<double>::infinity();
  bool identical = false;

  [[nodiscard]] double speedup() const { return legacy_s / indexed_s; }
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::banner(smoke ? "Graph index A/B (smoke)"
                      : "Indexed graph IR vs legacy map lookups");

  PrepCache::instance().set_enabled(false);  // every rep does full work
  const std::vector<std::string> models =
      smoke ? std::vector<std::string>{"resnet50"}
            : std::vector<std::string>{"resnet50", "distilbert", "sd_unet"};
  const int reps = smoke ? 1 : 7;

  std::vector<ModelResult> results;
  for (const std::string& id : models) {
    const Graph model = models::build_model(id);
    const ProfileOptions opt = options_for(id);

    ModelResult r;
    r.id = id;

    // Byte-identical correctness gate (also serves as warm-up for both modes).
    Graph::set_lookup_mode(Graph::LookupMode::kLegacyMaps);
    const std::string legacy_json = normalized_report_json(model, opt);
    Graph::set_lookup_mode(Graph::LookupMode::kIndexed);
    const std::string indexed_json = normalized_report_json(model, opt);
    r.identical = legacy_json == indexed_json;

    for (int rep = 0; rep < reps; ++rep) {
      Graph::set_lookup_mode(Graph::LookupMode::kLegacyMaps);
      r.legacy_s = std::min(r.legacy_s, timed_prepare(model, opt));
      Graph::set_lookup_mode(Graph::LookupMode::kIndexed);
      r.indexed_s = std::min(r.indexed_s, timed_prepare(model, opt));
    }
    results.push_back(r);
  }
  Graph::set_lookup_mode(Graph::LookupMode::kIndexed);
  PrepCache::instance().set_enabled(true);

  report::TextTable table({"model", "legacy maps", "indexed IR", "speedup",
                           "reports identical"});
  bool all_identical = true;
  double best_speedup = 0.0;
  for (const ModelResult& r : results) {
    table.add_row({r.id, units::ms(r.legacy_s), units::ms(r.indexed_s),
                   units::fixed(r.speedup(), 2) + "x",
                   r.identical ? "yes" : "NO"});
    all_identical = all_identical && r.identical;
    if (r.id != "resnet50") {
      best_speedup = std::max(best_speedup, r.speedup());
    }
  }
  std::cout << table.to_string();

  const bool target_met = smoke || best_speedup >= 1.5;
  if (!smoke) {
    std::cout << "speedup target (>= 1.50x on distilbert or sd_unet): "
              << (target_met ? "met" : "MISSED") << "\n";
  }
  std::cout << "reports byte-identical in both modes: "
            << (all_identical ? "yes" : "NO — LOOKUP DIVERGENCE") << "\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"workload\": \"uncached single-thread prepare+analyze, fp16 "
          "A100\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"models\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ModelResult& r = results[i];
    json << "    {\"id\": \"" << r.id << "\", \"legacy_s\": " << r.legacy_s
         << ", \"indexed_s\": " << r.indexed_s
         << ", \"speedup\": " << r.speedup()
         << ", \"reports_identical\": " << (r.identical ? "true" : "false")
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"speedup_target\": 1.5,\n"
       << "  \"target_met\": " << (target_met ? "true" : "false") << ",\n"
       << "  \"all_reports_identical\": " << (all_identical ? "true" : "false")
       << "\n"
       << "}\n";
  // Smoke runs land in their own file so a CI pass never overwrites the
  // committed full-run reference numbers.
  const std::string path = bench::artifact_dir() +
                           (smoke ? "/BENCH_graph_index_smoke.json"
                                  : "/BENCH_graph_index.json");
  std::ofstream(path) << json.str();
  bench::note_artifact(path);

  // Correctness is a hard failure everywhere; the speedup assertion only
  // gates the full (non-smoke) run, where best-of-N suppresses timer noise.
  return all_identical && target_met ? 0 : 1;
}

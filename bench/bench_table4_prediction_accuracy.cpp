// Table 4 — accuracy of the FLOP / memory-access prediction as the
// alternative to counter-based measurement (paper §4.2).
//
// Five representative models on the (simulated) A100, fp16, batch 128.
// "Analytical" = PRoof's prediction (Model FLOP, Equation-1 memory with
// fusion elision).  "NCU" = the simulated counter profiler (Hardware FLOP
// after the per-architecture HMMA correction, measured DRAM traffic,
// per-kernel replay overhead).
#include "bench_util.hpp"

using namespace proof;

int main() {
  bench::banner("Table 4: Accuracy of FLOP and Memory access prediction");
  report::TextTable table({"Model name", "Latency (ms)", "Nodes", "GFLOP (pred)",
                           "Memory MB (pred)", "GFLOP (NCU)", "Memory MB (NCU)",
                           "Prof. time (s)", "FLOP diff", "Memory diff"});
  report::CsvWriter csv({"model", "latency_ms", "nodes", "gflop_pred", "mem_mb_pred",
                         "gflop_ncu", "mem_mb_ncu", "prof_time_s", "flop_diff",
                         "mem_diff"});

  const std::vector<std::string> model_ids = {
      "efficientnetv2_s", "mobilenetv2_10", "resnet50", "swin_small", "vit_tiny"};

  for (const std::string& id : model_ids) {
    ProfileOptions opt;
    opt.platform_id = "a100";
    opt.dtype = DType::kF16;
    opt.batch = 128;

    opt.mode = MetricMode::kPredicted;
    const ProfileReport pred = Profiler(opt).run_zoo(id);
    opt.mode = MetricMode::kMeasured;
    const ProfileReport meas = Profiler(opt).run_zoo(id);

    const size_t nodes = models::build_model(id).num_nodes();
    const double gflop_p = pred.roofline.end_to_end.flops / 1e9;
    const double gflop_m = meas.roofline.end_to_end.flops / 1e9;
    const double mem_p = pred.roofline.end_to_end.bytes / 1e6;
    const double mem_m = meas.roofline.end_to_end.bytes / 1e6;

    table.add_row({models::model_spec(id).display,
                   units::fixed(pred.total_latency_s * 1e3, 3),
                   std::to_string(nodes), units::fixed(gflop_p, 3),
                   units::fixed(mem_p, 3), units::fixed(gflop_m, 3),
                   units::fixed(mem_m, 3),
                   units::fixed(meas.counter_profiling_time_s, 0),
                   units::percent((gflop_p - gflop_m) / gflop_m),
                   units::percent((mem_p - mem_m) / mem_m)});
    csv.add_row({id, units::fixed(pred.total_latency_s * 1e3, 3),
                 std::to_string(nodes), units::fixed(gflop_p, 3),
                 units::fixed(mem_p, 3), units::fixed(gflop_m, 3),
                 units::fixed(mem_m, 3),
                 units::fixed(meas.counter_profiling_time_s, 0),
                 units::percent((gflop_p - gflop_m) / gflop_m),
                 units::percent((mem_p - mem_m) / mem_m)});
  }
  std::cout << table.to_string();
  std::cout << "\nPaper reference (diff from NCU): EfficientNetV2-S -19.82%/-1.28%,\n"
               "MobileNetV2 -23.96%/+1.35%, ResNet-50 -2.03%/-1.37%, Swin small\n"
               "-6.03%/-8.06%, ViT tiny +9.79%/+6.08%; the analytical model costs\n"
               "seconds while counter profiling costs minutes (Prof. time column).\n";
  const std::string path = bench::artifact_dir() + "/table4_prediction_accuracy.csv";
  csv.save(path);
  bench::note_artifact(path);
  return 0;
}

// Operator microbenchmark sweep (ERT-style, cf. the paper's related-work
// discussion of empirical roofline tools): for each platform, sweep GEMM /
// conv / depthwise / elementwise / transpose workloads across sizes and
// report the attained fraction of the theoretical roofline — the empirical
// ceilings the layer-wise charts should be read against.
#include "bench_util.hpp"

using namespace proof;

namespace {

struct Probe {
  const char* label;
  OpClass cls;
  double flops_per_byte;  ///< arithmetic intensity of the synthetic kernel
};

}  // namespace

int main() {
  bench::banner("Operator microbenchmark sweep (empirical ceilings per class)");

  const Probe probes[] = {
      {"gemm", OpClass::kGemm, 300.0},
      {"conv3x3", OpClass::kConv, 150.0},
      {"conv1x1", OpClass::kConvPointwise, 40.0},
      {"depthwise", OpClass::kConvDepthwise, 6.0},
      {"elementwise", OpClass::kElementwise, 0.25},
      {"transpose", OpClass::kDataMovement, 0.0},
      {"copy", OpClass::kCopy, 0.0},
  };

  for (const std::string& platform_id : hw::paper_platform_ids()) {
    const hw::PlatformDesc& desc = hw::PlatformRegistry::instance().get(platform_id);
    const DType dtype =
        desc.supports(DType::kF16) ? DType::kF16 : DType::kF32;
    const hw::LatencyModel model{hw::PlatformState(desc)};
    std::cout << "--- " << desc.name << " (" << dtype_name(dtype) << ") ---\n";
    report::TextTable table({"probe", "size", "attained", "of theor. peak",
                             "attained BW", "of theor. BW"});
    for (const Probe& probe : probes) {
      for (const double mb : {1.0, 64.0}) {
        hw::KernelWork k;
        k.name = std::string(probe.label) + "_" + units::fixed(mb, 0);
        k.cls = probe.cls;
        k.dtype = dtype;
        k.bytes = mb * 1e6;
        k.hw_flops = probe.flops_per_byte * k.bytes;
        k.matrix_flops =
            hw::LatencyModel::uses_matrix_pipeline(probe.cls) ? k.hw_flops : 0.0;
        const hw::KernelTiming t = model.time_kernel(k);
        const double attained = k.hw_flops / t.latency_s;
        const double bw = k.bytes / t.latency_s;
        table.add_row(
            {probe.label, units::fixed(mb, 0) + " MB",
             k.hw_flops > 0 ? units::tflops(attained) : std::string("-"),
             k.hw_flops > 0
                 ? units::fixed(100.0 * attained / desc.matrix_peak(dtype), 1) + "%"
                 : std::string("-"),
             units::gbps(bw), units::fixed(100.0 * bw / desc.dram_bw, 1) + "%"});
      }
    }
    std::cout << table.to_string() << "\n";
  }
  std::cout << "Reading: GEMM approaches the achieved ceiling; depthwise and\n"
               "strided-transpose probes land far below it — the per-class\n"
               "efficiency structure behind Figures 5/6/8.\n";
  return 0;
}

// LLM decode sweep across the full platform registry: tokens/s-vs-batch
// curves per decode position, the prefill/decode split, and the headline
// decode-bound-ness number on every platform (the time-based-roofline view
// of autoregressive serving).
//
// `--smoke` shrinks the grid to gpt2 on a100 with a 2x2 grid — a
// CI-friendly check that the sweep engine, both report renderers and the
// cross-platform summary still run end to end.
#include "bench_util.hpp"

#include <cstring>
#include <iostream>

#include "core/decode_sweep.hpp"

using namespace proof;

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::banner(smoke ? "LLM decode sweep (smoke)"
                      : "LLM decode sweep: batch x position, all platforms");

  DecodeSweepOptions options;
  options.config_id = "gpt2";
  if (smoke) {
    options.prefill_len = 128;
    options.batches = {1, 4};
    options.positions = {64, 256};
  }

  // Deep dive on one platform: the full per-phase report.
  options.platform_id = "a100";
  const DecodeSweep sweep = sweep_decode(options);
  std::cout << decode_sweep_text(sweep) << "\n";

  // The cross-platform decode-bound-ness summary (per-platform errors are
  // captured as rows, so the NPU's unsupported ops do not abort the table).
  options.platform_id.clear();
  std::cout << decode_platforms_text(sweep_decode_platforms(options));

  if (!smoke) {
    options.config_id = "llama7b";
    options.platform_id = "a100";
    options.batches = {1, 2, 4};
    options.positions = {256, 1024};
    std::cout << "\n" << decode_sweep_text(sweep_decode(options));
  }
  return 0;
}

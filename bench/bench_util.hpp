// Shared helpers for the per-table/figure reproduction benches.
#pragma once

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include <proof/proof.hpp>

namespace proof::bench {

/// Directory all bench artifacts (SVG charts, CSV dumps) are written to.
inline std::string artifact_dir() {
  static const std::string dir = [] {
    std::string d = "proof_artifacts";
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir;
}

/// Per-platform evaluation configuration for the Figure-4 sweep: the paper
/// picks "a batch size and data type that is reasonable and fully utilizes
/// the hardware" per device.
struct SweepConfig {
  std::string platform_id;
  DType dtype;
  int64_t batch;
  bool run_transformers;  ///< edge devices skip Transformer/diffusion models
  bool run_diffusion;
};

inline std::vector<SweepConfig> figure4_configs() {
  return {
      {"a100", DType::kF16, 128, true, true},
      {"a100", DType::kI8, 128, true, false},  // SD fails int8 conversion (fn.5)
      {"rtx4090", DType::kF16, 128, true, true},
      {"xeon6330", DType::kF32, 16, true, false},
      {"xavier_nx", DType::kF16, 32, false, false},
      {"orin_nx16", DType::kF16, 64, false, false},
      {"rpi4b", DType::kF32, 1, false, false},
      {"npu3720", DType::kF16, 1, false, false},
  };
}

/// Stable Diffusion runs one UNET iteration at batch 4 (paper footnote 5).
inline int64_t batch_for(const SweepConfig& cfg, const std::string& model_id) {
  return model_id == "sd_unet" ? 4 : cfg.batch;
}

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

inline void note_artifact(const std::string& path) {
  std::cout << "[artifact] " << path << "\n";
}

}  // namespace proof::bench

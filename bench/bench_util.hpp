// Shared helpers for the per-table/figure reproduction benches.
#pragma once

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include <proof/proof.hpp>

namespace proof::bench {

/// Directory all bench artifacts (SVG charts, CSV dumps) are written to.
inline std::string artifact_dir() {
  static const std::string dir = [] {
    std::string d = "proof_artifacts";
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir;
}

/// Per-platform evaluation configuration for the Figure-4 sweep: the paper
/// picks "a batch size and data type that is reasonable and fully utilizes
/// the hardware" per device.
struct SweepConfig {
  std::string platform_id;
  DType dtype;
  int64_t batch;
  bool run_transformers;  ///< edge devices skip Transformer/diffusion models
  bool run_diffusion;
};

inline std::vector<SweepConfig> figure4_configs() {
  return {
      {"a100", DType::kF16, 128, true, true},
      {"a100", DType::kI8, 128, true, false},  // SD fails int8 conversion (fn.5)
      {"rtx4090", DType::kF16, 128, true, true},
      {"xeon6330", DType::kF32, 16, true, false},
      {"xavier_nx", DType::kF16, 32, false, false},
      {"orin_nx16", DType::kF16, 64, false, false},
      {"rpi4b", DType::kF32, 1, false, false},
      {"npu3720", DType::kF16, 1, false, false},
  };
}

/// Stable Diffusion runs one UNET iteration at batch 4 (paper footnote 5).
inline int64_t batch_for(const SweepConfig& cfg, const std::string& model_id) {
  return model_id == "sd_unet" ? 4 : cfg.batch;
}

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

/// Hardware threads visible to this process (>= 1 even when the runtime
/// reports 0).
inline unsigned hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// True when the user explicitly allowed a scaling bench to record numbers on
/// a single-core host (--allow-single-core or PROOF_BENCH_ALLOW_SINGLE_CORE=1).
inline bool single_core_allowed(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--allow-single-core") {
      return true;
    }
  }
  const char* env = std::getenv("PROOF_BENCH_ALLOW_SINGLE_CORE");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

/// Gate for multicore scaling benches.  On a 1-hardware-thread host the
/// scaling claim is unmeasurable, so the bench fails loudly instead of
/// recording numbers that look like a parallelism regression.  Returns true
/// when the bench should proceed; `*degraded` is set when proceeding under
/// the explicit single-core override (artifacts must then be annotated).
inline bool require_multicore(const std::string& bench_name, int argc,
                              char** argv, bool* degraded) {
  *degraded = false;
  if (hardware_threads() > 1) {
    return true;
  }
  if (single_core_allowed(argc, argv)) {
    std::cout << "WARNING: " << bench_name << " is running on a host with 1 "
              << "hardware thread under --allow-single-core; scaling numbers "
              << "will be recorded but the multicore criterion cannot be "
              << "demonstrated here.\n";
    *degraded = true;
    return true;
  }
  std::cerr
      << "FAIL: " << bench_name << " needs more than 1 hardware thread to "
      << "measure multicore scaling, but this host exposes exactly 1 "
      << "(std::thread::hardware_concurrency). Re-run on a multicore machine, "
      << "or pass --allow-single-core (or set PROOF_BENCH_ALLOW_SINGLE_CORE=1) "
      << "to record single-core-degraded numbers anyway.\n";
  return false;
}

inline void note_artifact(const std::string& path) {
  std::cout << "[artifact] " << path << "\n";
}

}  // namespace proof::bench

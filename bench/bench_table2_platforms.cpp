// Table 2 — hardware platforms for evaluation: descriptor inventory plus the
// theoretical rooflines the later figures use as ceilings.
#include "bench_util.hpp"

using namespace proof;

int main() {
  bench::banner("Table 2: Hardware for evaluation (simulated platforms)");
  report::TextTable table({"Hardware", "Scenario", "Runtime", "Peak fp16",
                           "Peak int8", "DRAM BW", "Counter tool"});
  for (const std::string& id : hw::paper_platform_ids()) {
    const hw::PlatformDesc& p = hw::PlatformRegistry::instance().get(id);
    const auto peak = [&](DType d) {
      return p.supports(d) ? units::tflops(p.matrix_peak(d)) : std::string("-");
    };
    table.add_row({p.name, p.scenario,
                   backends::BackendRegistry::instance().get(p.runtime).name(),
                   peak(DType::kF16), peak(DType::kI8), units::gbps(p.dram_bw),
                   p.has_counter_profiler ? "yes (NCU-sim)" : "no"});
  }
  std::cout << table.to_string();
  return 0;
}

// Guarded-optimizer bench: runs `proof optimize` end to end over the two
// paper case studies plus a batch-tuning scenario and reports what the loop
// found (accepted chain, objective improvement, variants tried) and what it
// cost (wall time, variants measured per second with the shared PrepCache).
//
// `--smoke` runs the §4.5 scenario only, at a reduced batch.
#include "bench_util.hpp"

#include <chrono>
#include <cstring>

using namespace proof;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Scenario {
  std::string name;
  std::string model;
  opt::OptimizeOptions options;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::banner("guarded closed-loop optimizer");

  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "§4.5 shuffle removal";
    s.model = "shufflenetv2_10";
    s.options.base.platform_id = "a100";
    s.options.base.dtype = DType::kF16;
    s.options.base.batch = smoke ? 256 : 2048;
    s.options.base.mode = MetricMode::kPredicted;
    scenarios.push_back(std::move(s));
  }
  if (!smoke) {
    Scenario s;
    s.name = "§4.6 clocks under 15 W";
    s.model = "efficientnetv2_t";
    s.options.base.platform_id = "orin_nx16";
    s.options.base.dtype = DType::kF16;
    s.options.base.batch = 128;
    s.options.base.mode = MetricMode::kPredicted;
    s.options.base.clocks.gpu_mhz = 918.0;
    s.options.base.clocks.mem_mhz = 3199.0;
    s.options.base.clocks.cpu_cluster_mhz = {729.0, 0.0};
    s.options.power_budget_w = 15.0;
    s.options.axes = opt::axes_from_string("clocks");
    scenarios.push_back(std::move(s));

    Scenario t;
    t.name = "batch tuning (overhead-bound)";
    t.model = "mobilenetv2_05";
    t.options.base.platform_id = "a100";
    t.options.base.dtype = DType::kF16;
    t.options.base.batch = 1;
    t.options.base.mode = MetricMode::kPredicted;
    t.options.axes = opt::axes_from_string("batch,backend");
    scenarios.push_back(std::move(t));
  }

  report::TextTable table({"scenario", "classified", "accepted chain",
                           "improvement", "tried", "rounds", "wall",
                           "variants/s"});
  for (const Scenario& s : scenarios) {
    const double t0 = now_s();
    const opt::OptimizeResult result = opt::optimize(s.model, s.options);
    const double wall = now_s() - t0;

    const opt::OptimizationLog& log = result.log;
    std::string chain;
    for (const std::string& id : log.accepted_chain) {
      chain += (chain.empty() ? "" : " -> ") + id;
    }
    if (chain.empty()) {
      chain = "(baseline kept)";
    }
    const std::string classified =
        log.rounds.empty()
            ? std::string("-")
            : std::string(bottleneck_name(log.rounds[0].classification.kind));
    const double improvement =
        log.final_best.score > 0.0 && log.baseline.feasible
            ? log.baseline.score / log.final_best.score
            : 0.0;
    table.add_row(
        {s.name, classified, chain,
         improvement > 0.0 ? units::fixed(improvement, 2) + "x" : "n/a",
         std::to_string(log.variants_evaluated),
         std::to_string(log.rounds.size()), units::fixed(wall, 2) + " s",
         units::fixed(wall > 0.0 ? static_cast<double>(log.variants_evaluated) /
                                       wall
                                 : 0.0,
                      1)});
  }
  std::cout << table.to_string();

  std::cout << "\njobs: " << ThreadPool::global().jobs()
            << "  (PROOF_JOBS or --jobs to change)\n";
  return 0;
}

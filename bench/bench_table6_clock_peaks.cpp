// Table 6 — achieved roofline peak and power at different clock speeds on the
// Jetson Orin NX, measured by running the assembled pseudo model (large
// MatMuls + memory copies) through the TensorRT-sim backend.
#include "bench_util.hpp"

using namespace proof;

int main() {
  bench::banner("Table 6: Achieved roofline peak and power vs clock speeds");

  const auto& orin = hw::PlatformRegistry::instance().get("orin_nx16");
  backends::BuildConfig config;
  config.dtype = DType::kF16;
  config.batch = 1;
  const backends::Engine probe =
      backends::BackendRegistry::instance().get("trt_sim").build(
          models::build_peak_probe(), config, orin);

  struct Row {
    int index;
    double gpu_mhz, mem_mhz;
    double paper_tflops, paper_bw, paper_power;
  };
  const Row rows[] = {
      {1, 918, 3199, 13.620, 87.879, 23.6}, {2, 918, 2133, 13.601, 62.031, 21.3},
      {3, 510, 3199, 7.433, 54.002, 15.7},  {4, 510, 2133, 7.426, 53.017, 13.6},
      {5, 510, 665, 7.359, 15.177, 11.5}};

  report::TextTable table({"#", "GPU clock (MHz)", "Memory clock (MHz)",
                           "FLOP/s (T)", "Memory BW (GB/s)", "Power (W)",
                           "paper FLOP/s", "paper BW", "paper W"});
  report::CsvWriter csv({"index", "gpu_mhz", "mem_mhz", "tflops", "bw_gbps",
                         "power_w", "paper_tflops", "paper_bw", "paper_power"});
  for (const Row& row : rows) {
    hw::ClockSetting clocks;
    clocks.gpu_mhz = row.gpu_mhz;
    clocks.mem_mhz = row.mem_mhz;
    clocks.cpu_cluster_mhz = {729.0, 729.0};
    const hw::PlatformState state(orin, clocks);
    const roofline::AchievedPeaks peaks = roofline::achieved_peaks(probe, state);
    // The peak test drives both engines flat out.
    const double power = hw::PowerModel(state).power_w({1.0, 1.0});
    table.add_row({std::to_string(row.index), units::fixed(row.gpu_mhz, 0),
                   units::fixed(row.mem_mhz, 0), units::fixed(peaks.flops / 1e12, 3),
                   units::fixed(peaks.bw / 1e9, 3), units::fixed(power, 1),
                   units::fixed(row.paper_tflops, 3), units::fixed(row.paper_bw, 3),
                   units::fixed(row.paper_power, 1)});
    csv.add_row({std::to_string(row.index), units::fixed(row.gpu_mhz, 0),
                 units::fixed(row.mem_mhz, 0), units::fixed(peaks.flops / 1e12, 3),
                 units::fixed(peaks.bw / 1e9, 3), units::fixed(power, 1),
                 units::fixed(row.paper_tflops, 3), units::fixed(row.paper_bw, 3),
                 units::fixed(row.paper_power, 1)});
  }
  std::cout << table.to_string();
  std::cout << "\nKey effects (paper §4.6): lowering the GPU clock reduces BOTH\n"
               "achieved FLOP/s and bandwidth (#1 vs #3 — copies run on the SMs);\n"
               "lowering the memory clock reduces bandwidth only (#1 vs #2).\n";
  const std::string path = bench::artifact_dir() + "/table6_clock_peaks.csv";
  csv.save(path);
  bench::note_artifact(path);
  return 0;
}

// Figure 4 — end-to-end roofline analysis for all models across the seven
// platforms (per-platform optimal batch/dtype, edge platforms skip the large
// Transformer/diffusion models).  Prints one series per subplot and renders
// an SVG chart per platform configuration.
#include "bench_util.hpp"

using namespace proof;

int main() {
  bench::banner("Figure 4: End-to-end roofline analysis for models");

  for (const bench::SweepConfig& cfg : bench::figure4_configs()) {
    const hw::PlatformDesc& platform =
        hw::PlatformRegistry::instance().get(cfg.platform_id);
    const std::string label = platform.name + " (" +
                              std::string(dtype_name(cfg.dtype)) + ", bs=" +
                              std::to_string(cfg.batch) + ")";
    std::cout << "--- " << label << " ---\n";

    report::TextTable table({"#", "Model", "Latency (ms)", "AI (FLOP/B)",
                             "Attained", "of peak", "Bound"});
    std::vector<roofline::Point> points;
    roofline::Ceilings ceilings;
    ceilings.peak_flops = platform.matrix_peak(cfg.dtype);
    ceilings.peak_bw = platform.dram_bw;

    for (const models::ModelSpec& spec : models::model_zoo()) {
      const bool transformer = spec.type == "Trans." || spec.type == "MLP";
      if (transformer && !cfg.run_transformers) {
        continue;
      }
      if (spec.type == "Diffu." && !cfg.run_diffusion) {
        continue;
      }
      ProfileOptions opt;
      opt.platform_id = cfg.platform_id;
      opt.dtype = cfg.dtype;  // int8 = fully quantized deployment (fn.1);
                              // the mixed-precision QDQ flow is exercised by
                              // analysis/quantize.hpp + the CLI --quantize flag
      opt.batch = bench::batch_for(cfg, spec.id);
      opt.mode = MetricMode::kPredicted;
      ProfileReport r;
      try {
        r = Profiler(opt).run_zoo(spec.id);
      } catch (const ConfigError& e) {
        // Mirrors the paper's NPU experience: some models fail conversion.
        table.add_row({std::to_string(spec.table3_index), spec.display,
                       "conversion failed", "-", "-", "-", "-"});
        continue;
      }
      roofline::Point p = r.roofline.end_to_end;
      p.name = std::to_string(spec.table3_index);
      points.push_back(p);
      table.add_row({std::to_string(spec.table3_index), spec.display,
                     units::fixed(r.total_latency_s * 1e3, 3),
                     units::fixed(p.arithmetic_intensity(), 1),
                     units::tflops(p.attained_flops()),
                     units::fixed(100.0 * p.attained_flops() / ceilings.peak_flops, 1) +
                         "%",
                     ceilings.memory_bound(p) ? "memory" : "compute"});
    }
    std::cout << table.to_string() << "\n";

    report::SvgOptions svg_opt;
    svg_opt.title = "Figure 4: " + label;
    svg_opt.label_points = true;
    const std::string path = bench::artifact_dir() + "/figure4_" + cfg.platform_id +
                             "_" + std::string(dtype_name(cfg.dtype)) + ".svg";
    report::save_svg(report::render_points_svg(ceilings, points, svg_opt), path);
    bench::note_artifact(path);
  }
  std::cout << "\nExpected shape (paper §4.3): even on A100/RTX4090 few models\n"
               "exceed half the peak; many sit memory-bound lower-left; Orin is\n"
               "~2x Xavier; the Pi is capped by its ~5.5 GB/s AXI limit; the NPU\n"
               "lands far below its 5.7 TFLOP/s theoretical peak.\n";
  return 0;
}

// Parallel profiling engine scaling: the full-zoo sweep at every A100 GPU
// clock step, timed three ways —
//   1. legacy serial (jobs=1, preparation cache disabled): rebuild + remap
//      every (model, clock) combination, exactly the pre-parallel pipeline;
//   2. memoized serial (jobs=1, cache enabled): each model's engine is built
//      once and reused across clock settings;
//   3. memoized parallel (jobs=4, cache enabled): the same with the sweep
//      fanned out over the thread pool.
// Verifies all three produce byte-identical sweep output and writes
// BENCH_parallel_scaling.json with times, speedups and cache hit rates.
#include "bench_util.hpp"

#include <chrono>
#include <fstream>

using namespace proof;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The workload: every Table-3 model at two batch sizes and every A100 GPU
/// clock step — the model x batch x clock matrix a real campaign runs.  With
/// the cache on, repeated clocks hit the engine level and the second batch
/// hits the plan level (fusion + mapping reused, only lowering redone).
std::string run_full_zoo_clock_matrix() {
  const auto& a100 = hw::PlatformRegistry::instance().get("a100");
  std::string fingerprint;
  for (const int64_t batch : {1, 8}) {
    for (const double mhz : a100.gpu_clock.available_mhz) {
      ProfileOptions opt;
      opt.platform_id = "a100";
      opt.dtype = DType::kF16;
      opt.batch = batch;
      opt.mode = MetricMode::kPredicted;
      opt.clocks.gpu_mhz = mhz;
      fingerprint += "== batch " + std::to_string(batch) + ", GPU " +
                     units::fixed(mhz, 0) + " MHz ==\n";
      fingerprint += zoo_sweep_text(sweep_zoo(opt));
    }
  }
  return fingerprint;
}

struct Timed {
  double seconds = 0.0;
  std::string output;
  PrepCacheStats cache;
};

Timed run_mode(unsigned jobs, bool cache_enabled) {
  ThreadPool::set_global_jobs(jobs);
  PrepCache::instance().set_enabled(cache_enabled);
  PrepCache::instance().clear();
  PrepCache::instance().reset_stats();
  Timed t;
  const double t0 = now_s();
  t.output = run_full_zoo_clock_matrix();
  t.seconds = now_s() - t0;
  t.cache = PrepCache::instance().stats();
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Parallel scaling: full zoo x A100 GPU clock steps");

  bool single_core = false;
  if (!bench::require_multicore("bench_parallel_scaling", argc, argv,
                                &single_core)) {
    return 1;
  }

  const Timed serial = run_mode(1, false);
  const Timed cached = run_mode(1, true);
  const Timed parallel4 = run_mode(4, true);
  ThreadPool::set_global_jobs(0);
  PrepCache::instance().set_enabled(true);
  PrepCache::instance().clear();

  const bool identical =
      serial.output == cached.output && serial.output == parallel4.output;
  const double speedup_cached = serial.seconds / cached.seconds;
  const double speedup_parallel = serial.seconds / parallel4.seconds;
  // The multicore claim is parallel-beyond-memoization: 4 jobs must beat the
  // cached serial run.  A 1-hardware-thread host cannot demonstrate it.
  const double parallel_over_cached = cached.seconds / parallel4.seconds;
  const bool multicore_met = !single_core && parallel_over_cached > 1.0;

  report::TextTable table({"mode", "time", "speedup", "engine hits", "plan hits"});
  table.add_row({"serial, no cache", units::ms(serial.seconds), "1.00x", "-", "-"});
  table.add_row({"serial, cached", units::ms(cached.seconds),
                 units::fixed(speedup_cached, 2) + "x",
                 std::to_string(cached.cache.engine_hits),
                 std::to_string(cached.cache.plan_hits)});
  table.add_row({"4 jobs, cached", units::ms(parallel4.seconds),
                 units::fixed(speedup_parallel, 2) + "x",
                 std::to_string(parallel4.cache.engine_hits),
                 std::to_string(parallel4.cache.plan_hits)});
  std::cout << table.to_string();
  std::cout << "outputs byte-identical across modes: "
            << (identical ? "yes" : "NO — DETERMINISM VIOLATION") << "\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"workload\": \"full Table-3 zoo x 2 batches x 3 A100 GPU clock "
          "steps, fp16\",\n"
       << "  \"serial_no_cache_s\": " << serial.seconds << ",\n"
       << "  \"serial_cached_s\": " << cached.seconds << ",\n"
       << "  \"parallel4_cached_s\": " << parallel4.seconds << ",\n"
       << "  \"speedup_serial_cached\": " << speedup_cached << ",\n"
       << "  \"speedup_parallel4_cached\": " << speedup_parallel << ",\n"
       << "  \"outputs_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"cache\": {\n"
       << "    \"engine_hits\": " << parallel4.cache.engine_hits << ",\n"
       << "    \"engine_misses\": " << parallel4.cache.engine_misses << ",\n"
       << "    \"engine_hit_rate\": " << parallel4.cache.engine_hit_rate() << ",\n"
       << "    \"plan_hits\": " << parallel4.cache.plan_hits << ",\n"
       << "    \"plan_misses\": " << parallel4.cache.plan_misses << ",\n"
       << "    \"plan_hit_rate\": " << parallel4.cache.plan_hit_rate() << "\n"
       << "  },\n"
       << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"single_core_host\": " << (single_core ? "true" : "false")
       << ",\n"
       << "  \"multicore_criterion_met\": " << (multicore_met ? "true" : "false")
       << "\n}\n";
  const std::string path = bench::artifact_dir() + "/BENCH_parallel_scaling.json";
  std::ofstream(path) << json.str();
  bench::note_artifact(path);
  return identical && speedup_parallel >= 1.0 ? 0 : 1;
}

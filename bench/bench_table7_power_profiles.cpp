// Table 7 — EfficientNetV2-T performance and power on the Jetson Orin NX
// under different power profiles, including the §4.6 tuning procedure:
// pick the memory clock from the layer-wise roofline, then binary-search the
// GPU clock just under the 15 W budget.
#include "bench_util.hpp"

using namespace proof;

namespace {

ProfileReport run_profile(double gpu_mhz, double mem_mhz,
                          std::vector<double> cpu_clusters) {
  ProfileOptions opt;
  opt.platform_id = "orin_nx16";
  opt.dtype = DType::kF16;
  opt.batch = 128;
  opt.mode = MetricMode::kPredicted;
  opt.clocks.gpu_mhz = gpu_mhz;
  opt.clocks.mem_mhz = mem_mhz;
  opt.clocks.cpu_cluster_mhz = std::move(cpu_clusters);
  return Profiler(opt).run_zoo("efficientnetv2_t");
}

}  // namespace

int main() {
  bench::banner("Table 7: EfficientNetV2-T under different power profiles");

  struct Row {
    const char* profile;
    int index;
    const char* cpu;
    double gpu, emc;
    std::vector<double> clusters;
    double paper_ms, paper_w;
  };
  const std::vector<Row> rows = {
      {"stock \"MAXN\"", 1, "729/729", 918, 3199, {729, 729}, 211.4, 23.2},
      {"stock \"15W\"*", 2, "729/off", 612, 3199, {729, 0}, 514.5, 13.6},
      {"stock \"25W\"", 3, "729/729", 408, 3199, {729, 729}, 462.1, 14.2},
      {"comparison", 4, "729/off", 918, 3199, {729, 0}, 211.3, 22.5},
      {"comparison", 5, "729/off", 918, 2133, {729, 0}, 232.7, 19.2},
      {"comparison", 6, "729/off", 918, 665, {729, 0}, 568.0, 12.4},
      {"comparison", 7, "729/off", 612, 3199, {729, 0}, 317.5, 16.6},
      {"comparison", 8, "729/off", 612, 665, {729, 0}, 584.6, 10.9},
      {"comparison", 9, "729/off", 510, 3199, {729, 0}, 378.1, 15.1},
      {"optimal (ours)", 10, "729/off", 612, 2133, {729, 0}, 320.1, 14.7},
  };

  report::TextTable table({"Profile", "#", "CPU", "GPU", "EMC", "Latency (ms)",
                           "Power (W)", "paper ms", "paper W"});
  report::CsvWriter csv({"profile", "index", "cpu", "gpu_mhz", "emc_mhz",
                         "latency_ms", "power_w", "paper_ms", "paper_w"});
  for (const Row& row : rows) {
    const ProfileReport r = run_profile(row.gpu, row.emc, row.clusters);
    table.add_row({row.profile, std::to_string(row.index), row.cpu,
                   units::fixed(row.gpu, 0), units::fixed(row.emc, 0),
                   units::fixed(r.total_latency_s * 1e3, 1),
                   units::fixed(r.power_w, 1), units::fixed(row.paper_ms, 1),
                   units::fixed(row.paper_w, 1)});
    csv.add_row({row.profile, std::to_string(row.index), row.cpu,
                 units::fixed(row.gpu, 0), units::fixed(row.emc, 0),
                 units::fixed(r.total_latency_s * 1e3, 1),
                 units::fixed(r.power_w, 1), units::fixed(row.paper_ms, 1),
                 units::fixed(row.paper_w, 1)});
  }
  std::cout << table.to_string();
  std::cout << "(* the paper notes the stock \"15W\" profile uses a less efficient\n"
               "   TPC_PG_MASK value; our simulation models the standard mask, so\n"
               "   row #2 tracks row #7 rather than the paper's degraded 514.5 ms)\n";

  // The §4.6 search procedure itself: EMC fixed at 2133 (from the Figure-8
  // ceiling analysis), then find the fastest GPU clock under 15 W.  The
  // paper binary-searches serially; search_gpu_clock_under_power evaluates
  // the candidate steps concurrently over the thread pool instead.
  bench::banner("§4.6 GPU-clock search under the 15 W budget (EMC 2133)");
  ProfileOptions search_opt;
  search_opt.platform_id = "orin_nx16";
  search_opt.dtype = DType::kF16;
  search_opt.batch = 128;
  search_opt.mode = MetricMode::kPredicted;
  search_opt.clocks.mem_mhz = 2133;
  search_opt.clocks.cpu_cluster_mhz = {729, 0};
  const Graph effnet = models::build_model("efficientnetv2_t");
  ClockSweep trace;
  const double selected =
      search_gpu_clock_under_power(search_opt, effnet, 15.0, &trace);
  for (const ClockPoint& p : trace.points) {
    std::cout << "  GPU " << units::fixed(p.gpu_mhz, 0) << " MHz -> "
              << units::fixed(p.power_w, 1) << " W, "
              << units::fixed(p.latency_s * 1e3, 1) << " ms\n";
  }
  const ProfileReport best = run_profile(selected, 2133, {729, 0});
  std::cout << "selected GPU clock: " << units::fixed(selected, 0) << " MHz ("
            << trace.points.size() << " candidate steps evaluated) -> "
            << units::fixed(best.total_latency_s * 1e3, 1) << " ms at "
            << units::fixed(best.power_w, 1)
            << " W (paper: 612 MHz, 320.1 ms, 14.7 W)\n";
  const std::string path = bench::artifact_dir() + "/table7_power_profiles.csv";
  csv.save(path);
  bench::note_artifact(path);
  return 0;
}

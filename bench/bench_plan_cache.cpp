// Shape-polymorphic AnalysisPlan cache speedup: frozen structure phase +
// cheap per-cell instantiation vs the legacy exact-fingerprint prepare path.
//
// Two sweep workloads where cells differ only in shape:
//   * sweep-decode — gpt2 decode grid, 8 batches x 8 KV positions (plus the
//     per-batch prefill points).  Every decode position is a distinct graph
//     to the legacy path (the position is baked into the KV-cache input
//     dims) but one structural fingerprint to the plan cache.
//   * batch-sweep — bert_base over the default 12 power-of-two batch
//     candidates; all 12 cells share one frozen plan.  A transformer makes
//     the representative workload here: attention fusion + region lowering
//     dominate its per-cell prepare, which is exactly the work the plan
//     freezes.
//
// Method: the same sweep runs with the plan cache enabled and disabled
// (PROOF_PLAN_CACHE=0 equivalent via set_plan_cache_enabled), alternating
// A/B per repetition so drift hits both sides equally; best-of-N times are
// compared.  The prep cache is cleared before every timed rep so each rep
// pays the full preparation cost of its mode — within a rep the engine
// level still dedupes identical cells exactly as production sweeps do.
//
// Correctness gate: the sweep reports must be byte-identical between the two
// modes (decode_sweep_json for the grid; a full-precision point dump for the
// batch sweep).
//
// `--smoke` runs one rep of a 2x2 grid / 4-point sweep — a CI-friendly check
// that both modes work and agree, with no speedup assertion.
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

using namespace proof;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

DecodeSweepOptions decode_options(bool smoke) {
  DecodeSweepOptions opt;
  opt.config_id = "gpt2";
  opt.platform_id = "a100";
  opt.backend_id = "trt_sim";
  opt.prefill_len = 512;
  if (smoke) {
    opt.batches = {1, 4};
    opt.positions = {64, 256};
  } else {
    opt.batches = {1, 2, 3, 4, 6, 8, 12, 16};
    opt.positions = {32, 64, 96, 128, 192, 256, 384, 512};
  }
  return opt;
}

ProfileOptions batch_sweep_options() {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.backend_id = "trt_sim";
  opt.dtype = DType::kF16;
  opt.mode = MetricMode::kPredicted;
  return opt;
}

std::vector<int64_t> batch_candidates(bool smoke) {
  if (smoke) {
    return {1, 4, 16, 64};
  }
  // The sweep_batches default: powers of two 1..2048 — 12 points.
  std::vector<int64_t> candidates;
  for (int64_t b = 1; b <= 2048; b *= 2) {
    candidates.push_back(b);
  }
  return candidates;
}

/// Full-precision dump of a batch sweep — every double bit-faithfully, so a
/// single ULP of divergence between the two modes fails the identity gate.
std::string batch_sweep_dump(const BatchSweep& sweep) {
  std::ostringstream out;
  out.precision(17);
  out << "optimal_batch=" << sweep.optimal_batch << "\n";
  for (const BatchPoint& p : sweep.points) {
    out << p.batch << " " << p.latency_s << " " << p.throughput_per_s << " "
        << p.attained_flops << "\n";
  }
  return out.str();
}

struct WorkloadResult {
  std::string id;
  double target = 0.0;
  double on_s = std::numeric_limits<double>::infinity();
  double off_s = std::numeric_limits<double>::infinity();
  bool identical = false;
  size_t plan_hits = 0;    ///< plan-cache hits during one enabled rep
  size_t plan_misses = 0;  ///< structure phases built during one enabled rep

  [[nodiscard]] double speedup() const { return off_s / on_s; }
  [[nodiscard]] bool target_met() const { return speedup() >= target; }
};

/// Times `run_sweep` once in the given mode, on a cold prep cache.
template <typename Fn>
double timed(bool plan_cache_on, Fn&& run_sweep, std::string* report_out) {
  PrepCache::instance().set_plan_cache_enabled(plan_cache_on);
  PrepCache::instance().clear();
  const double t0 = now_s();
  std::string report = run_sweep();
  const double elapsed = now_s() - t0;
  PROOF_CHECK(!report.empty(), "sweep produced an empty report");
  if (report_out != nullptr) {
    *report_out = std::move(report);
  }
  return elapsed;
}

template <typename Fn>
WorkloadResult run_workload(const std::string& id, double target, int reps,
                            Fn&& run_sweep) {
  WorkloadResult r;
  r.id = id;
  r.target = target;

  // Byte-identity gate (also warms thread pool, registries and the zoo).
  std::string off_report;
  std::string on_report;
  (void)timed(false, run_sweep, &off_report);
  PrepCache::instance().reset_stats();
  (void)timed(true, run_sweep, &on_report);
  r.identical = on_report == off_report;
  const PrepCacheStats stats = PrepCache::instance().stats();
  r.plan_hits = stats.plan_cache_hits;
  r.plan_misses = stats.plan_cache_misses;

  for (int rep = 0; rep < reps; ++rep) {
    r.off_s = std::min(r.off_s, timed(false, run_sweep, nullptr));
    r.on_s = std::min(r.on_s, timed(true, run_sweep, nullptr));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::banner(smoke ? "AnalysisPlan cache A/B (smoke)"
                      : "Shape-polymorphic AnalysisPlan cache vs full prepare");

  PrepCache::instance().set_enabled(true);
  const int reps = smoke ? 1 : 5;

  std::vector<WorkloadResult> results;
  {
    const DecodeSweepOptions opt = decode_options(smoke);
    results.push_back(run_workload(
        "sweep-decode gpt2 " + std::to_string(opt.batches.size()) + "x" +
            std::to_string(opt.positions.size()),
        /*target=*/3.0, reps,
        [&] { return decode_sweep_json(sweep_decode(opt)); }));
  }
  {
    const Graph model = models::build_model("bert_base");
    const ProfileOptions opt = batch_sweep_options();
    const std::vector<int64_t> candidates = batch_candidates(smoke);
    results.push_back(run_workload(
        "batch-sweep bert_base " + std::to_string(candidates.size()) + "pt",
        /*target=*/2.0, reps,
        [&] { return batch_sweep_dump(sweep_batches(opt, model, candidates)); }));
  }
  PrepCache::instance().set_plan_cache_enabled(true);

  report::TextTable table({"workload", "plan cache off", "plan cache on",
                           "speedup", "target", "plan hits/misses",
                           "reports identical"});
  bool all_identical = true;
  bool targets_met = true;
  for (const WorkloadResult& r : results) {
    table.add_row({r.id, units::ms(r.off_s), units::ms(r.on_s),
                   units::fixed(r.speedup(), 2) + "x",
                   ">= " + units::fixed(r.target, 1) + "x",
                   std::to_string(r.plan_hits) + "/" +
                       std::to_string(r.plan_misses),
                   r.identical ? "yes" : "NO"});
    all_identical = all_identical && r.identical;
    targets_met = targets_met && r.target_met();
  }
  std::cout << table.to_string();
  if (!smoke) {
    std::cout << "speedup targets: " << (targets_met ? "met" : "MISSED") << "\n";
  }
  std::cout << "reports byte-identical in both modes: "
            << (all_identical ? "yes" : "NO — INSTANTIATION DIVERGENCE") << "\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"workload\": \"cold-prep-cache sweeps, plan cache on vs "
          "PROOF_PLAN_CACHE=0, fp16 A100 trt_sim\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"workloads\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    json << "    {\"id\": \"" << r.id << "\", \"plan_cache_off_s\": " << r.off_s
         << ", \"plan_cache_on_s\": " << r.on_s
         << ", \"speedup\": " << r.speedup()
         << ", \"speedup_target\": " << r.target
         << ", \"plan_cache_hits\": " << r.plan_hits
         << ", \"plan_cache_misses\": " << r.plan_misses
         << ", \"reports_identical\": " << (r.identical ? "true" : "false")
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"targets_met\": " << (targets_met ? "true" : "false") << ",\n"
       << "  \"all_reports_identical\": " << (all_identical ? "true" : "false")
       << "\n"
       << "}\n";
  // Smoke runs land in their own file so a CI pass never overwrites the
  // committed full-run reference numbers.
  const std::string path = bench::artifact_dir() +
                           (smoke ? "/BENCH_plan_cache_smoke.json"
                                  : "/BENCH_plan_cache.json");
  std::ofstream(path) << json.str();
  bench::note_artifact(path);

  // Correctness is a hard failure everywhere; the speedup assertion only
  // gates the full (non-smoke) run, where best-of-N suppresses timer noise.
  return all_identical && (smoke || targets_met) ? 0 : 1;
}

// Framework-overhead microbenchmarks (google-benchmark).
//
// Supports the paper's §4.2 claim that the analytical path has negligible
// cost compared to counter profiling: model construction, shape inference,
// analysis, backend build and layer mapping are all measured here.
#include <benchmark/benchmark.h>

#include <proof/proof.hpp>

namespace proof {
namespace {

void BM_BuildResNet50(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::build_model("resnet50"));
  }
}
BENCHMARK(BM_BuildResNet50)->Unit(benchmark::kMillisecond);

void BM_ShapeInference(benchmark::State& state) {
  Graph g = models::build_model("resnet50");
  for (auto _ : state) {
    infer_shapes(g);
  }
}
BENCHMARK(BM_ShapeInference)->Unit(benchmark::kMillisecond);

void BM_AnalyzeRepresentation(benchmark::State& state) {
  const Graph g = models::build_model("resnet50");
  for (auto _ : state) {
    AnalyzeRepresentation ar(g);
    benchmark::DoNotOptimize(ar.total_flops());
  }
}
BENCHMARK(BM_AnalyzeRepresentation)->Unit(benchmark::kMillisecond);

void BM_BackendBuild(benchmark::State& state) {
  const Graph g = models::build_model("resnet50");
  const auto& a100 = hw::PlatformRegistry::instance().get("a100");
  backends::BuildConfig config;
  config.dtype = DType::kF16;
  config.batch = 128;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backends::BackendRegistry::instance().get("trt_sim").build(g, config, a100));
  }
}
BENCHMARK(BM_BackendBuild)->Unit(benchmark::kMillisecond);

void BM_LayerMapping(benchmark::State& state) {
  const Graph g = models::build_model("resnet50");
  const auto& a100 = hw::PlatformRegistry::instance().get("a100");
  backends::BuildConfig config;
  config.dtype = DType::kF16;
  config.batch = 128;
  const backends::Engine engine =
      backends::BackendRegistry::instance().get("trt_sim").build(g, config, a100);
  const AnalyzeRepresentation ar(engine.analysis_graph());
  for (auto _ : state) {
    OptimizedAnalyzeRepresentation oar(ar);
    benchmark::DoNotOptimize(mapping::map_layers(engine, oar));
  }
}
BENCHMARK(BM_LayerMapping)->Unit(benchmark::kMillisecond);

void BM_FullPredictedProfile(benchmark::State& state) {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.dtype = DType::kF16;
  opt.batch = 128;
  opt.mode = MetricMode::kPredicted;
  const Profiler profiler(opt);
  const Graph g = models::build_model("resnet50");
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler.run(g));
  }
}
BENCHMARK(BM_FullPredictedProfile)->Unit(benchmark::kMillisecond);

void BM_FullProfileLargeModel(benchmark::State& state) {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.dtype = DType::kF16;
  opt.batch = 4;
  opt.mode = MetricMode::kPredicted;
  const Profiler profiler(opt);
  const Graph g = models::build_model("sd_unet");
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler.run(g));
  }
}
BENCHMARK(BM_FullProfileLargeModel)->Unit(benchmark::kMillisecond);

void BM_SubgraphByIo(benchmark::State& state) {
  const Graph g = models::build_model("vit_tiny");
  const auto order = g.topo_order();
  const Graph::Boundary b = g.boundary(order);
  std::vector<std::string> outs;
  for (const std::string& o : g.outputs()) {
    outs.push_back(o);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.subgraph_by_io(b.inputs, outs));
  }
}
BENCHMARK(BM_SubgraphByIo)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace proof

BENCHMARK_MAIN();

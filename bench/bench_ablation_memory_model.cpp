// Ablation — the fusion-aware memory model (paper §3.2.3).
//
// Compares three per-model memory estimates against the simulated counter
// measurement on the A100: (1) naive sum of unfused operators, (2) PRoof's
// fusion-aware boundary model, (3) the measured traffic.  The fusion-aware
// estimate should cut most of the naive model's error, which is the paper's
// justification for the _FusedOp design.
#include "bench_util.hpp"

using namespace proof;

int main() {
  bench::banner("Ablation: fusion-aware vs naive memory-access model");
  report::TextTable table({"Model", "naive sum (MB)", "fusion-aware (MB)",
                           "measured (MB)", "naive err", "fusion err"});
  for (const char* id : {"resnet50", "mobilenetv2_10", "efficientnetv2_s",
                         "vit_tiny", "shufflenetv2_10", "swin_tiny"}) {
    ProfileOptions opt;
    opt.platform_id = "a100";
    opt.dtype = DType::kF16;
    opt.batch = 128;

    // Naive: Equation 1 summed over UNFUSED model operators.
    Graph g = models::build_model(id);
    set_batch_size(g, opt.batch);
    convert_float_dtype(g, opt.dtype);
    const AnalyzeRepresentation ar(g);
    const double naive = ar.total_memory().total();

    opt.mode = MetricMode::kPredicted;
    const double fused = Profiler(opt).run_zoo(id).roofline.end_to_end.bytes;
    opt.mode = MetricMode::kMeasured;
    const double measured = Profiler(opt).run_zoo(id).roofline.end_to_end.bytes;

    table.add_row({models::model_spec(id).display, units::fixed(naive / 1e6, 1),
                   units::fixed(fused / 1e6, 1), units::fixed(measured / 1e6, 1),
                   units::percent((naive - measured) / measured),
                   units::percent((fused - measured) / measured)});
  }
  std::cout << table.to_string();
  std::cout << "\nThe naive model over-predicts traffic by counting every fused\n"
               "intermediate tensor as a DRAM round-trip; the boundary model\n"
               "matches the measurement to within a few percent.\n";
  return 0;
}

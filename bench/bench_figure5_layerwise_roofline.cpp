// Figure 5 — layer-wise roofline analysis for ResNet-50, ViT tiny,
// EfficientNet B4 and EfficientNetV2-T on the A100 (fp16, batch 128).
//
// Chart (b) uses the analytical-model metrics, as the paper does after its
// DLProf dependency crashed; the other three use the counter profiler.
#include "bench_util.hpp"

using namespace proof;

int main() {
  bench::banner("Figure 5: Layer-wise roofline analysis on NVIDIA A100");

  struct Panel {
    const char* tag;
    const char* model;
    MetricMode mode;
  };
  const Panel panels[] = {
      {"a", "resnet50", MetricMode::kMeasured},
      {"b", "vit_tiny", MetricMode::kPredicted},  // *analytical fallback
      {"c", "efficientnet_b4", MetricMode::kMeasured},
      {"d", "efficientnetv2_t", MetricMode::kMeasured},
  };

  for (const Panel& panel : panels) {
    ProfileOptions opt;
    opt.platform_id = "a100";
    opt.dtype = DType::kF16;
    opt.batch = 128;
    opt.mode = panel.mode;
    const ProfileReport r = Profiler(opt).run_zoo(panel.model);

    std::cout << "--- (" << panel.tag << ") " << models::model_spec(panel.model).display
              << " ---\n";
    std::cout << summary_text(r) << "\n";

    // Class composition: shares of latency by workload class, the quantity
    // the paper's colour-coding visualizes (depthwise blue / pointwise green
    // / other conv red, MatMul green).
    std::map<OpClass, double> by_class;
    for (const LayerReport& layer : r.layers) {
      by_class[layer.cls] += layer.latency_s;
    }
    report::TextTable comp({"class", "latency share", "layers"});
    for (const auto& [cls, t] : by_class) {
      size_t n = 0;
      for (const LayerReport& layer : r.layers) {
        n += layer.cls == cls ? 1 : 0;
      }
      comp.add_row({std::string(op_class_name(cls)),
                    units::fixed(100.0 * t / r.total_latency_s, 1) + "%",
                    std::to_string(n)});
    }
    std::cout << comp.to_string() << "\n";

    report::SvgOptions svg_opt;
    svg_opt.title = "Figure 5(" + std::string(panel.tag) + "): " +
                    models::model_spec(panel.model).display + " on A100";
    const std::string path =
        bench::artifact_dir() + "/figure5" + panel.tag + "_" + panel.model + ".svg";
    report::save_svg(report::render_roofline_svg(r.roofline, svg_opt), path);
    bench::note_artifact(path);
  }
  std::cout << "\nExpected shape (paper §4.4): ResNet-50's heavy layers sit at\n"
               "high AI and FLOP/s; ViT's MatMul layers reach high intensity;\n"
               "EfficientNet B4's depthwise convolutions drag efficiency down,\n"
               "which V2-T's fused (regular) convolutions recover.\n";
  return 0;
}

// Ablation — what operator fusion buys (paper §1: runtimes "significantly
// improve performance (e.g., operator fusion)").
//
// Builds each model twice on the A100: once through the normal trt_sim
// optimizer and once with every node lowered as its own backend layer
// (fusion disabled), and compares layer counts, DRAM traffic and latency.
#include "backends/fusion.hpp"
#include "backends/lowering.hpp"
#include "backends/prepare.hpp"

#include "bench_util.hpp"

using namespace proof;

namespace {

/// Unfused engine: one backend layer per model node (no optimizer).
backends::Engine build_unfused(const Graph& model, const backends::BuildConfig& config,
                               const hw::PlatformDesc& platform) {
  Graph g = backends::prepare_model(model, config, platform);
  backends::LoweringOptions lowering;
  lowering.arch = platform.arch;
  lowering.split_regions_at_anchors = false;
  std::vector<backends::BackendLayer> layers;
  for (const NodeId id : g.topo_order()) {
    backends::BackendLayer layer =
        backends::lower_group(g, {id}, g.node(id).name, false, lowering);
    layer.info = g.node(id).name;
    layers.push_back(std::move(layer));
  }
  return backends::Engine("unfused", std::move(g), std::move(layers), config);
}

double engine_bytes(const backends::Engine& engine) {
  double bytes = 0.0;
  for (const hw::KernelWork& k : engine.all_kernels()) {
    bytes += k.bytes;
  }
  return bytes;
}

}  // namespace

int main() {
  bench::banner("Ablation: operator fusion on/off (trt_sim vs per-node lowering)");
  const auto& a100 = hw::PlatformRegistry::instance().get("a100");
  const hw::PlatformState state(a100);

  report::TextTable table({"model", "layers fused/unfused", "traffic fused/unfused",
                           "latency fused", "latency unfused", "fusion speedup"});
  for (const char* id : {"resnet50", "mobilenetv2_10", "efficientnet_b0",
                         "vit_tiny", "shufflenetv2_10", "mlp_mixer_b16"}) {
    const Graph model = models::build_model(id);
    backends::BuildConfig config;
    config.dtype = DType::kF16;
    config.batch = 64;
    const backends::Engine fused =
        backends::BackendRegistry::instance().get("trt_sim").build(model, config,
                                                                   a100);
    const backends::Engine unfused = build_unfused(model, config, a100);
    const double t_fused = fused.profile(state).total_latency_s;
    const double t_unfused = unfused.profile(state).total_latency_s;
    table.add_row(
        {models::model_spec(id).display,
         std::to_string(fused.layers().size()) + " / " +
             std::to_string(unfused.layers().size()),
         units::fixed(engine_bytes(fused) / 1e9, 2) + " / " +
             units::fixed(engine_bytes(unfused) / 1e9, 2) + " GB",
         units::ms(t_fused), units::ms(t_unfused),
         units::fixed(t_unfused / t_fused, 2) + "x"});
  }
  std::cout << table.to_string();
  std::cout << "\nFusion removes both the per-kernel launch overhead and the\n"
               "DRAM round-trips of fused intermediates — the gap PRoof's\n"
               "fusion-aware analysis has to model to stay accurate.\n";
  return 0;
}

// Ablation — the layer-mapping strategy ladder (paper §3.3).
//
// Reports, per backend x model, how many backend layers each rung of the
// ladder resolves and the node coverage when higher rungs are disabled.
// The I/O-search rung is what makes opaque Myelin-style regions mappable.
#include <set>

#include "bench_util.hpp"

using namespace proof;

namespace {

/// Mapping with only name-based rungs (no I/O search / dependency walk):
/// what a tool relying purely on runtime-reported names could recover.
double name_only_coverage(const backends::Engine& engine) {
  const Graph& g = engine.analysis_graph();
  std::set<std::string> covered;
  for (const backends::BackendLayer& layer : engine.layers()) {
    if (layer.is_reorder || layer.info.empty()) {
      continue;
    }
    if (g.find_node(layer.info) != kInvalidNode) {
      covered.insert(layer.info);
      continue;
    }
    for (const char sep : {'+', ','}) {
      bool all = true;
      std::set<std::string> names;
      for (const auto& part : strings::split(layer.info, sep)) {
        const std::string name{strings::trim(part)};
        if (name.empty()) {
          continue;
        }
        if (g.find_node(name) == kInvalidNode) {
          all = false;
          break;
        }
        names.insert(name);
      }
      if (all && !names.empty()) {
        covered.insert(names.begin(), names.end());
        break;
      }
    }
  }
  return static_cast<double>(covered.size()) / static_cast<double>(g.num_nodes());
}

}  // namespace

int main() {
  bench::banner("Ablation: layer-mapping strategy ladder");
  report::TextTable table({"Backend", "Model", "Layers", "exact", "name list",
                           "io search", "dep. walk", "inserted", "names-only cov.",
                           "full cov."});
  const auto& a100 = hw::PlatformRegistry::instance().get("a100");
  for (const char* backend_id : {"trt_sim", "ov_sim", "ort_sim"}) {
    for (const char* model_id :
         {"resnet50", "vit_tiny", "shufflenetv2_10", "swin_tiny"}) {
      backends::BuildConfig config;
      config.dtype = DType::kF16;
      config.batch = 8;
      const backends::Engine engine =
          backends::BackendRegistry::instance().get(backend_id).build(
              models::build_model(model_id), config, a100);
      const AnalyzeRepresentation ar(engine.analysis_graph());
      OptimizedAnalyzeRepresentation oar(ar);
      const mapping::LayerMapping map = mapping::map_layers(engine, oar);
      table.add_row(
          {backend_id, model_id, std::to_string(engine.layers().size()),
           std::to_string(map.count(mapping::MapMethod::kExactName)),
           std::to_string(map.count(mapping::MapMethod::kNameList)),
           std::to_string(map.count(mapping::MapMethod::kIoSearch)),
           std::to_string(map.count(mapping::MapMethod::kDependencyInference)),
           std::to_string(map.count(mapping::MapMethod::kBackendInserted)),
           units::fixed(100.0 * name_only_coverage(engine), 1) + "%",
           units::fixed(100.0 * map.node_coverage(ar.num_nodes()), 1) + "%"});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nNames alone cannot map TensorRT's opaque regions or ONNX\n"
               "Runtime's fused ops; the I/O-search rung closes the gap to 100%.\n";
  return 0;
}

// Serve-mode throughput and shared-cache amortization: an in-process
// `proof serve` daemon on a unix socket, driven by closed-loop clients.
//
//  1. cold vs warm: the first profile request pays the model load (ModelPool)
//     and engine preparation (PrepCache); repeats hit both caches.  The
//     daemon's reason to exist is that ratio — it must be >= 3x.
//  2. scaling: 1..N closed-loop client threads, each with its own
//     connection, hammer warm profile requests for a fixed window; p50/p99
//     latency and requests/s per level.  On a multicore host requests/s at
//     the top level must beat the single-client level by >= 1.3x; a
//     1-hardware-thread host cannot demonstrate that and the bench refuses
//     to run without --allow-single-core (see bench_util.hpp).
//
// Writes BENCH_serve_scaling.json.
#include "bench_util.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <optional>
#include <thread>
#include <vector>

using namespace proof;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string profile_request(int64_t id) {
  return "{\"id\":" + std::to_string(id) +
         ",\"method\":\"profile\",\"params\":{\"model\":\"resnet50\","
         "\"platform\":\"a100\",\"batch\":8}}";
}

/// One request/response exchange; progress frames (none for `profile`) are
/// drained.  Throws on error responses so callers can count failures.
std::string call(net::Socket& socket, const std::string& payload) {
  serve::write_frame(socket, payload);
  while (true) {
    std::optional<std::string> frame = serve::read_frame(socket);
    if (!frame.has_value()) {
      throw net::IoError("server closed the connection mid-request");
    }
    const serve::Response response = serve::parse_response(*frame);
    if (response.is_progress()) {
      continue;
    }
    if (!response.is_result()) {
      throw Error("request failed: " + response.error_message);
    }
    return response.payload;
  }
}

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const size_t idx = std::min(sorted.size() - 1,
                              static_cast<size_t>(q * double(sorted.size())));
  return sorted[idx];
}

struct ClientResult {
  std::vector<double> latencies;
  uint64_t errors = 0;
};

/// Closed loop: one connection, back-to-back warm profile requests until the
/// window closes.
void client_loop(const net::Endpoint& endpoint, double window_s,
                 ClientResult* out) {
  try {
    net::Socket socket = net::connect(endpoint);
    const double t_end = now_s() + window_s;
    int64_t id = 0;
    while (now_s() < t_end) {
      const double t0 = now_s();
      (void)call(socket, profile_request(++id));
      out->latencies.push_back(now_s() - t0);
    }
  } catch (const std::exception&) {
    ++out->errors;
  }
}

struct Level {
  unsigned clients = 0;
  uint64_t requests = 0;
  uint64_t errors = 0;
  double rps = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
};

Level run_level(const net::Endpoint& endpoint, unsigned clients,
                double window_s) {
  std::vector<ClientResult> results(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const double t0 = now_s();
  for (unsigned i = 0; i < clients; ++i) {
    threads.emplace_back(client_loop, std::cref(endpoint), window_s,
                         &results[i]);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double elapsed = now_s() - t0;

  Level level;
  level.clients = clients;
  std::vector<double> all;
  for (const ClientResult& r : results) {
    level.errors += r.errors;
    level.requests += r.latencies.size();
    all.insert(all.end(), r.latencies.begin(), r.latencies.end());
  }
  std::sort(all.begin(), all.end());
  level.rps = elapsed > 0.0 ? double(level.requests) / elapsed : 0.0;
  level.p50_s = percentile(all, 0.50);
  level.p99_s = percentile(all, 0.99);
  return level;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Serve throughput: cold vs warm and closed-loop scaling");

  bool single_core = false;
  if (!bench::require_multicore("bench_serve_throughput", argc, argv,
                                &single_core)) {
    return 1;
  }

  serve::ServerOptions options;
  options.listen = "unix:/tmp/proof_bench_serve_" +
                   std::to_string(::getpid()) + ".sock";
  options.max_inflight = 64;  // the bench measures latency, not admission
  serve::Server server(std::move(options));
  server.start();
  const net::Endpoint& endpoint = server.endpoint();
  std::cout << "daemon on " << endpoint.describe() << "\n\n";

  // --- cold vs warm ----------------------------------------------------------
  // No preload: the first request pays graph build + index warm + engine prep.
  net::Socket probe = net::connect(endpoint);
  const double t_cold = now_s();
  (void)call(probe, profile_request(1));
  const double cold_s = now_s() - t_cold;

  std::vector<double> warm;
  for (int i = 0; i < 50; ++i) {
    const double t0 = now_s();
    (void)call(probe, profile_request(2 + i));
    warm.push_back(now_s() - t0);
  }
  probe.close();
  std::sort(warm.begin(), warm.end());
  const double warm_p50 = percentile(warm, 0.50);
  const double warm_p99 = percentile(warm, 0.99);
  const double warm_speedup = warm_p50 > 0.0 ? cold_s / warm_p50 : 0.0;
  const bool warm_met = warm_speedup >= 3.0;

  std::cout << "cold first request: " << units::ms(cold_s)
            << "  warm p50: " << units::ms(warm_p50)
            << "  speedup: " << units::fixed(warm_speedup, 1) << "x "
            << (warm_met ? "(>= 3x: ok)" : "(< 3x: FAIL)") << "\n\n";

  // --- closed-loop scaling ---------------------------------------------------
  const unsigned hw = bench::hardware_threads();
  std::vector<unsigned> counts{1, 2, 4};
  if (2 * hw > 4) {
    counts.push_back(2 * hw);
  }
  constexpr double kWindowS = 0.8;

  report::TextTable table({"clients", "requests", "req/s", "p50", "p99", "errors"});
  std::vector<Level> levels;
  for (const unsigned clients : counts) {
    const Level level = run_level(endpoint, clients, kWindowS);
    table.add_row({std::to_string(level.clients),
                   std::to_string(level.requests),
                   units::fixed(level.rps, 0), units::ms(level.p50_s),
                   units::ms(level.p99_s), std::to_string(level.errors)});
    levels.push_back(level);
  }
  std::cout << table.to_string();

  const double rps_1 = levels.front().rps;
  const double rps_max = levels.back().rps;
  const double scaling = rps_1 > 0.0 ? rps_max / rps_1 : 0.0;
  uint64_t total_errors = 0;
  for (const Level& level : levels) {
    total_errors += level.errors;
  }
  const bool multicore_met = !single_core && scaling >= 1.3;
  std::cout << "requests/s scaling 1 -> " << levels.back().clients
            << " clients: " << units::fixed(scaling, 2) << "x"
            << (single_core ? " (single-core host: criterion not measurable)"
                            : (multicore_met ? " (>= 1.3x: ok)"
                                             : " (< 1.3x: FAIL)"))
            << "\n";

  server.stop();

  std::ostringstream json;
  json << "{\n"
       << "  \"workload\": \"resnet50 profile, a100 fp16 batch 8, predicted; "
          "closed-loop clients over a unix socket\",\n"
       << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"single_core_host\": " << (single_core ? "true" : "false")
       << ",\n"
       << "  \"cold_first_request_s\": " << cold_s << ",\n"
       << "  \"warm_p50_s\": " << warm_p50 << ",\n"
       << "  \"warm_p99_s\": " << warm_p99 << ",\n"
       << "  \"warm_speedup\": " << warm_speedup << ",\n"
       << "  \"warm_criterion_met\": " << (warm_met ? "true" : "false")
       << ",\n"
       << "  \"levels\": [\n";
  for (size_t i = 0; i < levels.size(); ++i) {
    const Level& level = levels[i];
    json << "    {\"clients\": " << level.clients
         << ", \"requests\": " << level.requests << ", \"rps\": " << level.rps
         << ", \"p50_s\": " << level.p50_s << ", \"p99_s\": " << level.p99_s
         << ", \"errors\": " << level.errors << "}"
         << (i + 1 < levels.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"scaling_1_to_max_clients\": " << scaling << ",\n"
       << "  \"multicore_criterion_met\": "
       << (multicore_met ? "true" : "false") << "\n}\n";
  const std::string path = bench::artifact_dir() + "/BENCH_serve_scaling.json";
  std::ofstream(path) << json.str();
  bench::note_artifact(path);

  const bool ok =
      warm_met && total_errors == 0 && (single_core || multicore_met);
  return ok ? 0 : 1;
}

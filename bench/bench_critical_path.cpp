// Multi-stream critical-path ablation: how much latency the simulated
// runtimes' concurrency surface buys per model, and what the analysis costs.
//
// For each (model, backend) pair the engine is profiled once, then the same
// per-layer latencies are dispatched serially (streams = 1) and onto the
// backend's full stream budget; the table reports the critical path vs the
// serial sum, the speedup, the sync-edge count and how many layers stay
// critical.  A second table times schedule_streams + analyze themselves
// (best of N) — the engine must stay a negligible fraction of a profile run.
//
// `--smoke` runs the smallest model on one backend only.
#include "bench_util.hpp"

#include <chrono>
#include <cstring>

#include "backends/stream_schedule.hpp"

using namespace proof;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Case {
  std::string model;
  std::string backend;
  std::string platform;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke =
      argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::banner("critical path: multi-stream dispatch ablation");

  std::vector<Case> cases = {
      {"shufflenetv2_10", "trt_sim", "a100"},
  };
  if (!smoke) {
    cases.insert(cases.end(), {{"resnet50", "trt_sim", "a100"},
                               {"resnet50", "ort_sim", "a100"},
                               {"resnet50", "ov_sim", "xeon6330"},
                               {"bert_base", "trt_sim", "a100"},
                               {"sd_unet", "trt_sim", "a100"}});
  }

  report::TextTable table({"model", "backend", "streams", "serial", "critical path",
                           "speedup", "syncs", "critical layers"});
  report::TextTable cost({"model", "backend", "layers", "schedule", "analyze"});

  for (const Case& c : cases) {
    const hw::PlatformDesc& platform =
        hw::PlatformRegistry::instance().get(c.platform);
    backends::BuildConfig config;
    config.dtype = platform.supports(DType::kF16) ? DType::kF16 : DType::kF32;
    config.batch = c.model == "sd_unet" ? 2 : 8;
    const backends::Engine engine =
        backends::BackendRegistry::instance().get(c.backend).build(
            models::build_model(c.model), config, platform);
    const hw::PlatformState state(platform, {});
    const backends::EngineProfile profile = engine.profile(state, 20);

    const ExecutionTimeline timeline =
        backends::schedule_streams(engine, profile.layer_latency_s, 0);
    const critpath::Report cp = critpath::analyze(timeline);
    table.add_row({c.model, c.backend, std::to_string(cp.num_streams),
                   units::ms(cp.serial_sum_ns / 1e9),
                   units::ms(cp.critical_path_ns / 1e9),
                   units::fixed(cp.parallel_speedup, 2) + "x",
                   std::to_string(cp.sync_count),
                   std::to_string(cp.critical_layers.size()) + "/" +
                       std::to_string(cp.layers.size())});

    // Engine cost: best of 5 for each stage.
    const int reps = smoke ? 1 : 5;
    double best_schedule = 1e9;
    double best_analyze = 1e9;
    for (int r = 0; r < reps; ++r) {
      double t0 = now_s();
      const ExecutionTimeline t =
          backends::schedule_streams(engine, profile.layer_latency_s, 0);
      best_schedule = std::min(best_schedule, now_s() - t0);
      t0 = now_s();
      const critpath::Report rep = critpath::analyze(t);
      best_analyze = std::min(best_analyze, now_s() - t0);
      PROOF_CHECK(rep.critical_path_ns > 0.0, "empty analysis");
    }
    cost.add_row({c.model, c.backend, std::to_string(cp.layers.size()),
                  units::ms(best_schedule), units::ms(best_analyze)});
  }

  std::cout << table.to_string() << "\n";
  bench::banner("critical path: engine cost (best-of-N wall clock)");
  std::cout << cost.to_string();
  return 0;
}

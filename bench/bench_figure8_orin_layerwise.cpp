// Figure 8 — layer-wise roofline analysis of EfficientNetV2-T on the Jetson
// Orin NX at maximum clocks (fp16, batch 128), with the additional bandwidth
// ceiling lines for the 2133 MHz (62 GB/s) and 665 MHz (15.2 GB/s) memory
// clocks that drive the §4.6 memory-clock decision.
#include "bench_util.hpp"

using namespace proof;

int main() {
  bench::banner("Figure 8: Layer-wise roofline of EfficientNetV2-T on Orin NX");

  ProfileOptions opt;
  opt.platform_id = "orin_nx16";
  opt.dtype = DType::kF16;
  opt.batch = 128;
  opt.mode = MetricMode::kPredicted;
  opt.clocks.gpu_mhz = 918;
  opt.clocks.mem_mhz = 3199;
  opt.clocks.cpu_cluster_mhz = {729.0, 0.0};
  ProfileReport r = Profiler(opt).run_zoo("efficientnetv2_t");

  // Achieved-bandwidth ceilings at the selectable memory clocks (Table 6).
  const auto& orin = hw::PlatformRegistry::instance().get("orin_nx16");
  const auto bw_at = [&](double mem_mhz) {
    hw::ClockSetting clocks = opt.clocks;
    clocks.mem_mhz = mem_mhz;
    return hw::LatencyModel(hw::PlatformState(orin, clocks)).achieved_bandwidth();
  };
  const double bw_2133 = bw_at(2133);
  const double bw_665 = bw_at(665);
  r.roofline.ceilings.extra_bw_lines = {
      {units::gbps(bw_2133) + " (EMC 2133)", bw_2133},
      {units::gbps(bw_665) + " (EMC 665)", bw_665}};

  std::cout << summary_text(r) << "\n";

  // How much latency sits above each candidate ceiling — the paper's
  // trade-off argument: layers above the line lose performance when the
  // memory clock drops to it.
  double above_2133 = 0.0;
  double above_665 = 0.0;
  for (const roofline::Point& p : r.roofline.layers) {
    if (p.attained_bandwidth() > bw_2133) {
      above_2133 += p.latency_share;
    }
    if (p.attained_bandwidth() > bw_665) {
      above_665 += p.latency_share;
    }
  }
  std::cout << "latency share attaining > " << units::gbps(bw_2133) << ": "
            << units::fixed(above_2133 * 100.0, 1)
            << "%  (layers hurt by dropping EMC to 2133)\n";
  std::cout << "latency share attaining > " << units::gbps(bw_665) << ": "
            << units::fixed(above_665 * 100.0, 1)
            << "%  (layers hurt by dropping EMC to 665)\n";
  std::cout << "\nExpected shape (paper §4.6): few layers above the 2133 line\n"
               "(cheap trade) but most layers above the 665 line (ruinous).\n\n";
  std::cout << layer_table_text(r, 12);

  report::SvgOptions svg_opt;
  svg_opt.title = "Figure 8: EfficientNetV2-T on Orin NX (fp16, bs 128)";
  const std::string path = bench::artifact_dir() + "/figure8_orin_layerwise.svg";
  report::save_svg(report::render_roofline_svg(r.roofline, svg_opt), path);
  bench::note_artifact(path);
  return 0;
}

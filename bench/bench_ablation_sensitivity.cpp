// Ablation — robustness of the paper's conclusions to the simulator's
// calibration constants.
//
// The substitution argument (DESIGN.md §2) rests on the case-study outcomes
// being properties of the workload structure, not of our specific efficiency
// constants.  This bench perturbs the platform calibration (compute/memory
// efficiency ceilings, conv efficiency scale, kernel overhead) by +/-15 % in
// a deterministic sweep and re-evaluates:
//   * §4.5 — does the modified ShuffleNetV2 still win at bs 2048?
//   * §4.6 — does EMC 2133 remain cheap and EMC 665 remain ruinous, and does
//             GPU 612 / EMC 2133 stay inside the 15 W budget?
#include "bench_util.hpp"

#include "support/rng.hpp"

using namespace proof;

namespace {

hw::PlatformDesc perturbed(const hw::PlatformDesc& base, const std::string& id,
                           Rng& rng) {
  hw::PlatformDesc p = base;
  p.id = id;
  const auto jitter = [&](double value) {
    return value * rng.uniform(0.85, 1.15);
  };
  p.max_compute_eff = std::min(0.98, jitter(p.max_compute_eff));
  p.max_mem_eff = std::min(0.98, jitter(p.max_mem_eff));
  p.conv_eff_scale = jitter(p.conv_eff_scale);
  p.kernel_overhead_s = jitter(p.kernel_overhead_s);
  p.saturation_flops = jitter(p.saturation_flops);
  return p;
}

ProfileReport run(const std::string& model, const std::string& platform,
                  int64_t batch, hw::ClockSetting clocks = {}) {
  ProfileOptions opt;
  opt.platform_id = platform;
  opt.dtype = DType::kF16;
  opt.batch = batch;
  opt.mode = MetricMode::kPredicted;
  opt.clocks = std::move(clocks);
  return Profiler(opt).run_zoo(model);
}

hw::ClockSetting orin_clocks(double gpu, double mem) {
  hw::ClockSetting c;
  c.gpu_mhz = gpu;
  c.mem_mhz = mem;
  c.cpu_cluster_mhz = {729.0, 0.0};
  return c;
}

}  // namespace

int main() {
  bench::banner("Ablation: conclusion robustness under calibration perturbation");
  constexpr int kTrials = 10;
  auto& registry = hw::PlatformRegistry::instance();

  report::TextTable table({"trial", "§4.5 speedup (bs2048)", "§4.6 EMC 2133 cost",
                           "§4.6 EMC 665 cost", "612/2133 power",
                           "conclusions hold"});
  int held = 0;
  Rng rng(20240812);  // ICPP'24 conference date as the sweep seed
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::string a100_id = "a100_pert" + std::to_string(trial);
    const std::string orin_id = "orin_pert" + std::to_string(trial);
    registry.add(perturbed(registry.get("a100"), a100_id, rng));
    registry.add(perturbed(registry.get("orin_nx16"), orin_id, rng));

    const double speedup = run("shufflenetv2_10", a100_id, 2048).total_latency_s /
                           run("shufflenetv2_10_mod", a100_id, 2048).total_latency_s;
    const double full =
        run("efficientnetv2_t", orin_id, 128, orin_clocks(918, 3199)).total_latency_s;
    const double mid =
        run("efficientnetv2_t", orin_id, 128, orin_clocks(918, 2133)).total_latency_s;
    const double low =
        run("efficientnetv2_t", orin_id, 128, orin_clocks(918, 665)).total_latency_s;
    const ProfileReport tuned =
        run("efficientnetv2_t", orin_id, 128, orin_clocks(612, 2133));

    const bool ok = speedup > 1.2 && mid / full < 1.35 && low / full > 1.6 &&
                    tuned.power_w < 15.5;
    held += ok ? 1 : 0;
    table.add_row({std::to_string(trial), units::fixed(speedup, 2) + "x",
                   "+" + units::fixed((mid / full - 1.0) * 100, 1) + "%",
                   "+" + units::fixed((low / full - 1.0) * 100, 1) + "%",
                   units::fixed(tuned.power_w, 1) + " W", ok ? "yes" : "NO"});
  }
  std::cout << table.to_string();
  std::cout << "\n" << held << "/" << kTrials
            << " perturbed calibrations preserve all four qualitative\n"
               "conclusions — the case-study outcomes are workload-structure\n"
               "properties, not artifacts of the chosen constants.\n";
  return held == kTrials ? 0 : 1;
}

// Table 5 — effectiveness of the modified ShuffleNetV2 x1.0 (case study
// §4.5): latency, throughput, attained FLOP/s and bandwidth at batch sizes
// 1 / 128 / 2048 on the A100 (fp16), plus the Figure-7 structural diff.
//
// Accuracy columns are quoted from the paper (they require ImageNet
// re-training, out of scope for a profiling framework); every performance
// number is produced by this pipeline.
#include "bench_util.hpp"

using namespace proof;

int main() {
  bench::banner("Table 5: Effectiveness of the modified ShuffleNetV2 x1.0");

  struct Variant {
    const char* label;
    const char* id;
    const char* accuracy;  // paper-reported ImageNet top-1
  };
  const Variant variants[] = {{"Original", "shufflenetv2_10", "68.9% (paper)"},
                              {"Modified", "shufflenetv2_10_mod", "70.1% (paper)"}};

  report::TextTable table({"Model", "Params (M)", "Top-1", "Batch", "GFLOP",
                           "Latency (ms)", "Throughput (img/s)", "GFLOP/s",
                           "BW (GB/s)", "Speedup"});
  std::map<int64_t, double> original_latency;

  for (const Variant& v : variants) {
    const AnalyzeRepresentation ar(models::build_model(v.id));
    for (const int64_t batch : {1, 128, 2048}) {
      ProfileOptions opt;
      opt.platform_id = "a100";
      opt.dtype = DType::kF16;
      opt.batch = batch;
      opt.mode = MetricMode::kPredicted;  // the paper uses prediction mode here
      const ProfileReport r = Profiler(opt).run_zoo(v.id);
      std::string speedup = "-";
      if (std::string(v.label) == "Original") {
        original_latency[batch] = r.total_latency_s;
      } else {
        speedup =
            units::fixed(original_latency[batch] / r.total_latency_s, 2) + "x";
      }
      table.add_row({v.label,
                     units::fixed(static_cast<double>(ar.param_count()) / 1e6, 3),
                     v.accuracy, std::to_string(batch),
                     units::fixed(r.roofline.end_to_end.flops / 1e9, 3),
                     units::fixed(r.total_latency_s * 1e3, 3),
                     units::fixed(r.throughput_per_s(), 0),
                     units::fixed(r.roofline.end_to_end.attained_flops() / 1e9, 3),
                     units::fixed(r.roofline.end_to_end.attained_bandwidth() / 1e9, 3),
                     speedup});
    }
  }
  std::cout << table.to_string();

  // Figure 7: the block rewrite, shown as an op-census diff.
  bench::banner("Figure 7: ShuffleNetV2 block modification (op census)");
  report::TextTable census({"op type", "original", "modified"});
  const Graph orig = models::build_model("shufflenetv2_10");
  const Graph mod = models::build_model("shufflenetv2_10_mod");
  for (const char* op : {"Conv", "Relu", "Split", "Concat", "Reshape", "Transpose",
                         "Add", "MaxPool"}) {
    census.add_row({op, std::to_string(orig.nodes_of_type(op).size()),
                    std::to_string(mod.nodes_of_type(op).size())});
  }
  std::cout << census.to_string();
  std::cout << "\nPaper reference: speedups 1.39x / 1.49x / 1.64x at batch\n"
               "1 / 128 / 2048; the modified model trades +48% FLOP for the\n"
               "removal of Shuffle's Transpose/copy layers and wins because the\n"
               "A100 run is memory-bound.\n";
  return 0;
}

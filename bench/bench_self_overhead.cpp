// Self-profiling overhead: the observability layer's instrumentation (spans,
// counters, trace events) must cost < 2% of end-to-end profiling wall time,
// and exactly 0 when compiled out with -DPROOF_OBS=OFF.
//
// Method: the same uncached profiling workload runs with instrumentation
// enabled and runtime-disabled, alternating A/B per repetition so thermal /
// frequency drift hits both sides equally; the best-of-N times are compared
// (minimum is the standard estimator for "cost without interference").
#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

using namespace proof;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One workload pass: profile three structurally different models with the
/// preparation cache off, so every span site (prepare, mapping, analysis,
/// latency simulation) actually executes instead of being memoized away.
double run_workload() {
  double checksum = 0.0;
  for (const char* model : {"resnet50", "shufflenetv2_10", "vit_tiny"}) {
    ProfileOptions opt;
    opt.platform_id = "a100";
    opt.dtype = DType::kF16;
    opt.batch = 4;
    opt.mode = MetricMode::kPredicted;
    const ProfileReport r = Profiler(opt).run_zoo(model);
    checksum += r.total_latency_s;
  }
  return checksum;
}

}  // namespace

int main() {
  bench::banner("Self-profiling overhead: instrumentation on vs off");

#ifdef PROOF_OBS_DISABLED
  std::cout << "built with -DPROOF_OBS=OFF: every span/counter site is\n"
               "compiled out, overhead is 0% by construction; nothing to "
               "measure.\n";
  return 0;
#else
  PrepCache::instance().set_enabled(false);  // make every run do full work

  constexpr int kReps = 9;
  double best_on = std::numeric_limits<double>::infinity();
  double best_off = std::numeric_limits<double>::infinity();
  double checksum_on = 0.0;
  double checksum_off = 0.0;

  (void)run_workload();  // warm up (zoo builders, allocator, code pages)
  for (int rep = 0; rep < kReps; ++rep) {
    obs::set_enabled(true);
    obs::clear_trace();  // keep the trace buffer from hitting its cap
    double t0 = now_s();
    checksum_on = run_workload();
    best_on = std::min(best_on, now_s() - t0);

    obs::set_enabled(false);
    t0 = now_s();
    checksum_off = run_workload();
    best_off = std::min(best_off, now_s() - t0);
  }
  obs::set_enabled(true);
  PrepCache::instance().set_enabled(true);

  const double overhead = best_on / best_off - 1.0;
  const bool identical = checksum_on == checksum_off;
  const bool within_budget = overhead < 0.02;

  report::TextTable table({"instrumentation", "best time", "overhead"});
  table.add_row({"runtime-disabled", units::ms(best_off), "baseline"});
  table.add_row({"enabled", units::ms(best_on),
                 units::fixed(overhead * 100.0, 2) + "%"});
  std::cout << table.to_string();
  std::cout << "results identical with instrumentation on/off: "
            << (identical ? "yes" : "NO — OBSERVER EFFECT") << "\n"
            << "overhead budget (< 2%): "
            << (within_budget ? "met" : "EXCEEDED") << "\n";

  std::ostringstream json;
  json << "{\n"
       << "  \"workload\": \"3 models x uncached full profile, fp16 A100\",\n"
       << "  \"reps\": " << kReps << ",\n"
       << "  \"best_disabled_s\": " << best_off << ",\n"
       << "  \"best_enabled_s\": " << best_on << ",\n"
       << "  \"overhead_fraction\": " << overhead << ",\n"
       << "  \"results_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"budget_met\": " << (within_budget ? "true" : "false") << "\n"
       << "}\n";
  const std::string path = bench::artifact_dir() + "/BENCH_self_overhead.json";
  std::ofstream(path) << json.str();
  bench::note_artifact(path);

  // Overhead is machine-dependent; fail only on correctness (observer effect),
  // not on a noisy-CI timing margin.
  return identical ? 0 : 1;
#endif
}

// Figure 6 — layer-wise roofline analysis of the original and modified
// ShuffleNetV2 x1.0 (fp16, batch 2048) with the latency-distribution
// histograms along both roofline axes.
#include <array>
#include <algorithm>
#include <cmath>

#include "bench_util.hpp"

using namespace proof;

namespace {

/// Text histogram of latency over log-spaced buckets of `value(point)`.
void print_histogram(const ProfileReport& r, const char* axis,
                     double (*value)(const roofline::Point&), double lo, double hi) {
  constexpr int kBuckets = 8;
  std::array<double, kBuckets> share{};
  for (const roofline::Point& p : r.roofline.layers) {
    const double v = value(p);
    if (v <= 0.0) {
      continue;
    }
    const double t = (std::log10(v) - std::log10(lo)) /
                     (std::log10(hi) - std::log10(lo));
    const int bucket = std::clamp(static_cast<int>(t * kBuckets), 0, kBuckets - 1);
    share[static_cast<size_t>(bucket)] += p.latency_share;
  }
  std::cout << "latency distribution over " << axis << ":\n";
  for (int i = 0; i < kBuckets; ++i) {
    const double left = lo * std::pow(hi / lo, static_cast<double>(i) / kBuckets);
    std::cout << "  >= " << units::fixed(left, 1) << "  ";
    const int bars = static_cast<int>(share[static_cast<size_t>(i)] * 60.0);
    for (int b = 0; b < bars; ++b) {
      std::cout << '#';
    }
    std::cout << ' ' << units::fixed(share[static_cast<size_t>(i)] * 100.0, 1)
              << "%\n";
  }
}

}  // namespace

int main() {
  bench::banner(
      "Figure 6: Layer-wise roofline, original vs modified ShuffleNetV2 x1.0");
  const char* panels[][2] = {{"a", "shufflenetv2_10"}, {"b", "shufflenetv2_10_mod"}};
  for (const auto& [tag, id] : panels) {
    ProfileOptions opt;
    opt.platform_id = "a100";
    opt.dtype = DType::kF16;
    opt.batch = 2048;
    opt.mode = MetricMode::kPredicted;  // §4.5 demonstrates prediction mode
    const ProfileReport r = Profiler(opt).run_zoo(id);

    std::cout << "--- (" << tag << ") " << models::model_spec(id).display << " ---\n";
    std::cout << summary_text(r) << "\n";

    double transpose_copy = 0.0;
    double conv = 0.0;
    for (const LayerReport& layer : r.layers) {
      if (layer.cls == OpClass::kDataMovement || layer.cls == OpClass::kCopy) {
        transpose_copy += layer.latency_s;
      } else if (layer.cls == OpClass::kConv || layer.cls == OpClass::kConvPointwise ||
                 layer.cls == OpClass::kConvDepthwise) {
        conv += layer.latency_s;
      }
    }
    std::cout << "conv layers: " << units::fixed(100.0 * conv / r.total_latency_s, 1)
              << "% of latency, transpose+copy: "
              << units::fixed(100.0 * transpose_copy / r.total_latency_s, 1)
              << "%\n\n";
    print_histogram(
        r, "arithmetic intensity (FLOP/B)",
        [](const roofline::Point& p) { return p.arithmetic_intensity(); }, 0.1,
        1000.0);
    print_histogram(
        r, "attained GFLOP/s",
        [](const roofline::Point& p) { return p.attained_flops() / 1e9; }, 1.0,
        300000.0);
    std::cout << "\n";

    report::SvgOptions svg_opt;
    svg_opt.title = "Figure 6(" + std::string(tag) + "): " +
                    models::model_spec(id).display + " (fp16, bs 2048)";
    const std::string path =
        bench::artifact_dir() + "/figure6" + tag + "_" + id + ".svg";
    report::save_svg(report::render_roofline_svg(r.roofline, svg_opt), path);
    bench::note_artifact(path);
  }
  std::cout << "Expected shape (paper §4.5): in (a) the Transpose (shuffle) and\n"
               "data-copy layers take most of the time at low AI; in (b) they\n"
               "shrink drastically and the conv layers dominate.\n";
  return 0;
}

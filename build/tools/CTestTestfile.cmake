# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list_models "/root/repo/build/tools/proof" "list" "models")
set_tests_properties(cli_list_models PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_list_platforms "/root/repo/build/tools/proof" "list" "platforms")
set_tests_properties(cli_list_platforms PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile "/root/repo/build/tools/proof" "profile" "--model" "resnet34" "--platform" "a100" "--batch" "8" "--mode" "predicted" "--layers" "5")
set_tests_properties(cli_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile_quantized "/root/repo/build/tools/proof" "profile" "--model" "resnet34" "--platform" "a100" "--batch" "8" "--mode" "predicted" "--quantize" "1" "--layers" "5")
set_tests_properties(cli_profile_quantized PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_peaks "/root/repo/build/tools/proof" "peaks" "--platform" "orin_nx16" "--gpu-mhz" "612" "--mem-mhz" "2133")
set_tests_properties(cli_peaks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compare "/root/repo/build/tools/proof" "compare" "--model" "shufflenetv2_10" "--model2" "shufflenetv2_10_mod" "--platform" "a100" "--batch" "128" "--mode" "predicted")
set_tests_properties(cli_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep "/root/repo/build/tools/proof" "sweep" "--model" "mobilenetv2_05" "--platform" "a100" "--batches" "1,16" "--mode" "predicted")
set_tests_properties(cli_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_inspect "/root/repo/build/tools/proof" "inspect" "--model" "vit_tiny" "--platform" "a100" "--batch" "2" "--filter" "MatMul" "--mode" "predicted")
set_tests_properties(cli_inspect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_command "/root/repo/build/tools/proof" "bogus")
set_tests_properties(cli_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_model "/root/repo/build/tools/proof" "profile" "--model" "nope" "--platform" "a100")
set_tests_properties(cli_unknown_model PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")

# Empty compiler generated dependencies file for proof_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/proof_cli.dir/proof_cli.cpp.o"
  "CMakeFiles/proof_cli.dir/proof_cli.cpp.o.d"
  "proof"
  "proof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for proof_tests.
# This may be replaced when dependencies are built.

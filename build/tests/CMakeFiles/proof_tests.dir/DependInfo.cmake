
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/proof_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_backends.cpp" "tests/CMakeFiles/proof_tests.dir/test_backends.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_backends.cpp.o.d"
  "/root/repo/tests/test_case_studies.cpp" "tests/CMakeFiles/proof_tests.dir/test_case_studies.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_case_studies.cpp.o.d"
  "/root/repo/tests/test_compare.cpp" "tests/CMakeFiles/proof_tests.dir/test_compare.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_compare.cpp.o.d"
  "/root/repo/tests/test_counters.cpp" "tests/CMakeFiles/proof_tests.dir/test_counters.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_counters.cpp.o.d"
  "/root/repo/tests/test_distributed.cpp" "tests/CMakeFiles/proof_tests.dir/test_distributed.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_distributed.cpp.o.d"
  "/root/repo/tests/test_full_zoo_sweep.cpp" "tests/CMakeFiles/proof_tests.dir/test_full_zoo_sweep.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_full_zoo_sweep.cpp.o.d"
  "/root/repo/tests/test_fusion.cpp" "tests/CMakeFiles/proof_tests.dir/test_fusion.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_fusion.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/proof_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_html_report.cpp" "tests/CMakeFiles/proof_tests.dir/test_html_report.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_html_report.cpp.o.d"
  "/root/repo/tests/test_hw.cpp" "tests/CMakeFiles/proof_tests.dir/test_hw.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_hw.cpp.o.d"
  "/root/repo/tests/test_mapping.cpp" "tests/CMakeFiles/proof_tests.dir/test_mapping.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_mapping.cpp.o.d"
  "/root/repo/tests/test_models_zoo.cpp" "tests/CMakeFiles/proof_tests.dir/test_models_zoo.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_models_zoo.cpp.o.d"
  "/root/repo/tests/test_op_conformance.cpp" "tests/CMakeFiles/proof_tests.dir/test_op_conformance.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_op_conformance.cpp.o.d"
  "/root/repo/tests/test_ops_extended.cpp" "tests/CMakeFiles/proof_tests.dir/test_ops_extended.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_ops_extended.cpp.o.d"
  "/root/repo/tests/test_ops_flops.cpp" "tests/CMakeFiles/proof_tests.dir/test_ops_flops.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_ops_flops.cpp.o.d"
  "/root/repo/tests/test_ops_memory.cpp" "tests/CMakeFiles/proof_tests.dir/test_ops_memory.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_ops_memory.cpp.o.d"
  "/root/repo/tests/test_ops_reference.cpp" "tests/CMakeFiles/proof_tests.dir/test_ops_reference.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_ops_reference.cpp.o.d"
  "/root/repo/tests/test_ops_shapes.cpp" "tests/CMakeFiles/proof_tests.dir/test_ops_shapes.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_ops_shapes.cpp.o.d"
  "/root/repo/tests/test_optimized_representation.cpp" "tests/CMakeFiles/proof_tests.dir/test_optimized_representation.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_optimized_representation.cpp.o.d"
  "/root/repo/tests/test_platform_properties.cpp" "tests/CMakeFiles/proof_tests.dir/test_platform_properties.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_platform_properties.cpp.o.d"
  "/root/repo/tests/test_profiler.cpp" "tests/CMakeFiles/proof_tests.dir/test_profiler.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_profiler.cpp.o.d"
  "/root/repo/tests/test_quantize.cpp" "tests/CMakeFiles/proof_tests.dir/test_quantize.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_quantize.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/proof_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_report_json.cpp" "tests/CMakeFiles/proof_tests.dir/test_report_json.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_report_json.cpp.o.d"
  "/root/repo/tests/test_roofline.cpp" "tests/CMakeFiles/proof_tests.dir/test_roofline.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_roofline.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/proof_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_serialize_fuzz.cpp" "tests/CMakeFiles/proof_tests.dir/test_serialize_fuzz.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_serialize_fuzz.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/proof_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_sweep_and_stack.cpp" "tests/CMakeFiles/proof_tests.dir/test_sweep_and_stack.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_sweep_and_stack.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/proof_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_trace_and_summary.cpp" "tests/CMakeFiles/proof_tests.dir/test_trace_and_summary.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_trace_and_summary.cpp.o.d"
  "/root/repo/tests/test_zoo_extra.cpp" "tests/CMakeFiles/proof_tests.dir/test_zoo_extra.cpp.o" "gcc" "tests/CMakeFiles/proof_tests.dir/test_zoo_extra.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/distributed/CMakeFiles/proof_distributed.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/proof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/proof_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/proof_models.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/proof_report.dir/DependInfo.cmake"
  "/root/repo/build/src/roofline/CMakeFiles/proof_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/proof_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/proof_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/proof_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/proof_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/proof_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/proof_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/proof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table6_clock_peaks.cpp" "bench/CMakeFiles/bench_table6_clock_peaks.dir/bench_table6_clock_peaks.cpp.o" "gcc" "bench/CMakeFiles/bench_table6_clock_peaks.dir/bench_table6_clock_peaks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/distributed/CMakeFiles/proof_distributed.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/proof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/proof_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/proof_models.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/proof_report.dir/DependInfo.cmake"
  "/root/repo/build/src/roofline/CMakeFiles/proof_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/proof_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/proof_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/proof_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/proof_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/proof_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/proof_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/proof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

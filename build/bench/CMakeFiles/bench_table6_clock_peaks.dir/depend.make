# Empty dependencies file for bench_table6_clock_peaks.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_clock_peaks.dir/bench_table6_clock_peaks.cpp.o"
  "CMakeFiles/bench_table6_clock_peaks.dir/bench_table6_clock_peaks.cpp.o.d"
  "bench_table6_clock_peaks"
  "bench_table6_clock_peaks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_clock_peaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

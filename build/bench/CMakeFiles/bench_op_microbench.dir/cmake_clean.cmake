file(REMOVE_RECURSE
  "CMakeFiles/bench_op_microbench.dir/bench_op_microbench.cpp.o"
  "CMakeFiles/bench_op_microbench.dir/bench_op_microbench.cpp.o.d"
  "bench_op_microbench"
  "bench_op_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_op_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

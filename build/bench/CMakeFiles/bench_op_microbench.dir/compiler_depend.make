# Empty compiler generated dependencies file for bench_op_microbench.
# This may be replaced when dependencies are built.

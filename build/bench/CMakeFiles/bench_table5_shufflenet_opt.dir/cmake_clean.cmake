file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_shufflenet_opt.dir/bench_table5_shufflenet_opt.cpp.o"
  "CMakeFiles/bench_table5_shufflenet_opt.dir/bench_table5_shufflenet_opt.cpp.o.d"
  "bench_table5_shufflenet_opt"
  "bench_table5_shufflenet_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_shufflenet_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

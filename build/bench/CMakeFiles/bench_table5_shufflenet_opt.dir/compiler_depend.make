# Empty compiler generated dependencies file for bench_table5_shufflenet_opt.
# This may be replaced when dependencies are built.

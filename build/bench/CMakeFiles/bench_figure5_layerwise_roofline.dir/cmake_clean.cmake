file(REMOVE_RECURSE
  "CMakeFiles/bench_figure5_layerwise_roofline.dir/bench_figure5_layerwise_roofline.cpp.o"
  "CMakeFiles/bench_figure5_layerwise_roofline.dir/bench_figure5_layerwise_roofline.cpp.o.d"
  "bench_figure5_layerwise_roofline"
  "bench_figure5_layerwise_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure5_layerwise_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_figure5_layerwise_roofline.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table4_prediction_accuracy.
# This may be replaced when dependencies are built.

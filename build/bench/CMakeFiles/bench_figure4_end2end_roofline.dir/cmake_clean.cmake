file(REMOVE_RECURSE
  "CMakeFiles/bench_figure4_end2end_roofline.dir/bench_figure4_end2end_roofline.cpp.o"
  "CMakeFiles/bench_figure4_end2end_roofline.dir/bench_figure4_end2end_roofline.cpp.o.d"
  "bench_figure4_end2end_roofline"
  "bench_figure4_end2end_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_end2end_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_figure4_end2end_roofline.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_figure6_shufflenet_layerwise.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_figure6_shufflenet_layerwise.dir/bench_figure6_shufflenet_layerwise.cpp.o"
  "CMakeFiles/bench_figure6_shufflenet_layerwise.dir/bench_figure6_shufflenet_layerwise.cpp.o.d"
  "bench_figure6_shufflenet_layerwise"
  "bench_figure6_shufflenet_layerwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure6_shufflenet_layerwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

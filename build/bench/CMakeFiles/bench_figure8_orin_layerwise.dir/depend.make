# Empty dependencies file for bench_figure8_orin_layerwise.
# This may be replaced when dependencies are built.

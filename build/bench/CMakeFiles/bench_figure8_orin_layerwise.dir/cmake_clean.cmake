file(REMOVE_RECURSE
  "CMakeFiles/bench_figure8_orin_layerwise.dir/bench_figure8_orin_layerwise.cpp.o"
  "CMakeFiles/bench_figure8_orin_layerwise.dir/bench_figure8_orin_layerwise.cpp.o.d"
  "bench_figure8_orin_layerwise"
  "bench_figure8_orin_layerwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure8_orin_layerwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

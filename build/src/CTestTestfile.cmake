# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("tensor")
subdirs("graph")
subdirs("ops")
subdirs("analysis")
subdirs("hw")
subdirs("backends")
subdirs("mapping")
subdirs("roofline")
subdirs("models")
subdirs("report")
subdirs("core")
subdirs("distributed")

file(REMOVE_RECURSE
  "libproof_graph.a"
)

# Empty compiler generated dependencies file for proof_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/proof_graph.dir/attributes.cpp.o"
  "CMakeFiles/proof_graph.dir/attributes.cpp.o.d"
  "CMakeFiles/proof_graph.dir/graph.cpp.o"
  "CMakeFiles/proof_graph.dir/graph.cpp.o.d"
  "CMakeFiles/proof_graph.dir/serialize.cpp.o"
  "CMakeFiles/proof_graph.dir/serialize.cpp.o.d"
  "libproof_graph.a"
  "libproof_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libproof_mapping.a"
)

# Empty compiler generated dependencies file for proof_mapping.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/layer_mapping.cpp" "src/mapping/CMakeFiles/proof_mapping.dir/layer_mapping.cpp.o" "gcc" "src/mapping/CMakeFiles/proof_mapping.dir/layer_mapping.cpp.o.d"
  "/root/repo/src/mapping/stack_mapping.cpp" "src/mapping/CMakeFiles/proof_mapping.dir/stack_mapping.cpp.o" "gcc" "src/mapping/CMakeFiles/proof_mapping.dir/stack_mapping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backends/CMakeFiles/proof_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/proof_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/proof_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/proof_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/proof_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/proof_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/proof_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

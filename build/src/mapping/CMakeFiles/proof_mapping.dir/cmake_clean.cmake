file(REMOVE_RECURSE
  "CMakeFiles/proof_mapping.dir/layer_mapping.cpp.o"
  "CMakeFiles/proof_mapping.dir/layer_mapping.cpp.o.d"
  "CMakeFiles/proof_mapping.dir/stack_mapping.cpp.o"
  "CMakeFiles/proof_mapping.dir/stack_mapping.cpp.o.d"
  "libproof_mapping.a"
  "libproof_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for proof_ops.
# This may be replaced when dependencies are built.

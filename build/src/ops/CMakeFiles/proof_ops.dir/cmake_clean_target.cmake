file(REMOVE_RECURSE
  "libproof_ops.a"
)

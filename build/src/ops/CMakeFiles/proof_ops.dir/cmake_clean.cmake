file(REMOVE_RECURSE
  "CMakeFiles/proof_ops.dir/op_def.cpp.o"
  "CMakeFiles/proof_ops.dir/op_def.cpp.o.d"
  "CMakeFiles/proof_ops.dir/ops_conv.cpp.o"
  "CMakeFiles/proof_ops.dir/ops_conv.cpp.o.d"
  "CMakeFiles/proof_ops.dir/ops_elementwise.cpp.o"
  "CMakeFiles/proof_ops.dir/ops_elementwise.cpp.o.d"
  "CMakeFiles/proof_ops.dir/ops_extended.cpp.o"
  "CMakeFiles/proof_ops.dir/ops_extended.cpp.o.d"
  "CMakeFiles/proof_ops.dir/ops_gemm.cpp.o"
  "CMakeFiles/proof_ops.dir/ops_gemm.cpp.o.d"
  "CMakeFiles/proof_ops.dir/ops_norm.cpp.o"
  "CMakeFiles/proof_ops.dir/ops_norm.cpp.o.d"
  "CMakeFiles/proof_ops.dir/ops_quant.cpp.o"
  "CMakeFiles/proof_ops.dir/ops_quant.cpp.o.d"
  "CMakeFiles/proof_ops.dir/ops_shape.cpp.o"
  "CMakeFiles/proof_ops.dir/ops_shape.cpp.o.d"
  "CMakeFiles/proof_ops.dir/register_ops.cpp.o"
  "CMakeFiles/proof_ops.dir/register_ops.cpp.o.d"
  "libproof_ops.a"
  "libproof_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/op_def.cpp" "src/ops/CMakeFiles/proof_ops.dir/op_def.cpp.o" "gcc" "src/ops/CMakeFiles/proof_ops.dir/op_def.cpp.o.d"
  "/root/repo/src/ops/ops_conv.cpp" "src/ops/CMakeFiles/proof_ops.dir/ops_conv.cpp.o" "gcc" "src/ops/CMakeFiles/proof_ops.dir/ops_conv.cpp.o.d"
  "/root/repo/src/ops/ops_elementwise.cpp" "src/ops/CMakeFiles/proof_ops.dir/ops_elementwise.cpp.o" "gcc" "src/ops/CMakeFiles/proof_ops.dir/ops_elementwise.cpp.o.d"
  "/root/repo/src/ops/ops_extended.cpp" "src/ops/CMakeFiles/proof_ops.dir/ops_extended.cpp.o" "gcc" "src/ops/CMakeFiles/proof_ops.dir/ops_extended.cpp.o.d"
  "/root/repo/src/ops/ops_gemm.cpp" "src/ops/CMakeFiles/proof_ops.dir/ops_gemm.cpp.o" "gcc" "src/ops/CMakeFiles/proof_ops.dir/ops_gemm.cpp.o.d"
  "/root/repo/src/ops/ops_norm.cpp" "src/ops/CMakeFiles/proof_ops.dir/ops_norm.cpp.o" "gcc" "src/ops/CMakeFiles/proof_ops.dir/ops_norm.cpp.o.d"
  "/root/repo/src/ops/ops_quant.cpp" "src/ops/CMakeFiles/proof_ops.dir/ops_quant.cpp.o" "gcc" "src/ops/CMakeFiles/proof_ops.dir/ops_quant.cpp.o.d"
  "/root/repo/src/ops/ops_shape.cpp" "src/ops/CMakeFiles/proof_ops.dir/ops_shape.cpp.o" "gcc" "src/ops/CMakeFiles/proof_ops.dir/ops_shape.cpp.o.d"
  "/root/repo/src/ops/register_ops.cpp" "src/ops/CMakeFiles/proof_ops.dir/register_ops.cpp.o" "gcc" "src/ops/CMakeFiles/proof_ops.dir/register_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/proof_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/proof_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/proof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

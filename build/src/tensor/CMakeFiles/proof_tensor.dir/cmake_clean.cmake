file(REMOVE_RECURSE
  "CMakeFiles/proof_tensor.dir/dtype.cpp.o"
  "CMakeFiles/proof_tensor.dir/dtype.cpp.o.d"
  "CMakeFiles/proof_tensor.dir/shape.cpp.o"
  "CMakeFiles/proof_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/proof_tensor.dir/tensor.cpp.o"
  "CMakeFiles/proof_tensor.dir/tensor.cpp.o.d"
  "libproof_tensor.a"
  "libproof_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libproof_tensor.a"
)

# Empty compiler generated dependencies file for proof_tensor.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/counters.cpp" "src/hw/CMakeFiles/proof_hw.dir/counters.cpp.o" "gcc" "src/hw/CMakeFiles/proof_hw.dir/counters.cpp.o.d"
  "/root/repo/src/hw/hardware_flops.cpp" "src/hw/CMakeFiles/proof_hw.dir/hardware_flops.cpp.o" "gcc" "src/hw/CMakeFiles/proof_hw.dir/hardware_flops.cpp.o.d"
  "/root/repo/src/hw/latency_model.cpp" "src/hw/CMakeFiles/proof_hw.dir/latency_model.cpp.o" "gcc" "src/hw/CMakeFiles/proof_hw.dir/latency_model.cpp.o.d"
  "/root/repo/src/hw/platform.cpp" "src/hw/CMakeFiles/proof_hw.dir/platform.cpp.o" "gcc" "src/hw/CMakeFiles/proof_hw.dir/platform.cpp.o.d"
  "/root/repo/src/hw/power.cpp" "src/hw/CMakeFiles/proof_hw.dir/power.cpp.o" "gcc" "src/hw/CMakeFiles/proof_hw.dir/power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ops/CMakeFiles/proof_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/proof_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/proof_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/proof_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/proof_hw.dir/counters.cpp.o"
  "CMakeFiles/proof_hw.dir/counters.cpp.o.d"
  "CMakeFiles/proof_hw.dir/hardware_flops.cpp.o"
  "CMakeFiles/proof_hw.dir/hardware_flops.cpp.o.d"
  "CMakeFiles/proof_hw.dir/latency_model.cpp.o"
  "CMakeFiles/proof_hw.dir/latency_model.cpp.o.d"
  "CMakeFiles/proof_hw.dir/platform.cpp.o"
  "CMakeFiles/proof_hw.dir/platform.cpp.o.d"
  "CMakeFiles/proof_hw.dir/power.cpp.o"
  "CMakeFiles/proof_hw.dir/power.cpp.o.d"
  "libproof_hw.a"
  "libproof_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libproof_hw.a"
)

# Empty dependencies file for proof_hw.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for proof_report.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libproof_report.a"
)

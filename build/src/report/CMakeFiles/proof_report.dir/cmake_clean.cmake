file(REMOVE_RECURSE
  "CMakeFiles/proof_report.dir/csv.cpp.o"
  "CMakeFiles/proof_report.dir/csv.cpp.o.d"
  "CMakeFiles/proof_report.dir/svg_roofline.cpp.o"
  "CMakeFiles/proof_report.dir/svg_roofline.cpp.o.d"
  "CMakeFiles/proof_report.dir/table.cpp.o"
  "CMakeFiles/proof_report.dir/table.cpp.o.d"
  "libproof_report.a"
  "libproof_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for proof_distributed.
# This may be replaced when dependencies are built.

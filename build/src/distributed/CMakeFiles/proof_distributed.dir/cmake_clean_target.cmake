file(REMOVE_RECURSE
  "libproof_distributed.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/proof_distributed.dir/parallel.cpp.o"
  "CMakeFiles/proof_distributed.dir/parallel.cpp.o.d"
  "libproof_distributed.a"
  "libproof_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

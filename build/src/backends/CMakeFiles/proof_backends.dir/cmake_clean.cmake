file(REMOVE_RECURSE
  "CMakeFiles/proof_backends.dir/backend.cpp.o"
  "CMakeFiles/proof_backends.dir/backend.cpp.o.d"
  "CMakeFiles/proof_backends.dir/fusion.cpp.o"
  "CMakeFiles/proof_backends.dir/fusion.cpp.o.d"
  "CMakeFiles/proof_backends.dir/lowering.cpp.o"
  "CMakeFiles/proof_backends.dir/lowering.cpp.o.d"
  "CMakeFiles/proof_backends.dir/ort_sim.cpp.o"
  "CMakeFiles/proof_backends.dir/ort_sim.cpp.o.d"
  "CMakeFiles/proof_backends.dir/ov_sim.cpp.o"
  "CMakeFiles/proof_backends.dir/ov_sim.cpp.o.d"
  "CMakeFiles/proof_backends.dir/prepare.cpp.o"
  "CMakeFiles/proof_backends.dir/prepare.cpp.o.d"
  "CMakeFiles/proof_backends.dir/trt_sim.cpp.o"
  "CMakeFiles/proof_backends.dir/trt_sim.cpp.o.d"
  "libproof_backends.a"
  "libproof_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libproof_backends.a"
)

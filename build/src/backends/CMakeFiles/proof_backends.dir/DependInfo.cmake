
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backends/backend.cpp" "src/backends/CMakeFiles/proof_backends.dir/backend.cpp.o" "gcc" "src/backends/CMakeFiles/proof_backends.dir/backend.cpp.o.d"
  "/root/repo/src/backends/fusion.cpp" "src/backends/CMakeFiles/proof_backends.dir/fusion.cpp.o" "gcc" "src/backends/CMakeFiles/proof_backends.dir/fusion.cpp.o.d"
  "/root/repo/src/backends/lowering.cpp" "src/backends/CMakeFiles/proof_backends.dir/lowering.cpp.o" "gcc" "src/backends/CMakeFiles/proof_backends.dir/lowering.cpp.o.d"
  "/root/repo/src/backends/ort_sim.cpp" "src/backends/CMakeFiles/proof_backends.dir/ort_sim.cpp.o" "gcc" "src/backends/CMakeFiles/proof_backends.dir/ort_sim.cpp.o.d"
  "/root/repo/src/backends/ov_sim.cpp" "src/backends/CMakeFiles/proof_backends.dir/ov_sim.cpp.o" "gcc" "src/backends/CMakeFiles/proof_backends.dir/ov_sim.cpp.o.d"
  "/root/repo/src/backends/prepare.cpp" "src/backends/CMakeFiles/proof_backends.dir/prepare.cpp.o" "gcc" "src/backends/CMakeFiles/proof_backends.dir/prepare.cpp.o.d"
  "/root/repo/src/backends/trt_sim.cpp" "src/backends/CMakeFiles/proof_backends.dir/trt_sim.cpp.o" "gcc" "src/backends/CMakeFiles/proof_backends.dir/trt_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/proof_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/proof_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/proof_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/proof_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/proof_support.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/proof_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

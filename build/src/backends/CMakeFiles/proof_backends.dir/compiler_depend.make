# Empty compiler generated dependencies file for proof_backends.
# This may be replaced when dependencies are built.

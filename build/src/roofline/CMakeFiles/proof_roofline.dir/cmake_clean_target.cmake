file(REMOVE_RECURSE
  "libproof_roofline.a"
)

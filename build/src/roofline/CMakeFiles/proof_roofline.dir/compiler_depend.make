# Empty compiler generated dependencies file for proof_roofline.
# This may be replaced when dependencies are built.

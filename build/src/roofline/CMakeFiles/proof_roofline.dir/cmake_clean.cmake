file(REMOVE_RECURSE
  "CMakeFiles/proof_roofline.dir/peak_test.cpp.o"
  "CMakeFiles/proof_roofline.dir/peak_test.cpp.o.d"
  "CMakeFiles/proof_roofline.dir/roofline.cpp.o"
  "CMakeFiles/proof_roofline.dir/roofline.cpp.o.d"
  "libproof_roofline.a"
  "libproof_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

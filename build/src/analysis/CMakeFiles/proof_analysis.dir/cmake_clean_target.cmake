file(REMOVE_RECURSE
  "libproof_analysis.a"
)

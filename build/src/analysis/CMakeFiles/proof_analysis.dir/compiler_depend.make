# Empty compiler generated dependencies file for proof_analysis.
# This may be replaced when dependencies are built.

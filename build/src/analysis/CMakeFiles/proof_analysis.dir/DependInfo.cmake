
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analyze_representation.cpp" "src/analysis/CMakeFiles/proof_analysis.dir/analyze_representation.cpp.o" "gcc" "src/analysis/CMakeFiles/proof_analysis.dir/analyze_representation.cpp.o.d"
  "/root/repo/src/analysis/memory_footprint.cpp" "src/analysis/CMakeFiles/proof_analysis.dir/memory_footprint.cpp.o" "gcc" "src/analysis/CMakeFiles/proof_analysis.dir/memory_footprint.cpp.o.d"
  "/root/repo/src/analysis/optimized_representation.cpp" "src/analysis/CMakeFiles/proof_analysis.dir/optimized_representation.cpp.o" "gcc" "src/analysis/CMakeFiles/proof_analysis.dir/optimized_representation.cpp.o.d"
  "/root/repo/src/analysis/quantize.cpp" "src/analysis/CMakeFiles/proof_analysis.dir/quantize.cpp.o" "gcc" "src/analysis/CMakeFiles/proof_analysis.dir/quantize.cpp.o.d"
  "/root/repo/src/analysis/reference_executor.cpp" "src/analysis/CMakeFiles/proof_analysis.dir/reference_executor.cpp.o" "gcc" "src/analysis/CMakeFiles/proof_analysis.dir/reference_executor.cpp.o.d"
  "/root/repo/src/analysis/shape_inference.cpp" "src/analysis/CMakeFiles/proof_analysis.dir/shape_inference.cpp.o" "gcc" "src/analysis/CMakeFiles/proof_analysis.dir/shape_inference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ops/CMakeFiles/proof_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/proof_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/proof_support.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/proof_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

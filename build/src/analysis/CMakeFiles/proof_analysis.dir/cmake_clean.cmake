file(REMOVE_RECURSE
  "CMakeFiles/proof_analysis.dir/analyze_representation.cpp.o"
  "CMakeFiles/proof_analysis.dir/analyze_representation.cpp.o.d"
  "CMakeFiles/proof_analysis.dir/memory_footprint.cpp.o"
  "CMakeFiles/proof_analysis.dir/memory_footprint.cpp.o.d"
  "CMakeFiles/proof_analysis.dir/optimized_representation.cpp.o"
  "CMakeFiles/proof_analysis.dir/optimized_representation.cpp.o.d"
  "CMakeFiles/proof_analysis.dir/quantize.cpp.o"
  "CMakeFiles/proof_analysis.dir/quantize.cpp.o.d"
  "CMakeFiles/proof_analysis.dir/reference_executor.cpp.o"
  "CMakeFiles/proof_analysis.dir/reference_executor.cpp.o.d"
  "CMakeFiles/proof_analysis.dir/shape_inference.cpp.o"
  "CMakeFiles/proof_analysis.dir/shape_inference.cpp.o.d"
  "libproof_analysis.a"
  "libproof_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

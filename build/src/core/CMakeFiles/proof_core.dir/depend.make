# Empty dependencies file for proof_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/proof_core.dir/chrome_trace.cpp.o"
  "CMakeFiles/proof_core.dir/chrome_trace.cpp.o.d"
  "CMakeFiles/proof_core.dir/compare.cpp.o"
  "CMakeFiles/proof_core.dir/compare.cpp.o.d"
  "CMakeFiles/proof_core.dir/html_report.cpp.o"
  "CMakeFiles/proof_core.dir/html_report.cpp.o.d"
  "CMakeFiles/proof_core.dir/profiler.cpp.o"
  "CMakeFiles/proof_core.dir/profiler.cpp.o.d"
  "CMakeFiles/proof_core.dir/report_json.cpp.o"
  "CMakeFiles/proof_core.dir/report_json.cpp.o.d"
  "CMakeFiles/proof_core.dir/report_text.cpp.o"
  "CMakeFiles/proof_core.dir/report_text.cpp.o.d"
  "CMakeFiles/proof_core.dir/sweep.cpp.o"
  "CMakeFiles/proof_core.dir/sweep.cpp.o.d"
  "libproof_core.a"
  "libproof_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

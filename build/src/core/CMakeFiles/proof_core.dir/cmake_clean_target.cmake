file(REMOVE_RECURSE
  "libproof_core.a"
)

file(REMOVE_RECURSE
  "libproof_models.a"
)

# Empty compiler generated dependencies file for proof_models.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/proof_models.dir/builder.cpp.o"
  "CMakeFiles/proof_models.dir/builder.cpp.o.d"
  "CMakeFiles/proof_models.dir/summary.cpp.o"
  "CMakeFiles/proof_models.dir/summary.cpp.o.d"
  "CMakeFiles/proof_models.dir/zoo.cpp.o"
  "CMakeFiles/proof_models.dir/zoo.cpp.o.d"
  "CMakeFiles/proof_models.dir/zoo_cnn.cpp.o"
  "CMakeFiles/proof_models.dir/zoo_cnn.cpp.o.d"
  "CMakeFiles/proof_models.dir/zoo_diffusion.cpp.o"
  "CMakeFiles/proof_models.dir/zoo_diffusion.cpp.o.d"
  "CMakeFiles/proof_models.dir/zoo_extra.cpp.o"
  "CMakeFiles/proof_models.dir/zoo_extra.cpp.o.d"
  "CMakeFiles/proof_models.dir/zoo_transformer.cpp.o"
  "CMakeFiles/proof_models.dir/zoo_transformer.cpp.o.d"
  "libproof_models.a"
  "libproof_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for proof_support.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/proof_support.dir/error.cpp.o"
  "CMakeFiles/proof_support.dir/error.cpp.o.d"
  "CMakeFiles/proof_support.dir/rng.cpp.o"
  "CMakeFiles/proof_support.dir/rng.cpp.o.d"
  "CMakeFiles/proof_support.dir/strings.cpp.o"
  "CMakeFiles/proof_support.dir/strings.cpp.o.d"
  "CMakeFiles/proof_support.dir/units.cpp.o"
  "CMakeFiles/proof_support.dir/units.cpp.o.d"
  "libproof_support.a"
  "libproof_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libproof_support.a"
)

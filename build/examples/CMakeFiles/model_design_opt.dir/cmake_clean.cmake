file(REMOVE_RECURSE
  "CMakeFiles/model_design_opt.dir/model_design_opt.cpp.o"
  "CMakeFiles/model_design_opt.dir/model_design_opt.cpp.o.d"
  "model_design_opt"
  "model_design_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_design_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

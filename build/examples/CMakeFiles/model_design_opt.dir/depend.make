# Empty dependencies file for model_design_opt.
# This may be replaced when dependencies are built.

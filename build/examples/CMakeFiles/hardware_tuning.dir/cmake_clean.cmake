file(REMOVE_RECURSE
  "CMakeFiles/hardware_tuning.dir/hardware_tuning.cpp.o"
  "CMakeFiles/hardware_tuning.dir/hardware_tuning.cpp.o.d"
  "hardware_tuning"
  "hardware_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

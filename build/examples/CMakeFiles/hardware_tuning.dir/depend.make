# Empty dependencies file for hardware_tuning.
# This may be replaced when dependencies are built.

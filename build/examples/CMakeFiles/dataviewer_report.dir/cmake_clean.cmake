file(REMOVE_RECURSE
  "CMakeFiles/dataviewer_report.dir/dataviewer_report.cpp.o"
  "CMakeFiles/dataviewer_report.dir/dataviewer_report.cpp.o.d"
  "dataviewer_report"
  "dataviewer_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataviewer_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

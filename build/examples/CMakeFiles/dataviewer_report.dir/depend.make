# Empty dependencies file for dataviewer_report.
# This may be replaced when dependencies are built.

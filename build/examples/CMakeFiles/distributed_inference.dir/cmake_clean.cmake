file(REMOVE_RECURSE
  "CMakeFiles/distributed_inference.dir/distributed_inference.cpp.o"
  "CMakeFiles/distributed_inference.dir/distributed_inference.cpp.o.d"
  "distributed_inference"
  "distributed_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "mobilenetv2_05" "a100" "8")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_model_design_opt "/root/repo/build/examples/model_design_opt")
set_tests_properties(example_model_design_opt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hardware_tuning "/root/repo/build/examples/hardware_tuning")
set_tests_properties(example_hardware_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_backends "/root/repo/build/examples/compare_backends" "resnet34")
set_tests_properties(example_compare_backends PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_model "/root/repo/build/examples/custom_model")
set_tests_properties(example_custom_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed "/root/repo/build/examples/distributed_inference" "resnet34")
set_tests_properties(example_distributed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dataviewer "/root/repo/build/examples/dataviewer_report" "a100" "resnet34")
set_tests_properties(example_dataviewer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")

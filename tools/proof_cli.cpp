// proof — the PRoof command-line interface (paper Figure 1).
//
// Accepts a model (zoo id or serialized .pg file) and a platform/backend,
// runs the profiling pipeline and emits the roofline report as text, CSV,
// SVG and/or a self-contained HTML dataviewer page.
//
//   proof list models|platforms|backends
//   proof profile --model resnet50 --platform a100 [--backend trt_sim]
//                 [--dtype fp16] [--batch 128] [--mode auto]
//                 [--gpu-mhz 918] [--mem-mhz 3199] [--layers 20]
//                 [--svg out.svg] [--html out.html] [--csv out.csv]
//   proof peaks   --platform orin_nx16 [--gpu-mhz 510] [--mem-mhz 2133]
//   proof compare --model shufflenetv2_10 --model2 shufflenetv2_10_mod
//                 --platform a100 --batch 2048
//   proof sweep   --model resnet50 --platform a100 [--batches 1,8,64,512]
//   proof inspect --model vit_tiny --platform a100 [--filter MatMul_0]
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <proof/proof.hpp>

namespace {

using namespace proof;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) {
    std::cerr << "error: " << error << "\n\n";
  }
  std::cerr <<
      "usage: proof <command> [options]\n"
      "\n"
      "commands:\n"
      "  list models|platforms|backends   enumerate built-in components\n"
      "  profile   profile a model on a platform (see options below)\n"
      "  peaks     run the roofline peak probe on a platform\n"
      "  compare   profile two models/configs and print the delta\n"
      "  sweep     batch-size sweep with optimal-batch selection\n"
      "  sweep-decode  LLM serving sweep: prefill + decode-step grid over\n"
      "            batch size x decode position with per-phase time-based\n"
      "            rooflines (see docs/LLM.md):\n"
      "            --model llama7b|gpt2 (default gpt2) --prefill <S>\n"
      "            --batches <list> --positions <list>\n"
      "            --platform <id>|all (default all: cross-platform summary)\n"
      "            --svg <decode time roofline> --prefill-svg <same, prefill>\n"
      "            --curves <tokens/s-vs-batch chart> --json <report section>\n"
      "  optimize  guarded closed-loop optimization: classify the bottleneck,\n"
      "            propose variants (model/precision/batch/backend/clocks),\n"
      "            measure each, accept only verified improvements:\n"
      "            --objective latency|perf_per_watt (default latency)\n"
      "            --power-budget <W> --noise <frac, default 0.02>\n"
      "            --rounds <n, default 4> --axes <comma list, default all>\n"
      "  inspect   full-stack drill-down: model nodes -> layer -> kernels\n"
      "  summarize print the model-design node table (pre-optimization)\n"
      "  stats     run a profile (or sweep with --batches) and print the\n"
      "            framework's own self-profile: per-stage spans + counters\n"
      "  serve     run the profiling daemon (see docs/SERVE.md):\n"
      "            --listen unix:/path|host:port (default 127.0.0.1:0)\n"
      "            --max-inflight <n> --deadline-s <s> --drain-timeout <s>\n"
      "            --preload <ids|all> --verbose 0|1\n"
      "  client    send one request to a running daemon:\n"
      "            --connect <endpoint> --method ping|stats|shutdown|profile|\n"
      "            analyze|sweep|sweep_decode|optimize plus the options below,\n"
      "            or\n"
      "            a raw --params '<json>'; result JSON goes to stdout\n"
      "\n"
      "options:\n"
      "  --model <id|file.pg>   zoo model id or serialized graph file\n"
      "  --model2 <id|file.pg>  second model (compare)\n"
      "  --platform <id>        a100 rtx4090 xeon6330 xavier_nx orin_nx16\n"
      "                         rpi4b npu3720\n"
      "  --backend <id>         trt_sim ov_sim ort_sim (default: platform's)\n"
      "  --dtype <t>            fp32 fp16 bf16 int8 (default fp16/fp32)\n"
      "  --batch <n>            batch size (default 1)\n"
      "  --mode <m>             predicted | measured | auto (default auto)\n"
      "  --streams <n>          execution streams: 1 = serial (default),\n"
      "                         0 = backend maximum, N = clamp to backend max;\n"
      "                         != 1 adds the critical-path analysis\n"
      "  --jobs <n>             parallel profiling jobs for sweeps (default:\n"
      "                         hardware concurrency; also via PROOF_JOBS)\n"
      "  --gpu-mhz <f>          GPU clock override (DVFS)\n"
      "  --mem-mhz <f>          memory clock override (DVFS)\n"
      "  --layers <n>           rows of the layer table to print (default 25)\n"
      "  --batches <list>       comma-separated batch candidates (sweep)\n"
      "  --prefill <n>          prompt length S for sweep-decode (default 512)\n"
      "  --positions <list>     comma-separated decode positions S_past\n"
      "                         for sweep-decode (default 64,256,512,1024)\n"
      "  --filter <substr>      layer/node filter (inspect)\n"
      "  --quantize <0|1>       rewrite the model to int8 QDQ form first\n"
      "  --svg <path>           write the roofline chart\n"
      "  --html <path>          write the HTML dataviewer page\n"
      "  --csv <path>           write the per-layer CSV\n"
      "  --json <path>          write the full report as JSON (includes a\n"
      "                         self_profile section unless PROOF_OBS=0)\n"
      "  --trace <path>         write a Chrome trace-event timeline (includes\n"
      "                         the profiler's own per-thread spans)\n"
      "\n"
      "observability: PROOF_OBS=0 disables self-profiling;\n"
      "PROOF_METRICS_OUT=<path> dumps the metrics JSON at process exit\n";
  std::exit(2);
}

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = options.find(key);
    return it == options.end() ? std::nullopt
                               : std::optional<std::string>(it->second);
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto value = get(key);
    if (!value.has_value()) {
      usage("missing required option --" + key);
    }
    return *value;
  }
};

/// Numeric flag parsing that fails with a usage message naming the flag
/// instead of surfacing strings::parse_* errors raw ("--batch banana" should
/// read as a CLI mistake, not a stack-level parse error).
int64_t int_flag(const std::string& value, const std::string& flag) {
  try {
    return strings::parse_int(value);
  } catch (const Error&) {
    usage("--" + flag + " needs an integer, got '" + value + "'");
  }
}

double double_flag(const std::string& value, const std::string& flag) {
  try {
    return strings::parse_double(value);
  } catch (const Error&) {
    usage("--" + flag + " needs a number, got '" + value + "'");
  }
}

/// Comma-separated positive integer list ("--batches 1,8,64").
std::vector<int64_t> int_list_flag(const std::string& value,
                                   const std::string& flag) {
  std::vector<int64_t> out;
  for (const auto& field : strings::split_trimmed(value, ',')) {
    const int64_t v = int_flag(field, flag);
    if (v < 1) {
      usage("--" + flag + " entries must be positive, got '" + field + "'");
    }
    out.push_back(v);
  }
  if (out.empty()) {
    usage("--" + flag + " needs at least one value");
  }
  return out;
}

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) {
    usage();
  }
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 >= argc) {
        usage("option --" + key + " needs a value");
      }
      args.options[key] = argv[++i];
    } else {
      // Positional argument (used by `list`).
      args.options["_pos" + std::to_string(args.options.size())] = token;
    }
  }
  return args;
}

Graph load_model_arg(const Args& args, const std::string& key = "model") {
  const std::string spec = args.require(key);
  Graph model = strings::ends_with(spec, ".pg") ? load_graph(spec)
                                                : models::build_model(spec);
  if (args.get("quantize").value_or("0") == "1") {
    const QuantizeStats stats = quantize_to_qdq(model);
    std::cout << "quantized to QDQ: " << stats.quantized_anchors
              << " anchors, " << stats.int8_params << " int8 weight tensors\n";
  }
  return model;
}

ProfileOptions options_from(const Args& args) {
  ProfileOptions opt;
  opt.platform_id = args.require("platform");
  const auto& desc = hw::PlatformRegistry::instance().get(opt.platform_id);
  if (const auto dtype = args.get("dtype")) {
    opt.dtype = dtype_from_name(*dtype);
  } else {
    opt.dtype = desc.supports(DType::kF16) ? DType::kF16 : DType::kF32;
  }
  if (const auto backend = args.get("backend")) {
    opt.backend_id = *backend;
  }
  if (const auto batch = args.get("batch")) {
    opt.batch = int_flag(*batch, "batch");
    if (opt.batch < 1) {
      usage("--batch needs a positive batch size, got " + *batch);
    }
  }
  if (const auto mode = args.get("mode")) {
    if (*mode == "predicted") {
      opt.mode = MetricMode::kPredicted;
    } else if (*mode == "measured") {
      opt.mode = MetricMode::kMeasured;
    } else if (*mode == "auto") {
      opt.mode = MetricMode::kAuto;
    } else {
      usage("unknown mode '" + *mode + "'");
    }
  } else {
    opt.mode = MetricMode::kAuto;
  }
  if (const auto streams = args.get("streams")) {
    const int64_t n = int_flag(*streams, "streams");
    if (n < 0) {
      usage("--streams needs a non-negative value (0 = backend maximum)");
    }
    opt.streams = static_cast<int>(n);
  }
  if (const auto gpu = args.get("gpu-mhz")) {
    opt.clocks.gpu_mhz = double_flag(*gpu, "gpu-mhz");
    if (opt.clocks.gpu_mhz <= 0.0) {
      usage("--gpu-mhz needs a positive clock, got " + *gpu);
    }
  }
  if (const auto mem = args.get("mem-mhz")) {
    opt.clocks.mem_mhz = double_flag(*mem, "mem-mhz");
    if (opt.clocks.mem_mhz <= 0.0) {
      usage("--mem-mhz needs a positive clock, got " + *mem);
    }
  }
  return opt;
}

int cmd_list(const Args& args) {
  const std::string what =
      args.get("_pos0").value_or(args.get("what").value_or("models"));
  if (what == "models") {
    report::TextTable table({"#", "id", "display name", "type"});
    for (const models::ModelSpec& spec : models::model_zoo()) {
      table.add_row({std::to_string(spec.table3_index), spec.id, spec.display,
                     spec.type});
    }
    for (const models::ModelSpec& spec : models::extended_model_zoo()) {
      table.add_row({"-", spec.id, spec.display, spec.type});
    }
    std::cout << table.to_string();
  } else if (what == "platforms") {
    report::TextTable table({"id", "name", "scenario", "default runtime"});
    for (const std::string& id : hw::paper_platform_ids()) {
      const auto& p = hw::PlatformRegistry::instance().get(id);
      table.add_row({p.id, p.name, p.scenario, p.runtime});
    }
    std::cout << table.to_string();
  } else if (what == "backends") {
    report::TextTable table({"id", "name"});
    for (const std::string& id : backends::BackendRegistry::instance().ids()) {
      table.add_row({id, backends::BackendRegistry::instance().get(id).name()});
    }
    std::cout << table.to_string();
  } else {
    usage("unknown list target '" + what + "'");
  }
  return 0;
}

void write_layer_csv(const ProfileReport& r, const std::string& path) {
  report::CsvWriter csv({"backend_layer", "model_nodes", "class", "latency_ms",
                         "share", "flops", "bytes", "ai", "attained_flops",
                         "attained_bw", "mapped_via"});
  for (size_t i = 0; i < r.layers.size(); ++i) {
    const LayerReport& layer = r.layers[i];
    const roofline::Point& pt = r.roofline.layers[i];
    csv.add_row({layer.backend_layer, strings::join(layer.model_nodes, ";"),
                 std::string(op_class_name(layer.cls)),
                 units::fixed(layer.latency_s * 1e3, 6),
                 units::fixed(pt.latency_share, 6), units::fixed(layer.flops, 0),
                 units::fixed(layer.bytes, 0),
                 units::fixed(pt.arithmetic_intensity(), 4),
                 units::fixed(pt.attained_flops(), 0),
                 units::fixed(pt.attained_bandwidth(), 0),
                 std::string(mapping::map_method_name(layer.method))});
  }
  csv.save(path);
  std::cout << "wrote " << path << "\n";
}

int cmd_profile(const Args& args) {
  const ProfileOptions opt = options_from(args);
  const Graph model = load_model_arg(args);
  const ProfileReport r = Profiler(opt).run(model);

  std::cout << summary_text(r) << "\n";
  const int64_t layer_rows = int_flag(args.get("layers").value_or("25"), "layers");
  if (layer_rows < 0) {
    usage("--layers needs a non-negative row count (0 = all)");
  }
  const size_t rows = static_cast<size_t>(layer_rows);
  std::cout << layer_table_text(r, rows);
  if (r.layers.size() > rows) {
    std::cout << "... (" << r.layers.size() - rows
              << " more layers; use --layers 0 for all or --csv)\n";
  }

  if (const auto svg = args.get("svg")) {
    report::SvgOptions svg_opt;
    svg_opt.title = r.model_name + " on " + r.platform_name;
    report::save_svg(report::render_roofline_svg(r.roofline, svg_opt), *svg);
    std::cout << "wrote " << *svg << "\n";
  }
  if (const auto html = args.get("html")) {
    report::save_html(report::render_html_report(r), *html);
    std::cout << "wrote " << *html << "\n";
  }
  if (const auto csv = args.get("csv")) {
    write_layer_csv(r, *csv);
  }
  if (const auto json = args.get("json")) {
    save_json(report_to_json(r, obs::enabled()), *json);
    std::cout << "wrote " << *json << "\n";
  }
  if (const auto trace = args.get("trace")) {
    save_chrome_trace(report_to_chrome_trace(r, obs::trace_events()), *trace);
    std::cout << "wrote " << *trace << " (open in chrome://tracing)\n";
  }
  return 0;
}

int cmd_stats(const Args& args) {
  // Run a representative workload so every pipeline phase (prepare, mapping,
  // analysis, latency — and sweep when --batches is given) leaves spans, then
  // print the framework's own cost breakdown.
  const ProfileOptions opt = options_from(args);
  const Graph model = load_model_arg(args);
  if (const auto list = args.get("batches")) {
    (void)sweep_batches(opt, model, int_list_flag(*list, "batches"));
  } else {
    (void)Profiler(opt).run(model);
  }

  std::cout << obs::self_profile_text();
  if (const auto json = args.get("json")) {
    obs::dump_self_profile(*json);
    std::cout << "wrote " << *json << "\n";
  }
  return 0;
}

int cmd_peaks(const Args& args) {
  const ProfileOptions opt = options_from(args);
  const auto& platform = hw::PlatformRegistry::instance().get(opt.platform_id);
  backends::BuildConfig config;
  config.dtype = opt.dtype;
  const std::string backend_id =
      opt.backend_id.empty() ? platform.runtime : opt.backend_id;
  const backends::Engine probe =
      backends::BackendRegistry::instance().get(backend_id).build(
          models::build_peak_probe(), config, platform);
  const hw::PlatformState state(platform, opt.clocks);
  const roofline::AchievedPeaks peaks = roofline::achieved_peaks(probe, state);
  const double power = hw::PowerModel(state).power_w({1.0, 1.0});
  std::cout << "platform: " << platform.name << "  (GPU "
            << units::fixed(state.gpu_mhz(), 0) << " MHz, mem "
            << units::fixed(state.mem_mhz(), 0) << " MHz, "
            << dtype_name(opt.dtype) << ")\n";
  std::cout << "theoretical: " << units::tflops(platform.matrix_peak(opt.dtype))
            << " / " << units::gbps(platform.dram_bw) << "\n";
  std::cout << "achieved:    " << units::tflops(peaks.flops) << " / "
            << units::gbps(peaks.bw) << "\n";
  std::cout << "full-load power: " << units::fixed(power, 1) << " W\n";
  return 0;
}

int cmd_compare(const Args& args) {
  const ProfileOptions opt = options_from(args);
  const Profiler profiler(opt);
  const ProfileReport baseline = profiler.run(load_model_arg(args));
  const ProfileReport candidate =
      profiler.run(load_model_arg(args, "model2"));
  std::cout << "--- baseline ---\n" << summary_text(baseline) << "\n";
  std::cout << "--- candidate ---\n" << summary_text(candidate) << "\n";
  std::cout << "--- delta ---\n" << delta_text(compare_reports(baseline, candidate));
  if (const auto html = args.get("html")) {
    report::save_html(
        report::render_html_report(
            "PRoof comparison",
            {{"baseline: " + baseline.model_name, &baseline},
             {"candidate: " + candidate.model_name, &candidate}}),
        *html);
    std::cout << "wrote " << *html << "\n";
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  ProfileOptions opt = options_from(args);
  const Graph model = load_model_arg(args);
  std::vector<int64_t> candidates;
  if (const auto list = args.get("batches")) {
    candidates = int_list_flag(*list, "batches");
  }
  const BatchSweep sweep = sweep_batches(opt, model, candidates);
  std::cout << sweep_text(sweep);
  return 0;
}

int cmd_sweep_decode(const Args& args) {
  DecodeSweepOptions options;
  options.config_id = args.get("model").value_or("gpt2");
  if (const auto v = args.get("dtype")) {
    options.dtype = dtype_from_name(*v);
  }
  if (const auto v = args.get("backend")) {
    options.backend_id = *v;
  }
  if (const auto v = args.get("prefill")) {
    options.prefill_len = int_flag(*v, "prefill");
    if (options.prefill_len < 1) {
      usage("--prefill needs a positive prompt length, got " + *v);
    }
  }
  if (const auto v = args.get("batches")) {
    options.batches = int_list_flag(*v, "batches");
  }
  if (const auto v = args.get("positions")) {
    options.positions = int_list_flag(*v, "positions");
  }

  // Default: the cross-platform decode-bound-ness summary over the registry.
  const std::string platform = args.get("platform").value_or("all");
  if (platform == "all") {
    const std::vector<PlatformDecodeSummary> rows =
        sweep_decode_platforms(options);
    std::cout << decode_platforms_text(rows);
    if (const auto json = args.get("json")) {
      save_json(decode_platforms_json(rows), *json);
      std::cout << "wrote " << *json << "\n";
    }
    return 0;
  }

  options.platform_id = platform;
  const DecodeSweep sweep = sweep_decode(options);
  std::cout << decode_sweep_text(sweep);
  if (const auto svg = args.get("svg")) {
    report::SvgOptions svg_opt;
    svg_opt.title =
        sweep.model_display + " decode step on " + sweep.platform_name;
    report::save_svg(
        report::render_time_roofline_svg(sweep.decode_time, svg_opt), *svg);
    std::cout << "wrote " << *svg << "\n";
  }
  if (const auto svg = args.get("prefill-svg")) {
    report::SvgOptions svg_opt;
    svg_opt.title = sweep.model_display + " prefill on " + sweep.platform_name;
    report::save_svg(
        report::render_time_roofline_svg(sweep.prefill_time, svg_opt), *svg);
    std::cout << "wrote " << *svg << "\n";
  }
  if (const auto path = args.get("curves")) {
    // One tokens/s-vs-batch curve per decode position, plus the prefill curve
    // (prompt tokens per second) for scale.
    std::vector<report::Curve> curves;
    const size_t n_pos = sweep.options.positions.size();
    for (size_t p = 0; p < n_pos; ++p) {
      report::Curve curve;
      curve.label = "decode @p" + std::to_string(sweep.options.positions[p]);
      for (size_t b = 0; b < sweep.options.batches.size(); ++b) {
        const DecodePoint& pt = sweep.points[b * n_pos + p];
        curve.points.emplace_back(static_cast<double>(pt.batch),
                                  pt.tokens_per_s);
      }
      curves.push_back(std::move(curve));
    }
    report::Curve prefill_curve;
    prefill_curve.label = "prefill";
    for (const PrefillPoint& pt : sweep.prefill) {
      prefill_curve.points.emplace_back(static_cast<double>(pt.batch),
                                        pt.tokens_per_s);
    }
    curves.push_back(std::move(prefill_curve));
    report::save_svg(
        report::render_curves_svg(
            curves, sweep.model_display + " on " + sweep.platform_name,
            "batch size", "tokens/s"),
        *path);
    std::cout << "wrote " << *path << "\n";
  }
  if (const auto json = args.get("json")) {
    save_json(decode_sweep_json(sweep), *json);
    std::cout << "wrote " << *json << "\n";
  }
  return 0;
}

int cmd_optimize(const Args& args) {
  opt::OptimizeOptions options;
  options.base = options_from(args);
  if (const auto v = args.get("objective")) {
    options.objective = opt::objective_from_name(*v);
  }
  if (const auto v = args.get("power-budget")) {
    options.power_budget_w = double_flag(*v, "power-budget");
    if (options.power_budget_w <= 0.0) {
      usage("--power-budget needs a positive wattage, got " + *v);
    }
  }
  if (const auto v = args.get("noise")) {
    options.noise_threshold = double_flag(*v, "noise");
    if (options.noise_threshold < 0.0 || options.noise_threshold >= 1.0) {
      usage("--noise needs a fraction in [0, 1), got " + *v);
    }
  }
  if (const auto v = args.get("rounds")) {
    const int64_t rounds = int_flag(*v, "rounds");
    if (rounds < 1) {
      usage("--rounds needs a positive round count, got " + *v);
    }
    options.max_rounds = static_cast<int>(rounds);
  }
  if (const auto v = args.get("axes")) {
    options.axes = opt::axes_from_string(*v);
  }

  // Zoo ids keep the model-rewrite axis (the optimizer looks up `<id>_mod`
  // siblings); serialized .pg graphs optimize along the remaining axes.
  const std::string spec = args.require("model");
  const opt::OptimizeResult result =
      strings::ends_with(spec, ".pg")
          ? opt::optimize_graph(load_model_arg(args), options)
          : opt::optimize(spec, options);

  std::cout << opt::optimization_text(result) << "\n";
  std::cout << "--- final configuration ---\n"
            << summary_text(result.final_report);
  if (const auto json = args.get("json")) {
    save_json(report_to_json(result.final_report, obs::enabled(),
                             opt::optimization_section_json(result.log)),
              *json);
    std::cout << "wrote " << *json << "\n";
  }
  return 0;
}

int cmd_summarize(const Args& args) {
  const Graph model = load_model_arg(args);
  const int64_t layer_rows = int_flag(args.get("layers").value_or("0"), "layers");
  if (layer_rows < 0) {
    usage("--layers needs a non-negative row count (0 = all)");
  }
  const size_t rows = static_cast<size_t>(layer_rows);
  std::cout << models::model_summary(model, rows);
  return 0;
}

int cmd_inspect(const Args& args) {
  const ProfileOptions opt = options_from(args);
  const Graph model = load_model_arg(args);
  const ProfileReport r = Profiler(opt).run(model);
  std::cout << stack_text(r, args.get("filter").value_or(""));
  return 0;
}

int cmd_serve(const Args& args) {
  serve::ServerOptions opt;
  opt.listen = args.get("listen").value_or("127.0.0.1:0");
  if (const auto v = args.get("max-inflight")) {
    const int64_t n = int_flag(*v, "max-inflight");
    if (n < 1) {
      usage("--max-inflight needs a positive value");
    }
    opt.max_inflight = static_cast<unsigned>(n);
  }
  if (const auto v = args.get("deadline-s")) {
    opt.default_deadline_s = double_flag(*v, "deadline-s");
  }
  if (const auto v = args.get("drain-timeout")) {
    opt.drain_timeout_s = double_flag(*v, "drain-timeout");
  }
  if (const auto v = args.get("preload")) {
    opt.preload = strings::split_trimmed(*v, ',');
  }
  opt.verbose = args.get("verbose").value_or("1") == "1";

  serve::Server server(std::move(opt));
  server.install_signal_handlers();
  server.start();
  // The one stdout line scripts parse to discover the bound endpoint
  // (ephemeral TCP ports in particular).
  std::cout << "listening " << server.endpoint().describe() << "\n"
            << std::flush;
  server.wait();
  return 0;
}

/// Assembles the request payload from CLI options (or --params verbatim).
std::string client_request(const Args& args, const std::string& method) {
  std::ostringstream out;
  out << "{\"id\":1,\"method\":" << json::quote(method) << ",\"params\":";
  if (const auto params = args.get("params")) {
    (void)json::parse(*params);  // fail client-side with a clear message
    out << *params;
  } else {
    out << "{";
    bool first = true;
    const auto field = [&](const char* key, const std::string& raw) {
      out << (first ? "" : ",") << "\"" << key << "\":" << raw;
      first = false;
    };
    if (const auto v = args.get("model")) field("model", json::quote(*v));
    if (const auto v = args.get("platform")) field("platform", json::quote(*v));
    if (const auto v = args.get("backend")) field("backend", json::quote(*v));
    if (const auto v = args.get("dtype")) field("dtype", json::quote(*v));
    if (const auto v = args.get("mode")) field("mode", json::quote(*v));
    if (const auto v = args.get("batch")) {
      field("batch", std::to_string(int_flag(*v, "batch")));
    }
    if (const auto v = args.get("gpu-mhz")) {
      (void)double_flag(*v, "gpu-mhz");
      field("gpu_mhz", *v);
    }
    if (const auto v = args.get("mem-mhz")) {
      (void)double_flag(*v, "mem-mhz");
      field("mem_mhz", *v);
    }
    if (const auto v = args.get("objective")) {
      field("objective", json::quote(*v));
    }
    if (const auto v = args.get("power-budget")) {
      (void)double_flag(*v, "power-budget");
      field("power_budget_w", *v);
    }
    if (const auto v = args.get("noise")) {
      (void)double_flag(*v, "noise");
      field("noise_threshold", *v);
    }
    if (const auto v = args.get("rounds")) {
      field("max_rounds", std::to_string(int_flag(*v, "rounds")));
    }
    if (const auto v = args.get("axes")) {
      field("axes", json::quote(*v));
    }
    if (const auto v = args.get("deadline-ms")) {
      (void)double_flag(*v, "deadline-ms");
      field("deadline_ms", *v);
    }
    if (const auto v = args.get("debug-sleep-ms")) {
      field("debug_sleep_ms", std::to_string(int_flag(*v, "debug-sleep-ms")));
    }
    const auto int_array = [&](const char* key, const std::string& raw,
                               const std::string& flag) {
      std::string list;
      for (const int64_t v : int_list_flag(raw, flag)) {
        list += (list.empty() ? "" : ",") + std::to_string(v);
      }
      field(key, "[" + list + "]");
    };
    if (const auto v = args.get("batches")) {
      int_array("batches", *v, "batches");
    }
    if (const auto v = args.get("positions")) {
      int_array("positions", *v, "positions");
    }
    if (const auto v = args.get("prefill")) {
      field("prefill_len", std::to_string(int_flag(*v, "prefill")));
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

int cmd_client(const Args& args) {
  const std::string method = args.get("method").value_or("ping");
  const std::string payload = client_request(args, method);
  net::Socket socket = net::connect(net::Endpoint::parse(args.require("connect")));
  serve::write_frame(socket, payload);
  while (true) {
    const std::optional<std::string> frame = serve::read_frame(socket);
    if (!frame.has_value()) {
      std::cerr << "error: server closed the connection without a result\n";
      return 1;
    }
    const serve::Response response = serve::parse_response(*frame);
    if (response.is_progress()) {
      std::cerr << "progress: " << response.payload << "\n";
      continue;
    }
    if (response.is_error()) {
      std::cerr << "error " << response.error_code << " ("
                << response.error_kind << "): " << response.error_message
                << "\n";
      return 1;
    }
    if (const auto path = args.get("json")) {
      save_json(response.payload, *path);
      std::cerr << "wrote " << *path << "\n";
    } else {
      std::cout << response.payload << "\n";
    }
    return 0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (const auto jobs = args.get("jobs")) {
      const int64_t n = int_flag(*jobs, "jobs");
      if (n < 1) {
        usage("--jobs needs a positive value");
      }
      proof::ThreadPool::set_global_jobs(static_cast<unsigned>(n));
    }
    if (args.command == "list") {
      return cmd_list(args);
    }
    if (args.command == "profile") {
      return cmd_profile(args);
    }
    if (args.command == "peaks") {
      return cmd_peaks(args);
    }
    if (args.command == "compare") {
      return cmd_compare(args);
    }
    if (args.command == "sweep") {
      return cmd_sweep(args);
    }
    if (args.command == "sweep-decode") {
      return cmd_sweep_decode(args);
    }
    if (args.command == "optimize") {
      return cmd_optimize(args);
    }
    if (args.command == "inspect") {
      return cmd_inspect(args);
    }
    if (args.command == "summarize") {
      return cmd_summarize(args);
    }
    if (args.command == "stats") {
      return cmd_stats(args);
    }
    if (args.command == "serve") {
      return cmd_serve(args);
    }
    if (args.command == "client") {
      return cmd_client(args);
    }
    usage("unknown command '" + args.command + "'");
  } catch (const proof::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// GraphBuilder: ergonomic construction of model graphs with incremental
// shape inference, used by the model zoo (and handy for user models/tests).
//
// Every emitter adds node(s), infers the output tensor descs immediately, and
// returns the output tensor name, so builders can branch on shapes while
// constructing (e.g. "channels of x").
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace proof::models {

class GraphBuilder {
 public:
  explicit GraphBuilder(std::string model_name);

  /// Declares a graph input and returns its tensor name.
  std::string input(const std::string& name, Shape shape, DType dtype = DType::kF32);

  // --- convolutional building blocks ---------------------------------------

  /// Conv with folded batch-norm semantics (bias included), as PyTorch's ONNX
  /// export emits for eval-mode CNNs.  pad = -1 selects "same" padding for
  /// odd kernels.  Returns the output tensor.
  std::string conv(const std::string& x, int64_t out_ch, int64_t kernel,
                   int64_t stride = 1, int64_t pad = -1, int64_t groups = 1,
                   bool bias = true, int64_t dilation = 1);
  /// Depthwise conv (groups == channels).
  std::string dwconv(const std::string& x, int64_t kernel, int64_t stride = 1,
                     int64_t pad = -1);
  std::string conv_act(const std::string& x, int64_t out_ch, int64_t kernel,
                       int64_t stride, const std::string& act_type,
                       int64_t groups = 1);
  std::string maxpool(const std::string& x, int64_t kernel, int64_t stride,
                      int64_t pad = -1);
  std::string avgpool(const std::string& x, int64_t kernel, int64_t stride,
                      int64_t pad = -1);
  std::string global_avgpool(const std::string& x);

  // --- dense / attention blocks ---------------------------------------------

  /// x @ W(+b): Gemm for 2-D x, MatMul+Add for higher ranks.
  std::string linear(const std::string& x, int64_t out_features, bool bias = true);
  std::string matmul(const std::string& a, const std::string& b);
  std::string layernorm(const std::string& x);
  std::string groupnorm(const std::string& x, int64_t groups);
  std::string batchnorm(const std::string& x);
  std::string softmax(const std::string& x, int axis = -1);
  /// Embedding lookup: Gather(table[vocab, dim], ids).
  std::string embedding(const std::string& ids, int64_t vocab, int64_t dim);

  // --- elementwise -----------------------------------------------------------

  std::string act(const std::string& x, const std::string& act_type);
  std::string binary(const std::string& op_type, const std::string& a,
                     const std::string& b);
  std::string add(const std::string& a, const std::string& b) {
    return binary("Add", a, b);
  }
  std::string mul(const std::string& a, const std::string& b) {
    return binary("Mul", a, b);
  }
  /// Elementwise op against a new broadcastable parameter of `shape`.
  std::string binary_param(const std::string& op_type, const std::string& x,
                           Shape shape);
  std::string clip(const std::string& x, double lo, double hi);
  std::string reduce_mean(const std::string& x, std::vector<int64_t> axes,
                          bool keepdims);

  // --- data movement ----------------------------------------------------------

  std::string reshape(const std::string& x, std::vector<int64_t> shape);
  std::string transpose(const std::string& x, std::vector<int64_t> perm);
  std::string flatten(const std::string& x, int64_t axis = 1);
  std::string concat(const std::vector<std::string>& xs, int axis);
  std::vector<std::string> split(const std::string& x, int axis, int num_outputs);
  std::string slice(const std::string& x, std::vector<int64_t> axes,
                    std::vector<int64_t> starts, std::vector<int64_t> ends,
                    std::vector<int64_t> steps = {});

  // --- generic ---------------------------------------------------------------

  /// Adds an arbitrary node; extra params may be created via param().
  std::string node(const std::string& op_type, std::vector<std::string> inputs,
                   AttrMap attrs = {}, int num_outputs = 1);
  /// Multi-output variant.
  std::vector<std::string> node_multi(const std::string& op_type,
                                      std::vector<std::string> inputs, AttrMap attrs,
                                      int num_outputs);
  /// Creates a named parameter tensor and returns its name.
  std::string param(const std::string& hint, Shape shape, DType dtype = DType::kF32);

  [[nodiscard]] const Shape& shape_of(const std::string& tensor) const;
  [[nodiscard]] int64_t channels(const std::string& tensor) const {
    return shape_of(tensor).dim(1);
  }
  [[nodiscard]] int64_t dim(const std::string& tensor, int axis) const {
    return shape_of(tensor).dim(axis);
  }

  /// Finalizes: marks outputs, validates, returns the graph.
  [[nodiscard]] Graph finish(const std::vector<std::string>& outputs);

 private:
  std::string fresh(const std::string& hint);
  std::string add_and_infer(Node node);

  Graph graph_;
  std::map<std::string, int, std::less<>> name_counters_;
};

}  // namespace proof::models

#include "models/builder.hpp"

#include "ops/op_def.hpp"
#include "support/error.hpp"

namespace proof::models {

GraphBuilder::GraphBuilder(std::string model_name) : graph_(std::move(model_name)) {}

std::string GraphBuilder::fresh(const std::string& hint) {
  const int n = name_counters_[hint]++;
  return hint + "_" + std::to_string(n);
}

std::string GraphBuilder::input(const std::string& name, Shape shape, DType dtype) {
  TensorDesc desc;
  desc.name = name;
  desc.dtype = dtype;
  desc.shape = std::move(shape);
  graph_.set_tensor(std::move(desc));
  graph_.add_input(name);
  return name;
}

std::string GraphBuilder::param(const std::string& hint, Shape shape, DType dtype) {
  const std::string name = fresh(hint);
  graph_.add_param(name, dtype, std::move(shape));
  return name;
}

std::string GraphBuilder::add_and_infer(Node node) {
  std::vector<std::string> outputs = node.outputs;
  const NodeId id = graph_.add_node(std::move(node));
  const Node& added = graph_.node(id);
  const OpDef& def = op_def_for(added);
  const OpContext ctx(graph_, added);
  std::vector<TensorDesc> descs = def.infer(ctx);
  PROOF_CHECK(descs.size() == outputs.size(),
              "node '" << added.name << "' output arity mismatch");
  for (size_t i = 0; i < descs.size(); ++i) {
    descs[i].name = outputs[i];
    graph_.set_tensor(std::move(descs[i]));
  }
  return outputs[0];
}

std::string GraphBuilder::node(const std::string& op_type,
                               std::vector<std::string> inputs, AttrMap attrs,
                               int num_outputs) {
  return node_multi(op_type, std::move(inputs), std::move(attrs), num_outputs)[0];
}

std::vector<std::string> GraphBuilder::node_multi(const std::string& op_type,
                                                  std::vector<std::string> inputs,
                                                  AttrMap attrs, int num_outputs) {
  Node n;
  n.name = fresh(op_type);
  n.op_type = op_type;
  n.inputs = std::move(inputs);
  n.attrs = std::move(attrs);
  for (int i = 0; i < num_outputs; ++i) {
    n.outputs.push_back(n.name + (num_outputs == 1 ? "_out" : "_out" + std::to_string(i)));
  }
  std::vector<std::string> outputs = n.outputs;
  add_and_infer(std::move(n));
  return outputs;
}

std::string GraphBuilder::conv(const std::string& x, int64_t out_ch, int64_t kernel,
                               int64_t stride, int64_t pad, int64_t groups, bool bias,
                               int64_t dilation) {
  const int64_t in_ch = channels(x);
  PROOF_CHECK(in_ch % groups == 0, "channels " << in_ch << " not divisible by groups "
                                               << groups);
  if (pad < 0) {
    pad = dilation * (kernel - 1) / 2;  // "same" padding for odd kernels
  }
  const std::string w =
      param("w", Shape{out_ch, in_ch / groups, kernel, kernel});
  std::vector<std::string> inputs = {x, w};
  if (bias) {
    inputs.push_back(param("b", Shape{out_ch}));
  }
  AttrMap attrs;
  attrs.set("strides", std::vector<int64_t>{stride, stride});
  attrs.set("pads", std::vector<int64_t>{pad, pad, pad, pad});
  attrs.set("dilations", std::vector<int64_t>{dilation, dilation});
  attrs.set("group", groups);
  return node("Conv", std::move(inputs), std::move(attrs));
}

std::string GraphBuilder::dwconv(const std::string& x, int64_t kernel, int64_t stride,
                                 int64_t pad) {
  const int64_t ch = channels(x);
  return conv(x, ch, kernel, stride, pad, /*groups=*/ch);
}

std::string GraphBuilder::conv_act(const std::string& x, int64_t out_ch,
                                   int64_t kernel, int64_t stride,
                                   const std::string& act_type, int64_t groups) {
  return act(conv(x, out_ch, kernel, stride, -1, groups), act_type);
}

std::string GraphBuilder::maxpool(const std::string& x, int64_t kernel,
                                  int64_t stride, int64_t pad) {
  if (pad < 0) {
    pad = (kernel - 1) / 2;
  }
  AttrMap attrs;
  attrs.set("kernel_shape", std::vector<int64_t>{kernel, kernel});
  attrs.set("strides", std::vector<int64_t>{stride, stride});
  attrs.set("pads", std::vector<int64_t>{pad, pad, pad, pad});
  return node("MaxPool", {x}, std::move(attrs));
}

std::string GraphBuilder::avgpool(const std::string& x, int64_t kernel,
                                  int64_t stride, int64_t pad) {
  if (pad < 0) {
    pad = (kernel - 1) / 2;
  }
  AttrMap attrs;
  attrs.set("kernel_shape", std::vector<int64_t>{kernel, kernel});
  attrs.set("strides", std::vector<int64_t>{stride, stride});
  attrs.set("pads", std::vector<int64_t>{pad, pad, pad, pad});
  return node("AveragePool", {x}, std::move(attrs));
}

std::string GraphBuilder::global_avgpool(const std::string& x) {
  return node("GlobalAveragePool", {x});
}

std::string GraphBuilder::linear(const std::string& x, int64_t out_features,
                                 bool bias) {
  const Shape& shape = shape_of(x);
  const int64_t in_features = shape.dim(-1);
  if (shape.rank() == 2) {
    const std::string w = param("fc_w", Shape{out_features, in_features});
    std::vector<std::string> inputs = {x, w};
    if (bias) {
      inputs.push_back(param("fc_b", Shape{out_features}));
    }
    AttrMap attrs;
    attrs.set("transB", static_cast<int64_t>(1));
    return node("Gemm", std::move(inputs), std::move(attrs));
  }
  const std::string w = param("lin_w", Shape{in_features, out_features});
  std::string out = node("MatMul", {x, w});
  if (bias) {
    out = node("Add", {out, param("lin_b", Shape{out_features})});
  }
  return out;
}

std::string GraphBuilder::matmul(const std::string& a, const std::string& b) {
  return node("MatMul", {a, b});
}

std::string GraphBuilder::layernorm(const std::string& x) {
  const int64_t features = shape_of(x).dim(-1);
  AttrMap attrs;
  attrs.set("axis", static_cast<int64_t>(-1));
  return node("LayerNormalization",
              {x, param("ln_w", Shape{features}), param("ln_b", Shape{features})},
              std::move(attrs));
}

std::string GraphBuilder::groupnorm(const std::string& x, int64_t groups) {
  const int64_t ch = channels(x);
  AttrMap attrs;
  attrs.set("num_groups", groups);
  return node("GroupNormalization",
              {x, param("gn_w", Shape{ch}), param("gn_b", Shape{ch})},
              std::move(attrs));
}

std::string GraphBuilder::batchnorm(const std::string& x) {
  const int64_t ch = channels(x);
  return node("BatchNormalization",
              {x, param("bn_w", Shape{ch}), param("bn_b", Shape{ch}),
               param("bn_mean", Shape{ch}), param("bn_var", Shape{ch})});
}

std::string GraphBuilder::softmax(const std::string& x, int axis) {
  AttrMap attrs;
  attrs.set("axis", static_cast<int64_t>(axis));
  return node("Softmax", {x}, std::move(attrs));
}

std::string GraphBuilder::embedding(const std::string& ids, int64_t vocab,
                                    int64_t dim) {
  const std::string table = param("emb", Shape{vocab, dim});
  AttrMap attrs;
  attrs.set("axis", static_cast<int64_t>(0));
  return node("Gather", {table, ids}, std::move(attrs));
}

std::string GraphBuilder::act(const std::string& x, const std::string& act_type) {
  return node(act_type, {x});
}

std::string GraphBuilder::binary(const std::string& op_type, const std::string& a,
                                 const std::string& b) {
  return node(op_type, {a, b});
}

std::string GraphBuilder::binary_param(const std::string& op_type,
                                       const std::string& x, Shape shape) {
  return node(op_type, {x, param("p", std::move(shape))});
}

std::string GraphBuilder::clip(const std::string& x, double lo, double hi) {
  AttrMap attrs;
  attrs.set("min", lo);
  attrs.set("max", hi);
  return node("Clip", {x}, std::move(attrs));
}

std::string GraphBuilder::reduce_mean(const std::string& x,
                                      std::vector<int64_t> axes, bool keepdims) {
  AttrMap attrs;
  attrs.set("axes", std::move(axes));
  attrs.set("keepdims", static_cast<int64_t>(keepdims ? 1 : 0));
  return node("ReduceMean", {x}, std::move(attrs));
}

std::string GraphBuilder::reshape(const std::string& x, std::vector<int64_t> shape) {
  AttrMap attrs;
  attrs.set("shape", std::move(shape));
  return node("Reshape", {x}, std::move(attrs));
}

std::string GraphBuilder::transpose(const std::string& x, std::vector<int64_t> perm) {
  AttrMap attrs;
  attrs.set("perm", std::move(perm));
  return node("Transpose", {x}, std::move(attrs));
}

std::string GraphBuilder::flatten(const std::string& x, int64_t axis) {
  AttrMap attrs;
  attrs.set("axis", axis);
  return node("Flatten", {x}, std::move(attrs));
}

std::string GraphBuilder::concat(const std::vector<std::string>& xs, int axis) {
  AttrMap attrs;
  attrs.set("axis", static_cast<int64_t>(axis));
  return node("Concat", xs, std::move(attrs));
}

std::vector<std::string> GraphBuilder::split(const std::string& x, int axis,
                                             int num_outputs) {
  AttrMap attrs;
  attrs.set("axis", static_cast<int64_t>(axis));
  return node_multi("Split", {x}, std::move(attrs), num_outputs);
}

std::string GraphBuilder::slice(const std::string& x, std::vector<int64_t> axes,
                                std::vector<int64_t> starts,
                                std::vector<int64_t> ends,
                                std::vector<int64_t> steps) {
  AttrMap attrs;
  attrs.set("axes", std::move(axes));
  attrs.set("starts", std::move(starts));
  attrs.set("ends", std::move(ends));
  if (!steps.empty()) {
    attrs.set("steps", std::move(steps));
  }
  return node("Slice", {x}, std::move(attrs));
}

const Shape& GraphBuilder::shape_of(const std::string& tensor) const {
  return graph_.tensor(tensor).shape;
}

Graph GraphBuilder::finish(const std::vector<std::string>& outputs) {
  for (const std::string& out : outputs) {
    graph_.add_output(out);
  }
  graph_.validate();
  return std::move(graph_);
}

}  // namespace proof::models

// Internal: per-family model builder declarations.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "models/zoo.hpp"

namespace proof::models {

// zoo_cnn.cpp
Graph build_resnet(int depth);                      // 34 / 50
Graph build_mobilenet_v2(double width_mult);        // 0.5 / 1.0
Graph build_shufflenet_v2(double width_mult, bool modified);
Graph build_efficientnet(const std::string& variant);  // "b0" "b4" "v2t" "v2s"

// zoo_transformer.cpp
Graph build_vit(const std::string& size);           // "tiny" "small" "base"
Graph build_swin(const std::string& size);          // "tiny" "small" "base"
Graph build_mlp_mixer_b16();
Graph build_distilbert_base();

// zoo_diffusion.cpp
Graph build_sd_unet();

// zoo_llm.cpp — zoo entries for the LLM phase graphs at default lengths
// (llama7b_prefill / llama7b_decode / gpt2_prefill / gpt2_decode).
const std::vector<ModelSpec>& llm_model_specs();

}  // namespace proof::models

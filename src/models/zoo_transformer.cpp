// Transformer / MLP model builders: ViT, Swin, MLP-Mixer, DistilBERT.
#include <string>

#include "models/builder.hpp"
#include "models/zoo_internal.hpp"
#include "support/error.hpp"

namespace proof::models {

namespace {

/// Multi-head self-attention on a [B, T, D] tensor (already normalized).
/// `fused_qkv` emits one 3D-wide projection (ViT/Swin export style);
/// otherwise three separate projections (BERT style).  `bias_shape` adds a
/// relative-position bias parameter to the logits (Swin).
std::string attention(GraphBuilder& b, const std::string& x, int64_t heads,
                      bool fused_qkv, const Shape* bias_shape = nullptr) {
  const int64_t t = b.dim(x, 1);
  const int64_t d = b.dim(x, 2);
  const int64_t dh = d / heads;
  std::string q, k, v;
  if (fused_qkv) {
    const std::string qkv = b.linear(x, 3 * d);
    const auto parts = b.split(qkv, 2, 3);
    q = parts[0];
    k = parts[1];
    v = parts[2];
  } else {
    q = b.linear(x, d);
    k = b.linear(x, d);
    v = b.linear(x, d);
  }
  q = b.transpose(b.reshape(q, {-1, t, heads, dh}), {0, 2, 1, 3});
  k = b.transpose(b.reshape(k, {-1, t, heads, dh}), {0, 2, 3, 1});
  v = b.transpose(b.reshape(v, {-1, t, heads, dh}), {0, 2, 1, 3});
  std::string attn = b.matmul(q, k);                      // [B, H, T, T]
  attn = b.binary_param("Mul", attn, Shape{1});           // 1/sqrt(dh) scale
  if (bias_shape != nullptr) {
    attn = b.binary_param("Add", attn, *bias_shape);      // rel. pos. bias
  }
  attn = b.softmax(attn);
  std::string out = b.matmul(attn, v);                    // [B, H, T, dh]
  out = b.reshape(b.transpose(out, {0, 2, 1, 3}), {-1, t, d});
  return b.linear(out, d);                                 // output projection
}

std::string mlp_block(GraphBuilder& b, const std::string& x, int64_t hidden,
                      int64_t out) {
  std::string y = b.linear(x, hidden);
  y = b.act(y, "Gelu");
  return b.linear(y, out);
}

/// Conv patch embedding: [N,3,S,S] -> [N, T, D].
std::string patch_embed(GraphBuilder& b, const std::string& image, int64_t dim,
                        int64_t patch) {
  std::string x = b.conv(image, dim, patch, patch, /*pad=*/0);
  const int64_t hw = b.dim(x, 2) * b.dim(x, 3);
  x = b.reshape(x, {0, dim, hw});
  return b.transpose(x, {0, 2, 1});
}

}  // namespace

// ---------------------------------------------------------------------------
// ViT tiny/small/base (patch 16, 224x224, 12 blocks)
// ---------------------------------------------------------------------------

Graph build_vit(const std::string& size) {
  int64_t dim = 0;
  int64_t heads = 0;
  if (size == "tiny") {
    dim = 192;
    heads = 3;
  } else if (size == "small") {
    dim = 384;
    heads = 6;
  } else if (size == "base") {
    dim = 768;
    heads = 12;
  } else {
    PROOF_FAIL("unknown ViT size '" << size << "'");
  }
  GraphBuilder b("vit_" + size);
  std::string x = b.input("input", Shape{1, 3, 224, 224});
  x = patch_embed(b, x, dim, 16);  // [N, 196, D]

  // Class token: parameter broadcast over the batch, then prepended.
  const std::string cls = b.param("cls_token", Shape{1, 1, dim});
  AttrMap expand_attrs;
  expand_attrs.set("shape", std::vector<int64_t>{1, 1, dim});
  const std::string cls_b = b.node("Expand", {cls}, std::move(expand_attrs));
  x = b.concat({cls_b, x}, 1);                          // [N, 197, D]
  x = b.binary_param("Add", x, Shape{1, 197, dim});     // position embedding

  for (int block = 0; block < 12; ++block) {
    std::string h = b.layernorm(x);
    h = attention(b, h, heads, /*fused_qkv=*/true);
    x = b.add(x, h);
    h = b.layernorm(x);
    h = mlp_block(b, h, 4 * dim, dim);
    x = b.add(x, h);
  }
  x = b.layernorm(x);
  x = b.slice(x, {1}, {0}, {1});        // class token
  x = b.reshape(x, {0, dim});
  return b.finish({b.linear(x, 1000)});
}

// ---------------------------------------------------------------------------
// Swin tiny/small/base (patch 4, window 7, 224x224)
// ---------------------------------------------------------------------------

Graph build_swin(const std::string& size) {
  int64_t embed = 0;
  std::vector<int> depths;
  std::vector<int64_t> heads;
  if (size == "tiny") {
    embed = 96;
    depths = {2, 2, 6, 2};
    heads = {3, 6, 12, 24};
  } else if (size == "small") {
    embed = 96;
    depths = {2, 2, 18, 2};
    heads = {3, 6, 12, 24};
  } else if (size == "base") {
    embed = 128;
    depths = {2, 2, 18, 2};
    heads = {4, 8, 16, 32};
  } else {
    PROOF_FAIL("unknown Swin size '" << size << "'");
  }
  constexpr int64_t kWindow = 7;
  GraphBuilder b("swin_" + size);
  std::string image = b.input("input", Shape{1, 3, 224, 224});
  std::string x = b.layernorm(patch_embed(b, image, embed, 4));  // [N, 3136, C]

  int64_t res = 56;
  int64_t dim = embed;
  for (size_t stage = 0; stage < depths.size(); ++stage) {
    for (int block = 0; block < depths[stage]; ++block) {
      const bool shifted = block % 2 == 1;
      std::string h = b.layernorm(x);
      h = b.reshape(h, {0, res, res, dim});
      if (shifted) {
        // Cyclic shift (torch.roll): split + re-concat along both spatial
        // axes, the data movement the runtime actually performs.
        const int64_t s = kWindow / 2;
        std::string top = b.slice(h, {1}, {0}, {s});
        std::string bottom = b.slice(h, {1}, {s}, {res});
        h = b.concat({bottom, top}, 1);
        std::string left = b.slice(h, {2}, {0}, {s});
        std::string right = b.slice(h, {2}, {s}, {res});
        h = b.concat({right, left}, 2);
      }
      // Window partition: [N, R, R, C] -> [N*nW, 49, C].
      const int64_t nw = res / kWindow;
      h = b.reshape(h, {0, nw, kWindow, nw, kWindow, dim});
      h = b.transpose(h, {0, 1, 3, 2, 4, 5});
      h = b.reshape(h, {-1, kWindow * kWindow, dim});
      const Shape bias_shape{heads[stage], kWindow * kWindow, kWindow * kWindow};
      h = attention(b, h, heads[stage], /*fused_qkv=*/true, &bias_shape);
      // Window merge: back to [N, R*R, C].
      h = b.reshape(h, {-1, nw, nw, kWindow, kWindow, dim});
      h = b.transpose(h, {0, 1, 3, 2, 4, 5});
      if (shifted) {
        h = b.reshape(h, {-1, res, res, dim});
        const int64_t s = kWindow - kWindow / 2;
        std::string top = b.slice(h, {1}, {0}, {s});
        std::string bottom = b.slice(h, {1}, {s}, {res});
        h = b.concat({bottom, top}, 1);
        std::string left = b.slice(h, {2}, {0}, {s});
        std::string right = b.slice(h, {2}, {s}, {res});
        h = b.concat({right, left}, 2);
      }
      h = b.reshape(h, {-1, res * res, dim});
      x = b.add(x, h);
      h = b.layernorm(x);
      h = mlp_block(b, h, 4 * dim, dim);
      x = b.add(x, h);
    }
    if (stage + 1 < depths.size()) {
      // PatchMerging: 2x2 neighborhood concat + linear reduction.
      std::string h = b.reshape(x, {0, res, res, dim});
      std::vector<std::string> quads;
      for (int64_t dy = 0; dy < 2; ++dy) {
        for (int64_t dx = 0; dx < 2; ++dx) {
          quads.push_back(b.slice(h, {1, 2}, {dy, dx}, {res, res}, {2, 2}));
        }
      }
      h = b.concat(quads, 3);                       // [N, R/2, R/2, 4C]
      res /= 2;
      h = b.reshape(h, {0, res * res, 4 * dim});
      h = b.layernorm(h);
      x = b.linear(h, 2 * dim, /*bias=*/false);
      dim *= 2;
    }
  }
  x = b.layernorm(x);
  x = b.reduce_mean(x, {1}, /*keepdims=*/false);
  return b.finish({b.linear(x, 1000)});
}

// ---------------------------------------------------------------------------
// MLP-Mixer B/16
// ---------------------------------------------------------------------------

Graph build_mlp_mixer_b16() {
  constexpr int64_t kDim = 768;
  constexpr int64_t kTokens = 196;
  constexpr int64_t kTokenHidden = 384;
  constexpr int64_t kChannelHidden = 3072;
  GraphBuilder b("mlp_mixer_b16");
  std::string image = b.input("input", Shape{1, 3, 224, 224});
  std::string x = patch_embed(b, image, kDim, 16);  // [N, 196, 768]
  for (int block = 0; block < 12; ++block) {
    // Token mixing operates across patches: transpose, MLP, transpose back.
    std::string h = b.layernorm(x);
    h = b.transpose(h, {0, 2, 1});                  // [N, 768, 196]
    h = mlp_block(b, h, kTokenHidden, kTokens);
    h = b.transpose(h, {0, 2, 1});
    x = b.add(x, h);
    h = b.layernorm(x);
    h = mlp_block(b, h, kChannelHidden, kDim);
    x = b.add(x, h);
  }
  x = b.layernorm(x);
  x = b.reduce_mean(x, {1}, /*keepdims=*/false);
  return b.finish({b.linear(x, 1000)});
}

// ---------------------------------------------------------------------------
// DistilBERT base (6 layers, hidden 768, sequence length 512)
// ---------------------------------------------------------------------------

Graph build_distilbert_base() {
  constexpr int64_t kDim = 768;
  constexpr int64_t kHeads = 12;
  constexpr int64_t kFfn = 3072;
  constexpr int64_t kSeq = 512;
  constexpr int64_t kVocab = 30522;
  GraphBuilder b("distilbert");
  const std::string ids = b.input("input_ids", Shape{1, kSeq}, DType::kI64);
  std::string x = b.embedding(ids, kVocab, kDim);        // [N, 512, 768]
  x = b.binary_param("Add", x, Shape{1, kSeq, kDim});    // position embeddings
  x = b.layernorm(x);
  for (int layer = 0; layer < 6; ++layer) {
    // Post-LN encoder: x = LN(x + attn(x)); x = LN(x + ffn(x)).
    std::string h = attention(b, x, kHeads, /*fused_qkv=*/false);
    x = b.layernorm(b.add(x, h));
    h = mlp_block(b, x, kFfn, kDim);
    x = b.layernorm(b.add(x, h));
  }
  return b.finish({x});
}

}  // namespace proof::models

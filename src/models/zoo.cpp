#include "models/zoo.hpp"

#include "models/builder.hpp"
#include "models/zoo_internal.hpp"
#include "support/error.hpp"

namespace proof::models {

const std::vector<ModelSpec>& model_zoo() {
  static const std::vector<ModelSpec>* specs = new std::vector<ModelSpec>{
      {1, "distilbert", "DistilBERT base", "Trans.", [] { return build_distilbert_base(); }},
      {2, "sd_unet", "Stable Diffusion", "Diffu.", [] { return build_sd_unet(); }},
      {3, "efficientnet_b0", "EfficientNet B0", "CNN", [] { return build_efficientnet("b0"); }},
      {4, "efficientnet_b4", "EfficientNet B4", "CNN", [] { return build_efficientnet("b4"); }},
      {5, "efficientnetv2_t", "EfficientNetV2-T", "CNN", [] { return build_efficientnet("v2t"); }},
      {6, "efficientnetv2_s", "EfficientNetV2-S", "CNN", [] { return build_efficientnet("v2s"); }},
      {7, "mlp_mixer_b16", "MLP-Mixer (B/16)", "MLP", [] { return build_mlp_mixer_b16(); }},
      {8, "mobilenetv2_05", "MobileNetV2 0.5", "CNN", [] { return build_mobilenet_v2(0.5); }},
      {9, "mobilenetv2_10", "MobileNetV2 1.0", "CNN", [] { return build_mobilenet_v2(1.0); }},
      {10, "resnet34", "ResNet-34", "CNN", [] { return build_resnet(34); }},
      {11, "resnet50", "ResNet-50", "CNN", [] { return build_resnet(50); }},
      {12, "shufflenetv2_05", "ShuffleNetV2 x0.5", "CNN",
       [] { return build_shufflenet_v2(0.5, false); }},
      {13, "shufflenetv2_10", "ShuffleNetV2 x1.0", "CNN",
       [] { return build_shufflenet_v2(1.0, false); }},
      {14, "shufflenetv2_10_mod", "Shuf. v2 x1.0 mod", "CNN",
       [] { return build_shufflenet_v2(1.0, true); }},
      {15, "swin_tiny", "Swin tiny", "Trans.", [] { return build_swin("tiny"); }},
      {16, "swin_small", "Swin small", "Trans.", [] { return build_swin("small"); }},
      {17, "swin_base", "Swin base", "Trans.", [] { return build_swin("base"); }},
      {18, "vit_tiny", "ViT tiny", "Trans.", [] { return build_vit("tiny"); }},
      {19, "vit_small", "ViT small", "Trans.", [] { return build_vit("small"); }},
      {20, "vit_base", "ViT base", "Trans.", [] { return build_vit("base"); }},
  };
  return *specs;
}

const ModelSpec& model_spec(const std::string& id) {
  for (const ModelSpec& spec : model_zoo()) {
    if (spec.id == id) {
      return spec;
    }
  }
  for (const ModelSpec& spec : extended_model_zoo()) {
    if (spec.id == id) {
      return spec;
    }
  }
  throw ConfigError("unknown model '" + id + "'");
}

Graph build_model(const std::string& id) { return model_spec(id).build(); }

Graph build_peak_probe() {
  GraphBuilder b("peak_probe");
  // Large square MatMuls probe the compute roof; same-type Casts move big
  // contiguous buffers (pure device-to-device copies) and probe the
  // bandwidth roof.
  const std::vector<int64_t> gemm_sizes = {1024, 2048, 4096};
  const std::vector<int64_t> copy_mb = {16, 64, 256};
  std::vector<std::string> outputs;
  for (const int64_t n : gemm_sizes) {
    const std::string x = b.input("gemm_in_" + std::to_string(n), Shape{1, n, n});
    std::string y = x;
    for (int i = 0; i < 2; ++i) {
      y = b.matmul(y, b.param("probe_w", Shape{n, n}));
    }
    outputs.push_back(y);
  }
  for (const int64_t mb : copy_mb) {
    const int64_t elems = mb * 1024 * 1024 / 4;
    const std::string x = b.input("copy_in_" + std::to_string(mb), Shape{1, elems});
    std::string y = x;
    for (int i = 0; i < 2; ++i) {
      AttrMap attrs;
      attrs.set("to", std::string("fp32"));
      y = b.node("Cast", {y}, std::move(attrs));
    }
    outputs.push_back(y);
  }
  return b.finish(outputs);
}

}  // namespace proof::models

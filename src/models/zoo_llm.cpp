// Decoder-only LLM builders for autoregressive serving workloads.
//
// Unlike the encoder-style zoo models, generation has two phases with very
// different roofline positions:
//   * prefill  — the whole prompt (sequence length S) runs through the stack
//     in one pass; attention is S x S and the workload is GEMM-dominated.
//   * decode   — one token per step; attention reads the per-layer KV cache
//     [B, heads, S_past, d_head] whose S_past grows every step, so the bytes
//     (and with them the arithmetic intensity) change across positions while
//     the FLOP stays almost flat.  This is the memory-bound regime the
//     time-based roofline (arXiv:2009.04598) was made for.
//
// The decode-step graph models the cache traffic the runtime actually
// performs: the caches enter as graph inputs, the appended K/V tensors are
// graph outputs (cache write-back), and the attention matmuls read the full
// concatenated sequence.
//
// Position-parameterized fingerprint contract: build_llm_decode_step(P) must
// keep the decode position OUT of everything the shape-erased structural
// fingerprint hashes — P appears only in the graph name
// ("<id>_decode_p<P>", dropped by FingerprintMode::kStructural) and in the
// past_k_/past_v_ *input* tensor dims (rank-erased for non-params).  Node
// names, op types, attrs (reshape targets use t=1, never P) and param shapes
// are position-independent, so every position of a decode sweep maps to one
// structural fingerprint and shares one AnalysisPlan (core/analysis_plan.hpp).
// Keep it that way: baking P into a node name, an attr, or a param shape
// silently turns the sweep-decode inner loop back into full rebuilds.
#include <string>
#include <vector>

#include "models/builder.hpp"
#include "models/zoo.hpp"
#include "models/zoo_internal.hpp"
#include "support/error.hpp"

namespace proof::models {

namespace {

/// [B, T, D] -> [B, H, T, dh] head split.
std::string to_heads(GraphBuilder& b, const std::string& x, int64_t t,
                     int64_t heads, int64_t dh) {
  return b.transpose(b.reshape(x, {-1, t, heads, dh}), {0, 2, 1, 3});
}

/// MLP block: SwiGLU (llama) or plain GELU MLP (gpt2).
std::string llm_mlp(GraphBuilder& b, const std::string& x, const LlmConfig& cfg) {
  if (cfg.gated_mlp) {
    std::string gate = b.linear(x, cfg.ffn, /*bias=*/false);
    gate = b.act(gate, "Silu");
    const std::string up = b.linear(x, cfg.ffn, /*bias=*/false);
    const std::string h = b.mul(gate, up);
    return b.linear(h, cfg.dim, /*bias=*/false);
  }
  std::string h = b.linear(x, cfg.ffn);
  h = b.act(h, "Gelu");
  return b.linear(h, cfg.dim);
}

/// Rotary position embedding stand-in: one elementwise rotation per q/k.
/// The real RoPE is a fused sin/cos multiply-add; a broadcast Mul carries the
/// same (negligible) FLOP and traffic without new operator types.
std::string maybe_rope(GraphBuilder& b, const std::string& x, const LlmConfig& cfg) {
  return cfg.rotary ? b.binary_param("Mul", x, Shape{1}) : x;
}

/// Prefill self-attention over the full sequence; appends this layer's K/V
/// tensors ([B, H, S, dh]) to `cache_out` so they become graph outputs (the
/// prompt pass populates the cache the decode steps consume).
std::string prefill_attention(GraphBuilder& b, const std::string& x,
                              const LlmConfig& cfg,
                              std::vector<std::string>& cache_out) {
  const int64_t t = b.dim(x, 1);
  const int64_t dh = cfg.dim / cfg.heads;
  std::string q = to_heads(b, b.linear(x, cfg.dim, cfg.qkv_bias), t, cfg.heads, dh);
  std::string k = to_heads(b, b.linear(x, cfg.dim, cfg.qkv_bias), t, cfg.heads, dh);
  const std::string v =
      to_heads(b, b.linear(x, cfg.dim, cfg.qkv_bias), t, cfg.heads, dh);
  q = maybe_rope(b, q, cfg);
  k = maybe_rope(b, k, cfg);
  cache_out.push_back(k);
  cache_out.push_back(v);
  std::string attn = b.matmul(q, b.transpose(k, {0, 1, 3, 2}));  // [B, H, S, S]
  attn = b.binary_param("Mul", attn, Shape{1});                  // 1/sqrt(dh)
  attn = b.softmax(attn);
  std::string out = b.matmul(attn, v);                           // [B, H, S, dh]
  out = b.reshape(b.transpose(out, {0, 2, 1, 3}), {-1, t, cfg.dim});
  return b.linear(out, cfg.dim, cfg.qkv_bias);
}

/// Decode-step self-attention for one new token: reads the KV cache
/// [B, H, S_past, dh] (graph inputs `past_k_<l>` / `past_v_<l>`), appends the
/// new K/V, and attends over S_past + 1 positions.  The concatenated caches
/// go to `cache_out` (write-back outputs).
std::string decode_attention(GraphBuilder& b, const std::string& x,
                             const LlmConfig& cfg, int layer, int64_t past_len,
                             std::vector<std::string>& cache_out) {
  const int64_t dh = cfg.dim / cfg.heads;
  const std::string past_k = b.input("past_k_" + std::to_string(layer),
                                     Shape{1, cfg.heads, past_len, dh});
  const std::string past_v = b.input("past_v_" + std::to_string(layer),
                                     Shape{1, cfg.heads, past_len, dh});
  std::string q = to_heads(b, b.linear(x, cfg.dim, cfg.qkv_bias), 1, cfg.heads, dh);
  std::string k = to_heads(b, b.linear(x, cfg.dim, cfg.qkv_bias), 1, cfg.heads, dh);
  const std::string v =
      to_heads(b, b.linear(x, cfg.dim, cfg.qkv_bias), 1, cfg.heads, dh);
  q = maybe_rope(b, q, cfg);
  k = maybe_rope(b, k, cfg);
  const std::string keys = b.concat({past_k, k}, 2);      // [B, H, S+1, dh]
  const std::string values = b.concat({past_v, v}, 2);
  cache_out.push_back(keys);
  cache_out.push_back(values);
  std::string attn = b.matmul(q, b.transpose(keys, {0, 1, 3, 2}));  // [B,H,1,S+1]
  attn = b.binary_param("Mul", attn, Shape{1});
  attn = b.softmax(attn);
  std::string out = b.matmul(attn, values);               // [B, H, 1, dh]
  out = b.reshape(b.transpose(out, {0, 2, 1, 3}), {-1, 1, cfg.dim});
  return b.linear(out, cfg.dim, cfg.qkv_bias);
}

/// Embedding + position handling shared by both phases.
std::string embed_tokens(GraphBuilder& b, const LlmConfig& cfg, int64_t t) {
  const std::string ids = b.input("input_ids", Shape{1, t}, DType::kI64);
  std::string x = b.embedding(ids, cfg.vocab, cfg.dim);   // [B, T, D]
  if (!cfg.rotary) {
    // Learned absolute position embeddings (gpt2 style).
    x = b.binary_param("Add", x, Shape{1, t, cfg.dim});
  }
  return x;
}

/// Pre-LN decoder block (LayerNorm stands in for RMSNorm on llama-style
/// configs; same traffic, near-identical FLOP).
template <typename AttentionFn>
std::string decoder_block(GraphBuilder& b, std::string x, const LlmConfig& cfg,
                          AttentionFn&& attention) {
  std::string h = attention(b.layernorm(x));
  x = b.add(x, h);
  h = llm_mlp(b, b.layernorm(x), cfg);
  return b.add(x, h);
}

}  // namespace

const std::vector<LlmConfig>& llm_zoo() {
  static const std::vector<LlmConfig>* configs = new std::vector<LlmConfig>{
      // LLaMA-style 7B-ish: SwiGLU MLP, rotary positions, untied LM head.
      {"llama7b", "LLaMA-7B (decoder)", 32, 4096, 32, 11008, 32000,
       /*gated_mlp=*/true, /*rotary=*/true, /*qkv_bias=*/false,
       /*default_prefill=*/512},
      // GPT-2 small: GELU MLP, learned absolute positions, biased projections.
      {"gpt2", "GPT-2 small (decoder)", 12, 768, 12, 3072, 50257,
       /*gated_mlp=*/false, /*rotary=*/false, /*qkv_bias=*/true,
       /*default_prefill=*/512},
  };
  return *configs;
}

const LlmConfig& llm_config(const std::string& id) {
  for (const LlmConfig& cfg : llm_zoo()) {
    if (cfg.id == id) {
      return cfg;
    }
  }
  throw ConfigError("unknown LLM config '" + id + "' (known: llama7b, gpt2)");
}

Graph build_llm_prefill(const LlmConfig& cfg, int64_t seq_len) {
  PROOF_CHECK(seq_len >= 1, "prefill sequence length must be >= 1, got " << seq_len);
  PROOF_CHECK(cfg.dim % cfg.heads == 0,
              "model dim " << cfg.dim << " not divisible by heads " << cfg.heads);
  GraphBuilder b(cfg.id + "_prefill_s" + std::to_string(seq_len));
  std::string x = embed_tokens(b, cfg, seq_len);
  std::vector<std::string> cache_out;
  for (int64_t layer = 0; layer < cfg.layers; ++layer) {
    x = decoder_block(b, x, cfg, [&](const std::string& h) {
      return prefill_attention(b, h, cfg, cache_out);
    });
  }
  x = b.layernorm(x);
  // Generation only needs logits for the last position.
  x = b.slice(x, {1}, {seq_len - 1}, {seq_len});
  x = b.reshape(x, {-1, cfg.dim});
  std::vector<std::string> outputs = {b.linear(x, cfg.vocab, /*bias=*/false)};
  outputs.insert(outputs.end(), cache_out.begin(), cache_out.end());
  return b.finish(outputs);
}

const std::vector<ModelSpec>& llm_model_specs() {
  static const std::vector<ModelSpec>* specs = new std::vector<ModelSpec>{
      {0, "llama7b_prefill", "LLaMA-7B prefill (S=512)", "LLM",
       [] {
         const LlmConfig& cfg = llm_config("llama7b");
         return build_llm_prefill(cfg, cfg.default_prefill);
       }},
      {0, "llama7b_decode", "LLaMA-7B decode step (S_past=512)", "LLM",
       [] {
         const LlmConfig& cfg = llm_config("llama7b");
         return build_llm_decode_step(cfg, cfg.default_prefill);
       }},
      {0, "gpt2_prefill", "GPT-2 prefill (S=512)", "LLM",
       [] {
         const LlmConfig& cfg = llm_config("gpt2");
         return build_llm_prefill(cfg, cfg.default_prefill);
       }},
      {0, "gpt2_decode", "GPT-2 decode step (S_past=512)", "LLM",
       [] {
         const LlmConfig& cfg = llm_config("gpt2");
         return build_llm_decode_step(cfg, cfg.default_prefill);
       }},
  };
  return *specs;
}

Graph build_llm_decode_step(const LlmConfig& cfg, int64_t past_len) {
  PROOF_CHECK(past_len >= 1, "decode position must be >= 1, got " << past_len);
  PROOF_CHECK(cfg.dim % cfg.heads == 0,
              "model dim " << cfg.dim << " not divisible by heads " << cfg.heads);
  GraphBuilder b(cfg.id + "_decode_p" + std::to_string(past_len));
  std::string x = embed_tokens(b, cfg, 1);
  std::vector<std::string> cache_out;
  for (int64_t layer = 0; layer < cfg.layers; ++layer) {
    x = decoder_block(b, x, cfg, [&](const std::string& h) {
      return decode_attention(b, h, cfg, static_cast<int>(layer), past_len,
                              cache_out);
    });
  }
  x = b.layernorm(x);
  x = b.reshape(x, {-1, cfg.dim});
  std::vector<std::string> outputs = {b.linear(x, cfg.vocab, /*bias=*/false)};
  outputs.insert(outputs.end(), cache_out.begin(), cache_out.end());
  return b.finish(outputs);
}

}  // namespace proof::models

// Extended model zoo: common architectures beyond the paper's Table-3 set,
// for downstream users of the library (and for exercising the framework on
// structurally different networks: plain VGG stacks, deep bottleneck ResNets,
// full BERT with pooler).
#include "models/builder.hpp"
#include "models/zoo.hpp"
#include "models/zoo_internal.hpp"
#include "support/error.hpp"

namespace proof::models {

namespace {

Graph build_resnet_generic(const std::string& name, bool bottleneck,
                           const std::vector<int>& blocks) {
  GraphBuilder b(name);
  std::string x = b.input("input", Shape{1, 3, 224, 224});
  x = b.conv_act(x, 64, 7, 2, "Relu");
  x = b.maxpool(x, 3, 2);
  const std::vector<int64_t> planes = {64, 128, 256, 512};
  for (size_t stage = 0; stage < blocks.size(); ++stage) {
    for (int block = 0; block < blocks[stage]; ++block) {
      const int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      const int64_t p = planes[stage];
      const int64_t out_ch = bottleneck ? p * 4 : p;
      const std::string identity = x;
      std::string y;
      if (bottleneck) {
        y = b.conv_act(x, p, 1, 1, "Relu");
        y = b.conv_act(y, p, 3, stride, "Relu");
        y = b.conv(y, out_ch, 1, 1);
      } else {
        y = b.conv_act(x, p, 3, stride, "Relu");
        y = b.conv(y, p, 3, 1);
      }
      std::string skip = identity;
      if (stride != 1 || b.channels(identity) != out_ch) {
        skip = b.conv(identity, out_ch, 1, stride);
      }
      x = b.act(b.add(y, skip), "Relu");
    }
  }
  std::string head = b.global_avgpool(x);
  head = b.flatten(head);
  return b.finish({b.linear(head, 1000)});
}

Graph build_vgg16() {
  GraphBuilder b("vgg16");
  std::string x = b.input("input", Shape{1, 3, 224, 224});
  const std::vector<std::vector<int64_t>> stages = {
      {64, 64}, {128, 128}, {256, 256, 256}, {512, 512, 512}, {512, 512, 512}};
  for (const auto& stage : stages) {
    for (const int64_t ch : stage) {
      x = b.conv_act(x, ch, 3, 1, "Relu");
    }
    x = b.maxpool(x, 2, 2, 0);
  }
  x = b.flatten(x);
  x = b.act(b.linear(x, 4096), "Relu");
  x = b.act(b.linear(x, 4096), "Relu");
  return b.finish({b.linear(x, 1000)});
}

/// BERT-base encoder (12 layers, hidden 768, seq 128) with the [CLS] pooler.
Graph build_bert_base() {
  constexpr int64_t kDim = 768;
  constexpr int64_t kHeads = 12;
  constexpr int64_t kFfn = 3072;
  constexpr int64_t kSeq = 128;
  constexpr int64_t kVocab = 30522;
  GraphBuilder b("bert_base");
  const std::string ids = b.input("input_ids", Shape{1, kSeq}, DType::kI64);
  const std::string type_ids =
      b.input("token_type_ids", Shape{1, kSeq}, DType::kI64);
  std::string x = b.embedding(ids, kVocab, kDim);
  x = b.add(x, b.embedding(type_ids, 2, kDim));
  x = b.binary_param("Add", x, Shape{1, kSeq, kDim});  // position embeddings
  x = b.layernorm(x);
  for (int layer = 0; layer < 12; ++layer) {
    // Post-LN, separate q/k/v projections (BERT export style).
    const int64_t dh = kDim / kHeads;
    std::string q = b.linear(x, kDim);
    std::string k = b.linear(x, kDim);
    std::string v = b.linear(x, kDim);
    q = b.transpose(b.reshape(q, {-1, kSeq, kHeads, dh}), {0, 2, 1, 3});
    k = b.transpose(b.reshape(k, {-1, kSeq, kHeads, dh}), {0, 2, 3, 1});
    v = b.transpose(b.reshape(v, {-1, kSeq, kHeads, dh}), {0, 2, 1, 3});
    std::string attn = b.binary_param("Mul", b.matmul(q, k), Shape{1});
    attn = b.softmax(attn);
    std::string ctx = b.matmul(attn, v);
    ctx = b.reshape(b.transpose(ctx, {0, 2, 1, 3}), {-1, kSeq, kDim});
    ctx = b.linear(ctx, kDim);
    x = b.layernorm(b.add(x, ctx));
    std::string h = b.linear(x, kFfn);
    h = b.act(h, "Gelu");
    h = b.linear(h, kDim);
    x = b.layernorm(b.add(x, h));
  }
  // Pooler: Tanh(W * hidden[CLS]).
  std::string cls = b.slice(x, {1}, {0}, {1});
  cls = b.reshape(cls, {0, kDim});
  cls = b.act(b.linear(cls, kDim), "Tanh");
  return b.finish({x, cls});
}

}  // namespace

const std::vector<ModelSpec>& extended_model_zoo() {
  static const std::vector<ModelSpec>* specs = [] {
    auto* v = new std::vector<ModelSpec>{
        {0, "resnet18", "ResNet-18", "CNN",
         [] { return build_resnet_generic("resnet18", false, {2, 2, 2, 2}); }},
        {0, "resnet101", "ResNet-101", "CNN",
         [] { return build_resnet_generic("resnet101", true, {3, 4, 23, 3}); }},
        {0, "vgg16", "VGG-16", "CNN", [] { return build_vgg16(); }},
        {0, "bert_base", "BERT base", "Trans.",
         [] { return build_bert_base(); }},
    };
    const std::vector<ModelSpec>& llm = llm_model_specs();
    v->insert(v->end(), llm.begin(), llm.end());
    return v;
  }();
  return *specs;
}

}  // namespace proof::models

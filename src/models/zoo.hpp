// Model zoo: in-library builders for the paper's 20 evaluation models
// (Table 3) plus the roofline-peak probe.
//
// The paper exports these models from PyTorch to ONNX; this reproduction
// constructs the equivalent graphs directly (BN folded into convolutions, as
// eval-mode export produces).  All CV models use 224x224 inputs; DistilBERT
// uses sequence length 512; the Stable-Diffusion UNet runs one step at a
// 128x128 latent.  Node counts differ from Table 3 where PyTorch's export
// ceremony (Shape/Constant/Gather chains) would add bookkeeping nodes;
// parameters and GFLOP match (see EXPERIMENTS.md).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace proof::models {

struct ModelSpec {
  int table3_index = 0;        ///< "#" column of Table 3 (0 = not in table)
  std::string id;              ///< zoo key, e.g. "resnet50"
  std::string display;         ///< "ResNet-50"
  std::string type;            ///< "CNN" / "Trans." / "MLP" / "Diffu."
  std::function<Graph()> build;
};

/// All Table 3 models in table order (indices 1..20).
[[nodiscard]] const std::vector<ModelSpec>& model_zoo();

/// Additional common architectures beyond the paper's set (table3_index 0):
/// ResNet-18/101, VGG-16, BERT base.  `build_model`/`model_spec` search both
/// registries.
[[nodiscard]] const std::vector<ModelSpec>& extended_model_zoo();

/// Builds a model by zoo id; throws ConfigError for unknown ids.
[[nodiscard]] Graph build_model(const std::string& id);

/// Spec lookup by id; throws ConfigError for unknown ids.
[[nodiscard]] const ModelSpec& model_spec(const std::string& id);

/// The pseudo model used by the achieved-peak test (Table 6): a chain of
/// large MatMuls and memory-copy operators of several sizes.
[[nodiscard]] Graph build_peak_probe();

// --- LLM serving workloads (zoo_llm.cpp) ------------------------------------

/// Decoder-only transformer configuration for autoregressive generation.
/// One config yields two graph families: a prefill graph at sequence length S
/// and a decode-step graph whose attention reads a per-layer KV cache
/// [B, heads, S_past, d_head] — bytes grow with the decode position while
/// FLOPs stay nearly flat, which is what makes decode memory-bound.
struct LlmConfig {
  std::string id;         ///< zoo key, e.g. "llama7b"
  std::string display;    ///< "LLaMA-7B (decoder)"
  int64_t layers = 0;
  int64_t dim = 0;        ///< model (hidden) dimension
  int64_t heads = 0;
  int64_t ffn = 0;        ///< MLP inner dimension
  int64_t vocab = 0;
  bool gated_mlp = false; ///< SwiGLU (llama) vs plain GELU MLP (gpt2)
  bool rotary = false;    ///< RoPE vs learned absolute position embeddings
  bool qkv_bias = false;  ///< biased attention/MLP projections (gpt2 style)
  int64_t default_prefill = 512;  ///< prompt length used by the zoo entries
};

/// The registered decoder-only configs (llama7b, gpt2).
[[nodiscard]] const std::vector<LlmConfig>& llm_zoo();

/// Config lookup by id; throws ConfigError for unknown ids.
[[nodiscard]] const LlmConfig& llm_config(const std::string& id);

/// Prompt pass over `seq_len` tokens; outputs last-position logits plus the
/// populated per-layer K/V cache tensors.
[[nodiscard]] Graph build_llm_prefill(const LlmConfig& cfg, int64_t seq_len);

/// One generation step at decode position `past_len` (cache already holds
/// `past_len` tokens); outputs next-token logits plus the appended caches.
[[nodiscard]] Graph build_llm_decode_step(const LlmConfig& cfg, int64_t past_len);

}  // namespace proof::models

// Model zoo: in-library builders for the paper's 20 evaluation models
// (Table 3) plus the roofline-peak probe.
//
// The paper exports these models from PyTorch to ONNX; this reproduction
// constructs the equivalent graphs directly (BN folded into convolutions, as
// eval-mode export produces).  All CV models use 224x224 inputs; DistilBERT
// uses sequence length 512; the Stable-Diffusion UNet runs one step at a
// 128x128 latent.  Node counts differ from Table 3 where PyTorch's export
// ceremony (Shape/Constant/Gather chains) would add bookkeeping nodes;
// parameters and GFLOP match (see EXPERIMENTS.md).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace proof::models {

struct ModelSpec {
  int table3_index = 0;        ///< "#" column of Table 3 (0 = not in table)
  std::string id;              ///< zoo key, e.g. "resnet50"
  std::string display;         ///< "ResNet-50"
  std::string type;            ///< "CNN" / "Trans." / "MLP" / "Diffu."
  std::function<Graph()> build;
};

/// All Table 3 models in table order (indices 1..20).
[[nodiscard]] const std::vector<ModelSpec>& model_zoo();

/// Additional common architectures beyond the paper's set (table3_index 0):
/// ResNet-18/101, VGG-16, BERT base.  `build_model`/`model_spec` search both
/// registries.
[[nodiscard]] const std::vector<ModelSpec>& extended_model_zoo();

/// Builds a model by zoo id; throws ConfigError for unknown ids.
[[nodiscard]] Graph build_model(const std::string& id);

/// Spec lookup by id; throws ConfigError for unknown ids.
[[nodiscard]] const ModelSpec& model_spec(const std::string& id);

/// The pseudo model used by the achieved-peak test (Table 6): a chain of
/// large MatMuls and memory-copy operators of several sizes.
[[nodiscard]] Graph build_peak_probe();

}  // namespace proof::models

// Model design summary (torchsummary-style): per-node op type, output shape,
// parameters and analytical FLOP — the "model design" side of the full-stack
// view, before any backend optimization.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace proof::models {

/// Renders a per-node table plus totals for a shape-inferred graph.
/// `max_rows` = 0 prints every node.
[[nodiscard]] std::string model_summary(const Graph& graph, size_t max_rows = 0);

}  // namespace proof::models

// Stable Diffusion UNet (v1.x architecture, one denoising step).
//
// Inputs: a 4-channel latent (128x128, matching the paper's Figure-4
// footnote), a precomputed 320-wide sinusoidal timestep embedding and the
// 77x768 text-encoder context.  Structure: channel multipliers [1,2,4,4] on
// 320 base channels, 2 ResBlocks per level, spatial transformers (self +
// cross attention + GEGLU FF) on the first three levels, symmetric decoder
// with skip concatenations.
#include "models/builder.hpp"
#include "models/zoo_internal.hpp"

#include <vector>

namespace proof::models {

namespace {

constexpr int64_t kBase = 320;
constexpr int64_t kTembDim = 1280;
constexpr int64_t kContextDim = 768;
constexpr int64_t kHeads = 8;

struct UNetCtx {
  GraphBuilder* b;
  std::string temb;     ///< [N, 1280]
  std::string context;  ///< [N, 77, 768]
};

std::string res_block(UNetCtx& u, const std::string& x, int64_t out_ch) {
  GraphBuilder& b = *u.b;
  const int64_t in_ch = b.channels(x);
  std::string h = b.groupnorm(x, 32);
  h = b.act(h, "Silu");
  h = b.conv(h, out_ch, 3, 1);
  // Timestep conditioning: per-channel bias from the embedding.
  std::string t = b.act(u.temb, "Silu");
  t = b.linear(t, out_ch);
  t = b.reshape(t, {0, out_ch, 1, 1});
  h = b.add(h, t);
  h = b.groupnorm(h, 32);
  h = b.act(h, "Silu");
  h = b.conv(h, out_ch, 3, 1);
  std::string skip = x;
  if (in_ch != out_ch) {
    skip = b.conv(x, out_ch, 1, 1);
  }
  return b.add(h, skip);
}

std::string cross_attention(UNetCtx& u, const std::string& x,
                            const std::string& kv_source) {
  GraphBuilder& b = *u.b;
  const int64_t t = b.dim(x, 1);
  const int64_t d = b.dim(x, 2);
  const int64_t tk = b.dim(kv_source, 1);
  const int64_t dh = d / kHeads;
  std::string q = b.linear(x, d, /*bias=*/false);
  std::string k = b.linear(kv_source, d, /*bias=*/false);
  std::string v = b.linear(kv_source, d, /*bias=*/false);
  q = b.transpose(b.reshape(q, {-1, t, kHeads, dh}), {0, 2, 1, 3});
  k = b.transpose(b.reshape(k, {-1, tk, kHeads, dh}), {0, 2, 3, 1});
  v = b.transpose(b.reshape(v, {-1, tk, kHeads, dh}), {0, 2, 1, 3});
  std::string attn = b.binary_param("Mul", b.matmul(q, k), Shape{1});
  attn = b.softmax(attn);
  std::string out = b.matmul(attn, v);
  out = b.reshape(b.transpose(out, {0, 2, 1, 3}), {-1, t, d});
  return b.linear(out, d);
}

std::string spatial_transformer(UNetCtx& u, const std::string& x) {
  GraphBuilder& b = *u.b;
  const int64_t c = b.channels(x);
  const int64_t h = b.dim(x, 2);
  const int64_t w = b.dim(x, 3);
  std::string y = b.groupnorm(x, 32);
  y = b.conv(y, c, 1, 1);  // proj_in
  y = b.transpose(b.reshape(y, {0, c, h * w}), {0, 2, 1});  // [N, HW, C]

  // Basic transformer block: self-attn, cross-attn, GEGLU feed-forward.
  std::string n = b.layernorm(y);
  y = b.add(y, cross_attention(u, n, n));
  n = b.layernorm(y);
  y = b.add(y, cross_attention(u, n, u.context));
  n = b.layernorm(y);
  std::string ff = b.linear(n, 8 * c);
  const auto gates = b.split(ff, 2, 2);
  ff = b.mul(gates[0], b.act(gates[1], "Gelu"));
  ff = b.linear(ff, c);
  y = b.add(y, ff);

  y = b.reshape(b.transpose(y, {0, 2, 1}), {0, c, h, w});
  y = b.conv(y, c, 1, 1);  // proj_out
  return b.add(y, x);
}

std::string upsample(UNetCtx& u, const std::string& x) {
  GraphBuilder& b = *u.b;
  AttrMap attrs;
  attrs.set("scales", std::vector<double>{1.0, 1.0, 2.0, 2.0});
  attrs.set("mode", std::string("nearest"));
  std::string y = b.node("Resize", {x}, std::move(attrs));
  return b.conv(y, b.channels(x), 3, 1);
}

}  // namespace

Graph build_sd_unet() {
  GraphBuilder b("sd_unet");
  UNetCtx u{&b, "", ""};
  std::string x = b.input("latent", Shape{1, 4, 128, 128});
  const std::string temb_in = b.input("t_emb", Shape{1, kBase});
  u.context = b.input("context", Shape{1, 77, kContextDim});

  // Timestep MLP: 320 -> 1280 -> 1280.
  std::string temb = b.linear(temb_in, kTembDim);
  temb = b.act(temb, "Silu");
  u.temb = b.linear(temb, kTembDim);

  const std::vector<int64_t> mult = {1, 2, 4, 4};
  const std::vector<bool> with_attn = {true, true, true, false};
  constexpr int kResPerLevel = 2;

  x = b.conv(x, kBase, 3, 1);
  std::vector<std::string> skips = {x};

  // Encoder.
  for (size_t level = 0; level < mult.size(); ++level) {
    const int64_t ch = kBase * mult[level];
    for (int i = 0; i < kResPerLevel; ++i) {
      x = res_block(u, x, ch);
      if (with_attn[level]) {
        x = spatial_transformer(u, x);
      }
      skips.push_back(x);
    }
    if (level + 1 < mult.size()) {
      x = b.conv(x, ch, 3, 2);  // downsample
      skips.push_back(x);
    }
  }

  // Middle.
  x = res_block(u, x, kBase * mult.back());
  x = spatial_transformer(u, x);
  x = res_block(u, x, kBase * mult.back());

  // Decoder.
  for (size_t idx = 0; idx < mult.size(); ++idx) {
    const size_t level = mult.size() - 1 - idx;
    const int64_t ch = kBase * mult[level];
    for (int i = 0; i < kResPerLevel + 1; ++i) {
      x = b.concat({x, skips.back()}, 1);
      skips.pop_back();
      x = res_block(u, x, ch);
      if (with_attn[level]) {
        x = spatial_transformer(u, x);
      }
    }
    if (level > 0) {
      x = upsample(u, x);
    }
  }

  x = b.groupnorm(x, 32);
  x = b.act(x, "Silu");
  x = b.conv(x, 4, 3, 1);
  return b.finish({x});
}

}  // namespace proof::models

// CNN model builders: ResNet, MobileNetV2, ShuffleNetV2 (incl. the §4.5
// modified variant), EfficientNet B0/B4 and EfficientNetV2 T/S.
//
// All graphs mirror eval-mode PyTorch ONNX exports with BatchNorm folded into
// the convolutions (bias present), at 224x224 input resolution.
#include <algorithm>
#include <cmath>

#include "models/builder.hpp"
#include "models/zoo_internal.hpp"
#include "support/error.hpp"

namespace proof::models {

namespace {

/// Rounds channel counts to multiples of `divisor`, never dropping more than
/// 10 % (the standard make_divisible used by the MobileNet/EfficientNet
/// families).
int64_t make_divisible(double value, int64_t divisor = 8) {
  int64_t rounded =
      std::max<int64_t>(divisor, static_cast<int64_t>(value + divisor / 2.0) /
                                     divisor * divisor);
  if (static_cast<double>(rounded) < 0.9 * value) {
    rounded += divisor;
  }
  return rounded;
}

std::string classifier_head(GraphBuilder& b, const std::string& x, int64_t classes) {
  std::string y = b.global_avgpool(x);
  y = b.flatten(y);
  return b.linear(y, classes);
}

}  // namespace

// ---------------------------------------------------------------------------
// ResNet-34 / ResNet-50
// ---------------------------------------------------------------------------

Graph build_resnet(int depth) {
  PROOF_CHECK(depth == 34 || depth == 50, "unsupported ResNet depth " << depth);
  const bool bottleneck = depth == 50;
  GraphBuilder b(bottleneck ? "resnet50" : "resnet34");
  std::string x = b.input("input", Shape{1, 3, 224, 224});
  x = b.conv_act(x, 64, 7, 2, "Relu");
  x = b.maxpool(x, 3, 2);

  const std::vector<int> blocks = {3, 4, 6, 3};
  const std::vector<int64_t> planes = {64, 128, 256, 512};
  for (size_t stage = 0; stage < blocks.size(); ++stage) {
    for (int block = 0; block < blocks[stage]; ++block) {
      const int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      const int64_t p = planes[stage];
      const int64_t out_ch = bottleneck ? p * 4 : p;
      const std::string identity = x;
      std::string y;
      if (bottleneck) {
        y = b.conv_act(x, p, 1, 1, "Relu");
        y = b.conv_act(y, p, 3, stride, "Relu");
        y = b.conv(y, out_ch, 1, 1);
      } else {
        y = b.conv_act(x, p, 3, stride, "Relu");
        y = b.conv(y, p, 3, 1);
      }
      std::string skip = identity;
      if (stride != 1 || b.channels(identity) != out_ch) {
        skip = b.conv(identity, out_ch, 1, stride);
      }
      x = b.act(b.add(y, skip), "Relu");
    }
  }
  return b.finish({classifier_head(b, x, 1000)});
}

// ---------------------------------------------------------------------------
// MobileNetV2
// ---------------------------------------------------------------------------

Graph build_mobilenet_v2(double width_mult) {
  GraphBuilder b(width_mult == 1.0 ? "mobilenetv2_10" : "mobilenetv2_05");
  std::string x = b.input("input", Shape{1, 3, 224, 224});

  const auto scaled = [&](int64_t c) { return make_divisible(c * width_mult); };
  const auto relu6 = [&](const std::string& t) { return b.clip(t, 0.0, 6.0); };

  x = relu6(b.conv(x, scaled(32), 3, 2));

  // (expand t, out channels c, repeats n, stride s)
  struct Stage {
    int64_t t, c;
    int n, s;
  };
  const std::vector<Stage> stages = {{1, 16, 1, 1}, {6, 24, 2, 2},  {6, 32, 3, 2},
                                     {6, 64, 4, 2}, {6, 96, 3, 1},  {6, 160, 3, 2},
                                     {6, 320, 1, 1}};
  for (const Stage& stage : stages) {
    for (int i = 0; i < stage.n; ++i) {
      const int64_t stride = i == 0 ? stage.s : 1;
      const int64_t in_ch = b.channels(x);
      const int64_t out_ch = scaled(stage.c);
      std::string y = x;
      if (stage.t != 1) {
        y = relu6(b.conv(y, in_ch * stage.t, 1, 1));
      }
      y = relu6(b.dwconv(y, 3, stride));
      y = b.conv(y, out_ch, 1, 1);  // linear projection
      if (stride == 1 && in_ch == out_ch) {
        y = b.add(y, x);
      }
      x = y;
    }
  }
  const int64_t last = std::max<int64_t>(1280, scaled(1280));
  x = relu6(b.conv(x, last, 1, 1));
  return b.finish({classifier_head(b, x, 1000)});
}

// ---------------------------------------------------------------------------
// ShuffleNetV2 (original + the paper's §4.5 modified variant)
// ---------------------------------------------------------------------------

namespace {

/// Channel shuffle with 2 groups: view + transpose + view (the Transpose and
/// the copies it implies are exactly what §4.5 identifies as the bottleneck).
std::string channel_shuffle(GraphBuilder& b, const std::string& x) {
  const int64_t c = b.channels(x);
  const int64_t h = b.dim(x, 2);
  const int64_t w = b.dim(x, 3);
  std::string y = b.reshape(x, {0, 2, c / 2, h, w});
  y = b.transpose(y, {0, 2, 1, 3, 4});
  return b.reshape(y, {0, c, h, w});
}

}  // namespace

Graph build_shufflenet_v2(double width_mult, bool modified) {
  std::string name = width_mult == 1.0 ? "shufflenetv2_10" : "shufflenetv2_05";
  if (modified) {
    name += "_mod";
  }
  GraphBuilder b(name);
  std::string x = b.input("input", Shape{1, 3, 224, 224});

  std::vector<int64_t> stage_ch;
  if (width_mult == 0.5) {
    stage_ch = {48, 96, 192};
  } else {
    PROOF_CHECK(width_mult == 1.0, "unsupported ShuffleNetV2 width " << width_mult);
    stage_ch = {116, 232, 464};
  }

  x = b.conv_act(x, 24, 3, 2, "Relu");
  x = b.maxpool(x, 3, 2);

  const std::vector<int> repeats = {4, 8, 4};
  for (size_t stage = 0; stage < repeats.size(); ++stage) {
    const int64_t out_ch = stage_ch[stage];
    const int64_t branch = out_ch / 2;
    for (int block = 0; block < repeats[stage]; ++block) {
      if (block == 0) {
        // Downsampling block (kept unchanged in the modified model).
        const int64_t in_ch = b.channels(x);
        std::string b1 = b.dwconv(x, 3, 2);
        b1 = b.conv_act(b1, branch, 1, 1, "Relu");
        std::string b2 = b.conv_act(x, branch, 1, 1, "Relu");
        b2 = b.dwconv(b2, 3, 2);
        b2 = b.conv_act(b2, branch, 1, 1, "Relu");
        (void)in_ch;
        x = channel_shuffle(b, b.concat({b1, b2}, 1));
      } else if (!modified) {
        // Original non-downsampling block: split / branch / concat / shuffle.
        const auto halves = b.split(x, 1, 2);
        std::string y = b.conv_act(halves[1], branch, 1, 1, "Relu");
        y = b.dwconv(y, 3, 1);
        y = b.conv_act(y, branch, 1, 1, "Relu");
        x = channel_shuffle(b, b.concat({halves[0], y}, 1));
      } else {
        // §4.5 modification (Figure 7): drop the Shuffle; the first pw conv
        // reads all channels (C -> C/2), the last writes all channels
        // (C/2 -> C), and an explicit residual Add replaces the implicit
        // identity branch.
        std::string y = b.conv_act(x, branch, 1, 1, "Relu");
        y = b.dwconv(y, 3, 1);
        y = b.conv_act(y, out_ch, 1, 1, "Relu");
        x = b.add(y, x);
      }
    }
  }
  x = b.conv_act(x, 1024, 1, 1, "Relu");
  return b.finish({classifier_head(b, x, 1000)});
}

// ---------------------------------------------------------------------------
// EfficientNet B0/B4 and EfficientNetV2 T/S
// ---------------------------------------------------------------------------

namespace {

struct EffStage {
  bool fused;      ///< FusedMBConv (V2 early stages) vs MBConv
  int64_t expand;  ///< expansion ratio
  int64_t ch;      ///< output channels
  int repeats;
  int64_t stride;
  int64_t kernel;
  bool se;         ///< squeeze-excitation present
};

std::string squeeze_excite(GraphBuilder& b, const std::string& x, int64_t se_ch) {
  std::string s = b.global_avgpool(x);
  s = b.act(b.conv(s, se_ch, 1, 1), "Silu");
  s = b.act(b.conv(s, b.channels(x), 1, 1), "Sigmoid");
  return b.mul(x, s);
}

std::string mbconv(GraphBuilder& b, const std::string& x, const EffStage& cfg,
                   int64_t stride) {
  const int64_t in_ch = b.channels(x);
  const int64_t exp_ch = in_ch * cfg.expand;
  std::string y = x;
  if (cfg.fused) {
    if (cfg.expand != 1) {
      y = b.act(b.conv(y, exp_ch, cfg.kernel, stride), "Silu");
      y = b.conv(y, cfg.ch, 1, 1);
    } else {
      y = b.act(b.conv(y, cfg.ch, cfg.kernel, stride), "Silu");
    }
  } else {
    if (cfg.expand != 1) {
      y = b.act(b.conv(y, exp_ch, 1, 1), "Silu");
    }
    y = b.act(b.dwconv(y, cfg.kernel, stride), "Silu");
    if (cfg.se) {
      y = squeeze_excite(b, y, std::max<int64_t>(8, in_ch / 4));
    }
    y = b.conv(y, cfg.ch, 1, 1);
  }
  if (stride == 1 && in_ch == cfg.ch) {
    y = b.add(y, x);
  }
  return y;
}

Graph build_efficientnet_impl(const std::string& name, int64_t stem_ch,
                              const std::vector<EffStage>& stages,
                              int64_t head_ch) {
  GraphBuilder b(name);
  std::string x = b.input("input", Shape{1, 3, 224, 224});
  x = b.act(b.conv(x, stem_ch, 3, 2), "Silu");
  for (const EffStage& stage : stages) {
    for (int i = 0; i < stage.repeats; ++i) {
      x = mbconv(b, x, stage, i == 0 ? stage.stride : 1);
    }
  }
  x = b.act(b.conv(x, head_ch, 1, 1), "Silu");
  return b.finish({classifier_head(b, x, 1000)});
}

}  // namespace

Graph build_efficientnet(const std::string& variant) {
  if (variant == "b0" || variant == "b4") {
    const double width = variant == "b0" ? 1.0 : 1.4;
    const double depth = variant == "b0" ? 1.0 : 1.8;
    const auto w = [&](int64_t c) { return make_divisible(c * width); };
    const auto d = [&](int repeats) {
      return static_cast<int>(std::ceil(repeats * depth));
    };
    const std::vector<EffStage> stages = {
        {false, 1, w(16), d(1), 1, 3, true},  {false, 6, w(24), d(2), 2, 3, true},
        {false, 6, w(40), d(2), 2, 5, true},  {false, 6, w(80), d(3), 2, 3, true},
        {false, 6, w(112), d(3), 1, 5, true}, {false, 6, w(192), d(4), 2, 5, true},
        {false, 6, w(320), d(1), 1, 3, true}};
    return build_efficientnet_impl("efficientnet_" + variant, w(32), stages,
                                   std::max<int64_t>(1280, w(1280)));
  }
  if (variant == "v2t") {
    const std::vector<EffStage> stages = {
        {true, 1, 24, 2, 1, 3, false},  {true, 4, 40, 4, 2, 3, false},
        {true, 4, 48, 4, 2, 3, false},  {false, 4, 104, 6, 2, 3, true},
        {false, 6, 128, 9, 1, 3, true}, {false, 6, 208, 14, 2, 3, true}};
    return build_efficientnet_impl("efficientnetv2_t", 24, stages, 1024);
  }
  if (variant == "v2s") {
    const std::vector<EffStage> stages = {
        {true, 1, 24, 2, 1, 3, false},  {true, 4, 48, 4, 2, 3, false},
        {true, 4, 64, 4, 2, 3, false},  {false, 4, 128, 6, 2, 3, true},
        {false, 6, 160, 9, 1, 3, true}, {false, 6, 256, 15, 2, 3, true}};
    return build_efficientnet_impl("efficientnetv2_s", 24, stages, 1280);
  }
  PROOF_FAIL("unknown EfficientNet variant '" << variant << "'");
}

}  // namespace proof::models

#include "models/summary.hpp"

#include <set>
#include <sstream>

#include "ops/op_def.hpp"
#include "report/table.hpp"
#include "support/units.hpp"

namespace proof::models {

std::string model_summary(const Graph& graph, size_t max_rows) {
  report::TextTable table({"node", "op", "output shape", "params", "GFLOP",
                           "memory (MB)", "class"});
  double total_flops = 0.0;
  double total_bytes = 0.0;
  size_t rows = 0;
  for (const NodeId id : graph.topo_order()) {
    const Node& node = graph.node(id);
    const OpDef& def = op_def_for(node);
    const OpContext ctx(graph, node);
    const double flops = def.flops(ctx);
    const MemoryEstimate mem = def.memory(ctx);
    total_flops += flops;
    total_bytes += mem.total();
    int64_t params = 0;
    for (const std::string& in : node.inputs) {
      if (graph.has_tensor(in) && graph.tensor(in).is_param) {
        params += graph.tensor(in).numel();
      }
    }
    if (max_rows > 0 && rows >= max_rows) {
      continue;  // keep accumulating totals, stop printing
    }
    ++rows;
    table.add_row({node.name, node.op_type,
                   node.outputs.empty()
                       ? std::string("-")
                       : graph.tensor(node.outputs[0]).shape.to_string(),
                   params > 0 ? std::to_string(params) : std::string("-"),
                   units::fixed(flops / 1e9, 3),
                   units::fixed(mem.total() / 1e6, 2),
                   std::string(op_class_name(def.op_class(ctx)))});
  }

  std::ostringstream out;
  out << table.to_string();
  if (max_rows > 0 && graph.num_nodes() > max_rows) {
    out << "... (" << graph.num_nodes() - max_rows << " more nodes)\n";
  }
  // Weight params: count every param tensor once (shared weights included).
  out << "total: " << graph.num_nodes() << " nodes, "
      << units::fixed(static_cast<double>(graph.param_count()) / 1e6, 3)
      << "M params (" << units::megabytes(graph.param_bytes()) << "), "
      << units::gflop(total_flops) << ", "
      << units::megabytes(total_bytes) << " unfused traffic\n";
  return out.str();
}

}  // namespace proof::models

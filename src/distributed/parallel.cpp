#include "distributed/parallel.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/shape_inference.hpp"
#include "hw/platform.hpp"
#include "report/table.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "support/units.hpp"

namespace proof::distributed {

InterconnectDesc nvlink4() { return {"NVLink 4", 450e9, 2e-6}; }
InterconnectDesc pcie_gen4_x16() { return {"PCIe 4.0 x16", 32e9, 5e-6}; }
InterconnectDesc ethernet_100g() { return {"100G Ethernet", 12.5e9, 30e-6}; }

namespace {

/// Bytes of activations crossing a cut after the layer at `cut` (inclusive
/// prefix): external outputs of the prefix node set, on the deployed graph.
double crossing_bytes(const Graph& graph, const std::vector<LayerReport>& layers,
                      size_t cut) {
  std::vector<NodeId> prefix_nodes;
  for (size_t i = 0; i <= cut; ++i) {
    for (const std::string& name : layers[i].model_nodes) {
      const NodeId id = graph.find_node(name);
      if (id != kInvalidNode) {
        prefix_nodes.push_back(id);
      }
    }
  }
  if (prefix_nodes.empty()) {
    return 0.0;
  }
  const Graph::Boundary boundary = graph.boundary(prefix_nodes);
  double bytes = 0.0;
  for (const std::string& tensor : boundary.outputs) {
    bytes += static_cast<double>(graph.tensor(tensor).size_bytes());
  }
  return bytes;
}

/// Pipeline estimate from an already computed base profile; `deployed` is the
/// model with batch/dtype applied (for crossing-tensor sizes).  Shared by
/// profile_pipeline and the stage-count search so candidates reuse one run.
PipelineReport pipeline_from_base(const ProfileReport& base,
                                  const Graph& deployed, int num_stages,
                                  const InterconnectDesc& link,
                                  int microbatches) {
  PROOF_CHECK(num_stages >= 1, "need at least one stage");
  PROOF_CHECK(microbatches >= 1, "need at least one microbatch");
  PROOF_CHECK(!base.layers.empty(), "model produced no layers");

  // Greedy balanced contiguous partition by per-layer latency.
  const double target = base.total_latency_s / num_stages;
  PipelineReport out;
  StageReport stage;
  stage.device = 0;
  stage.first_layer = 0;
  double acc = 0.0;
  for (size_t i = 0; i < base.layers.size(); ++i) {
    acc += base.layers[i].latency_s;
    stage.compute_s += base.layers[i].latency_s;
    stage.last_layer = i;
    const bool last_stage = stage.device == num_stages - 1;
    if (!last_stage && acc >= target * (stage.device + 1) &&
        i + 1 < base.layers.size()) {
      stage.send_bytes = crossing_bytes(deployed, base.layers, i);
      stage.comm_s = link.latency_s + stage.send_bytes / link.bandwidth;
      out.stages.push_back(stage);
      stage = StageReport{};
      stage.device = out.stages.back().device + 1;
      stage.first_layer = i + 1;
    }
  }
  out.stages.push_back(stage);

  for (const StageReport& s : out.stages) {
    out.stage_time_s = std::max(out.stage_time_s, s.compute_s + s.comm_s);
    out.single_batch_latency_s += s.compute_s + s.comm_s;
  }
  // Steady-state: one batch completes per stage_time; pipeline fill adds the
  // classic (S-1)/(M+S-1) bubble.
  const double stages_d = static_cast<double>(out.stages.size());
  const double micro_d = static_cast<double>(microbatches);
  out.bubble_fraction = (stages_d - 1.0) / (micro_d + stages_d - 1.0);
  const double effective_time = out.stage_time_s / (1.0 - out.bubble_fraction);
  out.steady_throughput_per_s =
      static_cast<double>(base.options.batch) / effective_time;
  const double single_throughput = base.throughput_per_s();
  out.speedup_vs_single = out.steady_throughput_per_s / single_throughput;
  out.scaling_efficiency = out.speedup_vs_single / stages_d;
  return out;
}

/// The model with the build batch/dtype applied, matching the engine's
/// analysis graph tensor shapes.
Graph deploy_graph(const Graph& model, const ProfileOptions& options) {
  Graph deployed = model;
  set_batch_size(deployed, options.batch);
  convert_float_dtype(deployed, options.dtype);
  return deployed;
}

/// Tensor-parallel estimate from an already computed base profile.
TensorParallelReport tensor_parallel_from_base(const ProfileReport& base,
                                               const hw::PlatformDesc& platform,
                                               int ways,
                                               const InterconnectDesc& link) {
  PROOF_CHECK(ways >= 1, "need at least one device");
  TensorParallelReport out;
  out.ways = ways;
  const double n = static_cast<double>(ways);
  for (size_t i = 0; i < base.layers.size(); ++i) {
    const LayerReport& layer = base.layers[i];
    // Megatron-style sharding: between synchronization points every layer's
    // work (attention heads, activations, transposes) splits across devices;
    // normalization layers and backend conversion layers stay replicated.
    const bool replicated = layer.cls == OpClass::kNormalization ||
                            layer.cls == OpClass::kSoftmax || layer.is_reorder;
    const bool matrix = layer.cls == OpClass::kGemm ||
                        layer.cls == OpClass::kConv ||
                        layer.cls == OpClass::kConvPointwise;
    if (!replicated && ways > 1) {
      out.compute_s +=
          std::max(layer.latency_s / n, platform.kernel_overhead_s);
    } else {
      out.compute_s += layer.latency_s;
    }
    if (matrix && ways > 1) {
      // One ring allreduce per matrix-bearing layer (its row-parallel output
      // projection): 2(N-1)/N of the output activations over the link.
      ++out.sharded_layers;
      const double output_bytes =
          base.roofline.layers[i].bytes * 0.15;  // output share of traffic
      out.allreduce_s +=
          link.latency_s + 2.0 * (n - 1.0) / n * output_bytes / link.bandwidth;
    }
  }
  out.total_latency_s = out.compute_s + out.allreduce_s;
  out.speedup_vs_single = base.total_latency_s / out.total_latency_s;
  out.scaling_efficiency = out.speedup_vs_single / n;
  return out;
}

}  // namespace

PipelineReport profile_pipeline(const Graph& model, const ProfileOptions& options,
                                int num_stages, const InterconnectDesc& link,
                                int microbatches) {
  const ProfileReport base = Profiler(options).run(model);
  return pipeline_from_base(base, deploy_graph(model, options), num_stages,
                            link, microbatches);
}

TensorParallelReport profile_tensor_parallel(const Graph& model,
                                             const ProfileOptions& options,
                                             int ways,
                                             const InterconnectDesc& link) {
  const auto& platform = hw::PlatformRegistry::instance().get(options.platform_id);
  const ProfileReport base = Profiler(options).run(model);
  return tensor_parallel_from_base(base, platform, ways, link);
}

StageSearch search_pipeline_stages(const Graph& model,
                                   const ProfileOptions& options,
                                   const InterconnectDesc& link,
                                   std::vector<int> stage_counts,
                                   int microbatches) {
  if (stage_counts.empty()) {
    stage_counts = {1, 2, 3, 4, 5, 6, 7, 8};
  }
  const ProfileReport base = Profiler(options).run(model);
  const Graph deployed = deploy_graph(model, options);
  // Candidates share `deployed` read-only; materialize its lazy indices
  // before the fan-out (crossing_bytes calls find_node/boundary).
  deployed.warm_indices();
  StageSearch search;
  search.reports = ThreadPool::global().parallel_map(
      stage_counts.size(), [&](size_t i) {
        return pipeline_from_base(base, deployed, stage_counts[i], link,
                                  microbatches);
      });
  double best = -1.0;
  for (size_t i = 0; i < search.reports.size(); ++i) {
    if (search.reports[i].steady_throughput_per_s > best) {
      best = search.reports[i].steady_throughput_per_s;
      search.best_stages = stage_counts[i];
    }
  }
  return search;
}

WaysSearch search_tensor_parallel_ways(const Graph& model,
                                       const ProfileOptions& options,
                                       const InterconnectDesc& link,
                                       std::vector<int> ways) {
  if (ways.empty()) {
    ways = {1, 2, 3, 4, 5, 6, 7, 8};
  }
  const auto& platform = hw::PlatformRegistry::instance().get(options.platform_id);
  const ProfileReport base = Profiler(options).run(model);
  WaysSearch search;
  search.reports = ThreadPool::global().parallel_map(ways.size(), [&](size_t i) {
    return tensor_parallel_from_base(base, platform, ways[i], link);
  });
  double best_latency = 0.0;
  for (size_t i = 0; i < search.reports.size(); ++i) {
    if (search.best_ways == 0 ||
        search.reports[i].total_latency_s < best_latency) {
      best_latency = search.reports[i].total_latency_s;
      search.best_ways = ways[i];
    }
  }
  return search;
}

std::string pipeline_text(const PipelineReport& report) {
  report::TextTable table({"stage", "layers", "compute", "send", "comm"});
  for (const StageReport& s : report.stages) {
    table.add_row({std::to_string(s.device),
                   std::to_string(s.first_layer) + ".." +
                       std::to_string(s.last_layer),
                   units::ms(s.compute_s), units::megabytes(s.send_bytes),
                   units::ms(s.comm_s)});
  }
  std::ostringstream out;
  out << table.to_string();
  out << "stage time: " << units::ms(report.stage_time_s)
      << "  single-batch latency: " << units::ms(report.single_batch_latency_s)
      << "\n";
  out << "steady throughput: "
      << units::fixed(report.steady_throughput_per_s, 0) << "/s  bubble: "
      << units::fixed(report.bubble_fraction * 100.0, 1) << "%  speedup: "
      << units::fixed(report.speedup_vs_single, 2) << "x  efficiency: "
      << units::fixed(report.scaling_efficiency * 100.0, 1) << "%\n";
  return out.str();
}

std::string tensor_parallel_text(const TensorParallelReport& report) {
  std::ostringstream out;
  out << report.ways << "-way tensor parallel: compute "
      << units::ms(report.compute_s) << " + allreduce "
      << units::ms(report.allreduce_s) << " = "
      << units::ms(report.total_latency_s) << "  (" << report.sharded_layers
      << " sharded layers, speedup " << units::fixed(report.speedup_vs_single, 2)
      << "x, efficiency " << units::fixed(report.scaling_efficiency * 100.0, 1)
      << "%)\n";
  return out.str();
}

}  // namespace proof::distributed

// Distributed-inference analysis (the paper's §5 future work: "investigate
// the adaptation of PRoof to distributed environments").
//
// Extends the single-device profile to multi-device estimates:
//  * pipeline parallelism — balanced contiguous stage partition over the
//    backend layers, activation transfers at the cuts, steady-state
//    throughput with the classic microbatch bubble model;
//  * tensor parallelism — matrix-bearing layers sharded across devices with
//    ring-allreduce communication per sharded layer.
// Both are roofline-style analytical estimates built from the same per-layer
// quantities the profiler already produces.
#pragma once

#include <string>
#include <vector>

#include "core/profiler.hpp"

namespace proof::distributed {

/// Device-to-device link model.
struct InterconnectDesc {
  std::string name;
  double bandwidth = 0.0;  ///< bytes/s per direction
  double latency_s = 0.0;  ///< per-transfer base latency
};

[[nodiscard]] InterconnectDesc nvlink4();        ///< 450 GB/s, ~2 us
[[nodiscard]] InterconnectDesc pcie_gen4_x16();  ///< 32 GB/s, ~5 us
[[nodiscard]] InterconnectDesc ethernet_100g();  ///< 12.5 GB/s, ~30 us

/// One pipeline stage.
struct StageReport {
  int device = 0;
  size_t first_layer = 0;   ///< index range into the source report's layers
  size_t last_layer = 0;    ///< inclusive
  double compute_s = 0.0;
  double send_bytes = 0.0;  ///< activations forwarded to the next stage
  double comm_s = 0.0;
};

struct PipelineReport {
  std::vector<StageReport> stages;
  double stage_time_s = 0.0;          ///< slowest stage incl. its comm
  double single_batch_latency_s = 0.0;
  double steady_throughput_per_s = 0.0;
  double bubble_fraction = 0.0;       ///< (S-1)/(M+S-1) pipeline fill cost
  double speedup_vs_single = 0.0;     ///< steady throughput vs 1 device
  double scaling_efficiency = 0.0;    ///< speedup / stage count
};

/// Partitions `model`'s backend layers into `num_stages` contiguous stages on
/// identical devices described by `options.platform_id` and estimates
/// pipelined execution with `microbatches` in flight.
[[nodiscard]] PipelineReport profile_pipeline(const Graph& model,
                                              const ProfileOptions& options,
                                              int num_stages,
                                              const InterconnectDesc& link,
                                              int microbatches = 8);

struct TensorParallelReport {
  int ways = 0;
  double compute_s = 0.0;        ///< per-device compute after sharding
  double allreduce_s = 0.0;      ///< total ring-allreduce time
  double total_latency_s = 0.0;
  double speedup_vs_single = 0.0;
  double scaling_efficiency = 0.0;
  size_t sharded_layers = 0;     ///< layers actually split
};

/// Estimates `ways`-way tensor parallelism: matrix-pipeline layers shard
/// their compute; each sharded layer pays a ring allreduce of its output
/// activations (2(N-1)/N * bytes / bw + latency).
[[nodiscard]] TensorParallelReport profile_tensor_parallel(
    const Graph& model, const ProfileOptions& options, int ways,
    const InterconnectDesc& link);

// --- configuration searches --------------------------------------------------
//
// Both searches profile the model ONCE and evaluate every candidate
// configuration from that shared base profile, fanned out over the global
// thread pool.  Results come back in candidate order regardless of --jobs.

struct StageSearch {
  std::vector<PipelineReport> reports;  ///< parallel to the stage_counts input
  int best_stages = 0;                  ///< highest steady-state throughput
};

/// Evaluates pipeline parallelism at each stage count (default 1..8) and
/// picks the count with the best steady-state throughput.
[[nodiscard]] StageSearch search_pipeline_stages(
    const Graph& model, const ProfileOptions& options,
    const InterconnectDesc& link, std::vector<int> stage_counts = {},
    int microbatches = 8);

struct WaysSearch {
  std::vector<TensorParallelReport> reports;  ///< parallel to the ways input
  int best_ways = 0;                          ///< lowest total latency
};

/// Evaluates tensor parallelism at each device count (default 1..8) and
/// picks the count with the lowest total latency.
[[nodiscard]] WaysSearch search_tensor_parallel_ways(
    const Graph& model, const ProfileOptions& options,
    const InterconnectDesc& link, std::vector<int> ways = {});

/// Text renderings.
[[nodiscard]] std::string pipeline_text(const PipelineReport& report);
[[nodiscard]] std::string tensor_parallel_text(const TensorParallelReport& report);

}  // namespace proof::distributed

// Tensor descriptors and a dense reference tensor.
//
// TensorDesc is what the analysis layer works with: name + dtype + shape +
// whether the tensor is a model parameter (initializer).  Tensor adds typed
// storage and is only used by the reference executor in tests, so storage is
// kept simple: everything is held as float regardless of the logical dtype.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/dtype.hpp"
#include "tensor/shape.hpp"

namespace proof {

/// Metadata of one tensor in a model graph.
struct TensorDesc {
  std::string name;
  DType dtype = DType::kF32;
  Shape shape;
  /// True when the tensor is a weight/bias baked into the model.
  bool is_param = false;

  /// Bytes occupied by the tensor contents at its logical dtype.
  [[nodiscard]] int64_t size_bytes() const {
    return shape.numel() * static_cast<int64_t>(dtype_size(dtype));
  }

  [[nodiscard]] int64_t numel() const { return shape.numel(); }
};

/// Dense tensor with float storage, used by the reference executor.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, std::vector<float> values);

  /// Tensor filled with deterministic pseudo-random values in [-1, 1),
  /// keyed by `seed_key` so the same tensor name always gets the same data.
  static Tensor random(const Shape& shape, const std::string& seed_key);

  /// Tensor filled with a constant.
  static Tensor full(const Shape& shape, float value);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] int64_t numel() const { return shape_.numel(); }

  [[nodiscard]] float* data() { return values_.data(); }
  [[nodiscard]] const float* data() const { return values_.data(); }

  [[nodiscard]] float at(int64_t index) const { return values_.at(static_cast<size_t>(index)); }
  float& at(int64_t index) { return values_.at(static_cast<size_t>(index)); }

  [[nodiscard]] const std::vector<float>& values() const { return values_; }

 private:
  Shape shape_;
  std::vector<float> values_;
};

}  // namespace proof

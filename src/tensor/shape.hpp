// Tensor shapes.
//
// Shapes are fully static during inference (the paper's analytical model
// relies on DNNs having static control flow), so a shape is simply an ordered
// list of non-negative extents.  A scalar is rank-0.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace proof {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims);
  explicit Shape(std::vector<int64_t> dims);

  [[nodiscard]] size_t rank() const { return dims_.size(); }
  [[nodiscard]] bool empty() const { return dims_.empty(); }

  /// Extent of dimension `axis`; negative axes count from the back.
  [[nodiscard]] int64_t dim(int axis) const;

  /// Mutable access (positive axis only).
  void set_dim(int axis, int64_t value);

  [[nodiscard]] const std::vector<int64_t>& dims() const { return dims_; }

  /// Total element count (1 for scalars).
  [[nodiscard]] int64_t numel() const;

  /// "[1, 3, 224, 224]" rendering.
  [[nodiscard]] std::string to_string() const;

  /// Normalizes a possibly-negative axis against this shape's rank;
  /// throws on out-of-range.
  [[nodiscard]] int normalize_axis(int axis) const;

  /// NumPy-style broadcast of two shapes; throws when incompatible.
  [[nodiscard]] static Shape broadcast(const Shape& a, const Shape& b);

  /// True when `a` can broadcast against `b`.
  [[nodiscard]] static bool broadcastable(const Shape& a, const Shape& b);

  bool operator==(const Shape& other) const = default;

  void push_back(int64_t dim) { dims_.push_back(dim); }
  void insert_dim(int axis, int64_t dim);
  void erase_dim(int axis);

 private:
  std::vector<int64_t> dims_;
};

}  // namespace proof

// Data types supported by the analysis and the simulated runtimes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace proof {

/// Element types.  Mirrors the ONNX tensor element types PRoof cares about.
enum class DType : uint8_t {
  kF32,
  kF16,
  kBF16,
  kI8,
  kI32,
  kI64,
  kBool,
};

/// Size of one element in bytes.
[[nodiscard]] size_t dtype_size(DType dtype);

/// Canonical lowercase name ("fp16", "int8", ...).
[[nodiscard]] std::string_view dtype_name(DType dtype);

/// Inverse of dtype_name; throws proof::Error on unknown names.
[[nodiscard]] DType dtype_from_name(std::string_view name);

/// True for float-family types (fp32/fp16/bf16).
[[nodiscard]] bool dtype_is_float(DType dtype);

}  // namespace proof

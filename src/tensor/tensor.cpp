#include "tensor/tensor.hpp"

#include "support/error.hpp"
#include "support/rng.hpp"

namespace proof {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), values_(static_cast<size_t>(shape_.numel()), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), values_(std::move(values)) {
  PROOF_CHECK(static_cast<int64_t>(values_.size()) == shape_.numel(),
              "value count " << values_.size() << " does not match shape "
                             << shape_.to_string());
}

Tensor Tensor::random(const Shape& shape, const std::string& seed_key) {
  Tensor out(shape);
  Rng rng = Rng::from_string(seed_key);
  for (float& v : out.values_) {
    v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return out;
}

Tensor Tensor::full(const Shape& shape, float value) {
  Tensor out(shape);
  for (float& v : out.values_) {
    v = value;
  }
  return out;
}

}  // namespace proof

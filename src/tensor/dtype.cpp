#include "tensor/dtype.hpp"

#include "support/error.hpp"

namespace proof {

size_t dtype_size(DType dtype) {
  switch (dtype) {
    case DType::kF32:
    case DType::kI32:
      return 4;
    case DType::kF16:
    case DType::kBF16:
      return 2;
    case DType::kI8:
    case DType::kBool:
      return 1;
    case DType::kI64:
      return 8;
  }
  PROOF_FAIL("unknown dtype value " << static_cast<int>(dtype));
}

std::string_view dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "fp32";
    case DType::kF16:
      return "fp16";
    case DType::kBF16:
      return "bf16";
    case DType::kI8:
      return "int8";
    case DType::kI32:
      return "int32";
    case DType::kI64:
      return "int64";
    case DType::kBool:
      return "bool";
  }
  PROOF_FAIL("unknown dtype value " << static_cast<int>(dtype));
}

DType dtype_from_name(std::string_view name) {
  if (name == "fp32" || name == "float32" || name == "float") return DType::kF32;
  if (name == "fp16" || name == "float16" || name == "half") return DType::kF16;
  if (name == "bf16" || name == "bfloat16") return DType::kBF16;
  if (name == "int8" || name == "i8") return DType::kI8;
  if (name == "int32" || name == "i32") return DType::kI32;
  if (name == "int64" || name == "i64") return DType::kI64;
  if (name == "bool") return DType::kBool;
  PROOF_FAIL("unknown dtype name '" << std::string(name) << "'");
}

bool dtype_is_float(DType dtype) {
  return dtype == DType::kF32 || dtype == DType::kF16 || dtype == DType::kBF16;
}

}  // namespace proof

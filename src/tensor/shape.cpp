#include "tensor/shape.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace proof {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims) {
  for (const int64_t d : dims_) {
    PROOF_CHECK(d >= 0, "negative extent in shape " << to_string());
  }
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  for (const int64_t d : dims_) {
    PROOF_CHECK(d >= 0, "negative extent in shape " << to_string());
  }
}

int64_t Shape::dim(int axis) const {
  return dims_.at(static_cast<size_t>(normalize_axis(axis)));
}

void Shape::set_dim(int axis, int64_t value) {
  PROOF_CHECK(value >= 0, "negative extent " << value);
  dims_.at(static_cast<size_t>(normalize_axis(axis))) = value;
}

int64_t Shape::numel() const {
  int64_t n = 1;
  for (const int64_t d : dims_) {
    n *= d;
  }
  return n;
}

std::string Shape::to_string() const {
  std::string out = "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

int Shape::normalize_axis(int axis) const {
  const int r = static_cast<int>(rank());
  const int normalized = axis < 0 ? axis + r : axis;
  PROOF_CHECK(normalized >= 0 && normalized < r,
              "axis " << axis << " out of range for rank " << r);
  return normalized;
}

Shape Shape::broadcast(const Shape& a, const Shape& b) {
  const size_t out_rank = std::max(a.rank(), b.rank());
  std::vector<int64_t> out(out_rank, 1);
  for (size_t i = 0; i < out_rank; ++i) {
    const int64_t da =
        i < a.rank() ? a.dims()[a.rank() - 1 - i] : 1;
    const int64_t db =
        i < b.rank() ? b.dims()[b.rank() - 1 - i] : 1;
    PROOF_CHECK(da == db || da == 1 || db == 1,
                "shapes not broadcastable: " << a.to_string() << " vs " << b.to_string());
    out[out_rank - 1 - i] = std::max(da, db);
  }
  return Shape(std::move(out));
}

bool Shape::broadcastable(const Shape& a, const Shape& b) {
  const size_t out_rank = std::max(a.rank(), b.rank());
  for (size_t i = 0; i < out_rank; ++i) {
    const int64_t da = i < a.rank() ? a.dims()[a.rank() - 1 - i] : 1;
    const int64_t db = i < b.rank() ? b.dims()[b.rank() - 1 - i] : 1;
    if (da != db && da != 1 && db != 1) {
      return false;
    }
  }
  return true;
}

void Shape::insert_dim(int axis, int64_t dim) {
  PROOF_CHECK(dim >= 0, "negative extent " << dim);
  const int r = static_cast<int>(rank());
  const int normalized = axis < 0 ? axis + r + 1 : axis;
  PROOF_CHECK(normalized >= 0 && normalized <= r,
              "insert axis " << axis << " out of range for rank " << r);
  dims_.insert(dims_.begin() + normalized, dim);
}

void Shape::erase_dim(int axis) {
  dims_.erase(dims_.begin() + normalize_axis(axis));
}

}  // namespace proof

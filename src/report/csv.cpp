#include "report/csv.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace proof::report {

namespace {

/// RFC-4180 quoting: a field needs quotes when it contains a separator, a
/// quote, or *either* line-break character — bare '\r' (old-Mac line ends,
/// or hostile layer names) breaks row framing just as '\n' does.
bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string escape(const std::string& field) {
  if (!needs_quoting(field)) {
    return field;
  }
  return "\"" + strings::replace_all(field, "\"", "\"\"") + "\"";
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PROOF_CHECK(!headers_.empty(), "csv needs at least one column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  PROOF_CHECK(cells.size() == headers_.size(),
              "row has " << cells.size() << " cells, expected " << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out << ',';
      }
      out << escape(row[c]);
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  PROOF_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << to_string();
  out.flush();
  PROOF_CHECK(out.good(), "failed writing CSV to '" << path << "'");
}

}  // namespace proof::report

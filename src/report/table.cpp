#include "report/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "support/error.hpp"

namespace proof::report {

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) {
    return false;
  }
  size_t digits = 0;
  for (const char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      ++digits;
    }
  }
  return digits * 2 >= cell.size();
}

}  // namespace

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PROOF_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  PROOF_CHECK(cells.size() == headers_.size(),
              "row has " << cells.size() << " cells, expected " << headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::to_string() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  // Right-align a column when most of its cells look numeric.
  std::vector<bool> right(headers_.size(), false);
  for (size_t c = 0; c < headers_.size(); ++c) {
    size_t numeric = 0;
    size_t filled = 0;
    for (const auto& row : rows_) {
      if (row.empty()) {
        continue;
      }
      ++filled;
      if (looks_numeric(row[c])) {
        ++numeric;
      }
    }
    right[c] = filled > 0 && numeric * 2 >= filled;
  }

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      const size_t pad = widths[c] - cell.size();
      out << (c == 0 ? "| " : " ");
      if (right[c]) {
        out << std::string(pad, ' ') << cell;
      } else {
        out << cell << std::string(pad, ' ');
      }
      out << " |";
    }
    out << "\n";
  };
  const auto emit_rule = [&] {
    for (size_t c = 0; c < widths.size(); ++c) {
      out << (c == 0 ? "|-" : "-") << std::string(widths[c], '-') << "-|";
    }
    out << "\n";
  };
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  return out.str();
}

}  // namespace proof::report

#include "report/svg_roofline.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/units.hpp"

namespace proof::report {

/// Escapes text/attribute interpolations for XML.  Model, platform and layer
/// names are user-controlled (ONNX node names routinely contain '<', '&',
/// quotes); streaming them raw into <text> elements yields malformed SVG.
std::string xml_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        // Control characters are not representable in XML 1.0 at all (not
        // even as character references); drop them rather than emit an
        // unparseable document.
        if (static_cast<unsigned char>(c) >= 0x20 || c == '\n' || c == '\t' ||
            c == '\r') {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

constexpr int kMarginLeft = 70;
constexpr int kMarginRight = 20;
constexpr int kMarginTop = 40;
constexpr int kMarginBottom = 50;

const char* class_color(OpClass cls) {
  switch (cls) {
    case OpClass::kGemm:
      return "#2e7d32";  // green: matrix multiply
    case OpClass::kConv:
      return "#c62828";  // red: regular conv
    case OpClass::kConvPointwise:
      return "#e65100";  // orange-red: pointwise conv
    case OpClass::kConvDepthwise:
      return "#1565c0";  // blue: depthwise conv
    case OpClass::kElementwise:
      return "#6a1b9a";
    case OpClass::kReduction:
    case OpClass::kNormalization:
    case OpClass::kSoftmax:
      return "#8e24aa";  // purple family: pointwise/reduce ops
    case OpClass::kDataMovement:
      return "#0277bd";  // blue: transpose
    case OpClass::kCopy:
      return "#2e8b57";  // sea green: data copy
    case OpClass::kNoOp:
      return "#9e9e9e";
  }
  return "#000000";
}

struct LogScale {
  double lo_log, hi_log;
  double px_lo, px_hi;
  [[nodiscard]] double map(double value) const {
    const double t = (std::log10(value) - lo_log) / (hi_log - lo_log);
    return px_lo + t * (px_hi - px_lo);
  }
};

std::string fmt_pow10(int exp, const char* unit) {
  std::ostringstream out;
  if (exp >= 9 && exp < 19 && exp % 3 == 0) {
    static const char* kPrefix[] = {"G", "", "", "T", "", "", "P", "", "", "E"};
    out << kPrefix[exp - 9] << unit;
    return out.str();
  }
  out << "1e" << exp << ' ' << unit;
  return out.str();
}

void draw_frame(std::ostringstream& svg, const SvgOptions& opt, const LogScale& xs,
                const LogScale& ys, const std::string& title) {
  svg << "<rect width='" << opt.width << "' height='" << opt.height
      << "' fill='white'/>\n";
  svg << "<text x='" << opt.width / 2 << "' y='22' text-anchor='middle' "
      << "font-size='15' font-family='sans-serif'>" << xml_escape(title)
      << "</text>\n";
  // Decade gridlines.
  for (int e = static_cast<int>(std::ceil(xs.lo_log));
       e <= static_cast<int>(std::floor(xs.hi_log)); ++e) {
    const double x = xs.map(std::pow(10.0, e));
    svg << "<line x1='" << x << "' y1='" << kMarginTop << "' x2='" << x << "' y2='"
        << opt.height - kMarginBottom << "' stroke='#eeeeee'/>\n";
    svg << "<text x='" << x << "' y='" << opt.height - kMarginBottom + 16
        << "' text-anchor='middle' font-size='10' font-family='sans-serif'>1e" << e
        << "</text>\n";
  }
  for (int e = static_cast<int>(std::ceil(ys.lo_log));
       e <= static_cast<int>(std::floor(ys.hi_log)); ++e) {
    const double y = ys.map(std::pow(10.0, e));
    svg << "<line x1='" << kMarginLeft << "' y1='" << y << "' x2='"
        << opt.width - kMarginRight << "' y2='" << y << "' stroke='#eeeeee'/>\n";
    svg << "<text x='" << kMarginLeft - 6 << "' y='" << y + 3
        << "' text-anchor='end' font-size='10' font-family='sans-serif'>"
        << fmt_pow10(e, "FLOP/s") << "</text>\n";
  }
  svg << "<rect x='" << kMarginLeft << "' y='" << kMarginTop << "' width='"
      << opt.width - kMarginLeft - kMarginRight << "' height='"
      << opt.height - kMarginTop - kMarginBottom
      << "' fill='none' stroke='#444444'/>\n";
  svg << "<text x='" << (kMarginLeft + opt.width - kMarginRight) / 2 << "' y='"
      << opt.height - 12
      << "' text-anchor='middle' font-size='12' font-family='sans-serif'>"
      << "Arithmetic intensity (FLOP/byte)</text>\n";
}

void draw_roof(std::ostringstream& svg, const roofline::Ceilings& c,
               const SvgOptions& opt, const LogScale& xs, const LogScale& ys) {
  const auto clamp_y = [&](double v) {
    return std::min(std::max(v, kMarginTop * 1.0),
                    opt.height - kMarginBottom * 1.0);
  };
  // Main bandwidth roof + compute roof as a polyline over x samples.
  const auto draw_bw_line = [&](double bw, const char* color, const char* dash) {
    const double ai0 = std::pow(10.0, xs.lo_log);
    const double ridge = c.peak_flops / bw;
    const double ai1 = std::min(ridge, std::pow(10.0, xs.hi_log));
    svg << "<line x1='" << xs.map(ai0) << "' y1='" << clamp_y(ys.map(ai0 * bw))
        << "' x2='" << xs.map(ai1) << "' y2='" << clamp_y(ys.map(ai1 * bw))
        << "' stroke='" << color << "' stroke-width='1.5'" << dash << "/>\n";
  };
  draw_bw_line(c.peak_bw, "#333333", "");
  static const char* kExtraColors[] = {"#d4a017", "#c0392b", "#7f8c8d"};
  for (size_t i = 0; i < c.extra_bw_lines.size(); ++i) {
    draw_bw_line(c.extra_bw_lines[i].second,
                 kExtraColors[i % 3], " stroke-dasharray='6,3'");
    const double label_ai = std::pow(10.0, xs.lo_log) * 3.0;
    svg << "<text x='" << xs.map(label_ai) + 4 << "' y='"
        << clamp_y(ys.map(label_ai * c.extra_bw_lines[i].second)) - 5
        << "' font-size='10' fill='" << kExtraColors[i % 3]
        << "' font-family='sans-serif'>" << xml_escape(c.extra_bw_lines[i].first)
        << "</text>\n";
  }
  const double ridge = c.ridge_ai();
  svg << "<line x1='" << xs.map(std::max(ridge, std::pow(10.0, xs.lo_log)))
      << "' y1='" << ys.map(c.peak_flops) << "' x2='" << xs.map(std::pow(10.0, xs.hi_log))
      << "' y2='" << ys.map(c.peak_flops)
      << "' stroke='#333333' stroke-width='1.5'/>\n";
  svg << "<text x='" << opt.width - kMarginRight - 4 << "' y='"
      << ys.map(c.peak_flops) - 5
      << "' text-anchor='end' font-size='10' font-family='sans-serif'>"
      << units::tflops(c.peak_flops) << " peak</text>\n";
}

void draw_points(std::ostringstream& svg, const std::vector<roofline::Point>& points,
                 const LogScale& xs, const LogScale& ys, bool label) {
  for (const roofline::Point& p : points) {
    const double ai = p.arithmetic_intensity();
    const double perf = p.attained_flops();
    if (ai <= 0.0 || perf <= 0.0) {
      continue;
    }
    // With a critical-path analysis attached, opacity tracks criticality —
    // layers that gate the schedule render solid, slack-rich layers fade.
    // Serial runs fall back to latency share.
    const double opacity =
        p.criticality >= 0.0
            ? 0.25 + 0.75 * std::min(1.0, p.criticality)
            : 0.25 + 0.75 *
                  std::min(1.0, p.latency_share > 0 ? p.latency_share * 8.0 : 1.0);
    svg << "<circle cx='" << xs.map(ai) << "' cy='" << ys.map(perf)
        << "' r='5' fill='" << class_color(p.cls) << "' fill-opacity='" << opacity
        << "'/>\n";
    if (p.criticality >= 0.9995) {
      // Critical-path marker ring.
      svg << "<circle cx='" << xs.map(ai) << "' cy='" << ys.map(perf)
          << "' r='7.5' fill='none' stroke='#c62828' stroke-width='1.5'/>\n";
    }
    if (label) {
      svg << "<text x='" << xs.map(ai) + 7 << "' y='" << ys.map(perf) + 3
          << "' font-size='9' font-family='sans-serif'>" << xml_escape(p.name)
          << "</text>\n";
    }
  }
}

std::string render(const roofline::Ceilings& ceilings,
                   const std::vector<roofline::Point>& points,
                   const SvgOptions& opt) {
  double min_f = opt.min_flops;
  double max_f = opt.max_flops;
  if (max_f <= 0.0) {
    max_f = ceilings.peak_flops * 3.0;
  }
  if (min_f <= 0.0) {
    min_f = max_f / 1e7;
    for (const roofline::Point& p : points) {
      const double perf = p.attained_flops();
      if (perf > 0.0) {
        min_f = std::min(min_f, perf / 3.0);
      }
    }
  }
  const LogScale xs{std::log10(opt.min_ai), std::log10(opt.max_ai),
                    static_cast<double>(kMarginLeft),
                    static_cast<double>(opt.width - kMarginRight)};
  const LogScale ys{std::log10(min_f), std::log10(max_f),
                    static_cast<double>(opt.height - kMarginBottom),
                    static_cast<double>(kMarginTop)};
  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << opt.width
      << "' height='" << opt.height << "'>\n";
  draw_frame(svg, opt, xs, ys, opt.title);
  draw_roof(svg, ceilings, opt, xs, ys);
  draw_points(svg, points, xs, ys, opt.label_points);
  svg << "</svg>\n";
  return svg.str();
}

}  // namespace

std::string render_roofline_svg(const roofline::Analysis& analysis,
                                const SvgOptions& options) {
  return render(analysis.ceilings, analysis.layers, options);
}

std::string render_points_svg(const roofline::Ceilings& ceilings,
                              const std::vector<roofline::Point>& points,
                              const SvgOptions& options) {
  return render(ceilings, points, options);
}

void save_svg(const std::string& svg, const std::string& path) {
  std::ofstream out(path);
  PROOF_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << svg;
  out.flush();
  PROOF_CHECK(out.good(), "failed writing SVG to '" << path << "'");
}

}  // namespace proof::report

// Report views for the time-based roofline (arXiv:2009.04598) and for the
// decode-sweep curves, rendered next to the classic roofline chart.
//
// The time chart keeps the classic x-axis (arithmetic intensity, log) but
// plots per-layer *time* on the y-axis: the simulated layer latency as a
// filled point and the roofline lower bound max(t_comp, t_mem) as a hollow
// marker below it.  The vertical ridge line splits the plane into the
// bandwidth-bound region (left) and the compute-bound region (right) — for a
// decode step almost everything sits left of it.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "report/svg_roofline.hpp"
#include "roofline/time_roofline.hpp"

namespace proof::report {

/// Per-layer time-contribution table (top `max_layers` by bound time;
/// 0 = all), ending with the aggregate row and the bound-ness summary.
[[nodiscard]] std::string time_roofline_table_text(
    const roofline::TimeAnalysis& analysis, size_t max_layers = 20);

/// Renders the time-based roofline chart as a standalone SVG; reuses
/// SvgOptions (min/max_flops are ignored — the y-axis is seconds).
[[nodiscard]] std::string render_time_roofline_svg(
    const roofline::TimeAnalysis& analysis, const SvgOptions& options);

/// One polyline on a curves chart (e.g. tokens/s over batch size).
struct Curve {
  std::string label;
  std::vector<std::pair<double, double>> points;  ///< (x, y), x ascending
};

/// Generic multi-curve line chart (linear x, log y) used for the
/// tokens/s-vs-batch view of the decode sweep.
[[nodiscard]] std::string render_curves_svg(const std::vector<Curve>& curves,
                                            const std::string& title,
                                            const std::string& x_label,
                                            const std::string& y_label,
                                            int width = 760, int height = 520);

}  // namespace proof::report

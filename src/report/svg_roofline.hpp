// SVG roofline charts (the dataviewer's visual report).
//
// Renders a log-log roofline: bandwidth roof(s), compute roof, and one point
// per backend layer whose opacity encodes its latency share — the visual
// convention of the paper's Figures 4-6 and 8.
#pragma once

#include <string>
#include <vector>

#include "roofline/roofline.hpp"

namespace proof::report {

struct SvgOptions {
  int width = 760;
  int height = 520;
  std::string title;
  double min_ai = 0.1;        ///< x-axis lower bound (FLOP/byte)
  double max_ai = 10000.0;
  double min_flops = 0.0;     ///< 0 = auto from ceilings/points
  double max_flops = 0.0;
  bool label_points = false;  ///< annotate each point with its layer name
};

/// Renders one analysis (ceilings + layer points) as a standalone SVG.
[[nodiscard]] std::string render_roofline_svg(const roofline::Analysis& analysis,
                                              const SvgOptions& options);

/// Renders several end-to-end points (one per model) on shared ceilings —
/// the Figure-4 style chart.
[[nodiscard]] std::string render_points_svg(const roofline::Ceilings& ceilings,
                                            const std::vector<roofline::Point>& points,
                                            const SvgOptions& options);

void save_svg(const std::string& svg, const std::string& path);

/// Escapes text/attribute interpolations for XML (layer/model names are
/// user-controlled); control characters are dropped.  Shared by every SVG
/// emitter in this module.
[[nodiscard]] std::string xml_escape(const std::string& text);

}  // namespace proof::report

#include "report/time_view.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "report/table.hpp"
#include "support/units.hpp"

namespace proof::report {

namespace {

constexpr int kMarginLeft = 70;
constexpr int kMarginRight = 20;
constexpr int kMarginTop = 40;
constexpr int kMarginBottom = 50;

struct LinLogScale {
  double lo, hi;      ///< data range (log10 when logarithmic)
  double px_lo, px_hi;
  bool logarithmic = false;
  [[nodiscard]] double map(double value) const {
    const double v = logarithmic ? std::log10(value) : value;
    const double t = hi > lo ? (v - lo) / (hi - lo) : 0.5;
    return px_lo + t * (px_hi - px_lo);
  }
};

const char* time_class_color(OpClass cls) {
  switch (cls) {
    case OpClass::kGemm:
      return "#2e7d32";
    case OpClass::kConv:
      return "#c62828";
    case OpClass::kConvPointwise:
      return "#e65100";
    case OpClass::kConvDepthwise:
      return "#1565c0";
    case OpClass::kElementwise:
      return "#6a1b9a";
    case OpClass::kReduction:
    case OpClass::kNormalization:
    case OpClass::kSoftmax:
      return "#8e24aa";
    case OpClass::kDataMovement:
      return "#0277bd";
    case OpClass::kCopy:
      return "#2e8b57";
    case OpClass::kNoOp:
      return "#9e9e9e";
  }
  return "#000000";
}

std::string fmt_time_axis(int exp) {
  std::ostringstream out;
  switch (exp) {
    case -3:
      return "1 ms";
    case -6:
      return "1 us";
    case -9:
      return "1 ns";
    case 0:
      return "1 s";
    default:
      out << "1e" << exp << " s";
      return out.str();
  }
}

std::string us(double seconds) { return units::fixed(seconds * 1e6, 3); }

}  // namespace

std::string time_roofline_table_text(const roofline::TimeAnalysis& analysis,
                                     size_t max_layers) {
  std::vector<size_t> order(analysis.layers.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return analysis.layers[a].bound_time_s > analysis.layers[b].bound_time_s;
  });
  if (max_layers > 0 && order.size() > max_layers) {
    order.resize(max_layers);
  }
  TextTable table({"layer", "class", "t_comp us", "t_mem us", "t_bound us",
                   "bound", "share", "sim us", "roof eff"});
  for (const size_t i : order) {
    const roofline::TimePoint& p = analysis.layers[i];
    table.add_row({p.name, std::string(op_class_name(p.cls)), us(p.compute_time_s),
                   us(p.memory_time_s), us(p.bound_time_s),
                   p.bandwidth_bound ? "memory" : "compute",
                   units::percent(p.bound_share), us(p.latency_s),
                   units::percent(p.bound_efficiency())});
  }
  table.add_rule();
  const roofline::TimePoint& t = analysis.total;
  table.add_row({"total", "-", us(t.compute_time_s), us(t.memory_time_s),
                 us(t.bound_time_s), t.bandwidth_bound ? "memory" : "compute",
                 units::percent(1.0), us(t.latency_s),
                 units::percent(t.bound_efficiency())});
  std::ostringstream out;
  out << table.to_string();
  out << "bandwidth-bound time: "
      << units::percent(analysis.bandwidth_bound_time_fraction())
      << " of roofline bound ("
      << units::percent(analysis.bandwidth_bound_latency_fraction())
      << " of simulated latency)\n";
  if (max_layers > 0 && analysis.layers.size() > max_layers) {
    out << "(showing top " << max_layers << " of " << analysis.layers.size()
        << " layers by bound time)\n";
  }
  return out.str();
}

std::string render_time_roofline_svg(const roofline::TimeAnalysis& analysis,
                                     const SvgOptions& opt) {
  // y range: spans every positive time in the chart, padded a decade.
  double min_t = 1.0;
  double max_t = 1e-9;
  for (const roofline::TimePoint& p : analysis.layers) {
    for (const double t : {p.latency_s, p.bound_time_s}) {
      if (t > 0.0) {
        min_t = std::min(min_t, t);
        max_t = std::max(max_t, t);
      }
    }
  }
  if (max_t <= min_t) {
    min_t = 1e-7;
    max_t = 1e-3;
  }
  min_t /= 3.0;
  max_t *= 3.0;
  const LinLogScale xs{std::log10(opt.min_ai), std::log10(opt.max_ai),
                       static_cast<double>(kMarginLeft),
                       static_cast<double>(opt.width - kMarginRight), true};
  const LinLogScale ys{std::log10(min_t), std::log10(max_t),
                       static_cast<double>(opt.height - kMarginBottom),
                       static_cast<double>(kMarginTop), true};
  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << opt.width
      << "' height='" << opt.height << "'>\n";
  svg << "<rect width='" << opt.width << "' height='" << opt.height
      << "' fill='white'/>\n";
  svg << "<text x='" << opt.width / 2 << "' y='22' text-anchor='middle' "
      << "font-size='15' font-family='sans-serif'>" << xml_escape(opt.title)
      << "</text>\n";
  for (int e = static_cast<int>(std::ceil(xs.lo));
       e <= static_cast<int>(std::floor(xs.hi)); ++e) {
    const double x = xs.map(std::pow(10.0, e));
    svg << "<line x1='" << x << "' y1='" << kMarginTop << "' x2='" << x
        << "' y2='" << opt.height - kMarginBottom << "' stroke='#eeeeee'/>\n";
    svg << "<text x='" << x << "' y='" << opt.height - kMarginBottom + 16
        << "' text-anchor='middle' font-size='10' font-family='sans-serif'>1e"
        << e << "</text>\n";
  }
  for (int e = static_cast<int>(std::ceil(ys.lo));
       e <= static_cast<int>(std::floor(ys.hi)); ++e) {
    const double y = ys.map(std::pow(10.0, e));
    svg << "<line x1='" << kMarginLeft << "' y1='" << y << "' x2='"
        << opt.width - kMarginRight << "' y2='" << y
        << "' stroke='#eeeeee'/>\n";
    svg << "<text x='" << kMarginLeft - 6 << "' y='" << y + 3
        << "' text-anchor='end' font-size='10' font-family='sans-serif'>"
        << fmt_time_axis(e) << "</text>\n";
  }
  svg << "<rect x='" << kMarginLeft << "' y='" << kMarginTop << "' width='"
      << opt.width - kMarginLeft - kMarginRight << "' height='"
      << opt.height - kMarginTop - kMarginBottom
      << "' fill='none' stroke='#444444'/>\n";
  svg << "<text x='" << (kMarginLeft + opt.width - kMarginRight) / 2 << "' y='"
      << opt.height - 12
      << "' text-anchor='middle' font-size='12' font-family='sans-serif'>"
      << "Arithmetic intensity (FLOP/byte)</text>\n";
  // Ridge: layers left of it are bandwidth-bound.
  const double ridge = analysis.ceilings.ridge_ai();
  if (ridge > std::pow(10.0, xs.lo) && ridge < std::pow(10.0, xs.hi)) {
    const double x = xs.map(ridge);
    svg << "<line x1='" << x << "' y1='" << kMarginTop << "' x2='" << x
        << "' y2='" << opt.height - kMarginBottom
        << "' stroke='#c62828' stroke-width='1.5' stroke-dasharray='6,3'/>\n";
    svg << "<text x='" << x - 6 << "' y='" << kMarginTop + 14
        << "' text-anchor='end' font-size='10' fill='#c62828' "
        << "font-family='sans-serif'>bandwidth-bound</text>\n";
    svg << "<text x='" << x + 6 << "' y='" << kMarginTop + 14
        << "' font-size='10' fill='#555555' font-family='sans-serif'>"
        << "compute-bound</text>\n";
  }
  for (const roofline::TimePoint& p : analysis.layers) {
    const double ai = p.arithmetic_intensity();
    if (ai <= 0.0) {
      continue;
    }
    const double x = xs.map(std::min(std::max(ai, opt.min_ai), opt.max_ai));
    // Roofline lower bound: hollow marker; simulated time: filled point; a
    // faint stem joins them so the gap (launch overhead, efficiency loss)
    // reads directly off the chart.
    if (p.bound_time_s > 0.0 && p.latency_s > 0.0) {
      svg << "<line x1='" << x << "' y1='" << ys.map(p.bound_time_s)
          << "' x2='" << x << "' y2='" << ys.map(p.latency_s)
          << "' stroke='#bbbbbb' stroke-width='1'/>\n";
    }
    if (p.bound_time_s > 0.0) {
      svg << "<circle cx='" << x << "' cy='" << ys.map(p.bound_time_s)
          << "' r='3.5' fill='none' stroke='" << time_class_color(p.cls)
          << "' stroke-width='1.2'/>\n";
    }
    if (p.latency_s > 0.0) {
      const double opacity =
          0.25 + 0.75 * std::min(1.0, p.bound_share > 0 ? p.bound_share * 8.0 : 1.0);
      svg << "<circle cx='" << x << "' cy='" << ys.map(p.latency_s)
          << "' r='5' fill='" << time_class_color(p.cls) << "' fill-opacity='"
          << opacity << "'/>\n";
      if (opt.label_points) {
        svg << "<text x='" << x + 7 << "' y='" << ys.map(p.latency_s) + 3
            << "' font-size='9' font-family='sans-serif'>" << xml_escape(p.name)
            << "</text>\n";
      }
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

std::string render_curves_svg(const std::vector<Curve>& curves,
                              const std::string& title,
                              const std::string& x_label,
                              const std::string& y_label, int width,
                              int height) {
  double min_x = 0.0;
  double max_x = 1.0;
  double min_y = 1.0;
  double max_y = 1e-9;
  bool any = false;
  for (const Curve& curve : curves) {
    for (const auto& [x, y] : curve.points) {
      if (y <= 0.0) {
        continue;
      }
      if (!any) {
        min_x = max_x = x;
        min_y = max_y = y;
        any = true;
      } else {
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
        min_y = std::min(min_y, y);
        max_y = std::max(max_y, y);
      }
    }
  }
  if (!any) {
    min_x = 0.0;
    max_x = 1.0;
    min_y = 1.0;
    max_y = 10.0;
  }
  if (max_x <= min_x) {
    max_x = min_x + 1.0;
  }
  min_y /= 2.0;
  max_y *= 2.0;
  const LinLogScale xs{min_x, max_x, static_cast<double>(kMarginLeft),
                       static_cast<double>(width - kMarginRight), false};
  const LinLogScale ys{std::log10(min_y), std::log10(max_y),
                       static_cast<double>(height - kMarginBottom),
                       static_cast<double>(kMarginTop), true};
  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width
      << "' height='" << height << "'>\n";
  svg << "<rect width='" << width << "' height='" << height
      << "' fill='white'/>\n";
  svg << "<text x='" << width / 2 << "' y='22' text-anchor='middle' "
      << "font-size='15' font-family='sans-serif'>" << xml_escape(title)
      << "</text>\n";
  for (int e = static_cast<int>(std::ceil(ys.lo));
       e <= static_cast<int>(std::floor(ys.hi)); ++e) {
    const double y = ys.map(std::pow(10.0, e));
    svg << "<line x1='" << kMarginLeft << "' y1='" << y << "' x2='"
        << width - kMarginRight << "' y2='" << y << "' stroke='#eeeeee'/>\n";
    svg << "<text x='" << kMarginLeft - 6 << "' y='" << y + 3
        << "' text-anchor='end' font-size='10' font-family='sans-serif'>1e" << e
        << "</text>\n";
  }
  svg << "<rect x='" << kMarginLeft << "' y='" << kMarginTop << "' width='"
      << width - kMarginLeft - kMarginRight << "' height='"
      << height - kMarginTop - kMarginBottom
      << "' fill='none' stroke='#444444'/>\n";
  svg << "<text x='" << (kMarginLeft + width - kMarginRight) / 2 << "' y='"
      << height - 12
      << "' text-anchor='middle' font-size='12' font-family='sans-serif'>"
      << xml_escape(x_label) << "</text>\n";
  svg << "<text x='16' y='" << kMarginTop - 10
      << "' font-size='12' font-family='sans-serif'>" << xml_escape(y_label)
      << "</text>\n";
  static const char* kCurveColors[] = {"#2e7d32", "#c62828", "#1565c0",
                                       "#e65100", "#6a1b9a", "#0277bd",
                                       "#8e24aa", "#2e8b57"};
  for (size_t c = 0; c < curves.size(); ++c) {
    const char* color = kCurveColors[c % 8];
    std::ostringstream path;
    bool first = true;
    for (const auto& [x, y] : curves[c].points) {
      if (y <= 0.0) {
        continue;
      }
      path << (first ? "M" : " L") << xs.map(x) << ' ' << ys.map(y);
      first = false;
      svg << "<circle cx='" << xs.map(x) << "' cy='" << ys.map(y)
          << "' r='3.5' fill='" << color << "'/>\n";
      // Tick mark + label for each x sample (batch sizes are sparse).
      svg << "<text x='" << xs.map(x) << "' y='"
          << height - kMarginBottom + 16
          << "' text-anchor='middle' font-size='10' "
          << "font-family='sans-serif'>" << units::fixed(x, 0) << "</text>\n";
    }
    if (!first) {
      svg << "<path d='" << path.str() << "' fill='none' stroke='" << color
          << "' stroke-width='1.5'/>\n";
    }
    svg << "<text x='" << width - kMarginRight - 4 << "' y='"
        << kMarginTop + 14 + 13 * static_cast<int>(c)
        << "' text-anchor='end' font-size='10' fill='" << color
        << "' font-family='sans-serif'>" << xml_escape(curves[c].label)
        << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

}  // namespace proof::report

// Aligned text tables for CLI reports (the dataviewer's terminal output).
#pragma once

#include <string>
#include <vector>

namespace proof::report {

class TextTable {
 public:
  /// Column headers define the column count.
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Renders with column alignment (numbers right-aligned heuristically).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row = rule
};

}  // namespace proof::report

// Minimal CSV export for profiled data (dataviewer interchange format).
#pragma once

#include <string>
#include <vector>

namespace proof::report {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// RFC-4180-style rendering (quotes fields containing separators).
  [[nodiscard]] std::string to_string() const;

  void save(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace proof::report

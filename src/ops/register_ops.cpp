#include "ops/registry_init.hpp"

#include "ops/op_def.hpp"

namespace proof {

namespace ops {
void register_elementwise_ops(OpRegistry& r);
void register_conv_ops(OpRegistry& r);
void register_gemm_ops(OpRegistry& r);
void register_norm_ops(OpRegistry& r);
void register_shape_ops(OpRegistry& r);
void register_extended_ops(OpRegistry& r);
void register_quant_ops(OpRegistry& r);
}  // namespace ops

void register_builtin_ops(OpRegistry& registry) {
  ops::register_elementwise_ops(registry);
  ops::register_conv_ops(registry);
  ops::register_gemm_ops(registry);
  ops::register_norm_ops(registry);
  ops::register_shape_ops(registry);
  ops::register_extended_ops(registry);
  ops::register_quant_ops(registry);
}

}  // namespace proof

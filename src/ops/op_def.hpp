// Operator defines (paper §3.2.1).
//
// Each ONNX-style operator type is described by an OpDef that knows how to:
//   * infer output tensor shapes/dtypes from inputs + attributes,
//   * predict the operator's FLOP (Model FLOP: MAC counts as 2 FLOP),
//   * predict its DRAM traffic (Equation 1 plus per-type special rules),
//   * classify the workload for the hardware simulator, and
//   * (for a core subset) execute a reference computation for tests.
//
// Unlike ONNX, shape-carrying operands (Reshape target, Slice ranges, ...)
// are node attributes rather than constant input tensors; this keeps shape
// inference purely structural while preserving the analysis semantics.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace proof {

/// Coarse workload classes consumed by the hardware latency model.
enum class OpClass : uint8_t {
  kGemm,            ///< dense matrix multiply (tensor-core eligible)
  kConv,            ///< regular / grouped convolution (tensor-core eligible)
  kConvDepthwise,   ///< depthwise convolution (low arithmetic intensity)
  kConvPointwise,   ///< 1x1 convolution (GEMM-like)
  kElementwise,     ///< map over elements
  kReduction,       ///< reductions / pooling
  kNormalization,   ///< batch/layer/group norm
  kSoftmax,
  kDataMovement,    ///< strided movement: transpose / gather
  kCopy,            ///< contiguous movement: concat / split / slice / reorder
  kNoOp,            ///< shape-only metadata ops (Reshape, Shape, ...)
};

/// Number of OpClass values; bound for dense per-class accumulator arrays.
inline constexpr size_t kOpClassCount = static_cast<size_t>(OpClass::kNoOp) + 1;

[[nodiscard]] std::string_view op_class_name(OpClass cls);

/// Predicted DRAM traffic of one operator, in bytes.
struct MemoryEstimate {
  double read_bytes = 0.0;    ///< activations read from DRAM
  double write_bytes = 0.0;   ///< activations written to DRAM
  double param_bytes = 0.0;   ///< weights/constants streamed in

  [[nodiscard]] double total() const { return read_bytes + write_bytes + param_bytes; }

  MemoryEstimate& operator+=(const MemoryEstimate& other) {
    read_bytes += other.read_bytes;
    write_bytes += other.write_bytes;
    param_bytes += other.param_bytes;
    return *this;
  }
};

/// Resolved view of one node inside a graph, handed to OpDef methods.
class OpContext {
 public:
  OpContext(const Graph& graph, const Node& node) : graph_(&graph), node_(&node) {}

  [[nodiscard]] const Node& node() const { return *node_; }
  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] const AttrMap& attrs() const { return node_->attrs; }
  [[nodiscard]] size_t num_inputs() const { return node_->inputs.size(); }
  [[nodiscard]] size_t num_outputs() const { return node_->outputs.size(); }

  /// Descriptor of the i-th input; throws when the tensor is undeclared.
  [[nodiscard]] const TensorDesc& input(size_t i) const;
  /// Descriptor of the i-th output.
  [[nodiscard]] const TensorDesc& output(size_t i) const;
  [[nodiscard]] bool input_is_param(size_t i) const { return input(i).is_param; }

  /// Shape shortcut for input(i).shape.
  [[nodiscard]] const Shape& in_shape(size_t i) const { return input(i).shape; }
  [[nodiscard]] const Shape& out_shape(size_t i) const { return output(i).shape; }

 private:
  const Graph* graph_;
  const Node* node_;
};

/// Base class of every operator define.
class OpDef {
 public:
  virtual ~OpDef() = default;

  [[nodiscard]] virtual std::string_view type() const = 0;

  /// Output descriptors (shape + dtype) inferred from the context.  The
  /// returned descs are unnamed; the caller assigns node output names.
  [[nodiscard]] virtual std::vector<TensorDesc> infer(const OpContext& ctx) const = 0;

  /// Predicted Model FLOP of this node.
  [[nodiscard]] virtual double flops(const OpContext& ctx) const = 0;

  /// Predicted DRAM traffic.  Default implements Equation 1 of the paper:
  /// params + all non-param inputs read + all outputs written.
  [[nodiscard]] virtual MemoryEstimate memory(const OpContext& ctx) const;

  /// Workload class for the latency model.
  [[nodiscard]] virtual OpClass op_class(const OpContext& ctx) const = 0;

  /// Reference execution support (tests only).
  [[nodiscard]] virtual bool has_reference() const { return false; }
  virtual void eval(const OpContext& ctx, const std::vector<const Tensor*>& inputs,
                    std::vector<Tensor>& outputs) const;
};

/// Global operator registry.  Built-in ops self-register on first access.
class OpRegistry {
 public:
  static OpRegistry& instance();

  void add(std::unique_ptr<OpDef> def);

  /// Lookup by op_type; throws ModelError for unknown operators.
  [[nodiscard]] const OpDef& lookup(std::string_view op_type) const;
  [[nodiscard]] bool contains(std::string_view op_type) const;

  [[nodiscard]] std::vector<std::string> registered_types() const;

 private:
  OpRegistry();
  std::map<std::string, std::unique_ptr<OpDef>, std::less<>> defs_;
};

/// Convenience: OpDef for a node (throws for unknown op types).
[[nodiscard]] const OpDef& op_def_for(const Node& node);

/// FLOP cost charged per element for non-MAC scalar operations.  Division,
/// roots and transcendentals cost more than one FLOP on real hardware; the
/// paper accepts platform variance here because their share is small.
namespace flop_cost {
inline constexpr double kAdd = 1.0;
inline constexpr double kMul = 1.0;
inline constexpr double kCompare = 1.0;
inline constexpr double kDiv = 4.0;
inline constexpr double kSqrt = 4.0;
inline constexpr double kExp = 8.0;
inline constexpr double kLog = 8.0;
inline constexpr double kErf = 8.0;
inline constexpr double kTanh = 8.0;
}  // namespace flop_cost

}  // namespace proof

#include "ops/op_def.hpp"

#include "ops/registry_init.hpp"
#include "support/error.hpp"

namespace proof {

std::string_view op_class_name(OpClass cls) {
  switch (cls) {
    case OpClass::kGemm:
      return "gemm";
    case OpClass::kConv:
      return "conv";
    case OpClass::kConvDepthwise:
      return "conv_dw";
    case OpClass::kConvPointwise:
      return "conv_pw";
    case OpClass::kElementwise:
      return "elementwise";
    case OpClass::kReduction:
      return "reduction";
    case OpClass::kNormalization:
      return "normalization";
    case OpClass::kSoftmax:
      return "softmax";
    case OpClass::kDataMovement:
      return "data_movement";
    case OpClass::kCopy:
      return "copy";
    case OpClass::kNoOp:
      return "no_op";
  }
  PROOF_FAIL("unknown op class");
}

const TensorDesc& OpContext::input(size_t i) const {
  PROOF_CHECK(i < node_->inputs.size(),
              "node '" << node_->name << "' has no input #" << i);
  return graph_->tensor(node_->inputs[i]);
}

const TensorDesc& OpContext::output(size_t i) const {
  PROOF_CHECK(i < node_->outputs.size(),
              "node '" << node_->name << "' has no output #" << i);
  return graph_->tensor(node_->outputs[i]);
}

MemoryEstimate OpDef::memory(const OpContext& ctx) const {
  // Equation 1: params + batch * (inputs + outputs); shapes here already
  // carry the batch dimension, so sizes are used directly.
  MemoryEstimate est;
  for (size_t i = 0; i < ctx.num_inputs(); ++i) {
    const TensorDesc& in = ctx.input(i);
    if (in.is_param) {
      est.param_bytes += static_cast<double>(in.size_bytes());
    } else {
      est.read_bytes += static_cast<double>(in.size_bytes());
    }
  }
  for (size_t i = 0; i < ctx.num_outputs(); ++i) {
    est.write_bytes += static_cast<double>(ctx.output(i).size_bytes());
  }
  return est;
}

void OpDef::eval(const OpContext& ctx, const std::vector<const Tensor*>&,
                 std::vector<Tensor>&) const {
  PROOF_FAIL("operator '" << type() << "' (node '" << ctx.node().name
                          << "') has no reference implementation");
}

OpRegistry::OpRegistry() = default;

OpRegistry& OpRegistry::instance() {
  static OpRegistry* registry = [] {
    auto* r = new OpRegistry();
    register_builtin_ops(*r);
    return r;
  }();
  return *registry;
}

void OpRegistry::add(std::unique_ptr<OpDef> def) {
  PROOF_CHECK(def != nullptr, "null OpDef");
  const std::string key{def->type()};
  PROOF_CHECK(defs_.find(key) == defs_.end(), "duplicate op type '" << key << "'");
  defs_.emplace(key, std::move(def));
}

const OpDef& OpRegistry::lookup(std::string_view op_type) const {
  const auto it = defs_.find(op_type);
  if (it == defs_.end()) {
    throw ModelError("unknown operator type '" + std::string(op_type) + "'");
  }
  return *it->second;
}

bool OpRegistry::contains(std::string_view op_type) const {
  return defs_.find(op_type) != defs_.end();
}

std::vector<std::string> OpRegistry::registered_types() const {
  std::vector<std::string> out;
  out.reserve(defs_.size());
  for (const auto& [key, def] : defs_) {
    out.push_back(key);
  }
  return out;
}

const OpDef& op_def_for(const Node& node) {
  return OpRegistry::instance().lookup(node.op_type);
}

}  // namespace proof

// Dense matrix-multiply operator defines: Gemm and (batched) MatMul.
#include "ops/common.hpp"
#include "support/error.hpp"

namespace proof::ops {

namespace {

class GemmOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Gemm"; }

  struct Dims {
    int64_t m, k, n;
  };

  static Dims dims(const OpContext& ctx) {
    const bool trans_a = ctx.attrs().get_int_or("transA", 0) != 0;
    const bool trans_b = ctx.attrs().get_int_or("transB", 0) != 0;
    const Shape& a = ctx.in_shape(0);
    const Shape& b = ctx.in_shape(1);
    PROOF_CHECK(a.rank() == 2 && b.rank() == 2, "Gemm expects 2-D inputs");
    const int64_t m = trans_a ? a.dim(1) : a.dim(0);
    const int64_t k = trans_a ? a.dim(0) : a.dim(1);
    const int64_t kb = trans_b ? b.dim(1) : b.dim(0);
    const int64_t n = trans_b ? b.dim(0) : b.dim(1);
    PROOF_CHECK(k == kb, "Gemm '" << ctx.node().name << "': inner dims " << k
                                  << " vs " << kb);
    return {m, k, n};
  }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    const Dims d = dims(ctx);
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = Shape{d.m, d.n};
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    const Dims d = dims(ctx);
    double total = 2.0 * static_cast<double>(d.m) * static_cast<double>(d.k) *
                   static_cast<double>(d.n);
    if (ctx.num_inputs() > 2) {
      total += static_cast<double>(d.m) * static_cast<double>(d.n);
    }
    return total;
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override { return OpClass::kGemm; }

  [[nodiscard]] bool has_reference() const override { return true; }

  void eval(const OpContext& ctx, const std::vector<const Tensor*>& inputs,
            std::vector<Tensor>& outputs) const override {
    const Dims d = dims(ctx);
    const bool trans_a = ctx.attrs().get_int_or("transA", 0) != 0;
    const bool trans_b = ctx.attrs().get_int_or("transB", 0) != 0;
    const Tensor& a = *inputs[0];
    const Tensor& b = *inputs[1];
    const Tensor* c = inputs.size() > 2 ? inputs[2] : nullptr;
    Tensor& y = outputs[0];
    const Shape c_shape = c != nullptr ? ctx.in_shape(2) : Shape{};
    const Shape out_shape{d.m, d.n};
    for (int64_t i = 0; i < d.m; ++i) {
      for (int64_t j = 0; j < d.n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < d.k; ++p) {
          const float av = trans_a ? a.at(p * d.m + i) : a.at(i * d.k + p);
          const float bv = trans_b ? b.at(j * d.k + p) : b.at(p * d.n + j);
          acc += av * bv;
        }
        if (c != nullptr) {
          acc += c->at(broadcast_index(out_shape, i * d.n + j, c_shape));
        }
        y.at(i * d.n + j) = acc;
      }
    }
  }
};

class MatMulOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "MatMul"; }

  struct Dims {
    Shape batch;  ///< broadcasted leading dims
    int64_t m, k, n;
  };

  static Dims dims(const OpContext& ctx) {
    Shape a = ctx.in_shape(0);
    Shape b = ctx.in_shape(1);
    PROOF_CHECK(a.rank() >= 1 && b.rank() >= 1, "MatMul expects tensors of rank >= 1");
    // 1-D operands are promoted per NumPy rules.
    const bool a_vec = a.rank() == 1;
    const bool b_vec = b.rank() == 1;
    if (a_vec) a.insert_dim(0, 1);
    if (b_vec) b.push_back(1);
    const int64_t m = a.dim(-2);
    const int64_t k = a.dim(-1);
    const int64_t kb = b.dim(-2);
    const int64_t n = b.dim(-1);
    PROOF_CHECK(k == kb, "MatMul '" << ctx.node().name << "': inner dims " << k
                                    << " vs " << kb);
    std::vector<int64_t> a_batch(a.dims().begin(), a.dims().end() - 2);
    std::vector<int64_t> b_batch(b.dims().begin(), b.dims().end() - 2);
    const Shape batch = Shape::broadcast(Shape(std::move(a_batch)), Shape(std::move(b_batch)));
    return {batch, m, k, n};
  }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    const Dims d = dims(ctx);
    std::vector<int64_t> out_dims = d.batch.dims();
    if (ctx.in_shape(0).rank() != 1) out_dims.push_back(d.m);
    if (ctx.in_shape(1).rank() != 1) out_dims.push_back(d.n);
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = Shape(std::move(out_dims));
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    const Dims d = dims(ctx);
    return 2.0 * static_cast<double>(d.batch.numel()) * static_cast<double>(d.m) *
           static_cast<double>(d.k) * static_cast<double>(d.n);
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override { return OpClass::kGemm; }

  [[nodiscard]] bool has_reference() const override { return true; }

  void eval(const OpContext& ctx, const std::vector<const Tensor*>& inputs,
            std::vector<Tensor>& outputs) const override {
    const Dims d = dims(ctx);
    PROOF_CHECK(ctx.in_shape(0).rank() >= 2 && ctx.in_shape(1).rank() >= 2,
                "reference MatMul supports rank >= 2 only");
    const Tensor& a = *inputs[0];
    const Tensor& b = *inputs[1];
    Tensor& y = outputs[0];
    const int64_t batches = d.batch.numel();
    // Build per-operand batch shapes for broadcasting.
    Shape a_batch(std::vector<int64_t>(ctx.in_shape(0).dims().begin(),
                                       ctx.in_shape(0).dims().end() - 2));
    Shape b_batch(std::vector<int64_t>(ctx.in_shape(1).dims().begin(),
                                       ctx.in_shape(1).dims().end() - 2));
    for (int64_t batch = 0; batch < batches; ++batch) {
      const int64_t a_off = broadcast_index(d.batch, batch, a_batch) * d.m * d.k;
      const int64_t b_off = broadcast_index(d.batch, batch, b_batch) * d.k * d.n;
      const int64_t y_off = batch * d.m * d.n;
      for (int64_t i = 0; i < d.m; ++i) {
        for (int64_t j = 0; j < d.n; ++j) {
          float acc = 0.0f;
          for (int64_t p = 0; p < d.k; ++p) {
            acc += a.at(a_off + i * d.k + p) * b.at(b_off + p * d.n + j);
          }
          y.at(y_off + i * d.n + j) = acc;
        }
      }
    }
  }
};

}  // namespace

void register_gemm_ops(OpRegistry& r) {
  r.add(std::make_unique<GemmOp>());
  r.add(std::make_unique<MatMulOp>());
}

}  // namespace proof::ops

// Normalization, softmax and reduction operator defines.
#include <cmath>

#include "ops/common.hpp"
#include "support/error.hpp"

namespace proof::ops {

namespace {

/// Inference-mode BatchNormalization: y = scale * (x - mean) / sqrt(var+eps) + bias.
/// At inference this folds to one multiply-add per element.
class BatchNormOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "BatchNormalization"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = ctx.in_shape(0);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    return 2.0 * static_cast<double>(ctx.in_shape(0).numel());
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kNormalization;
  }

  [[nodiscard]] bool has_reference() const override { return true; }

  void eval(const OpContext& ctx, const std::vector<const Tensor*>& inputs,
            std::vector<Tensor>& outputs) const override {
    PROOF_CHECK(inputs.size() == 5, "BatchNormalization expects x,scale,bias,mean,var");
    const Shape& x = ctx.in_shape(0);
    const int64_t n = x.dim(0);
    const int64_t c = x.dim(1);
    const int64_t spatial = x.numel() / (n * c);
    const double eps = ctx.attrs().get_float_or("epsilon", 1e-5);
    for (int64_t b = 0; b < n; ++b) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const float scale = inputs[1]->at(ch);
        const float bias = inputs[2]->at(ch);
        const float mean = inputs[3]->at(ch);
        const float inv_std =
            1.0f / std::sqrt(inputs[4]->at(ch) + static_cast<float>(eps));
        for (int64_t s = 0; s < spatial; ++s) {
          const int64_t i = (b * c + ch) * spatial + s;
          outputs[0].at(i) = scale * (inputs[0]->at(i) - mean) * inv_std + bias;
        }
      }
    }
  }
};

/// LayerNormalization over the last `axis`.. dims (default: last dim).
class LayerNormOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "LayerNormalization"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = ctx.in_shape(0);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    // mean + variance + normalize + affine: ~8 FLOP per element.
    return 8.0 * static_cast<double>(ctx.in_shape(0).numel());
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kNormalization;
  }

  [[nodiscard]] bool has_reference() const override { return true; }

  void eval(const OpContext& ctx, const std::vector<const Tensor*>& inputs,
            std::vector<Tensor>& outputs) const override {
    const Shape& x = ctx.in_shape(0);
    const int axis = x.normalize_axis(
        static_cast<int>(ctx.attrs().get_int_or("axis", -1)));
    int64_t inner = 1;
    for (size_t d = static_cast<size_t>(axis); d < x.rank(); ++d) {
      inner *= x.dims()[d];
    }
    const int64_t outer = x.numel() / inner;
    const double eps = ctx.attrs().get_float_or("epsilon", 1e-5);
    const Tensor* scale = inputs.size() > 1 ? inputs[1] : nullptr;
    const Tensor* bias = inputs.size() > 2 ? inputs[2] : nullptr;
    for (int64_t o = 0; o < outer; ++o) {
      double mean = 0.0;
      for (int64_t i = 0; i < inner; ++i) {
        mean += inputs[0]->at(o * inner + i);
      }
      mean /= static_cast<double>(inner);
      double var = 0.0;
      for (int64_t i = 0; i < inner; ++i) {
        const double d = inputs[0]->at(o * inner + i) - mean;
        var += d * d;
      }
      var /= static_cast<double>(inner);
      const double inv_std = 1.0 / std::sqrt(var + eps);
      for (int64_t i = 0; i < inner; ++i) {
        double v = (inputs[0]->at(o * inner + i) - mean) * inv_std;
        if (scale != nullptr) v *= scale->at(i);
        if (bias != nullptr) v += bias->at(i);
        outputs[0].at(o * inner + i) = static_cast<float>(v);
      }
    }
  }
};

/// GroupNormalization (used by the Stable-Diffusion UNet).
class GroupNormOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "GroupNormalization"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = ctx.in_shape(0);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    return 8.0 * static_cast<double>(ctx.in_shape(0).numel());
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kNormalization;
  }
};

class SoftmaxOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Softmax"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = ctx.in_shape(0);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    // max-subtract + exp + sum + divide per element.
    return (flop_cost::kCompare + 1.0 + flop_cost::kExp + flop_cost::kAdd +
            flop_cost::kDiv) *
           static_cast<double>(ctx.in_shape(0).numel());
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kSoftmax;
  }

  [[nodiscard]] bool has_reference() const override { return true; }

  void eval(const OpContext& ctx, const std::vector<const Tensor*>& inputs,
            std::vector<Tensor>& outputs) const override {
    const Shape& x = ctx.in_shape(0);
    const int axis = x.normalize_axis(
        static_cast<int>(ctx.attrs().get_int_or("axis", -1)));
    PROOF_CHECK(axis == static_cast<int>(x.rank()) - 1,
                "reference Softmax supports the last axis only");
    const int64_t inner = x.dim(-1);
    const int64_t outer = x.numel() / inner;
    for (int64_t o = 0; o < outer; ++o) {
      float max_v = -3.4e38f;
      for (int64_t i = 0; i < inner; ++i) {
        max_v = std::max(max_v, inputs[0]->at(o * inner + i));
      }
      double sum = 0.0;
      for (int64_t i = 0; i < inner; ++i) {
        const double e = std::exp(static_cast<double>(inputs[0]->at(o * inner + i) - max_v));
        outputs[0].at(o * inner + i) = static_cast<float>(e);
        sum += e;
      }
      for (int64_t i = 0; i < inner; ++i) {
        outputs[0].at(o * inner + i) =
            static_cast<float>(outputs[0].at(o * inner + i) / sum);
      }
    }
  }
};

/// Shared reduce implementation (mean / sum).
class ReduceOp final : public OpDef {
 public:
  ReduceOp(std::string type, bool mean) : type_(std::move(type)), mean_(mean) {}

  [[nodiscard]] std::string_view type() const override { return type_; }

  static Shape reduced_shape(const OpContext& ctx) {
    const Shape& x = ctx.in_shape(0);
    const bool keepdims = ctx.attrs().get_int_or("keepdims", 1) != 0;
    std::vector<int64_t> axes64 =
        ctx.attrs().get_ints_or("axes", [&] {
          std::vector<int64_t> all(x.rank());
          for (size_t i = 0; i < x.rank(); ++i) all[i] = static_cast<int64_t>(i);
          return all;
        }());
    std::vector<bool> reduced(x.rank(), false);
    for (const int64_t a : axes64) {
      reduced[static_cast<size_t>(x.normalize_axis(static_cast<int>(a)))] = true;
    }
    std::vector<int64_t> dims;
    for (size_t d = 0; d < x.rank(); ++d) {
      if (!reduced[d]) {
        dims.push_back(x.dims()[d]);
      } else if (keepdims) {
        dims.push_back(1);
      }
    }
    return Shape(std::move(dims));
  }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = reduced_shape(ctx);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    double total = static_cast<double>(ctx.in_shape(0).numel()) * flop_cost::kAdd;
    if (mean_) {
      total += static_cast<double>(reduced_shape(ctx).numel()) * flop_cost::kDiv;
    }
    return total;
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kReduction;
  }

 private:
  std::string type_;
  bool mean_;
};

}  // namespace

void register_norm_ops(OpRegistry& r) {
  r.add(std::make_unique<BatchNormOp>());
  r.add(std::make_unique<LayerNormOp>());
  r.add(std::make_unique<GroupNormOp>());
  r.add(std::make_unique<SoftmaxOp>());
  r.add(std::make_unique<ReduceOp>("ReduceMean", /*mean=*/true));
  r.add(std::make_unique<ReduceOp>("ReduceSum", /*mean=*/false));
}

}  // namespace proof::ops

// Elementwise operator defines: arithmetic, activations, comparisons.
#include <cmath>

#include "ops/common.hpp"
#include "support/error.hpp"

namespace proof::ops {

void UnaryOp::eval(const OpContext& ctx, const std::vector<const Tensor*>& inputs,
                   std::vector<Tensor>& outputs) const {
  PROOF_CHECK(fn_ != nullptr, "no reference for '" << type_ << "'");
  PROOF_CHECK(inputs.size() >= 1 && outputs.size() == 1,
              "unary op '" << type_ << "' arity mismatch");
  const Tensor& in = *inputs[0];
  Tensor& out = outputs[0];
  for (int64_t i = 0; i < in.numel(); ++i) {
    out.at(i) = fn_(in.at(i), ctx);
  }
}

std::vector<TensorDesc> BinaryOp::infer(const OpContext& ctx) const {
  TensorDesc out;
  out.dtype = ctx.input(0).dtype;
  out.shape = Shape::broadcast(ctx.in_shape(0), ctx.in_shape(1));
  return {out};
}

double BinaryOp::flops(const OpContext& ctx) const {
  const Shape out = Shape::broadcast(ctx.in_shape(0), ctx.in_shape(1));
  return cost_ * static_cast<double>(out.numel());
}

void BinaryOp::eval(const OpContext& ctx, const std::vector<const Tensor*>& inputs,
                    std::vector<Tensor>& outputs) const {
  PROOF_CHECK(fn_ != nullptr, "no reference for '" << type_ << "'");
  PROOF_CHECK(inputs.size() == 2 && outputs.size() == 1,
              "binary op '" << type_ << "' arity mismatch");
  const Shape out_shape = Shape::broadcast(ctx.in_shape(0), ctx.in_shape(1));
  Tensor& out = outputs[0];
  for (int64_t i = 0; i < out_shape.numel(); ++i) {
    const int64_t ia = broadcast_index(out_shape, i, ctx.in_shape(0));
    const int64_t ib = broadcast_index(out_shape, i, ctx.in_shape(1));
    out.at(i) = fn_(inputs[0]->at(ia), inputs[1]->at(ib));
  }
}

std::vector<int64_t> row_major_strides(const Shape& shape) {
  std::vector<int64_t> strides(shape.rank(), 1);
  for (int i = static_cast<int>(shape.rank()) - 2; i >= 0; --i) {
    strides[static_cast<size_t>(i)] =
        strides[static_cast<size_t>(i) + 1] * shape.dims()[static_cast<size_t>(i) + 1];
  }
  return strides;
}

int64_t broadcast_index(const Shape& out_shape, int64_t out_index, const Shape& in_shape) {
  const size_t out_rank = out_shape.rank();
  const size_t in_rank = in_shape.rank();
  int64_t remaining = out_index;
  int64_t in_index = 0;
  int64_t in_stride = 1;
  // Walk dims from the last to the first, accumulating the input offset.
  std::vector<int64_t> out_coord(out_rank, 0);
  for (int d = static_cast<int>(out_rank) - 1; d >= 0; --d) {
    const int64_t extent = out_shape.dims()[static_cast<size_t>(d)];
    out_coord[static_cast<size_t>(d)] = remaining % extent;
    remaining /= extent;
  }
  for (int d = static_cast<int>(in_rank) - 1; d >= 0; --d) {
    const int64_t in_extent = in_shape.dims()[static_cast<size_t>(d)];
    const size_t out_d = out_rank - in_rank + static_cast<size_t>(d);
    const int64_t coord = in_extent == 1 ? 0 : out_coord[out_d];
    in_index += coord * in_stride;
    in_stride *= in_extent;
  }
  return in_index;
}

void register_elementwise_ops(OpRegistry& r) {
  using C = OpContext;
  // Binary arithmetic.
  r.add(std::make_unique<BinaryOp>("Add", flop_cost::kAdd,
                                   [](float a, float b) { return a + b; }));
  r.add(std::make_unique<BinaryOp>("Sub", flop_cost::kAdd,
                                   [](float a, float b) { return a - b; }));
  r.add(std::make_unique<BinaryOp>("Mul", flop_cost::kMul,
                                   [](float a, float b) { return a * b; }));
  r.add(std::make_unique<BinaryOp>("Div", flop_cost::kDiv,
                                   [](float a, float b) { return a / b; }));
  r.add(std::make_unique<BinaryOp>("Pow", flop_cost::kExp,
                                   [](float a, float b) { return std::pow(a, b); }));
  r.add(std::make_unique<BinaryOp>("Min", flop_cost::kCompare,
                                   [](float a, float b) { return std::min(a, b); }));
  r.add(std::make_unique<BinaryOp>("Max", flop_cost::kCompare,
                                   [](float a, float b) { return std::max(a, b); }));
  r.add(std::make_unique<BinaryOp>("Equal", flop_cost::kCompare,
                                   [](float a, float b) { return a == b ? 1.0f : 0.0f; }));

  // Unary activations / math.
  r.add(std::make_unique<UnaryOp>("Relu", 1.0,
                                  [](float x, const C&) { return x > 0.0f ? x : 0.0f; }));
  r.add(std::make_unique<UnaryOp>(
      "LeakyRelu", 2.0, [](float x, const C& ctx) {
        const float alpha = static_cast<float>(ctx.attrs().get_float_or("alpha", 0.01));
        return x > 0.0f ? x : alpha * x;
      }));
  r.add(std::make_unique<UnaryOp>("Sigmoid", flop_cost::kExp + flop_cost::kDiv + 1.0,
                                  [](float x, const C&) {
                                    return 1.0f / (1.0f + std::exp(-x));
                                  }));
  r.add(std::make_unique<UnaryOp>("Tanh", flop_cost::kTanh,
                                  [](float x, const C&) { return std::tanh(x); }));
  r.add(std::make_unique<UnaryOp>("Erf", flop_cost::kErf,
                                  [](float x, const C&) { return std::erf(x); }));
  r.add(std::make_unique<UnaryOp>("Exp", flop_cost::kExp,
                                  [](float x, const C&) { return std::exp(x); }));
  r.add(std::make_unique<UnaryOp>("Log", flop_cost::kLog,
                                  [](float x, const C&) { return std::log(x); }));
  r.add(std::make_unique<UnaryOp>("Sqrt", flop_cost::kSqrt,
                                  [](float x, const C&) { return std::sqrt(x); }));
  r.add(std::make_unique<UnaryOp>("Reciprocal", flop_cost::kDiv,
                                  [](float x, const C&) { return 1.0f / x; }));
  r.add(std::make_unique<UnaryOp>("Neg", 1.0, [](float x, const C&) { return -x; }));
  r.add(std::make_unique<UnaryOp>(
      "Clip", 2.0 * flop_cost::kCompare, [](float x, const C& ctx) {
        const float lo = static_cast<float>(ctx.attrs().get_float_or("min", -3.4e38));
        const float hi = static_cast<float>(ctx.attrs().get_float_or("max", 3.4e38));
        return std::min(hi, std::max(lo, x));
      }));
  r.add(std::make_unique<UnaryOp>(
      "HardSigmoid", 3.0, [](float x, const C& ctx) {
        const float alpha = static_cast<float>(ctx.attrs().get_float_or("alpha", 0.2));
        const float beta = static_cast<float>(ctx.attrs().get_float_or("beta", 0.5));
        return std::min(1.0f, std::max(0.0f, alpha * x + beta));
      }));
  // HardSwish: x * relu6(x + 3) / 6.
  r.add(std::make_unique<UnaryOp>("HardSwish", 5.0, [](float x, const C&) {
    const float r6 = std::min(6.0f, std::max(0.0f, x + 3.0f));
    return x * r6 / 6.0f;
  }));
  // SiLU / Swish: x * sigmoid(x).  Torch exports it as Sigmoid+Mul; the
  // fused single-node form is also accepted by the analysis.
  r.add(std::make_unique<UnaryOp>("Silu", flop_cost::kExp + flop_cost::kDiv + 2.0,
                                  [](float x, const C&) {
                                    return x / (1.0f + std::exp(-x));
                                  }));
  // GELU (erf formulation): 0.5 x (1 + erf(x / sqrt(2))).
  r.add(std::make_unique<UnaryOp>("Gelu", flop_cost::kErf + 4.0, [](float x, const C&) {
    return 0.5f * x * (1.0f + std::erf(x * 0.70710678f));
  }));
}

}  // namespace proof::ops

// Shape-manipulation and data-movement operator defines.
//
// The distinction between "metadata only" ops (Reshape, Shape, ...) and real
// data movers (Transpose, Concat, ...) is what makes the ShuffleNetV2 case
// study (§4.5) come out right: the Shuffle op lowers to Transpose + copies,
// which are memory-intensive, while Reshape is free.
#include <algorithm>

#include "ops/common.hpp"
#include "support/error.hpp"

namespace proof::ops {

namespace {

/// Resolves a Reshape-style target shape (may contain one -1 and 0 = copy).
Shape resolve_reshape(const Shape& in, const std::vector<int64_t>& target) {
  std::vector<int64_t> dims(target.size());
  int64_t known = 1;
  int infer_at = -1;
  for (size_t i = 0; i < target.size(); ++i) {
    int64_t d = target[i];
    if (d == 0) {
      PROOF_CHECK(i < in.rank(), "reshape dim 0 out of range");
      d = in.dims()[i];
    }
    if (d == -1) {
      PROOF_CHECK(infer_at < 0, "reshape: multiple -1 dims");
      infer_at = static_cast<int>(i);
      continue;
    }
    dims[i] = d;
    known *= d;
  }
  if (infer_at >= 0) {
    PROOF_CHECK(known != 0 && in.numel() % known == 0,
                "reshape: cannot infer dim for " << in.to_string());
    dims[static_cast<size_t>(infer_at)] = in.numel() / known;
  }
  Shape out(std::move(dims));
  PROOF_CHECK(out.numel() == in.numel(), "reshape changes element count: "
                                             << in.to_string() << " -> "
                                             << out.to_string());
  return out;
}

/// Metadata-only view op: no data is read or written (zero-copy in runtimes).
class ViewOpBase : public OpDef {
 public:
  [[nodiscard]] double flops(const OpContext&) const override { return 0.0; }

  [[nodiscard]] MemoryEstimate memory(const OpContext&) const override {
    return MemoryEstimate{};  // aliasing, no DRAM traffic
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override { return OpClass::kNoOp; }

  [[nodiscard]] bool has_reference() const override { return true; }
  void eval(const OpContext&, const std::vector<const Tensor*>& inputs,
            std::vector<Tensor>& outputs) const override {
    // Views alias storage; the reference executor materializes a copy.
    for (int64_t i = 0; i < inputs[0]->numel(); ++i) {
      outputs[0].at(i) = inputs[0]->at(i);
    }
  }
};

class ReshapeOp final : public ViewOpBase {
 public:
  [[nodiscard]] std::string_view type() const override { return "Reshape"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = resolve_reshape(ctx.in_shape(0), ctx.attrs().get_ints("shape"));
    return {out};
  }
};

class FlattenOp final : public ViewOpBase {
 public:
  [[nodiscard]] std::string_view type() const override { return "Flatten"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    const Shape& x = ctx.in_shape(0);
    const int axis = static_cast<int>(ctx.attrs().get_int_or("axis", 1));
    int64_t lead = 1;
    for (int d = 0; d < axis; ++d) lead *= x.dim(d);
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = Shape{lead, x.numel() / lead};
    return {out};
  }
};

class SqueezeOp final : public ViewOpBase {
 public:
  [[nodiscard]] std::string_view type() const override { return "Squeeze"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    Shape shape = ctx.in_shape(0);
    auto axes = ctx.attrs().get_ints("axes");
    std::vector<int> normalized;
    for (const int64_t a : axes) {
      normalized.push_back(shape.normalize_axis(static_cast<int>(a)));
    }
    std::sort(normalized.rbegin(), normalized.rend());
    for (const int a : normalized) {
      PROOF_CHECK(shape.dim(a) == 1, "Squeeze axis " << a << " has extent "
                                                     << shape.dim(a));
      shape.erase_dim(a);
    }
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = std::move(shape);
    return {out};
  }
};

class UnsqueezeOp final : public ViewOpBase {
 public:
  [[nodiscard]] std::string_view type() const override { return "Unsqueeze"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    Shape shape = ctx.in_shape(0);
    auto axes = ctx.attrs().get_ints("axes");
    std::sort(axes.begin(), axes.end());
    for (const int64_t a : axes) {
      shape.insert_dim(static_cast<int>(a), 1);
    }
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = std::move(shape);
    return {out};
  }
};

class IdentityOp final : public ViewOpBase {
 public:
  [[nodiscard]] std::string_view type() const override { return "Identity"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = ctx.in_shape(0);
    return {out};
  }
};

class ShapeOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Shape"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = DType::kI64;
    out.shape = Shape{static_cast<int64_t>(ctx.in_shape(0).rank())};
    return {out};
  }

  [[nodiscard]] double flops(const OpContext&) const override { return 0.0; }

  [[nodiscard]] MemoryEstimate memory(const OpContext& ctx) const override {
    // Only the rank-sized metadata vector is written; the tensor content is
    // never touched (paper §3.2.1).
    MemoryEstimate est;
    est.write_bytes = static_cast<double>(ctx.in_shape(0).rank() * sizeof(int64_t));
    return est;
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override { return OpClass::kNoOp; }
};

class TransposeOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Transpose"; }

  static std::vector<int64_t> perm(const OpContext& ctx) {
    const Shape& x = ctx.in_shape(0);
    return ctx.attrs().get_ints_or("perm", [&] {
      std::vector<int64_t> rev(x.rank());
      for (size_t i = 0; i < x.rank(); ++i) {
        rev[i] = static_cast<int64_t>(x.rank() - 1 - i);
      }
      return rev;
    }());
  }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    const Shape& x = ctx.in_shape(0);
    const auto p = perm(ctx);
    PROOF_CHECK(p.size() == x.rank(), "Transpose perm rank mismatch");
    std::vector<int64_t> dims(x.rank());
    for (size_t i = 0; i < x.rank(); ++i) {
      dims[i] = x.dim(static_cast<int>(p[i]));
    }
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = Shape(std::move(dims));
    return {out};
  }

  [[nodiscard]] double flops(const OpContext&) const override { return 0.0; }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kDataMovement;
  }

  [[nodiscard]] bool has_reference() const override { return true; }

  void eval(const OpContext& ctx, const std::vector<const Tensor*>& inputs,
            std::vector<Tensor>& outputs) const override {
    const Shape& x = ctx.in_shape(0);
    const auto p = perm(ctx);
    const Shape out_shape = infer(ctx)[0].shape;
    const auto in_strides = row_major_strides(x);
    for (int64_t i = 0; i < out_shape.numel(); ++i) {
      int64_t rest = i;
      int64_t src = 0;
      for (size_t d = 0; d < out_shape.rank(); ++d) {
        const size_t rd = out_shape.rank() - 1 - d;
        const int64_t coord = rest % out_shape.dims()[rd];
        rest /= out_shape.dims()[rd];
        src += coord * in_strides[static_cast<size_t>(p[rd])];
      }
      outputs[0].at(i) = inputs[0]->at(src);
    }
  }
};

class ConcatOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Concat"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    PROOF_CHECK(ctx.num_inputs() >= 1, "Concat needs inputs");
    Shape shape = ctx.in_shape(0);
    const int axis = shape.normalize_axis(
        static_cast<int>(ctx.attrs().get_int("axis")));
    int64_t total = 0;
    for (size_t i = 0; i < ctx.num_inputs(); ++i) {
      total += ctx.in_shape(i).dim(axis);
    }
    shape.set_dim(axis, total);
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = std::move(shape);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext&) const override { return 0.0; }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kDataMovement;
  }

  [[nodiscard]] bool has_reference() const override { return true; }

  void eval(const OpContext& ctx, const std::vector<const Tensor*>& inputs,
            std::vector<Tensor>& outputs) const override {
    const Shape out_shape = infer(ctx)[0].shape;
    const int axis = out_shape.normalize_axis(
        static_cast<int>(ctx.attrs().get_int("axis")));
    int64_t outer = 1;
    for (int d = 0; d < axis; ++d) outer *= out_shape.dim(d);
    int64_t inner = 1;
    for (size_t d = static_cast<size_t>(axis) + 1; d < out_shape.rank(); ++d) {
      inner *= out_shape.dims()[d];
    }
    int64_t out_pos_base = 0;
    for (size_t t = 0; t < inputs.size(); ++t) {
      const int64_t extent = ctx.in_shape(t).dim(axis);
      for (int64_t o = 0; o < outer; ++o) {
        for (int64_t e = 0; e < extent; ++e) {
          for (int64_t i = 0; i < inner; ++i) {
            outputs[0].at((o * out_shape.dim(axis) + out_pos_base + e) * inner + i) =
                inputs[t]->at((o * extent + e) * inner + i);
          }
        }
      }
      out_pos_base += extent;
    }
  }
};

class SplitOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Split"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    const Shape& x = ctx.in_shape(0);
    const int axis = x.normalize_axis(static_cast<int>(ctx.attrs().get_int_or("axis", 0)));
    const size_t n_out = ctx.num_outputs();
    std::vector<int64_t> sizes = ctx.attrs().get_ints_or("split", [&] {
      PROOF_CHECK(x.dim(axis) % static_cast<int64_t>(n_out) == 0,
                  "Split: axis extent " << x.dim(axis) << " not divisible by "
                                        << n_out);
      return std::vector<int64_t>(n_out, x.dim(axis) / static_cast<int64_t>(n_out));
    }());
    PROOF_CHECK(sizes.size() == n_out, "Split sizes/outputs mismatch");
    std::vector<TensorDesc> outs;
    for (const int64_t s : sizes) {
      Shape shape = x;
      shape.set_dim(axis, s);
      TensorDesc out;
      out.dtype = ctx.input(0).dtype;
      out.shape = std::move(shape);
      outs.push_back(std::move(out));
    }
    return outs;
  }

  [[nodiscard]] double flops(const OpContext&) const override { return 0.0; }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kDataMovement;
  }
};

class SliceOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Slice"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    Shape shape = ctx.in_shape(0);
    const auto starts = ctx.attrs().get_ints("starts");
    const auto ends = ctx.attrs().get_ints("ends");
    const auto axes = ctx.attrs().get_ints_or("axes", [&] {
      std::vector<int64_t> all(starts.size());
      for (size_t i = 0; i < starts.size(); ++i) all[i] = static_cast<int64_t>(i);
      return all;
    }());
    const auto steps =
        ctx.attrs().get_ints_or("steps", std::vector<int64_t>(starts.size(), 1));
    PROOF_CHECK(starts.size() == ends.size() && starts.size() == axes.size() &&
                    starts.size() == steps.size(),
                "Slice attribute arity mismatch");
    for (size_t i = 0; i < axes.size(); ++i) {
      const int axis = shape.normalize_axis(static_cast<int>(axes[i]));
      const int64_t extent = ctx.in_shape(0).dim(axis);
      int64_t start = starts[i] < 0 ? starts[i] + extent : starts[i];
      int64_t end = ends[i] < 0 ? ends[i] + extent : ends[i];
      start = std::clamp<int64_t>(start, 0, extent);
      end = std::clamp<int64_t>(end, 0, extent);
      const int64_t step = steps[i];
      PROOF_CHECK(step > 0, "Slice: only positive steps supported");
      shape.set_dim(axis, std::max<int64_t>(0, (end - start + step - 1) / step));
    }
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = std::move(shape);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext&) const override { return 0.0; }

  [[nodiscard]] MemoryEstimate memory(const OpContext& ctx) const override {
    // Only the selected window is read.
    const auto out = infer(ctx)[0];
    MemoryEstimate est;
    est.read_bytes = static_cast<double>(out.shape.numel()) *
                     static_cast<double>(dtype_size(ctx.input(0).dtype));
    est.write_bytes = static_cast<double>(out.shape.numel()) *
                      static_cast<double>(dtype_size(out.dtype));
    return est;
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kCopy;
  }
};

class GatherOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Gather"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    const Shape& data = ctx.in_shape(0);
    const Shape& indices = ctx.in_shape(1);
    const int axis = data.normalize_axis(
        static_cast<int>(ctx.attrs().get_int_or("axis", 0)));
    std::vector<int64_t> dims;
    for (int d = 0; d < axis; ++d) dims.push_back(data.dim(d));
    for (const int64_t d : indices.dims()) dims.push_back(d);
    for (size_t d = static_cast<size_t>(axis) + 1; d < data.rank(); ++d) {
      dims.push_back(data.dims()[d]);
    }
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = Shape(std::move(dims));
    return {out};
  }

  [[nodiscard]] double flops(const OpContext&) const override { return 0.0; }

  [[nodiscard]] MemoryEstimate memory(const OpContext& ctx) const override {
    // Reads indices + gathered rows only, writes the output.
    const auto out = infer(ctx)[0];
    const double out_bytes = static_cast<double>(out.shape.numel()) *
                             static_cast<double>(dtype_size(ctx.input(0).dtype));
    MemoryEstimate est;
    est.read_bytes = out_bytes + static_cast<double>(ctx.input(1).size_bytes());
    est.write_bytes = out_bytes;
    return est;
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kDataMovement;
  }
};

class PadOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Pad"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    Shape shape = ctx.in_shape(0);
    const auto pads = ctx.attrs().get_ints("pads");
    PROOF_CHECK(pads.size() == 2 * shape.rank(), "Pad: pads must have 2*rank entries");
    for (size_t d = 0; d < shape.rank(); ++d) {
      shape.set_dim(static_cast<int>(d),
                    shape.dims()[d] + pads[d] + pads[d + shape.rank()]);
    }
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = std::move(shape);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext&) const override { return 0.0; }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kCopy;
  }
};

class ResizeOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Resize"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    const Shape& x = ctx.in_shape(0);
    Shape shape = x;
    if (ctx.attrs().has("sizes")) {
      const auto sizes = ctx.attrs().get_ints("sizes");
      PROOF_CHECK(sizes.size() == x.rank(), "Resize sizes rank mismatch");
      shape = Shape(sizes);
    } else {
      const auto& raw = ctx.attrs().raw().at("scales");
      const auto* scales = std::get_if<std::vector<double>>(&raw);
      PROOF_CHECK(scales != nullptr && scales->size() == x.rank(),
                  "Resize scales rank mismatch");
      for (size_t d = 0; d < x.rank(); ++d) {
        shape.set_dim(static_cast<int>(d),
                      static_cast<int64_t>(static_cast<double>(x.dims()[d]) *
                                           (*scales)[d]));
      }
    }
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = std::move(shape);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    // Nearest interpolation: index math only; linear: 7 FLOP per output.
    const std::string mode = ctx.attrs().get_string_or("mode", "nearest");
    if (mode == "nearest") return 0.0;
    return 7.0 * static_cast<double>(infer(ctx)[0].shape.numel());
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kCopy;
  }
};

class ExpandOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Expand"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    const Shape target(ctx.attrs().get_ints("shape"));
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = Shape::broadcast(ctx.in_shape(0), target);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext&) const override { return 0.0; }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kCopy;
  }
};

class CastOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Cast"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = dtype_from_name(ctx.attrs().get_string("to"));
    out.shape = ctx.in_shape(0);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext&) const override { return 0.0; }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kCopy;
  }
};

class WhereOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Where"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = ctx.input(1).dtype;
    out.shape = Shape::broadcast(Shape::broadcast(ctx.in_shape(0), ctx.in_shape(1)),
                                 ctx.in_shape(2));
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    return static_cast<double>(infer(ctx)[0].shape.numel()) * flop_cost::kCompare;
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kElementwise;
  }
};

class ConstantOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Constant"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = dtype_from_name(ctx.attrs().get_string_or("dtype", "fp32"));
    out.shape = Shape(ctx.attrs().get_ints_or("value_shape", {}));
    return {out};
  }

  [[nodiscard]] double flops(const OpContext&) const override { return 0.0; }

  [[nodiscard]] MemoryEstimate memory(const OpContext&) const override {
    return MemoryEstimate{};  // folded by every runtime
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override { return OpClass::kNoOp; }
};

}  // namespace

void register_shape_ops(OpRegistry& r) {
  r.add(std::make_unique<ReshapeOp>());
  r.add(std::make_unique<FlattenOp>());
  r.add(std::make_unique<SqueezeOp>());
  r.add(std::make_unique<UnsqueezeOp>());
  r.add(std::make_unique<IdentityOp>());
  r.add(std::make_unique<ShapeOp>());
  r.add(std::make_unique<TransposeOp>());
  r.add(std::make_unique<ConcatOp>());
  r.add(std::make_unique<SplitOp>());
  r.add(std::make_unique<SliceOp>());
  r.add(std::make_unique<GatherOp>());
  r.add(std::make_unique<PadOp>());
  r.add(std::make_unique<ResizeOp>());
  r.add(std::make_unique<ExpandOp>());
  r.add(std::make_unique<CastOp>());
  r.add(std::make_unique<WhereOp>());
  r.add(std::make_unique<ConstantOp>());
}

}  // namespace proof::ops

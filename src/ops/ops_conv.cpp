// Convolution and pooling operator defines.
#include <algorithm>
#include <cmath>

#include "ops/common.hpp"
#include "support/error.hpp"

namespace proof::ops {

namespace {

/// Shared conv/pool spatial arithmetic on NCHW tensors.
struct Conv2dGeometry {
  int64_t n, c_in, h_in, w_in;
  int64_t kh, kw, sh, sw, dh, dw;
  int64_t pad_t, pad_l, pad_b, pad_r;

  static Conv2dGeometry from(const OpContext& ctx, int64_t kh, int64_t kw) {
    const Shape& x = ctx.in_shape(0);
    PROOF_CHECK(x.rank() == 4, "expected NCHW input, got " << x.to_string());
    const auto strides = ctx.attrs().get_ints_or("strides", {1, 1});
    const auto dil = ctx.attrs().get_ints_or("dilations", {1, 1});
    const auto pads = ctx.attrs().get_ints_or("pads", {0, 0, 0, 0});
    PROOF_CHECK(strides.size() == 2 && dil.size() == 2 && pads.size() == 4,
                "bad conv attributes on '" << ctx.node().name << "'");
    return Conv2dGeometry{x.dim(0), x.dim(1), x.dim(2), x.dim(3), kh,      kw,
                          strides[0], strides[1], dil[0], dil[1],
                          pads[0],    pads[1],    pads[2], pads[3]};
  }

  [[nodiscard]] int64_t h_out() const {
    return (h_in + pad_t + pad_b - ((kh - 1) * dh + 1)) / sh + 1;
  }
  [[nodiscard]] int64_t w_out() const {
    return (w_in + pad_l + pad_r - ((kw - 1) * dw + 1)) / sw + 1;
  }

  /// Fraction of the input actually touched: when stride exceeds the
  /// receptive extent, rows/columns are skipped entirely (paper §3.2.1's
  /// special rule for large-stride, small-kernel convolutions).
  [[nodiscard]] double input_read_fraction() const {
    const double fh = std::min(1.0, static_cast<double>((kh - 1) * dh + 1) /
                                        static_cast<double>(sh));
    const double fw = std::min(1.0, static_cast<double>((kw - 1) * dw + 1) /
                                        static_cast<double>(sw));
    return fh * fw;
  }
};

class ConvOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Conv"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    const Shape& w = ctx.in_shape(1);
    PROOF_CHECK(w.rank() == 4, "Conv weight must be 4-D, got " << w.to_string());
    const Conv2dGeometry g = Conv2dGeometry::from(ctx, w.dim(2), w.dim(3));
    const int64_t groups = ctx.attrs().get_int_or("group", 1);
    PROOF_CHECK(w.dim(1) * groups == g.c_in,
                "Conv '" << ctx.node().name << "': weight " << w.to_string()
                         << " incompatible with input channels " << g.c_in
                         << " at groups=" << groups);
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = Shape{g.n, w.dim(0), g.h_out(), g.w_out()};
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    const Shape& w = ctx.in_shape(1);
    const Conv2dGeometry g = Conv2dGeometry::from(ctx, w.dim(2), w.dim(3));
    const double out_elems =
        static_cast<double>(g.n) * static_cast<double>(w.dim(0)) *
        static_cast<double>(g.h_out()) * static_cast<double>(g.w_out());
    // MACs per output element: (Cin/groups) * kh * kw; 1 MAC = 2 FLOP.
    double total = out_elems * 2.0 * static_cast<double>(w.dim(1)) *
                   static_cast<double>(g.kh) * static_cast<double>(g.kw);
    if (ctx.num_inputs() > 2) {
      total += out_elems;  // bias add
    }
    return total;
  }

  [[nodiscard]] MemoryEstimate memory(const OpContext& ctx) const override {
    MemoryEstimate est = OpDef::memory(ctx);
    const Shape& w = ctx.in_shape(1);
    const Conv2dGeometry g = Conv2dGeometry::from(ctx, w.dim(2), w.dim(3));
    est.read_bytes *= g.input_read_fraction();
    return est;
  }

  [[nodiscard]] OpClass op_class(const OpContext& ctx) const override {
    const Shape& w = ctx.in_shape(1);
    const int64_t groups = ctx.attrs().get_int_or("group", 1);
    if (groups > 1 && w.dim(1) == 1) {
      return OpClass::kConvDepthwise;
    }
    if (w.dim(2) == 1 && w.dim(3) == 1) {
      return OpClass::kConvPointwise;
    }
    return OpClass::kConv;
  }

  [[nodiscard]] bool has_reference() const override { return true; }

  void eval(const OpContext& ctx, const std::vector<const Tensor*>& inputs,
            std::vector<Tensor>& outputs) const override {
    const Shape& wshape = ctx.in_shape(1);
    const Conv2dGeometry g = Conv2dGeometry::from(ctx, wshape.dim(2), wshape.dim(3));
    const int64_t groups = ctx.attrs().get_int_or("group", 1);
    const int64_t c_out = wshape.dim(0);
    const int64_t cpg_in = g.c_in / groups;   // channels per group, input
    const int64_t cpg_out = c_out / groups;   // channels per group, output
    const int64_t ho = g.h_out();
    const int64_t wo = g.w_out();
    const Tensor& x = *inputs[0];
    const Tensor& w = *inputs[1];
    const Tensor* bias = inputs.size() > 2 ? inputs[2] : nullptr;
    Tensor& y = outputs[0];
    for (int64_t n = 0; n < g.n; ++n) {
      for (int64_t oc = 0; oc < c_out; ++oc) {
        const int64_t group = oc / cpg_out;
        for (int64_t oh = 0; oh < ho; ++oh) {
          for (int64_t ow = 0; ow < wo; ++ow) {
            float acc = bias != nullptr ? bias->at(oc) : 0.0f;
            for (int64_t ic = 0; ic < cpg_in; ++ic) {
              const int64_t c = group * cpg_in + ic;
              for (int64_t fh = 0; fh < g.kh; ++fh) {
                const int64_t ih = oh * g.sh - g.pad_t + fh * g.dh;
                if (ih < 0 || ih >= g.h_in) continue;
                for (int64_t fw = 0; fw < g.kw; ++fw) {
                  const int64_t iw = ow * g.sw - g.pad_l + fw * g.dw;
                  if (iw < 0 || iw >= g.w_in) continue;
                  const int64_t xi = ((n * g.c_in + c) * g.h_in + ih) * g.w_in + iw;
                  const int64_t wi = ((oc * cpg_in + ic) * g.kh + fh) * g.kw + fw;
                  acc += x.at(xi) * w.at(wi);
                }
              }
            }
            const int64_t yi = ((n * c_out + oc) * ho + oh) * wo + ow;
            y.at(yi) = acc;
          }
        }
      }
    }
  }
};

class ConvTransposeOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "ConvTranspose"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    const Shape& x = ctx.in_shape(0);
    const Shape& w = ctx.in_shape(1);  // [Cin, Cout/groups, kh, kw]
    PROOF_CHECK(x.rank() == 4 && w.rank() == 4,
                "ConvTranspose expects 4-D input and weight");
    const auto strides = ctx.attrs().get_ints_or("strides", {1, 1});
    const auto pads = ctx.attrs().get_ints_or("pads", {0, 0, 0, 0});
    const int64_t groups = ctx.attrs().get_int_or("group", 1);
    const int64_t h_out =
        (x.dim(2) - 1) * strides[0] + w.dim(2) - pads[0] - pads[2];
    const int64_t w_out =
        (x.dim(3) - 1) * strides[1] + w.dim(3) - pads[1] - pads[3];
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = Shape{x.dim(0), w.dim(1) * groups, h_out, w_out};
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    const Shape& x = ctx.in_shape(0);
    const Shape& w = ctx.in_shape(1);
    // Every input element contributes a (Cout/groups * kh * kw)-MAC stencil.
    double total = static_cast<double>(x.numel()) * 2.0 *
                   static_cast<double>(w.dim(1)) * static_cast<double>(w.dim(2)) *
                   static_cast<double>(w.dim(3));
    if (ctx.num_inputs() > 2) {
      const auto outs = infer(ctx);
      total += static_cast<double>(outs[0].shape.numel());
    }
    return total;
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override { return OpClass::kConv; }
};

class MaxPoolOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "MaxPool"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    const auto kernel = ctx.attrs().get_ints("kernel_shape");
    const Conv2dGeometry g = Conv2dGeometry::from(ctx, kernel[0], kernel[1]);
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = Shape{g.n, g.c_in, g.h_out(), g.w_out()};
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    const auto kernel = ctx.attrs().get_ints("kernel_shape");
    const Conv2dGeometry g = Conv2dGeometry::from(ctx, kernel[0], kernel[1]);
    const double out_elems = static_cast<double>(g.n * g.c_in) *
                             static_cast<double>(g.h_out()) *
                             static_cast<double>(g.w_out());
    return out_elems * static_cast<double>(kernel[0] * kernel[1]) * flop_cost::kCompare;
  }

  [[nodiscard]] MemoryEstimate memory(const OpContext& ctx) const override {
    MemoryEstimate est = OpDef::memory(ctx);
    const auto kernel = ctx.attrs().get_ints("kernel_shape");
    est.read_bytes *= Conv2dGeometry::from(ctx, kernel[0], kernel[1]).input_read_fraction();
    return est;
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kReduction;
  }

  [[nodiscard]] bool has_reference() const override { return true; }

  void eval(const OpContext& ctx, const std::vector<const Tensor*>& inputs,
            std::vector<Tensor>& outputs) const override {
    const auto kernel = ctx.attrs().get_ints("kernel_shape");
    const Conv2dGeometry g = Conv2dGeometry::from(ctx, kernel[0], kernel[1]);
    const int64_t ho = g.h_out();
    const int64_t wo = g.w_out();
    const Tensor& x = *inputs[0];
    Tensor& y = outputs[0];
    for (int64_t n = 0; n < g.n; ++n) {
      for (int64_t c = 0; c < g.c_in; ++c) {
        for (int64_t oh = 0; oh < ho; ++oh) {
          for (int64_t ow = 0; ow < wo; ++ow) {
            float best = -3.4e38f;
            for (int64_t fh = 0; fh < g.kh; ++fh) {
              const int64_t ih = oh * g.sh - g.pad_t + fh;
              if (ih < 0 || ih >= g.h_in) continue;
              for (int64_t fw = 0; fw < g.kw; ++fw) {
                const int64_t iw = ow * g.sw - g.pad_l + fw;
                if (iw < 0 || iw >= g.w_in) continue;
                best = std::max(best, x.at(((n * g.c_in + c) * g.h_in + ih) * g.w_in + iw));
              }
            }
            y.at(((n * g.c_in + c) * ho + oh) * wo + ow) = best;
          }
        }
      }
    }
  }
};

class AveragePoolOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "AveragePool"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    const auto kernel = ctx.attrs().get_ints("kernel_shape");
    const Conv2dGeometry g = Conv2dGeometry::from(ctx, kernel[0], kernel[1]);
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = Shape{g.n, g.c_in, g.h_out(), g.w_out()};
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    const auto kernel = ctx.attrs().get_ints("kernel_shape");
    const Conv2dGeometry g = Conv2dGeometry::from(ctx, kernel[0], kernel[1]);
    const double out_elems = static_cast<double>(g.n * g.c_in) *
                             static_cast<double>(g.h_out()) *
                             static_cast<double>(g.w_out());
    return out_elems * (static_cast<double>(kernel[0] * kernel[1]) * flop_cost::kAdd +
                        flop_cost::kDiv);
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kReduction;
  }
};

class GlobalAveragePoolOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "GlobalAveragePool"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    const Shape& x = ctx.in_shape(0);
    PROOF_CHECK(x.rank() >= 3, "GlobalAveragePool expects NCHW-like input");
    std::vector<int64_t> dims = {x.dim(0), x.dim(1)};
    for (size_t d = 2; d < x.rank(); ++d) {
      dims.push_back(1);
    }
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = Shape(std::move(dims));
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    return static_cast<double>(ctx.in_shape(0).numel()) * flop_cost::kAdd +
           static_cast<double>(ctx.in_shape(0).dim(0) * ctx.in_shape(0).dim(1)) *
               flop_cost::kDiv;
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kReduction;
  }

  [[nodiscard]] bool has_reference() const override { return true; }

  void eval(const OpContext& ctx, const std::vector<const Tensor*>& inputs,
            std::vector<Tensor>& outputs) const override {
    const Shape& x = ctx.in_shape(0);
    const int64_t n = x.dim(0);
    const int64_t c = x.dim(1);
    const int64_t spatial = x.numel() / (n * c);
    for (int64_t i = 0; i < n * c; ++i) {
      float sum = 0.0f;
      for (int64_t s = 0; s < spatial; ++s) {
        sum += inputs[0]->at(i * spatial + s);
      }
      outputs[0].at(i) = sum / static_cast<float>(spatial);
    }
  }
};

}  // namespace

void register_conv_ops(OpRegistry& r) {
  r.add(std::make_unique<ConvOp>());
  r.add(std::make_unique<ConvTransposeOp>());
  r.add(std::make_unique<MaxPoolOp>());
  r.add(std::make_unique<AveragePoolOp>());
  r.add(std::make_unique<GlobalAveragePoolOp>());
}

}  // namespace proof::ops

// Internal helpers shared by the built-in operator defines.
#pragma once

#include <functional>
#include <string>

#include "ops/op_def.hpp"

namespace proof::ops {

/// Elementwise unary operator: one input, same-shape output,
/// `cost` FLOP per element, optional scalar reference function.
class UnaryOp final : public OpDef {
 public:
  using ScalarFn = std::function<float(float, const OpContext&)>;

  UnaryOp(std::string type, double cost, ScalarFn fn = nullptr,
          OpClass cls = OpClass::kElementwise)
      : type_(std::move(type)), cost_(cost), fn_(std::move(fn)), class_(cls) {}

  [[nodiscard]] std::string_view type() const override { return type_; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = ctx.in_shape(0);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    return cost_ * static_cast<double>(ctx.in_shape(0).numel());
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override { return class_; }

  [[nodiscard]] bool has_reference() const override { return fn_ != nullptr; }

  void eval(const OpContext& ctx, const std::vector<const Tensor*>& inputs,
            std::vector<Tensor>& outputs) const override;

 private:
  std::string type_;
  double cost_;
  ScalarFn fn_;
  OpClass class_;
};

/// Elementwise binary operator with NumPy broadcasting.
class BinaryOp final : public OpDef {
 public:
  using ScalarFn = std::function<float(float, float)>;

  BinaryOp(std::string type, double cost, ScalarFn fn = nullptr)
      : type_(std::move(type)), cost_(cost), fn_(std::move(fn)) {}

  [[nodiscard]] std::string_view type() const override { return type_; }
  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override;
  [[nodiscard]] double flops(const OpContext& ctx) const override;
  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kElementwise;
  }
  [[nodiscard]] bool has_reference() const override { return fn_ != nullptr; }
  void eval(const OpContext& ctx, const std::vector<const Tensor*>& inputs,
            std::vector<Tensor>& outputs) const override;

 private:
  std::string type_;
  double cost_;
  ScalarFn fn_;
};

/// Broadcast-aware element read: returns the flat index into `shape` that a
/// broadcasted read at `out_index` of `out_shape` should use.
[[nodiscard]] int64_t broadcast_index(const Shape& out_shape, int64_t out_index,
                                      const Shape& in_shape);

/// Row-major strides for a shape.
[[nodiscard]] std::vector<int64_t> row_major_strides(const Shape& shape);

}  // namespace proof::ops

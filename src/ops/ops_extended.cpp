// Extended operator defines beyond the Table-3 model requirements: common
// ONNX operators a downstream user's models may contain (super-resolution
// shuffles, detection heads, classic CNNs, language-model exports).
#include <cmath>

#include "ops/common.hpp"
#include "support/error.hpp"

namespace proof::ops {

namespace {

/// Inference-mode InstanceNormalization: per-(N,C) spatial statistics.
class InstanceNormOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override {
    return "InstanceNormalization";
  }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    PROOF_CHECK(ctx.in_shape(0).rank() >= 3,
                "InstanceNormalization expects NCHW-like input");
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = ctx.in_shape(0);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    return 8.0 * static_cast<double>(ctx.in_shape(0).numel());
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kNormalization;
  }
};

/// PRelu: y = x > 0 ? x : slope * x, slope broadcast per channel.
class PReluOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "PRelu"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = ctx.in_shape(0);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    return 2.0 * static_cast<double>(ctx.in_shape(0).numel());
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kElementwise;
  }
};

/// DepthToSpace / SpaceToDepth (pixel shuffle): pure data rearrangement.
class PixelShuffleOp final : public OpDef {
 public:
  PixelShuffleOp(std::string type, bool depth_to_space)
      : type_(std::move(type)), depth_to_space_(depth_to_space) {}

  [[nodiscard]] std::string_view type() const override { return type_; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    const Shape& x = ctx.in_shape(0);
    PROOF_CHECK(x.rank() == 4, type_ << " expects NCHW input");
    const int64_t block = ctx.attrs().get_int("blocksize");
    PROOF_CHECK(block > 0, "blocksize must be positive");
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    if (depth_to_space_) {
      PROOF_CHECK(x.dim(1) % (block * block) == 0,
                  type_ << ": channels not divisible by blocksize^2");
      out.shape = Shape{x.dim(0), x.dim(1) / (block * block), x.dim(2) * block,
                        x.dim(3) * block};
    } else {
      PROOF_CHECK(x.dim(2) % block == 0 && x.dim(3) % block == 0,
                  type_ << ": spatial dims not divisible by blocksize");
      out.shape = Shape{x.dim(0), x.dim(1) * block * block, x.dim(2) / block,
                        x.dim(3) / block};
    }
    return {out};
  }

  [[nodiscard]] double flops(const OpContext&) const override { return 0.0; }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kDataMovement;
  }

 private:
  std::string type_;
  bool depth_to_space_;
};

class GlobalMaxPoolOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "GlobalMaxPool"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    const Shape& x = ctx.in_shape(0);
    PROOF_CHECK(x.rank() >= 3, "GlobalMaxPool expects NCHW-like input");
    std::vector<int64_t> dims = {x.dim(0), x.dim(1)};
    for (size_t d = 2; d < x.rank(); ++d) {
      dims.push_back(1);
    }
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = Shape(std::move(dims));
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    return static_cast<double>(ctx.in_shape(0).numel()) * flop_cost::kCompare;
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kReduction;
  }
};

/// Reduce over axes keeping the comparison semantics (Max / Min).
class ReduceExtremumOp final : public OpDef {
 public:
  explicit ReduceExtremumOp(std::string type) : type_(std::move(type)) {}

  [[nodiscard]] std::string_view type() const override { return type_; }

  static Shape reduced_shape(const OpContext& ctx) {
    const Shape& x = ctx.in_shape(0);
    const bool keepdims = ctx.attrs().get_int_or("keepdims", 1) != 0;
    const auto axes = ctx.attrs().get_ints_or("axes", [&] {
      std::vector<int64_t> all(x.rank());
      for (size_t i = 0; i < x.rank(); ++i) all[i] = static_cast<int64_t>(i);
      return all;
    }());
    std::vector<bool> reduced(x.rank(), false);
    for (const int64_t a : axes) {
      reduced[static_cast<size_t>(x.normalize_axis(static_cast<int>(a)))] = true;
    }
    std::vector<int64_t> dims;
    for (size_t d = 0; d < x.rank(); ++d) {
      if (!reduced[d]) {
        dims.push_back(x.dims()[d]);
      } else if (keepdims) {
        dims.push_back(1);
      }
    }
    return Shape(std::move(dims));
  }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = reduced_shape(ctx);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    return static_cast<double>(ctx.in_shape(0).numel()) * flop_cost::kCompare;
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kReduction;
  }

 private:
  std::string type_;
};

/// ArgMax over one axis: index output, integer dtype.
class ArgMaxOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "ArgMax"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    Shape shape = ctx.in_shape(0);
    const int axis = shape.normalize_axis(
        static_cast<int>(ctx.attrs().get_int_or("axis", 0)));
    const bool keepdims = ctx.attrs().get_int_or("keepdims", 1) != 0;
    if (keepdims) {
      shape.set_dim(axis, 1);
    } else {
      shape.erase_dim(axis);
    }
    TensorDesc out;
    out.dtype = DType::kI64;
    out.shape = std::move(shape);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    return static_cast<double>(ctx.in_shape(0).numel()) * flop_cost::kCompare;
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kReduction;
  }
};

class LogSoftmaxOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "LogSoftmax"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = ctx.in_shape(0);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    return (flop_cost::kCompare + 1.0 + flop_cost::kExp + flop_cost::kAdd +
            flop_cost::kLog) *
           static_cast<double>(ctx.in_shape(0).numel());
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kSoftmax;
  }
};

/// Restricted Einsum: matmul-like contractions "...ij,...jk->...ik" and the
/// transpose-contraction "bhid,bhjd->bhij" attention pattern.
class EinsumOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "Einsum"; }

  struct Contraction {
    Shape out;
    double macs;
  };

  static Contraction analyze(const OpContext& ctx) {
    const std::string equation = ctx.attrs().get_string("equation");
    PROOF_CHECK(ctx.num_inputs() == 2, "Einsum supports 2 operands");
    const size_t arrow = equation.find("->");
    PROOF_CHECK(arrow != std::string::npos, "Einsum needs explicit output");
    const size_t comma = equation.find(',');
    PROOF_CHECK(comma != std::string::npos && comma < arrow,
                "Einsum needs two input subscripts");
    const std::string sub_a = equation.substr(0, comma);
    const std::string sub_b = equation.substr(comma + 1, arrow - comma - 1);
    const std::string sub_out = equation.substr(arrow + 2);
    const Shape& a = ctx.in_shape(0);
    const Shape& b = ctx.in_shape(1);
    PROOF_CHECK(sub_a.size() == a.rank() && sub_b.size() == b.rank(),
                "Einsum subscripts must match operand ranks");
    // Map every label to its extent; consistency-checked across operands.
    std::map<char, int64_t> extent;
    for (size_t i = 0; i < sub_a.size(); ++i) {
      extent[sub_a[i]] = a.dims()[i];
    }
    for (size_t i = 0; i < sub_b.size(); ++i) {
      const auto it = extent.find(sub_b[i]);
      PROOF_CHECK(it == extent.end() || it->second == b.dims()[i],
                  "Einsum label '" << sub_b[i] << "' extent mismatch");
      extent[sub_b[i]] = b.dims()[i];
    }
    std::vector<int64_t> out_dims;
    for (const char label : sub_out) {
      const auto it = extent.find(label);
      PROOF_CHECK(it != extent.end(), "Einsum output label '" << label
                                                              << "' unbound");
      out_dims.push_back(it->second);
    }
    // MACs = product of all label extents (each output element accumulates
    // over every contracted label).
    double macs = 1.0;
    for (const auto& [label, dim] : extent) {
      macs *= static_cast<double>(dim);
    }
    return {Shape(std::move(out_dims)), macs};
  }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    TensorDesc out;
    out.dtype = ctx.input(0).dtype;
    out.shape = analyze(ctx).out;
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    return 2.0 * analyze(ctx).macs;
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kGemm;
  }
};

}  // namespace

void register_extended_ops(OpRegistry& r) {
  r.add(std::make_unique<InstanceNormOp>());
  r.add(std::make_unique<PReluOp>());
  r.add(std::make_unique<PixelShuffleOp>("DepthToSpace", true));
  r.add(std::make_unique<PixelShuffleOp>("SpaceToDepth", false));
  r.add(std::make_unique<GlobalMaxPoolOp>());
  r.add(std::make_unique<ReduceExtremumOp>("ReduceMax"));
  r.add(std::make_unique<ReduceExtremumOp>("ReduceMin"));
  r.add(std::make_unique<ArgMaxOp>());
  r.add(std::make_unique<LogSoftmaxOp>());
  r.add(std::make_unique<EinsumOp>());
  // Additional activations on the shared elementwise machinery.
  r.add(std::make_unique<UnaryOp>("Elu", flop_cost::kExp + 2.0,
                                  [](float x, const OpContext& ctx) {
                                    const float alpha = static_cast<float>(
                                        ctx.attrs().get_float_or("alpha", 1.0));
                                    return x > 0.0f
                                               ? x
                                               : alpha * (std::exp(x) - 1.0f);
                                  }));
  r.add(std::make_unique<UnaryOp>("Softplus", flop_cost::kExp + flop_cost::kLog,
                                  [](float x, const OpContext&) {
                                    return std::log1p(std::exp(x));
                                  }));
  r.add(std::make_unique<UnaryOp>(
      "Mish", flop_cost::kExp + flop_cost::kLog + flop_cost::kTanh + 1.0,
      [](float x, const OpContext&) {
        return x * std::tanh(std::log1p(std::exp(x)));
      }));
  r.add(std::make_unique<UnaryOp>("Abs", 1.0, [](float x, const OpContext&) {
    return std::abs(x);
  }));
  r.add(std::make_unique<UnaryOp>("Floor", 1.0, [](float x, const OpContext&) {
    return std::floor(x);
  }));
  r.add(std::make_unique<UnaryOp>("Ceil", 1.0, [](float x, const OpContext&) {
    return std::ceil(x);
  }));
}

}  // namespace proof::ops

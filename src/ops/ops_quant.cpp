// Quantization operator defines: QuantizeLinear / DequantizeLinear (the ONNX
// QDQ representation the paper's int8 runs execute).
#include <cmath>

#include "ops/common.hpp"
#include "support/error.hpp"

namespace proof::ops {

namespace {

/// QuantizeLinear(x, scale[, zero_point]) -> int8 tensor of x's shape.
class QuantizeLinearOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override { return "QuantizeLinear"; }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    PROOF_CHECK(ctx.num_inputs() >= 2, "QuantizeLinear needs x and scale");
    TensorDesc out;
    out.dtype = DType::kI8;
    out.shape = ctx.in_shape(0);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    // scale-divide + round per element.
    return (flop_cost::kDiv + 1.0) * static_cast<double>(ctx.in_shape(0).numel());
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kElementwise;
  }

  [[nodiscard]] bool has_reference() const override { return true; }

  void eval(const OpContext&, const std::vector<const Tensor*>& inputs,
            std::vector<Tensor>& outputs) const override {
    const float scale = inputs[1]->at(0);
    for (int64_t i = 0; i < inputs[0]->numel(); ++i) {
      const float q = std::round(inputs[0]->at(i) / scale);
      outputs[0].at(i) = std::min(127.0f, std::max(-128.0f, q));
    }
  }
};

/// DequantizeLinear(x_int8, scale) -> float tensor of x's shape; the output
/// precision follows the scale parameter so fp16 deployments flow through.
class DequantizeLinearOp final : public OpDef {
 public:
  [[nodiscard]] std::string_view type() const override {
    return "DequantizeLinear";
  }

  [[nodiscard]] std::vector<TensorDesc> infer(const OpContext& ctx) const override {
    PROOF_CHECK(ctx.num_inputs() >= 2, "DequantizeLinear needs x and scale");
    TensorDesc out;
    out.dtype = ctx.input(1).dtype;
    out.shape = ctx.in_shape(0);
    return {out};
  }

  [[nodiscard]] double flops(const OpContext& ctx) const override {
    return static_cast<double>(ctx.in_shape(0).numel());  // one multiply
  }

  [[nodiscard]] OpClass op_class(const OpContext&) const override {
    return OpClass::kElementwise;
  }

  [[nodiscard]] bool has_reference() const override { return true; }

  void eval(const OpContext&, const std::vector<const Tensor*>& inputs,
            std::vector<Tensor>& outputs) const override {
    const float scale = inputs[1]->at(0);
    for (int64_t i = 0; i < inputs[0]->numel(); ++i) {
      outputs[0].at(i) = inputs[0]->at(i) * scale;
    }
  }
};

}  // namespace

void register_quant_ops(OpRegistry& r) {
  r.add(std::make_unique<QuantizeLinearOp>());
  r.add(std::make_unique<DequantizeLinearOp>());
}

}  // namespace proof::ops

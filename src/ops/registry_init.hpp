// Internal: one-time registration of all built-in operator defines.
#pragma once

namespace proof {

class OpRegistry;

/// Registers every built-in OpDef into `registry` (register_ops.cpp).
void register_builtin_ops(OpRegistry& registry);

}  // namespace proof

// Full-stack mapping (paper Figure 3): model layer <-> backend layer <->
// device kernel, bidirectionally navigable.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mapping/layer_mapping.hpp"

namespace proof::mapping {

/// Immutable three-level index built from a completed layer mapping.
class StackMapping {
 public:
  StackMapping(const backends::Engine& engine, const LayerMapping& mapping);

  /// Backend layer index implementing a model node, or -1 when unclaimed.
  [[nodiscard]] int backend_layer_of(const std::string& model_node) const;

  /// Model nodes implemented by backend layer `layer_index`.
  [[nodiscard]] const std::vector<std::string>& model_nodes_of(size_t layer_index) const;

  /// Kernel names lowered from backend layer `layer_index`.
  [[nodiscard]] const std::vector<std::string>& kernels_of(size_t layer_index) const;

  /// Backend layer index owning a kernel, or -1 when unknown.
  [[nodiscard]] int backend_layer_of_kernel(const std::string& kernel_name) const;

  [[nodiscard]] size_t num_layers() const { return model_nodes_.size(); }

 private:
  std::map<std::string, int> node_to_layer_;
  std::map<std::string, int> kernel_to_layer_;
  std::vector<std::vector<std::string>> model_nodes_;
  std::vector<std::vector<std::string>> kernels_;
};

}  // namespace proof::mapping

#include "mapping/stack_mapping.hpp"

#include "support/error.hpp"

namespace proof::mapping {

StackMapping::StackMapping(const backends::Engine& engine, const LayerMapping& mapping) {
  PROOF_CHECK(mapping.entries.size() == engine.layers().size(),
              "mapping/layer count mismatch");
  model_nodes_.resize(mapping.entries.size());
  kernels_.resize(mapping.entries.size());
  for (size_t i = 0; i < mapping.entries.size(); ++i) {
    model_nodes_[i] = mapping.entries[i].model_nodes;
    for (const std::string& node : model_nodes_[i]) {
      node_to_layer_[node] = static_cast<int>(i);
    }
    for (const hw::KernelWork& kernel : engine.layers()[i].kernels) {
      kernels_[i].push_back(kernel.name);
      kernel_to_layer_[kernel.name] = static_cast<int>(i);
    }
  }
}

int StackMapping::backend_layer_of(const std::string& model_node) const {
  const auto it = node_to_layer_.find(model_node);
  return it == node_to_layer_.end() ? -1 : it->second;
}

const std::vector<std::string>& StackMapping::model_nodes_of(size_t layer_index) const {
  PROOF_CHECK(layer_index < model_nodes_.size(), "bad layer index " << layer_index);
  return model_nodes_[layer_index];
}

const std::vector<std::string>& StackMapping::kernels_of(size_t layer_index) const {
  PROOF_CHECK(layer_index < kernels_.size(), "bad layer index " << layer_index);
  return kernels_[layer_index];
}

int StackMapping::backend_layer_of_kernel(const std::string& kernel_name) const {
  const auto it = kernel_to_layer_.find(kernel_name);
  return it == kernel_to_layer_.end() ? -1 : it->second;
}

}  // namespace proof::mapping

// Layer mapping (paper §3.3, Figure 2): reconstructing which model-design
// nodes each backend layer implements, using only the information surface a
// real runtime exposes.
//
// The mapping ladder, applied per backend layer:
//   1. backend-inserted conversion layers register tensor aliases and map to
//      no model nodes;
//   2. name metadata (exact node name, or a fused-name list as exposed by
//      ONNX Runtime node names / OpenVINO originalLayersNames / TensorRT
//      "a + b" layer names) resolves directly;
//   3. I/O subgraph search (`get_subgraph_ops_by_io`) recovers fused layers
//      that expose only boundary tensors (ORT fused ops, Myelin regions);
//   4. dependency-context inference: a permissive backward walk from the
//      layer outputs over still-unclaimed nodes, for layers whose declared
//      boundary is incomplete.
// Every resolved multi-node layer is registered as a `_FusedOp` on the
// Optimized Analyze Representation, so the OAR converges to the backend's
// fused structure while retaining the model-design composition.
#pragma once

#include <string>
#include <vector>

#include "analysis/optimized_representation.hpp"
#include "backends/backend.hpp"

namespace proof::mapping {

enum class MapMethod : uint8_t {
  kExactName,            ///< layer name/info == one model node
  kNameList,             ///< fused-name list parsed from metadata
  kIoSearch,             ///< subgraph recovered from boundary tensors
  kDependencyInference,  ///< permissive dependency walk
  kBackendInserted,      ///< conversion layer added by the runtime
  kUnmapped,             ///< no mapping found
};

[[nodiscard]] std::string_view map_method_name(MapMethod method);

struct LayerMapEntry {
  std::string backend_layer;
  std::vector<std::string> model_nodes;  ///< mapped model-design node names
  MapMethod method = MapMethod::kUnmapped;
};

struct LayerMapping {
  std::vector<LayerMapEntry> entries;  ///< parallel to Engine::layers()

  /// Fraction of model nodes claimed by some backend layer.
  [[nodiscard]] double node_coverage(size_t total_nodes) const;
  /// Number of layers mapped by the given method.
  [[nodiscard]] size_t count(MapMethod method) const;
};

/// Maps every backend layer of `engine` onto `oar`'s model nodes.  Mutates
/// `oar` (aliases + fused ops).  Never consults BackendLayer::truth_nodes.
[[nodiscard]] LayerMapping map_layers(const backends::Engine& engine,
                                      OptimizedAnalyzeRepresentation& oar);

/// Replays a previously computed mapping onto a fresh `oar`, applying the
/// same alias registrations and `_FusedOp` groups without re-running the
/// mapping search.  Valid whenever `engine` has the same layer structure the
/// mapping was computed from — in particular any batch size of the same
/// (model, backend, platform, dtype) build (the legacy prep-cache plan
/// level), and any engine instantiated from a frozen AnalysisPlan, where the
/// layer list is replayed from recipes and therefore structurally identical
/// by construction (core/analysis_plan.hpp).  Throws ModelError when the
/// layer lists do not line up.
///
/// `member_ids` (optional) is a plan-derived shortcut: per-entry model node
/// ids pre-resolved against a graph with identical node numbering (every
/// clone_warm of the plan skeleton qualifies).  When given, the per-name
/// find_node lookups and the name cross-checks are skipped — the ids were
/// resolved from exactly these entries' names at plan-build time, so the
/// applied fused-op groups are identical by construction.
void apply_mapping(const backends::Engine& engine,
                   OptimizedAnalyzeRepresentation& oar,
                   const LayerMapping& mapping,
                   const std::vector<std::vector<NodeId>>* member_ids = nullptr);

/// Test/diagnostic helper: compares a mapping against the engine's ground
/// truth.  Returns the number of layers whose node set differs.
[[nodiscard]] size_t verify_against_truth(const LayerMapping& mapping,
                                          const backends::Engine& engine);

}  // namespace proof::mapping

#include "mapping/layer_mapping.hpp"

#include <algorithm>
#include <set>

#include "obs/span.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace proof::mapping {

std::string_view map_method_name(MapMethod method) {
  switch (method) {
    case MapMethod::kExactName:
      return "exact_name";
    case MapMethod::kNameList:
      return "name_list";
    case MapMethod::kIoSearch:
      return "io_search";
    case MapMethod::kDependencyInference:
      return "dependency_inference";
    case MapMethod::kBackendInserted:
      return "backend_inserted";
    case MapMethod::kUnmapped:
      return "unmapped";
  }
  PROOF_FAIL("unknown map method");
}

double LayerMapping::node_coverage(size_t total_nodes) const {
  std::set<std::string> covered;
  for (const LayerMapEntry& e : entries) {
    covered.insert(e.model_nodes.begin(), e.model_nodes.end());
  }
  return total_nodes == 0
             ? 0.0
             : static_cast<double>(covered.size()) / static_cast<double>(total_nodes);
}

size_t LayerMapping::count(MapMethod method) const {
  size_t n = 0;
  for (const LayerMapEntry& e : entries) {
    if (e.method == method) {
      ++n;
    }
  }
  return n;
}

namespace {

/// Tries to resolve `info` as a separator-joined list of model node names.
std::optional<std::vector<NodeId>> resolve_name_list(
    const Graph& g, const std::string& info, const std::string& sep) {
  std::vector<NodeId> ids;
  for (const auto& raw : strings::split(info, sep[0])) {
    std::string name{strings::trim(raw)};
    // " + "-joined lists leave a trailing '+'-less token; tolerate both
    // "a + b" and "a,b" styles by trimming any residual separator chars.
    while (!name.empty() && (name.back() == '+' || name.back() == ',')) {
      name.pop_back();
    }
    while (!name.empty() && (name.front() == '+' || name.front() == ',')) {
      name.erase(name.begin());
    }
    name = std::string(strings::trim(name));
    if (name.empty()) {
      continue;
    }
    const NodeId id = g.find_node(name);
    if (id == kInvalidNode) {
      return std::nullopt;
    }
    ids.push_back(id);
  }
  if (ids.empty()) {
    return std::nullopt;
  }
  return ids;
}

/// Permissive backward walk: collects unclaimed nodes reachable from the
/// layer outputs, stopping at declared inputs, params, graph inputs and
/// already-claimed nodes.  Used when the declared boundary is incomplete.
/// Runs entirely on interned ids: flag vectors instead of string sets.
std::vector<NodeId> dependency_walk(const OptimizedAnalyzeRepresentation& oar,
                                    const std::vector<std::string>& inputs,
                                    const std::vector<std::string>& outputs) {
  const Graph& g = oar.base().graph();
  std::vector<uint8_t> stop(g.num_tensor_ids(), 0);
  for (const std::string& t : inputs) {
    const TensorId id = oar.resolve_id(t);
    if (id != kInvalidTensor) {
      stop[static_cast<size_t>(id)] = 1;
    }
  }
  std::vector<uint8_t> visited(g.num_nodes(), 0);
  std::vector<NodeId> frontier;
  for (const std::string& out : outputs) {
    const NodeId p = g.producer(oar.resolve_id(out));
    if (p != kInvalidNode && !oar.is_fused(p) && !visited[static_cast<size_t>(p)]) {
      visited[static_cast<size_t>(p)] = 1;
      frontier.push_back(p);
    }
  }
  for (size_t head = 0; head < frontier.size(); ++head) {
    const NodeId id = frontier[head];
    for (const TensorId in : g.node_input_ids(id)) {
      if (stop[static_cast<size_t>(in)]) {
        continue;
      }
      if (g.tensor_is_param(in)) {
        continue;
      }
      const NodeId p = g.producer(in);
      if (p == kInvalidNode || oar.is_fused(p)) {
        continue;  // clip the walk instead of failing
      }
      if (!visited[static_cast<size_t>(p)]) {
        visited[static_cast<size_t>(p)] = 1;
        frontier.push_back(p);
      }
    }
  }
  std::sort(frontier.begin(), frontier.end());
  return frontier;
}

}  // namespace

LayerMapping map_layers(const backends::Engine& engine,
                        OptimizedAnalyzeRepresentation& oar) {
  PROOF_SPAN("mapping.map_layers");
  const Graph& g = oar.base().graph();
  LayerMapping mapping;
  mapping.entries.reserve(engine.layers().size());

  for (const backends::BackendLayer& layer : engine.layers()) {
    LayerMapEntry entry;
    entry.backend_layer = layer.name;

    if (layer.is_reorder) {
      // Conversion layer: its output tensor is a renamed copy of its input;
      // register the alias so downstream I/O searches resolve (Figure 2's
      // set_tensor_alias step).
      if (layer.input_tensors.size() == 1 && layer.output_tensors.size() == 1 &&
          layer.input_tensors[0] != layer.output_tensors[0]) {
        oar.set_tensor_alias(layer.input_tensors[0], layer.output_tensors[0]);
      }
      entry.method = MapMethod::kBackendInserted;
      mapping.entries.push_back(std::move(entry));
      continue;
    }

    std::optional<std::vector<NodeId>> members;
    MapMethod method = MapMethod::kUnmapped;

    // Rung 1/2: name metadata.
    if (!layer.info.empty()) {
      const NodeId exact = g.find_node(layer.info);
      if (exact != kInvalidNode && !oar.is_fused(exact)) {
        members = std::vector<NodeId>{exact};
        method = MapMethod::kExactName;
      } else {
        for (const char* sep : {"+", ","}) {
          auto ids = resolve_name_list(g, layer.info, sep);
          if (ids.has_value()) {
            bool clean = true;
            for (const NodeId id : *ids) {
              clean = clean && !oar.is_fused(id);
            }
            if (clean) {
              members = std::move(ids);
              method = MapMethod::kNameList;
              break;
            }
          }
        }
      }
    }

    // Rung 3: I/O subgraph search.
    if (!members.has_value()) {
      members = oar.get_subgraph_ops_by_io(layer.input_tensors, layer.output_tensors);
      if (members.has_value()) {
        method = MapMethod::kIoSearch;
      }
    }

    // Rung 4: dependency-context inference.
    if (!members.has_value()) {
      std::vector<NodeId> walked =
          dependency_walk(oar, layer.input_tensors, layer.output_tensors);
      if (!walked.empty()) {
        members = std::move(walked);
        method = MapMethod::kDependencyInference;
      }
    }

    if (members.has_value()) {
      oar.set_fused_op(layer.name, *members);
      entry.method = method;
      entry.model_nodes.reserve(members->size());
      for (const NodeId id : *members) {
        entry.model_nodes.push_back(g.node(id).name);
      }
    }
    mapping.entries.push_back(std::move(entry));
  }

#ifndef PROOF_OBS_DISABLED
  // Per-rung outcome counters (which mapping rungs carry real workloads is
  // exactly the §3.2.4 question this layer answers about itself).
  if (obs::enabled()) {
    for (const LayerMapEntry& entry : mapping.entries) {
      obs::MetricsRegistry::instance()
          .counter("mapping.method." + std::string(map_method_name(entry.method)))
          .add(1);
    }
    PROOF_COUNT("mapping.layers", mapping.entries.size());
  }
#endif
  return mapping;
}

void apply_mapping(const backends::Engine& engine,
                   OptimizedAnalyzeRepresentation& oar,
                   const LayerMapping& mapping,
                   const std::vector<std::vector<NodeId>>* member_ids) {
  PROOF_SPAN("mapping.apply");
  const Graph& g = oar.base().graph();
  if (mapping.entries.size() != engine.layers().size()) {
    throw ModelError("apply_mapping: mapping has " +
                     std::to_string(mapping.entries.size()) + " entries but engine has " +
                     std::to_string(engine.layers().size()) + " layers");
  }
  PROOF_CHECK(member_ids == nullptr || member_ids->size() == mapping.entries.size(),
              "apply_mapping: member_ids/entry count mismatch");
  for (size_t i = 0; i < mapping.entries.size(); ++i) {
    const LayerMapEntry& entry = mapping.entries[i];
    const backends::BackendLayer& layer = engine.layers()[i];
    if (member_ids == nullptr && entry.backend_layer != layer.name) {
      throw ModelError("apply_mapping: layer " + std::to_string(i) + " is '" +
                       layer.name + "' but mapping expects '" +
                       entry.backend_layer + "'");
    }
    if (layer.is_reorder) {
      // Same alias registration map_layers performs for conversion layers.
      if (layer.input_tensors.size() == 1 && layer.output_tensors.size() == 1 &&
          layer.input_tensors[0] != layer.output_tensors[0]) {
        oar.set_tensor_alias(layer.input_tensors[0], layer.output_tensors[0]);
      }
      continue;
    }
    if (entry.model_nodes.empty()) {
      continue;  // was unmapped; stays unmapped
    }
    if (member_ids != nullptr) {
      // Ids pre-resolved from these entries at plan-build time against the
      // same node numbering; the lookups below would reproduce them exactly.
      oar.set_fused_op(layer.name, (*member_ids)[i]);
      continue;
    }
    std::vector<NodeId> members;
    members.reserve(entry.model_nodes.size());
    for (const std::string& name : entry.model_nodes) {
      const NodeId id = g.find_node(name);
      if (id == kInvalidNode) {
        throw ModelError("apply_mapping: model node '" + name +
                         "' not present in this graph");
      }
      members.push_back(id);
    }
    oar.set_fused_op(layer.name, members);
  }
}

size_t verify_against_truth(const LayerMapping& mapping,
                            const backends::Engine& engine) {
  PROOF_CHECK(mapping.entries.size() == engine.layers().size(),
              "mapping/layer count mismatch");
  size_t mismatches = 0;
  for (size_t i = 0; i < mapping.entries.size(); ++i) {
    const auto& truth = engine.layers()[i].truth_nodes;
    std::set<std::string> expected(truth.begin(), truth.end());
    std::set<std::string> actual(mapping.entries[i].model_nodes.begin(),
                                 mapping.entries[i].model_nodes.end());
    if (expected != actual) {
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace proof::mapping

// Achieved-peak measurement (Table 6).
//
// The paper assembles a pseudo ONNX model of large MatMuls and memory-copy
// operators, runs it through the backend and reads the best attained FLOP/s
// and bandwidth.  This header implements the read-out half: given the built
// probe engine and its profile, extract the achieved peaks.
#pragma once

#include "backends/backend.hpp"

namespace proof::roofline {

struct AchievedPeaks {
  double flops = 0.0;  ///< best attained FLOP/s across GEMM probe layers
  double bw = 0.0;     ///< best attained bytes/s across copy probe layers
};

/// Scans an engine's kernels under a clock state for the best compute and
/// bandwidth attainments.  Works on any engine but is intended for the
/// peak-probe pseudo model (`models::build_peak_probe`).
[[nodiscard]] AchievedPeaks achieved_peaks(const backends::Engine& engine,
                                           const hw::PlatformState& state);

}  // namespace proof::roofline

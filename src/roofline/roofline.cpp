#include "roofline/roofline.hpp"

#include "support/error.hpp"

namespace proof::roofline {

double Analysis::roofline_efficiency() const {
  const double attainable = ceilings.attainable(end_to_end.arithmetic_intensity());
  return attainable > 0.0 ? end_to_end.attained_flops() / attainable : 0.0;
}

Point aggregate(std::vector<Point>& layers, const std::string& name) {
  Point total;
  total.name = name;
  for (const Point& p : layers) {
    total.flops += p.flops;
    total.bytes += p.bytes;
    total.latency_s += p.latency_s;
  }
  if (total.latency_s > 0.0) {
    for (Point& p : layers) {
      p.latency_share = p.latency_s / total.latency_s;
    }
  }
  return total;
}

}  // namespace proof::roofline

// Time-based roofline (Wang et al., arXiv:2009.04598): instead of plotting
// attained FLOP/s against arithmetic intensity, each layer is converted into
// *time contributions* against the platform roofs —
//
//   t_comp = FLOP / peak_flops      (time if purely compute-limited)
//   t_mem  = bytes / peak_bw        (time if purely bandwidth-limited)
//   t_bound = max(t_comp, t_mem)    (roofline lower bound on layer time)
//
// and a layer is bandwidth-bound iff t_mem > t_comp.  For memory-bound
// workloads (LLM decode above all) this view answers the question the
// classic chart hides: *where does the time go, and how much of it is the
// memory system*?  The aggregate "bandwidth-bound fraction" weights layers
// by their time contribution, giving the decode-bound-ness number the sweep
// reports.
#pragma once

#include <string>
#include <vector>

#include "roofline/roofline.hpp"

namespace proof::roofline {

/// One layer (or a whole model) in time-contribution form.
struct TimePoint {
  std::string name;
  OpClass cls = OpClass::kElementwise;
  double flops = 0.0;
  double bytes = 0.0;
  double latency_s = 0.0;        ///< simulated/measured layer time
  double compute_time_s = 0.0;   ///< t_comp against the compute roof
  double memory_time_s = 0.0;    ///< t_mem against the bandwidth roof
  double bound_time_s = 0.0;     ///< max(t_comp, t_mem)
  bool bandwidth_bound = false;  ///< t_mem > t_comp
  double bound_share = 0.0;      ///< bound_time_s / sum over layers
  double latency_share = 0.0;    ///< latency_s / sum over layers

  /// Arithmetic intensity, same x-axis as the classic chart.
  [[nodiscard]] double arithmetic_intensity() const {
    return bytes > 0.0 ? flops / bytes : 0.0;
  }
  /// How close the layer runs to its roofline bound (1 = at the roof).
  [[nodiscard]] double bound_efficiency() const {
    return latency_s > 0.0 ? bound_time_s / latency_s : 0.0;
  }
};

/// Time-based roofline analysis of one model phase on one platform.
struct TimeAnalysis {
  Ceilings ceilings;
  TimePoint total;               ///< summed times over all layers
  std::vector<TimePoint> layers;

  /// Fraction of roofline-bound time spent in bandwidth-bound layers; the
  /// headline "decode-bound-ness" number in [0, 1].
  [[nodiscard]] double bandwidth_bound_time_fraction() const;
  /// Same fraction weighted by simulated latency instead of bound time.
  [[nodiscard]] double bandwidth_bound_latency_fraction() const;
  /// True when the phase as a whole spends most of its bound time on the
  /// memory system.
  [[nodiscard]] bool bandwidth_bound() const {
    return bandwidth_bound_time_fraction() > 0.5;
  }
};

/// Converts one classic roofline point into time form against `ceilings`.
[[nodiscard]] TimePoint time_point(const Point& p, const Ceilings& ceilings);

/// Converts a full classic analysis: per-layer time contributions, shares,
/// and the summed total.
[[nodiscard]] TimeAnalysis time_analysis(const Analysis& analysis);

}  // namespace proof::roofline

// Roofline math and analysis containers (Williams et al., adapted for DNN
// profiling as in the paper's §1/§4).
#pragma once

#include <string>
#include <vector>

#include "ops/op_def.hpp"
#include "tensor/dtype.hpp"

namespace proof::roofline {

/// One point on a roofline chart: a backend layer or a whole model.
struct Point {
  std::string name;
  double flops = 0.0;      ///< work performed (Model FLOP unless noted)
  double bytes = 0.0;      ///< DRAM traffic
  double latency_s = 0.0;
  double latency_share = 0.0;  ///< fraction of total model latency
  /// Critical-path weight in [0, 1] when a multi-stream timeline was
  /// analyzed (1 = on the critical path); negative = not computed.
  double criticality = -1.0;
  OpClass cls = OpClass::kElementwise;

  /// Arithmetic intensity (FLOP/byte); 0 when no traffic.
  [[nodiscard]] double arithmetic_intensity() const {
    return bytes > 0.0 ? flops / bytes : 0.0;
  }
  /// Attained performance (FLOP/s); 0 when latency unknown.
  [[nodiscard]] double attained_flops() const {
    return latency_s > 0.0 ? flops / latency_s : 0.0;
  }
  /// Attained DRAM bandwidth (bytes/s).
  [[nodiscard]] double attained_bandwidth() const {
    return latency_s > 0.0 ? bytes / latency_s : 0.0;
  }
};

/// Chart ceilings: a compute roof and one or more bandwidth roofs.
struct Ceilings {
  double peak_flops = 0.0;  ///< compute roof (theoretical or achieved)
  double peak_bw = 0.0;     ///< main bandwidth roof
  std::vector<std::pair<std::string, double>> extra_bw_lines;  ///< e.g. Fig. 8

  /// AI where the bandwidth roof meets the compute roof.
  [[nodiscard]] double ridge_ai() const {
    return peak_bw > 0.0 ? peak_flops / peak_bw : 0.0;
  }
  /// Attainable FLOP/s at a given arithmetic intensity.
  [[nodiscard]] double attainable(double ai) const {
    const double mem_limited = ai * peak_bw;
    return mem_limited < peak_flops ? mem_limited : peak_flops;
  }
  /// True when a point sits left of the ridge (memory-bound region).
  [[nodiscard]] bool memory_bound(const Point& p) const {
    return p.arithmetic_intensity() < ridge_ai();
  }
};

/// Complete roofline analysis of one model on one platform configuration.
struct Analysis {
  Ceilings ceilings;
  Point end_to_end;            ///< whole-model aggregate
  std::vector<Point> layers;   ///< per backend layer

  /// Efficiency of the end-to-end point vs the roofline at its AI.
  [[nodiscard]] double roofline_efficiency() const;
};

/// Fills latency_share on every layer point and builds the end-to-end
/// aggregate (sum of FLOP/bytes/latency).
[[nodiscard]] Point aggregate(std::vector<Point>& layers, const std::string& name);

}  // namespace proof::roofline

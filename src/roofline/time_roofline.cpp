#include "roofline/time_roofline.hpp"

namespace proof::roofline {

double TimeAnalysis::bandwidth_bound_time_fraction() const {
  double bound = 0.0;
  double bw_bound = 0.0;
  for (const TimePoint& layer : layers) {
    bound += layer.bound_time_s;
    if (layer.bandwidth_bound) {
      bw_bound += layer.bound_time_s;
    }
  }
  return bound > 0.0 ? bw_bound / bound : 0.0;
}

double TimeAnalysis::bandwidth_bound_latency_fraction() const {
  double total = 0.0;
  double bw_bound = 0.0;
  for (const TimePoint& layer : layers) {
    total += layer.latency_s;
    if (layer.bandwidth_bound) {
      bw_bound += layer.latency_s;
    }
  }
  return total > 0.0 ? bw_bound / total : 0.0;
}

TimePoint time_point(const Point& p, const Ceilings& ceilings) {
  TimePoint t;
  t.name = p.name;
  t.cls = p.cls;
  t.flops = p.flops;
  t.bytes = p.bytes;
  t.latency_s = p.latency_s;
  t.compute_time_s = ceilings.peak_flops > 0.0 ? p.flops / ceilings.peak_flops : 0.0;
  t.memory_time_s = ceilings.peak_bw > 0.0 ? p.bytes / ceilings.peak_bw : 0.0;
  t.bound_time_s =
      t.compute_time_s > t.memory_time_s ? t.compute_time_s : t.memory_time_s;
  t.bandwidth_bound = t.memory_time_s > t.compute_time_s;
  return t;
}

TimeAnalysis time_analysis(const Analysis& analysis) {
  TimeAnalysis out;
  out.ceilings = analysis.ceilings;
  out.layers.reserve(analysis.layers.size());
  double bound_sum = 0.0;
  double latency_sum = 0.0;
  for (const Point& layer : analysis.layers) {
    TimePoint t = time_point(layer, analysis.ceilings);
    bound_sum += t.bound_time_s;
    latency_sum += t.latency_s;
    out.total.flops += t.flops;
    out.total.bytes += t.bytes;
    out.total.latency_s += t.latency_s;
    out.total.compute_time_s += t.compute_time_s;
    out.total.memory_time_s += t.memory_time_s;
    out.total.bound_time_s += t.bound_time_s;
    out.layers.push_back(std::move(t));
  }
  for (TimePoint& layer : out.layers) {
    layer.bound_share = bound_sum > 0.0 ? layer.bound_time_s / bound_sum : 0.0;
    layer.latency_share =
        latency_sum > 0.0 ? layer.latency_s / latency_sum : 0.0;
  }
  out.total.name = analysis.end_to_end.name;
  out.total.cls = analysis.end_to_end.cls;
  out.total.bandwidth_bound = out.total.memory_time_s > out.total.compute_time_s;
  out.total.bound_share = 1.0;
  out.total.latency_share = 1.0;
  return out;
}

}  // namespace proof::roofline

#include "roofline/peak_test.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace proof::roofline {

AchievedPeaks achieved_peaks(const backends::Engine& engine,
                             const hw::PlatformState& state) {
  const hw::LatencyModel model(state);
  AchievedPeaks peaks;
  for (const hw::KernelWork& k : engine.all_kernels()) {
    const hw::KernelTiming t = model.time_kernel(k);
    if (t.latency_s <= 0.0) {
      continue;
    }
    if (k.cls == OpClass::kGemm || k.cls == OpClass::kConv ||
        k.cls == OpClass::kConvPointwise) {
      peaks.flops = std::max(peaks.flops, k.hw_flops / t.latency_s);
    }
    if (k.cls == OpClass::kCopy || k.cls == OpClass::kDataMovement) {
      peaks.bw = std::max(peaks.bw, k.bytes / t.latency_s);
    }
  }
  return peaks;
}

}  // namespace proof::roofline

// DVFS power model (paper §4.6 substitute for nvpmodel + jtop).
//
// Per-rail power: P_rail = max_w * (idle_frac + (1 - idle_frac) * util * fV2)
// where fV2 = (f/f_nom) * V(f)^2 and V(f) rises linearly from vmin_frac to 1
// across the frequency range.  Constants per platform are calibrated against
// Tables 6 and 7 (see PlatformDesc::power).
#pragma once

#include "hw/latency_model.hpp"

namespace proof::hw {

/// Engine utilizations of a workload, in [0, 1].
struct Utilization {
  double gpu = 0.0;
  double mem = 0.0;
};

class PowerModel {
 public:
  explicit PowerModel(PlatformState state) : state_(std::move(state)) {}

  /// Total board power for the given engine utilizations.
  [[nodiscard]] double power_w(const Utilization& util) const;

  /// Individual contributions (for reporting).
  [[nodiscard]] double gpu_rail_w(double util) const;
  [[nodiscard]] double mem_rail_w(double util) const;
  [[nodiscard]] double cpu_rail_w() const;
  [[nodiscard]] double idle_w() const;

  /// Dynamic-power frequency/voltage scale factor for a clock at `scale` of
  /// nominal with the given minimum-voltage fraction.
  [[nodiscard]] static double fv2(double scale, double vmin_frac);

 private:
  PlatformState state_;
};

}  // namespace proof::hw

#include "hw/latency_model.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace proof::hw {

namespace {

double clamp_to_domain(const ClockDomain& domain, double mhz) {
  PROOF_CHECK(domain.nominal_mhz > 0.0, "clock domain not configured");
  if (domain.available_mhz.empty()) {
    return mhz;
  }
  // Snap to the nearest available step.
  double best = domain.available_mhz.front();
  for (const double step : domain.available_mhz) {
    if (std::abs(step - mhz) < std::abs(best - mhz)) {
      best = step;
    }
  }
  return best;
}

}  // namespace

PlatformState::PlatformState(const PlatformDesc& desc, ClockSetting clocks)
    : desc_(&desc), clocks_(std::move(clocks)) {
  if (clocks_.gpu_mhz.has_value()) {
    clocks_.gpu_mhz = clamp_to_domain(desc.gpu_clock, *clocks_.gpu_mhz);
  }
  if (clocks_.mem_mhz.has_value()) {
    clocks_.mem_mhz = clamp_to_domain(desc.mem_clock, *clocks_.mem_mhz);
  }
  PROOF_CHECK(clocks_.cpu_cluster_mhz.empty() ||
                  clocks_.cpu_cluster_mhz.size() == desc.cpu_clusters.size(),
              "platform '" << desc.id << "' has " << desc.cpu_clusters.size()
                           << " CPU clusters, got "
                           << clocks_.cpu_cluster_mhz.size() << " settings");
}

double PlatformState::gpu_mhz() const {
  return clocks_.gpu_mhz.value_or(desc_->gpu_clock.nominal_mhz);
}

double PlatformState::mem_mhz() const {
  return clocks_.mem_mhz.value_or(desc_->mem_clock.nominal_mhz);
}

double PlatformState::gpu_scale() const {
  return gpu_mhz() / desc_->gpu_clock.nominal_mhz;
}

double PlatformState::mem_scale() const {
  return mem_mhz() / desc_->mem_clock.nominal_mhz;
}

int PlatformState::active_cpu_clusters() const {
  if (clocks_.cpu_cluster_mhz.empty()) {
    return static_cast<int>(desc_->cpu_clusters.size());
  }
  int active = 0;
  for (const double mhz : clocks_.cpu_cluster_mhz) {
    if (mhz > 0.0) {
      ++active;
    }
  }
  return active;
}

double LatencyModel::class_compute_eff(OpClass cls) {
  switch (cls) {
    case OpClass::kGemm:
      return 1.0;
    case OpClass::kConv:
      return 0.93;
    case OpClass::kConvPointwise:
      return 0.88;
    case OpClass::kConvDepthwise:
      return 0.11;  // poor tiling / vector pipeline only
    case OpClass::kElementwise:
      return 0.9;
    case OpClass::kReduction:
      return 0.45;
    case OpClass::kNormalization:
      return 0.55;
    case OpClass::kSoftmax:
      return 0.5;
    case OpClass::kDataMovement:
    case OpClass::kCopy:
    case OpClass::kNoOp:
      return 1.0;  // no compute component
  }
  PROOF_FAIL("unknown op class");
}

double LatencyModel::class_memory_eff(OpClass cls) {
  switch (cls) {
    case OpClass::kGemm:
      return 0.9;
    case OpClass::kConv:
    case OpClass::kConvPointwise:
      return 0.85;  // implicit-GEMM streams are not perfectly coalesced
    case OpClass::kElementwise:
      return 0.92;
    case OpClass::kConvDepthwise:
      return 0.9;
    case OpClass::kReduction:
    case OpClass::kNormalization:
    case OpClass::kSoftmax:
      return 0.9;
    case OpClass::kDataMovement:
      return 0.42;  // strided transposes / gathers / channel shuffles
    case OpClass::kCopy:
      return 0.97;  // contiguous copies stream near peak
    case OpClass::kNoOp:
      return 1.0;
  }
  PROOF_FAIL("unknown op class");
}

bool LatencyModel::uses_matrix_pipeline(OpClass cls) {
  return cls == OpClass::kGemm || cls == OpClass::kConv ||
         cls == OpClass::kConvPointwise;
}

double LatencyModel::achieved_bandwidth() const {
  const PlatformDesc& d = state_.desc();
  double bw = d.dram_bw * state_.mem_scale() * d.max_mem_eff;
  if (d.copy_bytes_per_clock > 0.0) {
    const double copy_cap = d.copy_bytes_per_clock * state_.gpu_mhz() * 1e6;
    bw = std::min(bw, copy_cap);
  }
  return bw;
}

double LatencyModel::achieved_compute_peak(DType dtype) const {
  const PlatformDesc& d = state_.desc();
  return d.matrix_peak(dtype) * state_.gpu_scale() * d.max_compute_eff;
}

KernelTiming LatencyModel::time_kernel(const KernelWork& kernel) const {
  const PlatformDesc& d = state_.desc();
  KernelTiming t;

  double compute_s = 0.0;
  if (kernel.hw_flops > 0.0) {
    PROOF_CHECK(d.supports(kernel.dtype),
                "platform '" << d.id << "' does not support "
                             << dtype_name(kernel.dtype));
    const double pipeline_peak = uses_matrix_pipeline(kernel.cls)
                                     ? d.matrix_peak(kernel.dtype)
                                     : d.vector_peak(kernel.dtype);
    double eff = d.max_compute_eff * class_compute_eff(kernel.cls);
    if (kernel.cls == OpClass::kConv || kernel.cls == OpClass::kConvPointwise ||
        kernel.cls == OpClass::kConvDepthwise) {
      eff *= d.conv_eff_scale;
    }
    // Occupancy ramp: small kernels pay a wave/tail penalty that fades as the
    // in-flight work saturates the machine (additive, so tiny kernels stay
    // overhead-bound instead of diverging).
    const double occ = kernel.hw_flops / (kernel.hw_flops + d.saturation_flops);
    const double ramp_s =
        d.saturation_flops /
        (d.matrix_peak(kernel.dtype) * state_.gpu_scale() * d.max_compute_eff);
    compute_s = kernel.hw_flops / (pipeline_peak * state_.gpu_scale() * eff) +
                ramp_s * (1.0 - occ);
  }

  double memory_s = 0.0;
  if (kernel.bytes > 0.0) {
    const double sat_bytes = d.saturation_flops / 400.0;
    const double occ = kernel.bytes / (kernel.bytes + sat_bytes);
    const double bw = achieved_bandwidth() * class_memory_eff(kernel.cls);
    memory_s = kernel.bytes / bw + (sat_bytes / bw) * (1.0 - occ);
  }

  t.compute_s = compute_s;
  t.memory_s = memory_s;
  t.memory_bound = memory_s >= compute_s;
  t.latency_s = d.kernel_overhead_s + std::max(compute_s, memory_s);
  return t;
}

}  // namespace proof::hw

// Roofline-consistent kernel latency simulation.
//
// This is the substitute for real hardware in this reproduction: given a
// kernel's workload class, hardware FLOP and DRAM traffic, the model produces
// a deterministic latency `overhead + max(compute, memory)` using the
// platform's pipeline peaks, efficiency ceilings, occupancy saturation and
// DVFS clock scaling.  Calibrated so the paper's qualitative results hold
// (see DESIGN.md §7).
#pragma once

#include <string>

#include "hw/platform.hpp"
#include "ops/op_def.hpp"

namespace proof::hw {

/// One device kernel's workload as seen by the hardware.
struct KernelWork {
  std::string name;
  OpClass cls = OpClass::kElementwise;
  DType dtype = DType::kF32;
  double hw_flops = 0.0;     ///< padded/implementation FLOP (drives latency)
  double bytes = 0.0;        ///< DRAM bytes moved
  /// Subset of hw_flops executed as MMA (tensor-core) instructions; the rest
  /// runs on the scalar/vector pipeline.  Consumed by the counter profiler.
  double matrix_flops = 0.0;
};

/// A platform pinned at a specific clock configuration.
class PlatformState {
 public:
  explicit PlatformState(const PlatformDesc& desc, ClockSetting clocks = {});

  [[nodiscard]] const PlatformDesc& desc() const { return *desc_; }
  [[nodiscard]] const ClockSetting& clocks() const { return clocks_; }

  /// Frequency scale factors vs nominal.
  [[nodiscard]] double gpu_scale() const;
  [[nodiscard]] double mem_scale() const;
  [[nodiscard]] double gpu_mhz() const;
  [[nodiscard]] double mem_mhz() const;
  /// Number of powered CPU clusters.
  [[nodiscard]] int active_cpu_clusters() const;

 private:
  const PlatformDesc* desc_;
  ClockSetting clocks_;
};

/// Per-kernel timing split.
struct KernelTiming {
  double latency_s = 0.0;
  double compute_s = 0.0;   ///< compute-pipeline busy time
  double memory_s = 0.0;    ///< DRAM busy time
  bool memory_bound = false;
};

class LatencyModel {
 public:
  explicit LatencyModel(PlatformState state) : state_(std::move(state)) {}

  [[nodiscard]] const PlatformState& state() const { return state_; }

  /// Simulated execution time of one kernel.
  [[nodiscard]] KernelTiming time_kernel(const KernelWork& kernel) const;

  /// Best-case attained FLOP/s for an ideal large GEMM at `dtype` (what the
  /// paper's roofline-peak pseudo model measures, Table 6).
  [[nodiscard]] double achieved_compute_peak(DType dtype) const;

  /// Best-case attained DRAM bandwidth: min of the DRAM limit at the memory
  /// clock and the copy capability of the compute engine at the core clock.
  [[nodiscard]] double achieved_bandwidth() const;

  /// Efficiency multiplier of the compute pipeline for a workload class.
  [[nodiscard]] static double class_compute_eff(OpClass cls);
  /// Efficiency multiplier of DRAM streaming for a workload class.
  [[nodiscard]] static double class_memory_eff(OpClass cls);
  /// True when the class runs on the matrix (tensor-core) pipeline.
  [[nodiscard]] static bool uses_matrix_pipeline(OpClass cls);

 private:
  PlatformState state_;
};

}  // namespace proof::hw

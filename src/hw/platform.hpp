// Hardware platform descriptors (Table 2 of the paper).
//
// Each platform carries the theoretical roofline parameters (per-dtype peak
// FLOP/s for tensor-core and vector pipelines, DRAM bandwidth) plus the
// efficiency/overhead constants that drive the kernel latency simulator.
// The seven platforms of the paper's evaluation are built in; descriptors
// are plain data so users can register their own.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "tensor/dtype.hpp"

namespace proof::hw {

/// One DVFS-controllable clock domain.
struct ClockDomain {
  double nominal_mhz = 0.0;               ///< frequency at the default profile
  std::vector<double> available_mhz;      ///< selectable steps (ascending)
};

/// Requested clock configuration; empty optionals mean "nominal".
struct ClockSetting {
  std::optional<double> gpu_mhz;
  std::optional<double> mem_mhz;
  /// Per-CPU-cluster clocks; 0 turns a cluster off.  Empty = all nominal.
  std::vector<double> cpu_cluster_mhz;
};

/// Power-model constants: P = idle + cpu + gpu(f,V(f)^2)*util + mem(f)*util.
struct PowerParams {
  double idle_w = 0.0;              ///< SoC + board static power
  double cpu_cluster_w = 0.0;       ///< per active CPU cluster at nominal clock
  double gpu_max_w = 0.0;           ///< GPU rail at nominal clock, 100 % util
  double gpu_vmin_frac = 0.7;       ///< V(f) = vmin + (1-vmin) * f/fnominal
  double mem_max_w = 0.0;           ///< memory rail at nominal clock, 100 % util
  double mem_vmin_frac = 0.8;
  double gpu_idle_frac = 0.12;      ///< rail floor when powered but idle
  double mem_idle_frac = 0.15;
};

struct PlatformDesc {
  std::string id;          ///< short key, e.g. "a100"
  std::string name;        ///< "NVIDIA A100 PCIE-40GB"
  std::string scenario;    ///< "Data center GPU"
  std::string runtime;     ///< paper's runtime for this platform (backend id)
  std::string arch;        ///< "volta" / "ampere" / "ada" / "x86" / "arm" / "npu"

  /// Theoretical peak FLOP/s of the matrix pipeline (tensor cores / AMX-like)
  /// per dtype; empty when the platform has no matrix engine.
  std::map<DType, double> tensor_peak_flops;
  /// Theoretical peak FLOP/s of the vector/SIMT pipeline per dtype.
  std::map<DType, double> vector_peak_flops;

  double dram_bw = 0.0;               ///< theoretical bytes/s at nominal clocks
  double kernel_overhead_s = 5e-6;    ///< per-kernel launch/dispatch cost

  // Efficiency ceilings reached by ideal workloads (achieved roofline).
  double max_compute_eff = 0.85;      ///< best GEMM fraction of peak
  double max_mem_eff = 0.9;           ///< best stream fraction of DRAM BW
  /// Bytes/cycle the compute engine can move (caps copy bandwidth when the
  /// core clock drops; reproduces Table 6's BW-vs-GPU-clock coupling).
  double copy_bytes_per_clock = 0.0;  ///< 0 = uncapped

  /// FLOP of in-flight work needed to reach ~50 % of the efficiency ceiling
  /// (occupancy saturation; small batches land near kernel overhead).
  double saturation_flops = 1e9;

  /// Extra efficiency multiplier applied to convolution kernels only.  Edge
  /// GPUs reach far less of their tensor-core peak on conv workloads than on
  /// plain GEMMs (small L2, shallow memory hierarchy), which is what makes
  /// EfficientNetV2-T on the Orin GPU-clock-bound (Table 7).
  double conv_eff_scale = 1.0;

  /// Operator types this platform's runtime cannot lower (the paper's NPU
  /// observation: "only a small portion of models were able to successfully
  /// perform inference").  Backends refuse models containing these.
  std::set<std::string> unsupported_ops;

  ClockDomain gpu_clock;
  ClockDomain mem_clock;
  std::vector<ClockDomain> cpu_clusters;

  bool has_counter_profiler = false;  ///< NCU-like tool exists
  PowerParams power;

  /// Peak of the preferred matrix pipeline for `dtype` (falls back to the
  /// vector pipeline when no matrix engine supports it).
  [[nodiscard]] double matrix_peak(DType dtype) const;
  /// Peak of the vector pipeline for `dtype` (throws when unsupported).
  [[nodiscard]] double vector_peak(DType dtype) const;
  [[nodiscard]] bool supports(DType dtype) const;
};

/// Registry of known platforms.
class PlatformRegistry {
 public:
  static PlatformRegistry& instance();

  void add(PlatformDesc desc);
  [[nodiscard]] const PlatformDesc& get(const std::string& id) const;
  [[nodiscard]] bool contains(const std::string& id) const;
  [[nodiscard]] std::vector<std::string> ids() const;

 private:
  PlatformRegistry();
  std::map<std::string, PlatformDesc> platforms_;
};

/// Ids of the seven evaluation platforms, in Table 2 order.
[[nodiscard]] const std::vector<std::string>& paper_platform_ids();

}  // namespace proof::hw

#include "hw/counters.hpp"

#include "hw/hardware_flops.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace proof::hw {

double CounterReport::total_corrected_flops() const {
  double total = 0.0;
  for (const CounterSample& s : samples) {
    total += s.corrected_flops;
  }
  return total;
}

double CounterReport::total_raw_flops() const {
  double total = 0.0;
  for (const CounterSample& s : samples) {
    total += s.ncu_raw_flops;
  }
  return total;
}

double CounterReport::total_dram_bytes() const {
  double total = 0.0;
  for (const CounterSample& s : samples) {
    total += s.dram_bytes;
  }
  return total;
}

double measured_traffic_factor(OpClass cls) {
  switch (cls) {
    case OpClass::kGemm:
      return 1.04;  // tile-spill workspace traffic
    case OpClass::kConv:
    case OpClass::kConvPointwise:
      return 1.01;
    case OpClass::kConvDepthwise:
      return 1.03;  // halo re-reads
    case OpClass::kSoftmax:
    case OpClass::kNormalization:
      return 1.09;  // multi-pass statistics re-read the tensor
    case OpClass::kReduction:
      return 1.02;
    case OpClass::kDataMovement:
      return 1.05;  // strided accesses trigger extra sector traffic
    case OpClass::kCopy:
      return 1.01;
    case OpClass::kElementwise:
    case OpClass::kNoOp:
      return 1.0;
  }
  PROOF_FAIL("unknown op class");
}

CounterProfiler::CounterProfiler(const PlatformDesc& platform, CounterConfig config)
    : platform_(&platform), config_(config) {}

bool CounterProfiler::available() const { return platform_->has_counter_profiler; }

CounterReport CounterProfiler::profile(const std::vector<KernelWork>& kernels,
                                       const LatencyModel& model) const {
  PROOF_CHECK(available(), "platform '" << platform_->id
                                        << "' has no counter profiling tool");
  CounterReport report;
  report.samples.reserve(kernels.size());
  for (const KernelWork& kernel : kernels) {
    const MmaShape mma = mma_shape(platform_->arch, kernel.dtype);
    CounterSample s;
    s.kernel_name = kernel.name;
    s.scalar_flops = kernel.hw_flops - kernel.matrix_flops;
    PROOF_CHECK(s.scalar_flops >= -1e-6 * kernel.hw_flops,
                "matrix_flops exceeds hw_flops for kernel '" << kernel.name << "'");
    s.hmma_instructions = kernel.matrix_flops / mma.flop_per_instruction();
    // NCU assumes every tensor instruction performs 512 FLOP (correct only
    // for Volta HMMA.884); PRoof multiplies the instruction count by the
    // architecture's true FLOP/instruction instead.
    s.ncu_raw_flops = s.hmma_instructions * 512.0 + s.scalar_flops;
    s.corrected_flops =
        s.hmma_instructions * mma.flop_per_instruction() + s.scalar_flops;

    Rng rng = Rng::from_string(kernel.name, /*salt=*/0xC0FFEE);
    const double jitter =
        1.0 + config_.jitter_frac * rng.next_gaussian() / 3.0;
    s.dram_bytes = kernel.bytes * measured_traffic_factor(kernel.cls) * jitter;

    const KernelTiming timing = model.time_kernel(kernel);
    s.latency_s = timing.latency_s;
    report.profiling_time_s +=
        config_.per_kernel_fixed_s +
        static_cast<double>(config_.replay_passes) * timing.latency_s;
    report.samples.push_back(std::move(s));
  }
  return report;
}

}  // namespace proof::hw

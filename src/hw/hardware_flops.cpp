#include "hw/hardware_flops.hpp"

#include <cmath>
#include <map>

#include "support/error.hpp"

namespace proof::hw {

namespace {

double ceil_to(double value, int multiple) {
  return std::ceil(value / static_cast<double>(multiple)) *
         static_cast<double>(multiple);
}

/// Ratio of hardware (instruction-count) FLOP to analytical Model FLOP for
/// non-matrix ops.  Transcendentals execute as one MUFU instruction on GPUs,
/// so hardware counts land *below* the model's multi-FLOP charge.
double scalar_hw_factor(const std::string& op_type) {
  static const std::map<std::string, double> kFactors = {
      {"Sigmoid", 0.25}, {"Silu", 0.3},    {"Tanh", 0.125},  {"Erf", 0.125},
      {"Exp", 0.125},    {"Log", 0.125},   {"Sqrt", 0.25},   {"Pow", 0.25},
      {"Gelu", 0.4},     {"Softmax", 0.3}, {"Div", 0.5},     {"Reciprocal", 0.25},
      {"HardSwish", 0.8}, {"HardSigmoid", 0.8}, {"Clip", 0.5},
      {"LayerNormalization", 0.75}, {"GroupNormalization", 0.75},
  };
  const auto it = kFactors.find(op_type);
  return it == kFactors.end() ? 1.0 : it->second;
}

}  // namespace

MmaShape mma_shape(const std::string& arch, DType dtype) {
  const bool int8 = dtype == DType::kI8;
  if (arch == "volta") {
    return MmaShape{8, 8, 4};  // HMMA.884: 512 FLOP — NCU's fixed assumption
  }
  if (arch == "turing") {
    return int8 ? MmaShape{8, 8, 16} : MmaShape{16, 8, 8};
  }
  if (arch == "ampere" || arch == "ada" || arch == "hopper") {
    return int8 ? MmaShape{16, 8, 32} : MmaShape{16, 8, 16};
  }
  // Non-NVIDIA matrix engines: model one 16x16x16 tile op.
  return MmaShape{16, 16, 16};
}

BlockTile block_tile(const std::string& arch) {
  if (arch == "volta" || arch == "turing") {
    return BlockTile{64, 32, 16};
  }
  return BlockTile{64, 64, 32};
}

double padded_gemm_flops(double m, double n, double k, const BlockTile& tile) {
  PROOF_CHECK(m >= 0 && n >= 0 && k >= 0, "negative GEMM dims");
  return 2.0 * ceil_to(m, tile.m) * ceil_to(n, tile.n) * ceil_to(k, tile.k);
}

double hardware_flops(const OpContext& ctx, const std::string& arch) {
  const Node& node = ctx.node();
  const OpDef& def = op_def_for(node);
  const OpClass cls = def.op_class(ctx);
  const BlockTile tile = block_tile(arch);

  if (node.op_type == "Conv" && cls != OpClass::kConvDepthwise) {
    const Shape& x = ctx.in_shape(0);
    const Shape& w = ctx.in_shape(1);
    const Shape& y = ctx.out_shape(0);
    const int64_t groups = ctx.attrs().get_int_or("group", 1);
    const double m = static_cast<double>(y.dim(0) * y.dim(2) * y.dim(3));
    const double n = static_cast<double>(w.dim(0)) / static_cast<double>(groups);
    const double k = static_cast<double>(w.dim(1) * w.dim(2) * w.dim(3));
    (void)x;
    return static_cast<double>(groups) * padded_gemm_flops(m, n, k, tile);
  }
  if (cls == OpClass::kConvDepthwise) {
    // Specialized depthwise kernels: halo re-reads plus partially-filled
    // vector lanes on thin channel tiles.
    return def.flops(ctx) * 1.25;
  }
  if (node.op_type == "ConvTranspose") {
    return def.flops(ctx) * 1.15;
  }
  if (node.op_type == "Gemm") {
    // Dense GEMMs pad to MMA-instruction granularity only (the kernel picks a
    // block tile that divides the instruction shape).
    const MmaShape mma = mma_shape(arch, ctx.output(0).dtype);
    const Shape& y = ctx.out_shape(0);
    const double m = static_cast<double>(y.dim(0));
    const double n = static_cast<double>(y.dim(1));
    const double k = static_cast<double>(ctx.in_shape(0).numel()) / m;
    return padded_gemm_flops(m, n, k, BlockTile{mma.m, mma.n, mma.k});
  }
  if (node.op_type == "MatMul") {
    const MmaShape mma = mma_shape(arch, ctx.output(0).dtype);
    const BlockTile itile{mma.m, mma.n, mma.k};
    const Shape& a = ctx.in_shape(0);
    const Shape& b = ctx.in_shape(1);
    const Shape& y = ctx.out_shape(0);
    const double m = static_cast<double>(y.dim(-2));
    const double n = static_cast<double>(y.dim(-1));
    const double k = static_cast<double>(a.dim(-1));
    const double batch = static_cast<double>(y.numel()) / (m * n);
    if (b.rank() <= 2) {
      // Shared weight matrix: the kernel concatenates all batch rows into one
      // tall GEMM, so M padding amortizes away.
      return padded_gemm_flops(batch * m, n, k, itile);
    }
    // Per-sample B matrices (attention): every matrix pads individually.
    return batch * padded_gemm_flops(m, n, k, itile);
  }
  // Scalar-pipeline ops: instruction-count accounting.
  return def.flops(ctx) * scalar_hw_factor(node.op_type);
}

}  // namespace proof::hw

// "Hardware FLOP" estimation (paper §4.2).
//
// The analytical model predicts Model FLOP — the algorithmically necessary
// work.  A counter-based profiler instead observes Hardware FLOP: matrix
// pipelines execute tile-padded MMA instructions, and scalar transcendentals
// count as single instructions regardless of their algorithmic FLOP weight.
// This module models that divergence so the simulated counter profiler
// reports realistic NCU-style numbers.
#pragma once

#include <string>

#include "ops/op_def.hpp"

namespace proof::hw {

/// MMA instruction geometry of a GPU generation.
struct MmaShape {
  int m = 0, n = 0, k = 0;
  /// FLOP actually performed by one HMMA/IMMA instruction (2*m*n*k).
  [[nodiscard]] double flop_per_instruction() const {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k);
  }
};

/// Per-architecture MMA shape (from Raihan et al.'s reverse engineering,
/// the correction source cited in §4.2).  Volta HMMA.884 performs 512 FLOP —
/// the only case where NCU's fixed x512 accounting is correct.
[[nodiscard]] MmaShape mma_shape(const std::string& arch, DType dtype);

/// Thread-block tile the implicit-GEMM kernels pad to.  Dimensions that are
/// not multiples of the tile are rounded up, wasting FLOP.
struct BlockTile {
  int m = 64, n = 32, k = 16;
};
[[nodiscard]] BlockTile block_tile(const std::string& arch);

/// GEMM FLOP after tile padding: 2 * ceil(M) * ceil(N) * ceil(K).
[[nodiscard]] double padded_gemm_flops(double m, double n, double k,
                                       const BlockTile& tile);

/// Hardware FLOP of one model node on `arch`.
///  * Conv / Gemm / MatMul: implicit-GEMM tile padding.
///  * Depthwise conv: specialized kernels, ~8 % halo/boundary waste.
///  * Elementwise / normalization / softmax: instruction-count FLOP; GPU
///    transcendentals are a single MUFU instruction, so the hardware count is
///    *below* the analytical model's multi-FLOP charge.
[[nodiscard]] double hardware_flops(const OpContext& ctx, const std::string& arch);

}  // namespace proof::hw

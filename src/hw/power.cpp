#include "hw/power.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace proof::hw {

double PowerModel::fv2(double scale, double vmin_frac) {
  PROOF_CHECK(scale >= 0.0, "negative clock scale");
  const double v = vmin_frac + (1.0 - vmin_frac) * scale;
  return scale * v * v;
}

double PowerModel::gpu_rail_w(double util) const {
  const PowerParams& p = state_.desc().power;
  const double f = fv2(state_.gpu_scale(), p.gpu_vmin_frac);
  return p.gpu_max_w *
         (p.gpu_idle_frac + (1.0 - p.gpu_idle_frac) * std::clamp(util, 0.0, 1.0) * f);
}

double PowerModel::mem_rail_w(double util) const {
  const PowerParams& p = state_.desc().power;
  const double f = fv2(state_.mem_scale(), p.mem_vmin_frac);
  return p.mem_max_w *
         (p.mem_idle_frac + (1.0 - p.mem_idle_frac) * std::clamp(util, 0.0, 1.0) * f);
}

double PowerModel::cpu_rail_w() const {
  const PlatformDesc& d = state_.desc();
  const PowerParams& p = d.power;
  const auto& settings = state_.clocks().cpu_cluster_mhz;
  double total = 0.0;
  for (size_t i = 0; i < d.cpu_clusters.size(); ++i) {
    const double nominal = d.cpu_clusters[i].nominal_mhz;
    const double mhz = i < settings.size() ? settings[i] : nominal;
    if (mhz <= 0.0) {
      continue;  // cluster powered off
    }
    total += p.cpu_cluster_w * fv2(mhz / nominal, 0.75);
  }
  return total;
}

double PowerModel::idle_w() const { return state_.desc().power.idle_w; }

double PowerModel::power_w(const Utilization& util) const {
  return idle_w() + cpu_rail_w() + gpu_rail_w(util.gpu) + mem_rail_w(util.mem);
}

}  // namespace proof::hw

#include "hw/platform.hpp"

#include "support/error.hpp"

namespace proof::hw {

double PlatformDesc::matrix_peak(DType dtype) const {
  const auto it = tensor_peak_flops.find(dtype);
  if (it != tensor_peak_flops.end()) {
    return it->second;
  }
  return vector_peak(dtype);
}

double PlatformDesc::vector_peak(DType dtype) const {
  const auto it = vector_peak_flops.find(dtype);
  PROOF_CHECK(it != vector_peak_flops.end(),
              "platform '" << id << "' does not support dtype " << dtype_name(dtype));
  return it->second;
}

bool PlatformDesc::supports(DType dtype) const {
  return vector_peak_flops.count(dtype) > 0 || tensor_peak_flops.count(dtype) > 0;
}

namespace {

constexpr double kT = 1e12;
constexpr double kG = 1e9;

PlatformDesc make_a100() {
  PlatformDesc p;
  p.id = "a100";
  p.name = "NVIDIA A100 PCIE-40GB";
  p.scenario = "Data center GPU";
  p.runtime = "trt_sim";
  p.arch = "ampere";
  p.tensor_peak_flops = {{DType::kF16, 312.0 * kT},
                         {DType::kBF16, 312.0 * kT},
                         {DType::kI8, 624.0 * kT},
                         {DType::kF32, 19.5 * kT}};
  p.vector_peak_flops = {{DType::kF16, 78.0 * kT},
                         {DType::kBF16, 39.0 * kT},
                         {DType::kF32, 19.5 * kT},
                         {DType::kI8, 78.0 * kT}};
  p.dram_bw = 1555.0 * kG;
  p.kernel_overhead_s = 4.5e-6;
  p.max_compute_eff = 0.82;
  p.max_mem_eff = 0.88;
  p.saturation_flops = 1.1e9;
  p.conv_eff_scale = 0.80;
  p.gpu_clock = {1410.0, {765.0, 1065.0, 1410.0}};
  p.mem_clock = {1215.0, {1215.0}};
  p.has_counter_profiler = true;
  p.power = {35.0, 0.0, 215.0, 0.72, 60.0, 0.8, 0.2, 0.25};
  return p;
}

/// Beyond the paper's seven platforms: the LLM decode sweep targets current
/// serving hardware, so the registry also carries an H100 (kept out of
/// paper_platform_ids() — Table 3-6 reproductions stay on the paper's set).
PlatformDesc make_h100() {
  PlatformDesc p;
  p.id = "h100";
  p.name = "NVIDIA H100 SXM5-80GB";
  p.scenario = "Data center GPU";
  p.runtime = "trt_sim";
  p.arch = "hopper";
  // Dense tensor-core peaks (sparsity excluded), SXM5 clocks.
  p.tensor_peak_flops = {{DType::kF16, 989.4 * kT},
                         {DType::kBF16, 989.4 * kT},
                         {DType::kI8, 1978.9 * kT},
                         {DType::kF32, 66.9 * kT}};
  p.vector_peak_flops = {{DType::kF16, 133.8 * kT},
                         {DType::kBF16, 133.8 * kT},
                         {DType::kF32, 66.9 * kT},
                         {DType::kI8, 133.8 * kT}};
  p.dram_bw = 3352.0 * kG;  // HBM3, 5 stacks
  p.kernel_overhead_s = 4.0e-6;
  p.max_compute_eff = 0.80;
  p.max_mem_eff = 0.85;
  p.saturation_flops = 2.2e9;
  p.conv_eff_scale = 0.80;
  p.gpu_clock = {1980.0, {990.0, 1410.0, 1980.0}};
  p.mem_clock = {2619.0, {2619.0}};
  p.has_counter_profiler = true;
  p.power = {80.0, 0.0, 620.0, 0.72, 150.0, 0.8, 0.2, 0.25};
  return p;
}

PlatformDesc make_rtx4090() {
  PlatformDesc p;
  p.id = "rtx4090";
  p.name = "NVIDIA RTX 4090";
  p.scenario = "Desktop GPU";
  p.runtime = "trt_sim";
  p.arch = "ada";
  p.tensor_peak_flops = {{DType::kF16, 330.4 * kT},
                         {DType::kBF16, 330.4 * kT},
                         {DType::kI8, 660.8 * kT},
                         {DType::kF32, 82.6 * kT}};
  p.vector_peak_flops = {{DType::kF16, 82.6 * kT},
                         {DType::kBF16, 82.6 * kT},
                         {DType::kF32, 82.6 * kT},
                         {DType::kI8, 82.6 * kT}};
  p.dram_bw = 1008.0 * kG;
  p.kernel_overhead_s = 4.0e-6;
  p.max_compute_eff = 0.78;
  p.max_mem_eff = 0.9;
  p.saturation_flops = 0.9e9;
  p.conv_eff_scale = 0.80;
  p.gpu_clock = {2520.0, {1260.0, 1800.0, 2520.0}};
  p.mem_clock = {1313.0, {1313.0}};
  p.has_counter_profiler = true;
  p.power = {30.0, 0.0, 330.0, 0.7, 90.0, 0.8, 0.15, 0.2};
  return p;
}

PlatformDesc make_xeon6330() {
  PlatformDesc p;
  p.id = "xeon6330";
  p.name = "Intel Xeon Gold 6330";
  p.scenario = "Datacenter CPU";
  p.runtime = "ort_sim";
  p.arch = "x86";
  // 28 cores x 2.0 GHz AVX-512 base x 2 FMA units x 16 lanes x 2 FLOP.
  p.vector_peak_flops = {{DType::kF32, 3.58 * kT},
                         {DType::kF16, 3.58 * kT},   // fp16 emulated via fp32 FMA
                         {DType::kI8, 28.7 * kT}};   // VNNI
  p.dram_bw = 187.0 * kG;  // 8ch DDR4-2933
  p.kernel_overhead_s = 1.5e-6;
  p.max_compute_eff = 0.75;
  p.max_mem_eff = 0.75;
  p.saturation_flops = 0.15e9;
  p.gpu_clock = {2000.0, {2000.0}};  // core clock reused as the compute domain
  p.mem_clock = {1466.5, {1466.5}};
  p.cpu_clusters = {{2000.0, {2000.0}}};
  p.power = {80.0, 0.0, 125.0, 0.8, 40.0, 0.85, 0.3, 0.3};
  return p;
}

PlatformDesc make_xavier_nx() {
  PlatformDesc p;
  p.id = "xavier_nx";
  p.name = "NVIDIA Jetson Xavier NX";
  p.scenario = "Edge GPU";
  p.runtime = "trt_sim";
  p.arch = "volta";
  // 48 Volta tensor cores @ 1100 MHz.
  p.tensor_peak_flops = {{DType::kF16, 6.75 * kT}, {DType::kI8, 13.5 * kT}};
  p.vector_peak_flops = {{DType::kF16, 1.69 * kT},
                         {DType::kF32, 0.845 * kT},
                         {DType::kI8, 1.69 * kT}};
  p.dram_bw = 51.2 * kG;
  p.kernel_overhead_s = 12e-6;
  p.max_compute_eff = 0.8;
  p.max_mem_eff = 0.82;
  p.copy_bytes_per_clock = 58.0;
  p.saturation_flops = 0.12e9;
  p.conv_eff_scale = 0.425;
  p.gpu_clock = {1100.0, {510.0, 804.0, 1100.0}};
  p.mem_clock = {1866.0, {204.0, 1600.0, 1866.0}};
  p.cpu_clusters = {{1900.0, {1200.0, 1900.0}}, {1900.0, {1200.0, 1900.0}}};
  p.power = {3.0, 1.2, 7.5, 0.7, 3.0, 0.8, 0.1, 0.15};
  return p;
}

PlatformDesc make_orin_nx16() {
  PlatformDesc p;
  p.id = "orin_nx16";
  p.name = "NVIDIA Jetson Orin NX 16GB";
  p.scenario = "Edge GPU";
  p.runtime = "trt_sim";
  p.arch = "ampere";
  // 1024 CUDA cores / 32 Ampere tensor cores @ 918 MHz nominal.
  p.tensor_peak_flops = {{DType::kF16, 16.6 * kT}, {DType::kI8, 33.2 * kT}};
  p.vector_peak_flops = {{DType::kF16, 3.76 * kT},
                         {DType::kF32, 1.88 * kT},
                         {DType::kI8, 3.76 * kT}};
  p.dram_bw = 102.4 * kG;  // 128-bit LPDDR5 @ 3199 MHz
  p.kernel_overhead_s = 10e-6;
  p.max_compute_eff = 0.82;
  p.max_mem_eff = 0.858;
  p.copy_bytes_per_clock = 105.0;
  p.saturation_flops = 0.15e9;
  p.conv_eff_scale = 0.425;
  p.gpu_clock = {918.0, {306.0, 408.0, 510.0, 612.0, 714.0, 816.0, 918.0}};
  p.mem_clock = {3199.0, {204.0, 665.0, 2133.0, 3199.0}};
  p.cpu_clusters = {{1984.0, {729.0, 1190.0, 1984.0}}, {1984.0, {729.0, 1190.0, 1984.0}}};
  p.has_counter_profiler = false;
  // Calibrated against Table 6: 23.6 W at 918/3199 full load,
  // 13.6 W at 510/2133, 11.5 W at 510/665.
  p.power = {2.2, 0.75, 13.6, 0.715, 7.5, 0.75, 0.14, 0.2};
  return p;
}

PlatformDesc make_rpi4b() {
  PlatformDesc p;
  p.id = "rpi4b";
  p.name = "Raspberry Pi 4B";
  p.scenario = "Edge CPU";
  p.runtime = "ort_sim";
  p.arch = "arm";
  // 4x Cortex-A72 @ 1.5 GHz, 128-bit NEON FMA.
  p.vector_peak_flops = {{DType::kF32, 48.0 * kG},
                         {DType::kF16, 48.0 * kG},
                         {DType::kI8, 192.0 * kG}};
  // LPDDR4-3200 is nominally ~12.8 GB/s but the BCM2711 AXI bus caps real
  // traffic near 5.5 GB/s (paper §4.3): expressed as a low max_mem_eff.
  p.dram_bw = 12.8 * kG;
  p.max_mem_eff = 0.43;
  p.kernel_overhead_s = 2.5e-6;
  p.max_compute_eff = 0.65;
  p.saturation_flops = 2.5e6;
  p.gpu_clock = {1500.0, {600.0, 1000.0, 1500.0}};
  p.mem_clock = {1600.0, {1600.0}};
  p.cpu_clusters = {{1500.0, {600.0, 1500.0}}};
  p.power = {2.0, 1.0, 2.8, 0.75, 0.8, 0.85, 0.2, 0.3};
  return p;
}

PlatformDesc make_npu3720() {
  PlatformDesc p;
  p.id = "npu3720";
  p.name = "NPU 3720 (Intel Core Ultra 185H)";
  p.scenario = "Mobile NPU";
  p.runtime = "ov_sim";
  p.arch = "npu";
  // 2048 fp16 MACs / 4096 int8 MACs per cycle @ 1.4 GHz.
  p.tensor_peak_flops = {{DType::kF16, 5.7 * kT}, {DType::kI8, 11.5 * kT}};
  p.vector_peak_flops = {{DType::kF16, 0.36 * kT}, {DType::kI8, 0.72 * kT},
                         {DType::kF32, 0.18 * kT}};
  p.dram_bw = 120.0 * kG;  // LPDDR5x-7467, shared with the CPU
  p.max_mem_eff = 0.55;
  p.kernel_overhead_s = 40e-6;
  // The paper observes performance far below the 5.7 TFLOP/s theoretical
  // value even with OpenVINO 2024; the immature software stack is modelled
  // as a low compute-efficiency ceiling.
  p.max_compute_eff = 0.30;
  p.saturation_flops = 0.4e9;
  // The 2024 NPU compiler stack rejects several op families outright —
  // this is why only part of the model zoo runs on it (paper §4.3).
  p.unsupported_ops = {"Silu",  "Gelu",          "Erf",
                       "Einsum", "GroupNormalization", "Resize",
                       "Where", "ConvTranspose"};
  p.gpu_clock = {1400.0, {1400.0}};
  p.mem_clock = {3733.0, {3733.0}};
  p.power = {1.0, 0.0, 6.0, 0.75, 2.0, 0.8, 0.1, 0.15};
  return p;
}

}  // namespace

PlatformRegistry::PlatformRegistry() {
  add(make_a100());
  add(make_h100());
  add(make_rtx4090());
  add(make_xeon6330());
  add(make_xavier_nx());
  add(make_orin_nx16());
  add(make_rpi4b());
  add(make_npu3720());
}

PlatformRegistry& PlatformRegistry::instance() {
  static PlatformRegistry* registry = new PlatformRegistry();
  return *registry;
}

void PlatformRegistry::add(PlatformDesc desc) {
  PROOF_CHECK(!desc.id.empty(), "platform must have an id");
  platforms_[desc.id] = std::move(desc);
}

const PlatformDesc& PlatformRegistry::get(const std::string& id) const {
  const auto it = platforms_.find(id);
  if (it == platforms_.end()) {
    throw ConfigError("unknown platform '" + id + "'");
  }
  return it->second;
}

bool PlatformRegistry::contains(const std::string& id) const {
  return platforms_.count(id) > 0;
}

std::vector<std::string> PlatformRegistry::ids() const {
  std::vector<std::string> out;
  out.reserve(platforms_.size());
  for (const auto& [id, desc] : platforms_) {
    out.push_back(id);
  }
  return out;
}

const std::vector<std::string>& paper_platform_ids() {
  static const std::vector<std::string> ids = {
      "a100", "rtx4090", "xeon6330", "xavier_nx", "orin_nx16", "rpi4b", "npu3720"};
  return ids;
}

}  // namespace proof::hw

// Simulated hardware-counter profiler (the paper's NVIDIA Nsight Compute
// substitute).
//
// Reproduces the behaviours §4.2 reports:
//  * measured FLOP = Hardware FLOP (tile padding, instruction counting);
//  * NCU's tensor-core bug: raw FLOP = HMMA instruction count x 512, which is
//    only correct for Volta's HMMA.884 — PRoof corrects using per-arch MMA
//    shapes (Raihan et al.);
//  * measured DRAM traffic carries cache/workspace effects and small jitter;
//  * kernel-replay overhead makes counter profiling orders of magnitude
//    slower than the analytical model (Table 4's "Prof. time" column).
#pragma once

#include <vector>

#include "hw/latency_model.hpp"

namespace proof::hw {

/// Counter readings of one kernel.
struct CounterSample {
  std::string kernel_name;
  double hmma_instructions = 0.0;
  double ncu_raw_flops = 0.0;     ///< HMMA x 512 + scalar (the buggy reading)
  double corrected_flops = 0.0;   ///< HMMA x arch FLOP/instr + scalar
  double scalar_flops = 0.0;
  double dram_bytes = 0.0;
  double latency_s = 0.0;
};

struct CounterConfig {
  int replay_passes = 40;          ///< kernel replays to cover all counters
  double per_kernel_fixed_s = 4.5; ///< NCU setup/serialization per kernel
  double jitter_frac = 0.015;      ///< run-to-run measurement noise
};

struct CounterReport {
  std::vector<CounterSample> samples;
  double profiling_time_s = 0.0;   ///< extra wall time spent by the profiler

  [[nodiscard]] double total_corrected_flops() const;
  [[nodiscard]] double total_raw_flops() const;
  [[nodiscard]] double total_dram_bytes() const;
};

class CounterProfiler {
 public:
  CounterProfiler(const PlatformDesc& platform, CounterConfig config = {});

  /// True when the platform ships an NCU-like tool (Table 2: data-center and
  /// desktop GPUs only).
  [[nodiscard]] bool available() const;

  /// Profiles a kernel sequence under `model`'s clock state.
  [[nodiscard]] CounterReport profile(const std::vector<KernelWork>& kernels,
                                      const LatencyModel& model) const;

 private:
  const PlatformDesc* platform_;
  CounterConfig config_;
};

/// Multiplier applied to predicted DRAM traffic to obtain a "measured" value:
/// real kernels add workspace/cache-eviction traffic that Equation 1 ignores.
[[nodiscard]] double measured_traffic_factor(OpClass cls);

}  // namespace proof::hw

#include "opt/guard.hpp"

#include "obs/span.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace proof::opt {

bool guard_improves(const Measurement& candidate, const Measurement& incumbent,
                    double noise_threshold) {
  if (!candidate.feasible) {
    return false;  // infeasible candidates never displace anything
  }
  if (!incumbent.feasible) {
    return true;  // feasibility dominates score (§4.6 power-cap escape)
  }
  return candidate.score < incumbent.score * (1.0 - noise_threshold);
}

bool guard_better(const Measurement& a, const Measurement& b) {
  if (a.feasible != b.feasible) {
    return a.feasible;
  }
  return a.score < b.score;
}

OptimizationLog run_guarded_loop(VariantSource& source,
                                 const Measurement& baseline,
                                 const GuardConfig& config) {
  PROOF_CHECK(config.noise_threshold >= 0.0 && config.noise_threshold < 1.0,
              "noise_threshold must be in [0, 1)");
  PROOF_CHECK(config.max_rounds >= 0, "max_rounds must be non-negative");
  PROOF_SPAN("opt.run");
  PROOF_COUNT("opt.runs", 1);

  OptimizationLog log;
  log.objective = config.objective;
  log.noise_threshold = config.noise_threshold;
  log.power_budget_w = config.power_budget_w;
  log.baseline = baseline;
  log.final_best = baseline;

  Measurement incumbent = baseline;
  for (int round = 0; round < config.max_rounds; ++round) {
    if (config.round_hook) {
      config.round_hook(round);
    }
    std::vector<Variant> variants = source.propose(round, incumbent);
    if (variants.empty()) {
      break;
    }
    PROOF_SPAN("opt.round");
    PROOF_COUNT("opt.variants.proposed", variants.size());

    RoundLog round_log;
    round_log.classification = source.classify_incumbent();

    // Measure every variant concurrently; results land by proposal index so
    // the scan below is independent of scheduling.
    const std::vector<Measurement> measured =
        ThreadPool::global().parallel_map(variants.size(), [&](size_t i) {
          PROOF_SPAN("opt.measure");
          return source.measure(variants[i]);
        });

    // Acceptance scan, proposal order: the single best candidate that clears
    // the guard wins; ties keep the earliest proposal.
    int best = -1;
    for (size_t i = 0; i < variants.size(); ++i) {
      if (guard_improves(measured[i], incumbent, config.noise_threshold) &&
          (best < 0 ||
           guard_better(measured[i], measured[static_cast<size_t>(best)]))) {
        best = static_cast<int>(i);
      }
    }

    round_log.variants.reserve(variants.size());
    for (size_t i = 0; i < variants.size(); ++i) {
      VariantResult result;
      result.variant = variants[i];
      result.measurement = measured[i];
      result.accepted = static_cast<int>(i) == best;
      result.delta_pct =
          incumbent.score > 0.0
              ? (measured[i].score / incumbent.score - 1.0) * 100.0
              : 0.0;
      round_log.variants.push_back(std::move(result));
    }
    log.variants_evaluated += variants.size();

    if (best >= 0) {
      const size_t b = static_cast<size_t>(best);
      incumbent = measured[b];
      round_log.accepted_id = variants[b].id;
      log.accepted_chain.push_back(variants[b].id);
      ++log.variants_accepted;
      PROOF_COUNT("opt.variants.accepted", 1);
      PROOF_COUNT("opt.variants.rejected", variants.size() - 1);
      source.on_accept(variants[b]);
    } else {
      PROOF_COUNT("opt.variants.rejected", variants.size());
    }
    log.rounds.push_back(std::move(round_log));

    if (best < 0) {
      break;  // a round that improves nothing ends the search
    }
  }
  log.final_best = incumbent;
  return log;
}

}  // namespace proof::opt

// The guarded closed-loop optimizer core.
//
// Generalizes the paper's two hand-run case studies (§4.5 Shuffle-op
// removal, §4.6 clock-under-power binary search) into one loop:
//
//   classify incumbent -> propose variants -> measure every variant ->
//   accept the best variant ONLY if its measured objective improves on the
//   incumbent beyond a noise threshold -> repeat.
//
// The guard's central invariant — an accepted variant is never worse than
// the incumbent it replaced, under the documented objective order — is
// machine-checked by the property/fuzz harness in tests/test_opt_guard.cpp
// rather than asserted by example.  To make that possible the loop is
// written against the VariantSource interface: the production source
// profiles through the normal Profiler path (opt/optimizer.hpp); the test
// sources fabricate adversarial proposals and measurements.
//
// Objective order ("is candidate better than incumbent?"):
//   1. feasibility dominates: a feasible candidate beats an infeasible
//      incumbent regardless of score (the §4.6 power-cap escape);
//      an infeasible candidate is NEVER accepted;
//   2. between feasible measurements, lower score wins, and acceptance
//      additionally requires the improvement to clear the noise threshold:
//      candidate.score < incumbent.score * (1 - noise_threshold).
//
// Determinism: variants are measured in parallel on the global ThreadPool
// (slot-indexed results), but proposal order, the acceptance scan and the
// recorded history are index-ordered — `--jobs N` changes cost, never the
// report.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "opt/bottleneck.hpp"
#include "opt/variant.hpp"

namespace proof::opt {

/// Measured outcome of one configuration (incumbent or variant).
struct Measurement {
  bool feasible = true;   ///< constraints (power budget) hold; failed builds
                          ///< are recorded as infeasible with a note
  double score = 0.0;     ///< objective scalar, lower is better
  double latency_s = 0.0;
  double power_w = 0.0;
  double throughput_per_s = 0.0;
  std::string note;       ///< e.g. the build error for infeasible variants
};

/// The guard predicate: true when `candidate` improves on `incumbent` under
/// the objective order above.  This is the ONLY way a variant is accepted.
[[nodiscard]] bool guard_improves(const Measurement& candidate,
                                  const Measurement& incumbent,
                                  double noise_threshold);

/// Strict "better" order used to pick the single best improving candidate of
/// a round (no noise band — the band applies against the incumbent only).
[[nodiscard]] bool guard_better(const Measurement& a, const Measurement& b);

/// What the guarded loop talks to.  Production: ProfilingVariantSource
/// (optimizer.hpp).  Tests: scripted/adversarial fakes.
class VariantSource {
 public:
  virtual ~VariantSource() = default;

  /// Deterministic bottleneck label for the current incumbent; recorded in
  /// the round log.  Called once per round, after propose().
  [[nodiscard]] virtual BottleneckReport classify_incumbent() = 0;

  /// Variants to evaluate this round.  An empty list ends the loop.
  [[nodiscard]] virtual std::vector<Variant> propose(
      int round, const Measurement& incumbent) = 0;

  /// Measures one variant.  Called concurrently for distinct variants of a
  /// round; must not mutate shared state.
  [[nodiscard]] virtual Measurement measure(const Variant& variant) = 0;

  /// The loop accepted `variant`: fold it into the incumbent configuration.
  /// Called on the loop thread, never concurrently with measure().
  virtual void on_accept(const Variant& /*variant*/) {}
};

struct GuardConfig {
  double noise_threshold = 0.02;  ///< fractional improvement required
  int max_rounds = 4;
  // Informational fields copied into the log (the loop itself only needs the
  // two knobs above; feasibility is the source's concern).
  Objective objective = Objective::kLatency;
  double power_budget_w = 0.0;
  /// Called at the top of every round (cooperative cancellation: the serve
  /// daemon checks its request deadline here).
  std::function<void(int round)> round_hook;
};

/// One measured variant with its guard verdict, in proposal order.
struct VariantResult {
  Variant variant;
  Measurement measurement;
  bool accepted = false;
  /// Score delta vs the round's incumbent, percent (negative = better).
  double delta_pct = 0.0;
};

struct RoundLog {
  BottleneckReport classification;
  std::vector<VariantResult> variants;
  std::string accepted_id;  ///< empty when the round accepted nothing
};

struct OptimizationLog {
  Objective objective = Objective::kLatency;
  double noise_threshold = 0.02;
  double power_budget_w = 0.0;
  Measurement baseline;
  Measurement final_best;            ///< last accepted (or the baseline)
  std::vector<RoundLog> rounds;
  std::vector<std::string> accepted_chain;  ///< accepted variant ids in order
  size_t variants_evaluated = 0;
  size_t variants_accepted = 0;
};

/// Runs the guarded loop until a round accepts nothing, the source proposes
/// nothing, or max_rounds is hit.  At most one variant is accepted per round
/// (the best improving one); accepted AND rejected variants are recorded
/// with per-variant deltas.
[[nodiscard]] OptimizationLog run_guarded_loop(VariantSource& source,
                                               const Measurement& baseline,
                                               const GuardConfig& config);

}  // namespace proof::opt

// The production optimizer: the guarded loop wired to the real Profiler.
//
// `optimize()` rediscovers the paper's case studies end-to-end:
//   * §4.5 — shufflenetv2_10 on the A100 classifies bandwidth-bound with a
//     dominant reorder share; the generator proposes the `_mod` redesign;
//     the guard accepts it on measured improvement;
//   * §4.6 — efficientnetv2_t on the Orin NX under a 15 W budget starts
//     infeasible at nominal clocks; the clock axis proposes every DVFS
//     operating point and the guard lands on GPU 612 / EMC 2133 (Table 7's
//     "ours") because feasibility dominates the objective order.
//
// Every variant is measured through the normal Profiler path, so the
// process-wide PrepCache memoizes engine builds across variants and the
// global ThreadPool fans measurements out under `--jobs` — with results
// recorded in proposal order, byte-identical at any job count.
#pragma once

#include <functional>
#include <string>

#include "core/profiler.hpp"
#include "opt/guard.hpp"

namespace proof::opt {

struct OptimizeOptions {
  ProfileOptions base;            ///< starting configuration (platform required)
  Objective objective = Objective::kLatency;
  double power_budget_w = 0.0;    ///< 0 = unconstrained
  double noise_threshold = 0.02;  ///< fractional improvement the guard requires
  int max_rounds = 4;
  AxisConfig axes;
  /// Called at the top of every round (serve deadline checks).
  std::function<void(int round)> round_hook;
};

struct OptimizeResult {
  OptimizationLog log;
  ProfileReport baseline_report;  ///< full profile of the starting config
  ProfileReport final_report;     ///< full profile of the accepted config
  /// The accepted configuration, for reproducing the final report.
  ProfileOptions final_options;
  std::string final_model_id;     ///< zoo id ("" when optimizing a raw graph)
  bool final_quantized = false;
};

/// Optimizes a zoo model end to end.  All proposal axes are available.
[[nodiscard]] OptimizeResult optimize(const std::string& model_id,
                                      const OptimizeOptions& options);

/// Optimizes an arbitrary graph.  The model-rewrite axis is unavailable
/// (there is no zoo sibling to look up); everything else applies.
[[nodiscard]] OptimizeResult optimize_graph(const Graph& model,
                                            const OptimizeOptions& options);

/// The "optimization" report section (spliced into report JSON by
/// report_to_json's optimization_section parameter).  Deterministic: no
/// wall-clock values, doubles at the report serializer's precision.
[[nodiscard]] std::string optimization_section_json(const OptimizationLog& log);

/// Human-readable rendering: classification, per-round variant tables with
/// deltas and verdicts, the accepted chain and the final configuration.
[[nodiscard]] std::string optimization_text(const OptimizeResult& result);

}  // namespace proof::opt

#include "opt/bottleneck.hpp"

#include <algorithm>

#include "hw/platform.hpp"

namespace proof::opt {

namespace {

/// Overhead-bound when at least this fraction of the wall time is kernel
/// dispatch.  The work shares (compute/bandwidth/reorder) partition the
/// kernel time and always sum to 1; launch overhead is measured against the
/// wall clock, an independent dimension, so it wins outright past the floor
/// (the remedy — batching — differs from both work-bound remedies).
constexpr double kOverheadFloor = 0.35;

/// How many layer names the report carries for the "dominant layers" view.
constexpr size_t kDominantLayers = 3;

bool is_reorder_like(const LayerReport& layer) {
  return layer.is_reorder || layer.cls == OpClass::kDataMovement ||
         layer.cls == OpClass::kCopy;
}

}  // namespace

std::string_view bottleneck_name(Bottleneck kind) {
  switch (kind) {
    case Bottleneck::kCompute:
      return "compute";
    case Bottleneck::kBandwidth:
      return "bandwidth";
    case Bottleneck::kOverhead:
      return "overhead";
  }
  return "unknown";
}

BottleneckReport classify(const ProfileReport& report,
                          const hw::PlatformDesc& platform) {
  BottleneckReport out;
  const double total = report.total_latency_s;
  if (total <= 0.0 || report.layers.empty()) {
    return out;
  }

  // Latency-share split: reorder/movement layers first, the remainder by
  // roofline position against the active ceilings.
  size_t kernel_count = 0;
  for (size_t i = 0; i < report.layers.size(); ++i) {
    const LayerReport& layer = report.layers[i];
    kernel_count += std::max<size_t>(layer.kernels.size(), 1);
    const double share = layer.latency_s / total;
    if (is_reorder_like(layer)) {
      out.reorder_share += share;
    } else if (report.roofline.ceilings.memory_bound(
                   report.roofline.layers[i])) {
      out.bandwidth_share += share;
    } else {
      out.compute_share += share;
    }
  }

  // Launch-overhead share: per-kernel dispatch cost against the latency
  // basis.  Multi-stream runs overlap launches across streams, so the basis
  // is the measured critical path rather than the serial layer sum.
  const double basis = report.critical_path
                           ? report.critical_path->critical_path_ns * 1e-9
                           : total;
  if (basis > 0.0) {
    out.overhead_share = std::min(
        1.0, platform.kernel_overhead_s * static_cast<double>(kernel_count) /
                 basis);
  }

  // Dominant layers: top-k by latency, ties broken by layer order.
  std::vector<size_t> order(report.layers.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return report.layers[a].latency_s > report.layers[b].latency_s;
  });
  for (size_t i = 0; i < order.size() && i < kDominantLayers; ++i) {
    out.dominant_layers.push_back(report.layers[order[i]].backend_layer);
  }

  const double memory_like = out.bandwidth_share + out.reorder_share;
  if (out.overhead_share > kOverheadFloor) {
    out.kind = Bottleneck::kOverhead;
  } else if (memory_like >= out.compute_share) {
    out.kind = Bottleneck::kBandwidth;
  } else {
    out.kind = Bottleneck::kCompute;
  }
  return out;
}

}  // namespace proof::opt

#include "opt/optimizer.hpp"

#include <cmath>
#include <set>
#include <sstream>

#include "analysis/quantize.hpp"
#include "backends/backend.hpp"
#include "core/prep_cache.hpp"
#include "hw/platform.hpp"
#include "models/zoo.hpp"
#include "report/table.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/units.hpp"

namespace proof::opt {

namespace {

/// Objective scalar of a profile.  Per-sample so batch variants compare:
/// latency -> s/sample; perf-per-watt -> J/sample (energy per inference).
double objective_score(const ProfileReport& report, Objective objective) {
  const double per_sample =
      report.total_latency_s / static_cast<double>(report.options.batch);
  return objective == Objective::kPerfPerWatt ? per_sample * report.power_w
                                              : per_sample;
}

Measurement measurement_from(const ProfileReport& report, Objective objective,
                             double power_budget_w) {
  Measurement m;
  m.feasible = power_budget_w <= 0.0 || report.power_w <= power_budget_w;
  m.score = objective_score(report, objective);
  m.latency_s = report.total_latency_s;
  m.power_w = report.power_w;
  m.throughput_per_s = report.throughput_per_s();
  if (!m.feasible) {
    m.note = "power budget exceeded";
  }
  return m;
}

/// The guarded loop's production VariantSource: profiles every variant
/// through the normal Profiler path (PrepCache + ThreadPool reuse) and folds
/// accepted variants into the incumbent (model, quantization, options).
class ProfilingVariantSource final : public VariantSource {
 public:
  ProfilingVariantSource(std::string model_id, Graph graph,
                         const OptimizeOptions& options)
      : model_id_(std::move(model_id)),
        graph_(std::move(graph)),
        opt_(options),
        platform_(hw::PlatformRegistry::instance().get(
            options.base.platform_id)) {
    options_ = options.base;
  }

  /// Profiles the incumbent configuration (memoized until an acceptance).
  const ProfileReport& incumbent_report() {
    if (!report_) {
      report_ = Profiler(options_).run(graph_, incumbent_keys());
    }
    return *report_;
  }

  Measurement measure_incumbent() {
    return measurement_from(incumbent_report(), opt_.objective,
                            opt_.power_budget_w);
  }

  [[nodiscard]] BottleneckReport classify_incumbent() override {
    return classify(incumbent_report(), platform_);
  }

  [[nodiscard]] std::vector<Variant> propose(
      int /*round*/, const Measurement& /*incumbent*/) override {
    ProposalContext ctx;
    ctx.model_id = model_id_;
    ctx.quantized = quantized_;
    ctx.platform_id = platform_.id;
    ctx.backend_id =
        options_.backend_id.empty() ? platform_.runtime : options_.backend_id;
    ctx.batch = options_.batch;
    ctx.gpu_mhz = options_.clocks.gpu_mhz.value_or(platform_.gpu_clock.nominal_mhz);
    ctx.mem_mhz = options_.clocks.mem_mhz.value_or(platform_.mem_clock.nominal_mhz);
    ctx.supports_int8 = platform_.supports(DType::kI8);
    ctx.objective = opt_.objective;
    ctx.power_budget_w = opt_.power_budget_w;
    ctx.axes = opt_.axes;

    std::vector<Variant> fresh;
    for (Variant& v : propose_variants(ctx, classify_incumbent())) {
      if (tried_.insert(v.id).second) {
        fresh.push_back(std::move(v));
      }
    }
    // The round measures concurrently against the shared incumbent graph;
    // materialize its lazy indices and cache fingerprints while still
    // single-threaded (batch/clock/backend-knob variants all profile this
    // same graph, so one hash serves the whole round).
    graph_.warm_indices();
    (void)incumbent_keys();
    return fresh;
  }

  [[nodiscard]] Measurement measure(const Variant& variant) override {
    try {
      ProfileOptions opt = options_;
      if (variant.batch) {
        opt.batch = *variant.batch;
      }
      if (variant.gpu_mhz) {
        opt.clocks.gpu_mhz = *variant.gpu_mhz;
      }
      if (variant.mem_mhz) {
        opt.clocks.mem_mhz = *variant.mem_mhz;
      }
      if (!variant.backend_id.empty()) {
        opt.backend_id = variant.backend_id;
      }
      const ProfileReport report = [&] {
        if (!variant.model_substitute.empty()) {
          Graph substitute = models::build_model(variant.model_substitute);
          if (quantized_) {
            (void)quantize_to_qdq(substitute);
          }
          return Profiler(opt).run(substitute);
        }
        if (variant.quantize) {
          Graph quantized = graph_;
          (void)quantize_to_qdq(quantized);
          return Profiler(opt).run(quantized);
        }
        // `_mod`-substitute and quantize variants above profile rewritten
        // graphs whose structural fingerprints correctly diverge from the
        // incumbent's; only the unmodified-graph knob variants reuse its keys.
        return Profiler(opt).run(graph_, keys_ ? &*keys_ : nullptr);
      }();
      return measurement_from(report, opt_.objective, opt_.power_budget_w);
    } catch (const Error& e) {
      // A variant the platform/backend cannot build is a rejected data
      // point, not a failed optimization.
      Measurement m;
      m.feasible = false;
      m.score = 0.0;
      m.note = e.what();
      return m;
    }
  }

  void on_accept(const Variant& variant) override {
    if (!variant.model_substitute.empty()) {
      model_id_ = variant.model_substitute;
      graph_ = models::build_model(model_id_);
      if (quantized_) {
        (void)quantize_to_qdq(graph_);
      }
      keys_.reset();  // the incumbent graph's structure changed
    }
    if (variant.quantize) {
      quantized_ = true;
      (void)quantize_to_qdq(graph_);
      keys_.reset();
    }
    if (variant.batch) {
      options_.batch = *variant.batch;
    }
    if (variant.gpu_mhz) {
      options_.clocks.gpu_mhz = *variant.gpu_mhz;
    }
    if (variant.mem_mhz) {
      options_.clocks.mem_mhz = *variant.mem_mhz;
    }
    if (!variant.backend_id.empty()) {
      options_.backend_id = variant.backend_id;
    }
    report_.reset();  // the incumbent changed
  }

  [[nodiscard]] const std::string& model_id() const { return model_id_; }
  [[nodiscard]] bool quantized() const { return quantized_; }
  [[nodiscard]] const ProfileOptions& options() const { return options_; }

 private:
  std::string model_id_;  ///< empty when optimizing a raw graph
  Graph graph_;
  OptimizeOptions opt_;
  const hw::PlatformDesc& platform_;
  ProfileOptions options_;
  bool quantized_ = false;
  std::set<std::string> tried_;  ///< every id ever proposed (no re-proposal)
  std::optional<ProfileReport> report_;
  /// Memoized cache fingerprints of graph_ (reset whenever graph_ is
  /// rebuilt or rewritten).  NOT thread-safe to fill lazily from measure();
  /// propose() materializes it while the loop is still single-threaded.
  std::optional<GraphKeys> keys_;

  const GraphKeys* incumbent_keys() {
    if (!keys_) {
      keys_ = compute_graph_keys(graph_);
    }
    return &*keys_;
  }
};

OptimizeResult run_optimize(std::string model_id, Graph graph,
                            const OptimizeOptions& options) {
  PROOF_CHECK(!options.base.platform_id.empty(), "platform_id is required");
  PROOF_CHECK(options.power_budget_w >= 0.0,
              "power budget must be non-negative");
  ProfilingVariantSource source(std::move(model_id), std::move(graph), options);

  OptimizeResult result;
  result.baseline_report = source.incumbent_report();

  GuardConfig guard;
  guard.noise_threshold = options.noise_threshold;
  guard.max_rounds = options.max_rounds;
  guard.objective = options.objective;
  guard.power_budget_w = options.power_budget_w;
  guard.round_hook = options.round_hook;
  result.log = run_guarded_loop(source, source.measure_incumbent(), guard);

  // Re-profiling the final configuration is a PrepCache hit — it was
  // measured when its variant was accepted.
  result.final_report = source.incumbent_report();
  result.final_options = source.options();
  result.final_model_id = source.model_id();
  result.final_quantized = source.quantized();
  return result;
}

void measurement_json(std::ostringstream& out, const Measurement& m) {
  out << "{\"feasible\":" << (m.feasible ? "true" : "false")
      << ",\"score\":" << m.score << ",\"latency_s\":" << m.latency_s
      << ",\"power_w\":" << m.power_w
      << ",\"throughput_per_s\":" << m.throughput_per_s
      << ",\"note\":" << json::quote(m.note) << "}";
}

void classification_json(std::ostringstream& out, const BottleneckReport& c) {
  out << "{\"kind\":" << json::quote(std::string(bottleneck_name(c.kind)))
      << ",\"compute_share\":" << c.compute_share
      << ",\"bandwidth_share\":" << c.bandwidth_share
      << ",\"reorder_share\":" << c.reorder_share
      << ",\"overhead_share\":" << c.overhead_share
      << ",\"dominant_layers\":[";
  for (size_t i = 0; i < c.dominant_layers.size(); ++i) {
    out << (i > 0 ? "," : "") << json::quote(c.dominant_layers[i]);
  }
  out << "]}";
}

}  // namespace

OptimizeResult optimize(const std::string& model_id,
                        const OptimizeOptions& options) {
  return run_optimize(model_id, models::build_model(model_id), options);
}

OptimizeResult optimize_graph(const Graph& model,
                              const OptimizeOptions& options) {
  return run_optimize("", model, options);
}

std::string optimization_section_json(const OptimizationLog& log) {
  std::ostringstream out;
  out.precision(12);
  out << "{\"objective\":"
      << json::quote(std::string(objective_name(log.objective)))
      << ",\"noise_threshold\":" << log.noise_threshold
      << ",\"power_budget_w\":" << log.power_budget_w << ",\"baseline\":";
  measurement_json(out, log.baseline);
  out << ",\"rounds\":[";
  for (size_t r = 0; r < log.rounds.size(); ++r) {
    const RoundLog& round = log.rounds[r];
    out << (r > 0 ? "," : "") << "{\"classification\":";
    classification_json(out, round.classification);
    out << ",\"variants\":[";
    for (size_t i = 0; i < round.variants.size(); ++i) {
      const VariantResult& v = round.variants[i];
      out << (i > 0 ? "," : "") << "{\"id\":" << json::quote(v.variant.id)
          << ",\"axis\":" << json::quote(v.variant.axis)
          << ",\"description\":" << json::quote(v.variant.description)
          << ",\"accepted\":" << (v.accepted ? "true" : "false")
          << ",\"delta_pct\":" << v.delta_pct << ",\"measurement\":";
      measurement_json(out, v.measurement);
      out << "}";
    }
    out << "],\"accepted\":" << json::quote(round.accepted_id) << "}";
  }
  out << "],\"accepted_chain\":[";
  for (size_t i = 0; i < log.accepted_chain.size(); ++i) {
    out << (i > 0 ? "," : "") << json::quote(log.accepted_chain[i]);
  }
  out << "],\"final\":";
  measurement_json(out, log.final_best);
  out << ",\"rounds_run\":" << log.rounds.size()
      << ",\"variants_evaluated\":" << log.variants_evaluated
      << ",\"variants_accepted\":" << log.variants_accepted << "}";
  return out.str();
}

std::string optimization_text(const OptimizeResult& result) {
  const OptimizationLog& log = result.log;
  std::ostringstream out;
  out << "objective: " << objective_name(log.objective)
      << "  (noise threshold " << log.noise_threshold * 100.0 << "%";
  if (log.power_budget_w > 0.0) {
    out << ", power budget " << units::fixed(log.power_budget_w, 1) << " W";
  }
  out << ")\n";
  out << "baseline: score " << log.baseline.score << "  latency "
      << units::ms(log.baseline.latency_s) << "  power "
      << units::fixed(log.baseline.power_w, 1) << " W"
      << (log.baseline.feasible ? "" : "  [infeasible]") << "\n";

  for (size_t r = 0; r < log.rounds.size(); ++r) {
    const RoundLog& round = log.rounds[r];
    const BottleneckReport& c = round.classification;
    out << "\nround " << r + 1 << ": classified "
        << bottleneck_name(c.kind) << "-bound  (compute "
        << units::fixed(c.compute_share * 100.0, 1) << "%, bandwidth "
        << units::fixed(c.bandwidth_share * 100.0, 1) << "%, reorder "
        << units::fixed(c.reorder_share * 100.0, 1) << "%, launch overhead "
        << units::fixed(c.overhead_share * 100.0, 1) << "%)\n";
    report::TextTable table(
        {"axis", "variant", "delta", "latency", "power", "verdict"});
    for (const VariantResult& v : round.variants) {
      std::string verdict;
      if (v.accepted) {
        verdict = "ACCEPTED";
      } else if (!v.measurement.note.empty()) {
        verdict = "rejected: " + v.measurement.note;
      } else {
        verdict = "rejected";
      }
      table.add_row({v.variant.axis, v.variant.id,
                     units::fixed(v.delta_pct, 2) + "%",
                     units::ms(v.measurement.latency_s),
                     units::fixed(v.measurement.power_w, 1) + " W", verdict});
    }
    out << table.to_string();
  }

  out << "\naccepted chain:";
  if (log.accepted_chain.empty()) {
    out << " (none — baseline kept)";
  } else {
    for (const std::string& id : log.accepted_chain) {
      out << " -> " << id;
    }
  }
  out << "\nfinal: score " << log.final_best.score << "  latency "
      << units::ms(log.final_best.latency_s) << "  power "
      << units::fixed(log.final_best.power_w, 1) << " W";
  if (log.baseline.feasible && log.baseline.score > 0.0) {
    out << "  (" << units::fixed(log.baseline.score / log.final_best.score, 2)
        << "x objective improvement)";
  }
  out << "\n";
  return out.str();
}

}  // namespace proof::opt

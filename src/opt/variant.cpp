#include "opt/variant.hpp"

#include <algorithm>
#include <cmath>

#include "backends/backend.hpp"
#include "hw/platform.hpp"
#include "models/zoo.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace proof::opt {

namespace {

constexpr int64_t kMaxBatch = 4096;

/// Reorder time worth chasing with a model redesign even when the overall
/// label is not bandwidth-bound.
constexpr double kReorderProposalFloor = 0.15;

std::string clock_id(double gpu, double mem) {
  const auto whole = [](double v) { return std::to_string(llround(v)); };
  return "clocks=gpu" + whole(gpu) + "/mem" + whole(mem);
}

bool zoo_has(const std::string& id) {
  for (const models::ModelSpec& spec : models::model_zoo()) {
    if (spec.id == id) {
      return true;
    }
  }
  for (const models::ModelSpec& spec : models::extended_model_zoo()) {
    if (spec.id == id) {
      return true;
    }
  }
  return false;
}

void propose_batch(const ProposalContext& ctx, const BottleneckReport& cls,
                   std::vector<Variant>& out) {
  // Overhead-bound runs want amortization (x2, x4); otherwise probe one step
  // up for saturation and one step down for latency headroom.
  std::vector<int64_t> candidates;
  if (cls.kind == Bottleneck::kOverhead) {
    candidates = {ctx.batch * 2, ctx.batch * 4};
  } else {
    candidates = {ctx.batch * 2, ctx.batch / 2};
  }
  for (const int64_t b : candidates) {
    if (b < 1 || b > kMaxBatch || b == ctx.batch) {
      continue;
    }
    Variant v;
    v.id = "batch=" + std::to_string(b);
    v.axis = "batch";
    v.description = b > ctx.batch
                        ? "amortize launch overhead / saturate occupancy"
                        : "shrink batch for latency headroom";
    v.batch = b;
    out.push_back(std::move(v));
  }
}

}  // namespace

AxisConfig axes_from_string(const std::string& spec) {
  AxisConfig axes;
  if (spec.empty()) {
    return axes;
  }
  axes = {false, false, false, false, false};
  for (const std::string& name : strings::split_trimmed(spec, ',')) {
    if (name == "model") {
      axes.model = true;
    } else if (name == "precision") {
      axes.precision = true;
    } else if (name == "batch") {
      axes.batch = true;
    } else if (name == "backend") {
      axes.backend = true;
    } else if (name == "clocks") {
      axes.clocks = true;
    } else {
      throw ConfigError("unknown optimization axis '" + name +
                        "' (expected model | precision | batch | backend | "
                        "clocks)");
    }
  }
  return axes;
}

std::string axes_to_string(const AxisConfig& axes) {
  std::string out;
  const auto add = [&](bool on, const char* name) {
    if (on) {
      out += (out.empty() ? "" : ",");
      out += name;
    }
  };
  add(axes.model, "model");
  add(axes.precision, "precision");
  add(axes.batch, "batch");
  add(axes.backend, "backend");
  add(axes.clocks, "clocks");
  return out;
}

std::string_view objective_name(Objective objective) {
  switch (objective) {
    case Objective::kLatency:
      return "latency";
    case Objective::kPerfPerWatt:
      return "perf_per_watt";
  }
  return "unknown";
}

Objective objective_from_name(const std::string& name) {
  if (name == "latency") {
    return Objective::kLatency;
  }
  if (name == "perf_per_watt") {
    return Objective::kPerfPerWatt;
  }
  throw ConfigError("unknown objective '" + name +
                    "' (expected latency | perf_per_watt)");
}

std::vector<Variant> propose_variants(const ProposalContext& ctx,
                                      const BottleneckReport& cls) {
  std::vector<Variant> out;

  // 1. Model redesign (§4.5): the zoo sibling `<id>_mod` eliminates the
  // reorder layers the classifier is pointing at.  Only proposed when the
  // profile actually shows reorder/bandwidth pressure.
  if (ctx.axes.model && !ctx.model_id.empty()) {
    const std::string sibling = ctx.model_id + "_mod";
    if ((cls.kind == Bottleneck::kBandwidth ||
         cls.reorder_share > kReorderProposalFloor) &&
        zoo_has(sibling)) {
      Variant v;
      v.id = "model=" + sibling;
      v.axis = "model";
      v.description =
          "reorder-elimination redesign: drop shuffle/movement layers "
          "(reorder share " +
          std::to_string(llround(cls.reorder_share * 100.0)) + "%)";
      v.model_substitute = sibling;
      out.push_back(std::move(v));
    }
  }

  // 2. Precision: int8 QDQ halves DRAM traffic and doubles the matrix peak —
  // a candidate for both memory- and compute-bound runs.
  if (ctx.axes.precision && !ctx.quantized && ctx.supports_int8) {
    Variant v;
    v.id = "precision=int8";
    v.axis = "precision";
    v.description = cls.kind == Bottleneck::kCompute
                        ? "int8 QDQ rewrite: 2x matrix peak"
                        : "int8 QDQ rewrite: halve DRAM traffic";
    v.quantize = true;
    out.push_back(std::move(v));
  }

  // 3. Batch size, keyed to the classification.
  if (ctx.axes.batch) {
    propose_batch(ctx, cls, out);
  }

  // 4. Backend choice — in this codebase also the fusion-aggressiveness
  // axis: trt_sim composes the fusion passes most aggressively (epilogues +
  // pointwise chains + Myelin-style regions), ov_sim and ort_sim less so.
  if (ctx.axes.backend) {
    for (const std::string& id :
         backends::BackendRegistry::instance().ids()) {
      if (id == ctx.backend_id) {
        continue;
      }
      Variant v;
      v.id = "backend=" + id;
      v.axis = "backend";
      v.description = "alternative runtime (different fusion aggressiveness)";
      v.backend_id = id;
      out.push_back(std::move(v));
    }
  }

  // 5. Clock operating points (§4.6).  Only meaningful when the objective
  // weighs power (perf-per-watt) or a power budget constrains the run —
  // under a pure latency objective nominal clocks dominate trivially.
  if (ctx.axes.clocks &&
      (ctx.power_budget_w > 0.0 || ctx.objective == Objective::kPerfPerWatt)) {
    const hw::PlatformDesc& platform =
        hw::PlatformRegistry::instance().get(ctx.platform_id);
    std::vector<double> gpu_steps = platform.gpu_clock.available_mhz;
    std::vector<double> mem_steps = platform.mem_clock.available_mhz;
    if (gpu_steps.empty()) {
      gpu_steps.push_back(platform.gpu_clock.nominal_mhz);
    }
    if (mem_steps.empty()) {
      mem_steps.push_back(platform.mem_clock.nominal_mhz);
    }
    std::sort(gpu_steps.begin(), gpu_steps.end());
    std::sort(mem_steps.begin(), mem_steps.end());
    for (const double gpu : gpu_steps) {
      for (const double mem : mem_steps) {
        if (gpu == ctx.gpu_mhz && mem == ctx.mem_mhz) {
          continue;  // the incumbent operating point
        }
        Variant v;
        v.id = clock_id(gpu, mem);
        v.axis = "clocks";
        v.description = "DVFS operating point";
        v.gpu_mhz = gpu;
        v.mem_mhz = mem;
        out.push_back(std::move(v));
      }
    }
  }

  return out;
}

}  // namespace proof::opt

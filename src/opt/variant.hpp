// Optimization variants: concrete, profile-checkable configuration changes.
//
// A Variant is a delta against the incumbent configuration along exactly one
// axis — batch size, precision (the analysis/quantize QDQ pass), clock
// operating point (hw::ClockSetting), backend choice (which, in this
// codebase, is also the fusion-aggressiveness axis: each simulated runtime
// composes the shared fusion passes at a different aggressiveness, see
// backends/fusion.hpp), or a whole-model rewrite (the paper's §4.5
// Shuffle-removal redesign, looked up as the zoo sibling `<id>_mod`).
//
// Variants are plain data: the guarded loop (guard.hpp) measures them
// through whatever VariantSource it is driven by, so tests can fabricate
// variants with arbitrary measured outcomes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "opt/bottleneck.hpp"

namespace proof::opt {

struct Variant {
  std::string id;           ///< stable key, e.g. "clocks=gpu612/mem2133"
  std::string axis;         ///< "model" | "precision" | "batch" | "backend" | "clocks"
  std::string description;  ///< human rationale tied to the classification

  // Exactly the fields of this variant's axis are set; everything else keeps
  // the incumbent's value.
  std::optional<int64_t> batch;
  bool quantize = false;            ///< rewrite the model to int8 QDQ form
  std::optional<double> gpu_mhz;
  std::optional<double> mem_mhz;
  std::string backend_id;           ///< empty = keep incumbent backend
  std::string model_substitute;     ///< zoo id, empty = keep incumbent model
};

/// Which proposal axes the generator may use (CLI `--axes`, serve "axes").
struct AxisConfig {
  bool model = true;
  bool precision = true;
  bool batch = true;
  bool backend = true;
  bool clocks = true;
};

/// Parses a comma-separated axis list ("model,clocks"); throws ConfigError
/// on unknown names.  An empty string returns the all-enabled default.
[[nodiscard]] AxisConfig axes_from_string(const std::string& spec);
[[nodiscard]] std::string axes_to_string(const AxisConfig& axes);

/// The guarded objective.  Scores are "lower is better":
///   kLatency      — seconds per sample (total latency / batch), so batch
///                   variants stay comparable;
///   kPerfPerWatt  — joules per sample (power * latency / batch); minimizing
///                   energy per inference maximizes inferences per watt.
enum class Objective : uint8_t { kLatency, kPerfPerWatt };

[[nodiscard]] std::string_view objective_name(Objective objective);
/// Throws ConfigError on unknown names ("latency" | "perf_per_watt").
[[nodiscard]] Objective objective_from_name(const std::string& name);

/// Everything the deterministic generator may look at when proposing.
struct ProposalContext {
  std::string model_id;        ///< zoo id of the incumbent model ("" = raw graph)
  bool quantized = false;      ///< incumbent already rewritten to QDQ
  std::string platform_id;
  std::string backend_id;      ///< effective (defaulted) incumbent backend
  int64_t batch = 1;
  double gpu_mhz = 0.0;        ///< effective incumbent clocks
  double mem_mhz = 0.0;
  bool supports_int8 = false;
  Objective objective = Objective::kLatency;
  double power_budget_w = 0.0;  ///< 0 = unconstrained
  AxisConfig axes;
};

/// Deterministic rule-based proposal: variants keyed to the bottleneck
/// classification, in a fixed axis order (model, precision, batch, backend,
/// clocks) with fixed intra-axis ordering.  Never proposes the incumbent
/// configuration itself.
[[nodiscard]] std::vector<Variant> propose_variants(const ProposalContext& ctx,
                                                    const BottleneckReport& cls);

}  // namespace proof::opt

// Deterministic rule-based bottleneck classifier over a profile report.
//
// Labels a profiled model as compute-bound, bandwidth-bound or
// overhead-bound from three latency-share signals, in the spirit of the
// time-based roofline's bound-ness diagnosis (Wang et al., arXiv:2009.04598):
//   * roofline position of each layer (left/right of the ridge point),
//     weighted by its latency share;
//   * reorder share: time spent in backend-inserted conversion layers and
//     data-movement/copy operators (the §4.5 Shuffle signature);
//   * launch-overhead share: per-kernel dispatch cost versus the run's
//     latency basis (the critical path when a multi-stream timeline was
//     analyzed, else total latency).
//
// The classification is a pure function of the report — no randomness, no
// wall clock — so the optimizer's proposals are reproducible byte-for-byte.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/profiler.hpp"

namespace proof::opt {

enum class Bottleneck : uint8_t {
  kCompute,    ///< dominant layers sit right of the ridge (compute roof)
  kBandwidth,  ///< dominant layers sit under the memory roof (incl. reorders)
  kOverhead,   ///< kernel launch/dispatch cost dominates useful work
};

[[nodiscard]] std::string_view bottleneck_name(Bottleneck kind);

struct BottleneckReport {
  Bottleneck kind = Bottleneck::kCompute;
  double compute_share = 0.0;    ///< latency share of compute-bound layers
  double bandwidth_share = 0.0;  ///< latency share of memory-bound layers
  double reorder_share = 0.0;    ///< latency share of reorder/movement layers
  double overhead_share = 0.0;   ///< estimated launch-overhead share
  std::vector<std::string> dominant_layers;  ///< top layers by latency
};

/// Classifies `report` (profiled on `platform`).  Deterministic.
[[nodiscard]] BottleneckReport classify(const ProfileReport& report,
                                        const hw::PlatformDesc& platform);

}  // namespace proof::opt

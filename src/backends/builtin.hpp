// Internal: factories for the built-in simulated runtimes.
#pragma once

#include <memory>

#include "backends/backend.hpp"

namespace proof::backends {

std::unique_ptr<Backend> make_trt_sim();
std::unique_ptr<Backend> make_ov_sim();
std::unique_ptr<Backend> make_ort_sim();

}  // namespace proof::backends

// Lowering node groups to backend layers and device kernels.
#pragma once

#include <string>
#include <vector>

#include "analysis/analyze_representation.hpp"
#include "backends/backend.hpp"

namespace proof::backends {

struct LoweringOptions {
  std::string arch;                 ///< platform architecture (MMA tables)
  /// Opaque regions are emitted as one kernel per GEMM anchor; intermediate
  /// tensors between kernels round-trip through DRAM, which is the real
  /// behaviour Equation 1's fused model slightly under-predicts.
  bool split_regions_at_anchors = true;
  int max_kernels_per_region = 64;
};

/// Builds a backend layer from a group of model nodes.  Computes boundary
/// DRAM traffic, hardware FLOP, matrix-pipeline FLOP and the kernel list.
[[nodiscard]] BackendLayer lower_group(const Graph& graph,
                                       const std::vector<NodeId>& members,
                                       std::string layer_name, bool opaque,
                                       const LoweringOptions& options);

/// Builds a backend-inserted conversion layer moving `bytes` through DRAM.
[[nodiscard]] BackendLayer make_reorder_layer(std::string name,
                                              const std::string& input_tensor,
                                              const std::string& output_tensor,
                                              double bytes, DType dtype);

/// Dominant workload class of a node set (FLOP-weighted, falls back to
/// byte-weighted for FLOP-free sets).
[[nodiscard]] OpClass dominant_op_class(const Graph& graph,
                                        const std::vector<NodeId>& members);

/// Kernel segmentation of an opaque region: one segment per matrix anchor,
/// capped at `options.max_kernels_per_region`.  Purely structural (op types
/// and member order; never shapes), so the segmentation computed on one
/// instantiation of a graph is valid for every compatible instantiation —
/// lower_group and the AnalysisPlan recipe extractor share this single
/// source of truth.
[[nodiscard]] std::vector<std::vector<NodeId>> region_kernel_segments(
    const Graph& graph, const std::vector<NodeId>& members,
    const LoweringOptions& options);

// --- shape-polymorphic layer recipes (core/analysis_plan.hpp) ---------------
//
// A LayerRecipe freezes every structural decision behind one lowered backend
// layer — its name, metadata, I/O tensor names (post-rename), fused member
// nodes and kernel segmentation — while leaving the shape-dependent numbers
// (kernel bytes/FLOPs, dominant op class) to be re-evaluated per cell from
// the instantiated graph's actual tensor shapes.  Replaying a recipe runs
// the exact same kernel-costing code lowering runs, so the resulting layers
// are byte-identical to a full lower() over the same graph.

/// One kernel of a frozen layer: the cached kernel name, the member node ids
/// of its segment, and whether it executes inside an opaque region (the MMA
/// specialization discount applies there).
struct KernelRecipe {
  std::string name;
  std::vector<NodeId> members;
  bool in_region = false;
  /// Cached boundary of multi-node segments (params/inputs/outputs), in the
  /// exact order boundary_ids() returns — the boundary is purely structural,
  /// and the interned tensor ids stay valid on every clone_warm() of the
  /// graph the recipe was extracted from.  Empty for single-node kernels,
  /// whose bytes come from the per-op memory rule instead.
  Graph::BoundaryIds boundary;
  bool boundary_cached = false;
};

/// Frozen structural record of one backend layer (reorder or fused group).
/// Node ids refer to the prepared graph, whose node ordering is preserved
/// across compatible instantiations.
struct LayerRecipe {
  bool is_reorder = false;
  std::string name;
  std::string info;
  bool is_opaque = false;
  std::vector<std::string> input_tensors;   ///< backend names (post-rename)
  std::vector<std::string> output_tensors;
  std::vector<std::string> truth_nodes;
  /// Fused group layers: member node ids (empty for reorders).
  std::vector<NodeId> members;
  std::vector<KernelRecipe> kernels;
  /// Reorder layers: DRAM traffic per source-tensor byte (the backends'
  /// read-convert-write factor), plus the canonical absolute bytes as a
  /// fallback for zero-sized sources.
  double reorder_bytes_per_byte = 0.0;
  double reorder_bytes = 0.0;
};

/// Derives the recipe list from a canonical build: walks `layers` in order,
/// pairing each non-reorder layer with the next group of `plan` and
/// re-deriving multi-kernel segmentations via region_kernel_segments.
/// `built` is the graph the layers were lowered from.
[[nodiscard]] std::vector<LayerRecipe> extract_layer_recipes(
    const Graph& built, const std::vector<BackendLayer>& layers,
    const BuildPlan& plan);

/// Re-evaluates one frozen layer against a compatible instantiated graph:
/// cached names/metadata/I-O verbatim, kernel work sizes and op classes
/// recomputed from `g`'s shapes through the same code paths lowering uses.
/// `analyses` (optional, indexed by NodeId over `g`) shares the per-node
/// flops/memory/class evaluations the caller's AnalyzeRepresentation already
/// made — the identical pure functions over the identical graph, so replayed
/// layers stay bit-equal to a full lower() whether or not it is passed.
[[nodiscard]] BackendLayer replay_layer_recipe(
    const Graph& g, const LayerRecipe& recipe, const LoweringOptions& options,
    const std::vector<NodeAnalysis>* analyses = nullptr);

}  // namespace proof::backends

// Lowering node groups to backend layers and device kernels.
#pragma once

#include <string>
#include <vector>

#include "backends/backend.hpp"

namespace proof::backends {

struct LoweringOptions {
  std::string arch;                 ///< platform architecture (MMA tables)
  /// Opaque regions are emitted as one kernel per GEMM anchor; intermediate
  /// tensors between kernels round-trip through DRAM, which is the real
  /// behaviour Equation 1's fused model slightly under-predicts.
  bool split_regions_at_anchors = true;
  int max_kernels_per_region = 64;
};

/// Builds a backend layer from a group of model nodes.  Computes boundary
/// DRAM traffic, hardware FLOP, matrix-pipeline FLOP and the kernel list.
[[nodiscard]] BackendLayer lower_group(const Graph& graph,
                                       const std::vector<NodeId>& members,
                                       std::string layer_name, bool opaque,
                                       const LoweringOptions& options);

/// Builds a backend-inserted conversion layer moving `bytes` through DRAM.
[[nodiscard]] BackendLayer make_reorder_layer(std::string name,
                                              const std::string& input_tensor,
                                              const std::string& output_tensor,
                                              double bytes, DType dtype);

/// Dominant workload class of a node set (FLOP-weighted, falls back to
/// byte-weighted for FLOP-free sets).
[[nodiscard]] OpClass dominant_op_class(const Graph& graph,
                                        const std::vector<NodeId>& members);

}  // namespace proof::backends

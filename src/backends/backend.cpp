#include "backends/backend.hpp"

#include <cmath>

#include "backends/builtin.hpp"
#include "backends/prepare.hpp"
#include "backends/stream_schedule.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace proof::backends {

Engine::Engine(std::string backend_id, Graph analysis_graph,
               std::vector<BackendLayer> layers, BuildConfig config,
               StreamPolicy stream_policy)
    : Engine(std::move(backend_id),
             std::make_shared<const Graph>(std::move(analysis_graph)),
             std::move(layers), config, std::move(stream_policy)) {}

Engine::Engine(std::string backend_id, std::shared_ptr<const Graph> analysis_graph,
               std::vector<BackendLayer> layers, BuildConfig config,
               StreamPolicy stream_policy)
    : backend_id_(std::move(backend_id)),
      analysis_graph_(std::move(analysis_graph)),
      layers_(std::move(layers)),
      config_(config),
      stream_policy_(std::move(stream_policy)) {
  PROOF_CHECK(analysis_graph_ != nullptr, "engine requires an analysis graph");
}

EngineProfile Engine::profile(const hw::PlatformState& state, int iterations) const {
  PROOF_CHECK(iterations > 0, "iterations must be positive");
  const hw::LatencyModel model(state);
  EngineProfile result;
  result.layer_latency_s.reserve(layers_.size());
  double compute_busy = 0.0;
  double memory_busy = 0.0;
  for (const BackendLayer& layer : layers_) {
    double latency = 0.0;
    for (const hw::KernelWork& kernel : layer.kernels) {
      const hw::KernelTiming t = model.time_kernel(kernel);
      latency += t.latency_s;
      compute_busy += t.compute_s;
      memory_busy += t.memory_s;
    }
    // Deterministic measurement jitter, shrinking with averaging length.
    Rng rng = Rng::from_string(layer.name, /*salt=*/0xBEEF);
    const double sigma = 0.01 / std::sqrt(static_cast<double>(iterations) / 10.0);
    latency *= 1.0 + sigma * rng.next_gaussian() / 3.0;
    result.layer_latency_s.push_back(latency);
    result.total_latency_s += latency;
  }
  if (result.total_latency_s > 0.0) {
    // Cross-pipeline activity: copies occupy SMs and compute streams DRAM,
    // so each rail sees a fraction of the other pipeline's busy time.
    result.utilization.gpu =
        std::min(1.0, (compute_busy + 0.3 * memory_busy) / result.total_latency_s);
    result.utilization.mem =
        std::min(1.0, (memory_busy + 0.35 * compute_busy) / result.total_latency_s);
  }
  return result;
}

ExecutionTimeline Engine::profile_timeline(const hw::PlatformState& state,
                                           int iterations, int streams) const {
  const EngineProfile profile_result = profile(state, iterations);
  return schedule_streams(*this, profile_result.layer_latency_s, streams);
}

std::vector<hw::KernelWork> Engine::all_kernels() const {
  std::vector<hw::KernelWork> out;
  for (const BackendLayer& layer : layers_) {
    out.insert(out.end(), layer.kernels.begin(), layer.kernels.end());
  }
  return out;
}

Engine Backend::build(const Graph& model, const BuildConfig& config,
                      const hw::PlatformDesc& platform) const {
  Graph prepared = prepare_model(model, config, platform);
  const BuildPlan p = plan(prepared);
  return lower(std::move(prepared), p, config, platform);
}

namespace {
void register_builtin_backends(BackendRegistry& registry);
}  // namespace

BackendRegistry::BackendRegistry() { register_builtin_backends(*this); }

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry* registry = new BackendRegistry();
  return *registry;
}

void BackendRegistry::add(std::unique_ptr<Backend> backend) {
  PROOF_CHECK(backend != nullptr, "null backend");
  const std::string id = backend->id();
  PROOF_CHECK(backends_.find(id) == backends_.end(), "duplicate backend '" << id << "'");
  backends_.emplace(id, std::move(backend));
}

const Backend& BackendRegistry::get(const std::string& id) const {
  const auto it = backends_.find(id);
  if (it == backends_.end()) {
    throw ConfigError("unknown backend '" + id + "'");
  }
  return *it->second;
}

bool BackendRegistry::contains(const std::string& id) const {
  return backends_.count(id) > 0;
}

std::vector<std::string> BackendRegistry::ids() const {
  std::vector<std::string> out;
  for (const auto& [id, b] : backends_) {
    out.push_back(id);
  }
  return out;
}

namespace {

void register_builtin_backends(BackendRegistry& registry) {
  registry.add(make_trt_sim());
  registry.add(make_ov_sim());
  registry.add(make_ort_sim());
}

}  // namespace

}  // namespace proof::backends

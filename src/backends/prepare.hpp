// Internal: shared model preparation for the simulated runtimes.
#pragma once

#include <string>
#include <vector>

#include "backends/backend.hpp"

namespace proof::backends {

/// Copies the model, applies the build batch size and precision, and checks
/// the platform supports the requested dtype.
[[nodiscard]] Graph prepare_model(const Graph& model, const BuildConfig& config,
                                  const hw::PlatformDesc& platform);

/// " + "-joined member node names (TensorRT's fused-layer naming style).
[[nodiscard]] std::string joined_layer_name(const Graph& graph,
                                            const std::vector<NodeId>& members,
                                            const std::string& sep);

}  // namespace proof::backends

#include "backends/lowering.hpp"

#include <array>

#include "hw/hardware_flops.hpp"
#include "support/error.hpp"

namespace proof::backends {

namespace {

bool is_matrix_anchor(std::string_view op_type) {
  return op_type == "Conv" || op_type == "ConvTranspose" || op_type == "Gemm" ||
         op_type == "MatMul";
}

/// DRAM traffic of a node set assuming on-chip forwarding of intermediates:
/// params streamed + boundary activations.  Single nodes use the per-op rule
/// (which also handles stride read fractions / zero-copy views).
double group_bytes_from_boundary(const Graph& g, const Graph::BoundaryIds& b) {
  double bytes = 0.0;
  for (const TensorId t : b.params) {
    bytes += static_cast<double>(g.tensor(t).size_bytes());
  }
  for (const TensorId t : b.inputs) {
    bytes += static_cast<double>(g.tensor(t).size_bytes());
  }
  for (const TensorId t : b.outputs) {
    bytes += static_cast<double>(g.tensor(t).size_bytes());
  }
  return bytes;
}

double group_bytes(const Graph& g, const std::vector<NodeId>& members) {
  if (members.size() == 1) {
    const Node& node = g.node(members[0]);
    const OpContext ctx(g, node);
    return op_def_for(node).memory(ctx).total();
  }
  return group_bytes_from_boundary(g, g.boundary_ids(members));
}

/// Per-node op class: the shared AnalyzeRepresentation value when available
/// (same pure function over the same graph), a fresh evaluation otherwise.
OpClass node_op_class(const Node& node, const OpContext& ctx, NodeId id,
                      const std::vector<NodeAnalysis>* analyses) {
  return analyses != nullptr ? (*analyses)[static_cast<size_t>(id)].op_class
                             : op_def_for(node).op_class(ctx);
}

/// dominant_op_class over precomputed per-node analyses — identical
/// accumulation loop and tie-breaking, with the op-def evaluations replaced
/// by the values an AnalyzeRepresentation already computed for `g`.
OpClass dominant_op_class_precomputed(const std::vector<NodeId>& members,
                                      const std::vector<NodeAnalysis>& analyses) {
  PROOF_CHECK(!members.empty(), "empty member set");
  std::array<double, kOpClassCount> flops_by_class{};
  std::array<double, kOpClassCount> bytes_by_class{};
  std::array<bool, kOpClassCount> present{};
  for (const NodeId id : members) {
    const NodeAnalysis& a = analyses[static_cast<size_t>(id)];
    const size_t cls = static_cast<size_t>(a.op_class);
    present[cls] = true;
    flops_by_class[cls] += a.flops;
    bytes_by_class[cls] += a.memory.total();
  }
  OpClass best = OpClass::kElementwise;
  double best_score = -1.0;
  for (size_t cls = 0; cls < kOpClassCount; ++cls) {
    if (present[cls] && flops_by_class[cls] > best_score) {
      best_score = flops_by_class[cls];
      best = static_cast<OpClass>(cls);
    }
  }
  if (best_score > 0.0) {
    return best;
  }
  best_score = -1.0;
  for (size_t cls = 0; cls < kOpClassCount; ++cls) {
    if (present[cls] && bytes_by_class[cls] > best_score) {
      best_score = bytes_by_class[cls];
      best = static_cast<OpClass>(cls);
    }
  }
  return best;
}

/// `precomputed_cls` / `cached_boundary` / `analyses` are recipe-replay
/// shortcuts: the dominant class of a whole-group kernel equals the
/// already-computed layer class, a cached structural boundary skips the
/// per-cell boundary walk, and shared per-node analyses skip re-evaluating
/// op defs the AR evaluated moments earlier.  Each must evaluate to exactly
/// what the full computation would return — the canonical lowering path
/// always passes nullptr.
hw::KernelWork make_kernel(const Graph& g, const std::vector<NodeId>& members,
                           const std::string& name, const LoweringOptions& options,
                           bool in_region, const OpClass* precomputed_cls = nullptr,
                           const Graph::BoundaryIds* cached_boundary = nullptr,
                           const std::vector<NodeAnalysis>* analyses = nullptr) {
  hw::KernelWork k;
  k.name = name;
  k.cls = precomputed_cls != nullptr ? *precomputed_cls
          : analyses != nullptr      ? dominant_op_class_precomputed(members, *analyses)
                                     : dominant_op_class(g, members);
  if (cached_boundary != nullptr && members.size() > 1) {
    k.bytes = group_bytes_from_boundary(g, *cached_boundary);
  } else if (analyses != nullptr && members.size() == 1) {
    // group_bytes' single-node case is the per-op memory rule — the exact
    // value the AR computed for this node.
    k.bytes = (*analyses)[static_cast<size_t>(members[0])].memory.total();
  } else {
    k.bytes = group_bytes(g, members);
  }
  for (const NodeId id : members) {
    const Node& node = g.node(id);
    const OpContext ctx(g, node);
    double hwf = hw::hardware_flops(ctx, options.arch);
    if (is_matrix_anchor(node.op_type) &&
        node_op_class(node, ctx, id, analyses) != OpClass::kConvDepthwise) {
      // Myelin-style region compilers emit specialized fused-attention
      // kernels for long sequences that skip padded epilogue passes; the
      // counter sees ~13 % fewer MMA instructions than a naive lowering.
      if (in_region && node.op_type == "MatMul" &&
          ctx.out_shape(0).dim(-2) >= 128) {
        hwf *= 0.84;
      }
      k.hw_flops += hwf;
      k.matrix_flops += hwf;
    } else {
      k.hw_flops += hwf;
    }
  }
  if (!members.empty()) {
    k.dtype = g.tensor(g.node_output_ids(members[0])[0]).dtype;
  }
  for (const NodeId id : members) {
    const Node& n = g.node(id);
    if (n.is("QuantizeLinear") || n.is("DequantizeLinear")) {
      k.dtype = DType::kI8;  // folded QDQ group executes as an int8 kernel
      break;
    }
  }
  return k;
}

}  // namespace

OpClass dominant_op_class(const Graph& graph, const std::vector<NodeId>& members) {
  PROOF_CHECK(!members.empty(), "empty member set");
  // Dense per-class accumulators (no ordered-map churn on the lowering hot
  // path); `present` keeps the tie-breaking identical to the old map-based
  // version, which only considered classes that actually occur.
  std::array<double, kOpClassCount> flops_by_class{};
  std::array<double, kOpClassCount> bytes_by_class{};
  std::array<bool, kOpClassCount> present{};
  for (const NodeId id : members) {
    const Node& node = graph.node(id);
    const OpContext ctx(graph, node);
    const OpDef& def = op_def_for(node);
    const size_t cls = static_cast<size_t>(def.op_class(ctx));
    present[cls] = true;
    flops_by_class[cls] += def.flops(ctx);
    bytes_by_class[cls] += def.memory(ctx).total();
  }
  OpClass best = OpClass::kElementwise;
  double best_score = -1.0;
  for (size_t cls = 0; cls < kOpClassCount; ++cls) {
    if (present[cls] && flops_by_class[cls] > best_score) {
      best_score = flops_by_class[cls];
      best = static_cast<OpClass>(cls);
    }
  }
  if (best_score > 0.0) {
    return best;
  }
  best_score = -1.0;
  for (size_t cls = 0; cls < kOpClassCount; ++cls) {
    if (present[cls] && bytes_by_class[cls] > best_score) {
      best_score = bytes_by_class[cls];
      best = static_cast<OpClass>(cls);
    }
  }
  return best;
}

BackendLayer lower_group(const Graph& graph, const std::vector<NodeId>& members,
                         std::string layer_name, bool opaque,
                         const LoweringOptions& options) {
  PROOF_CHECK(!members.empty(), "cannot lower an empty group");
  BackendLayer layer;
  layer.name = std::move(layer_name);
  layer.is_opaque = opaque;
  layer.cls = dominant_op_class(graph, members);
  const Graph::BoundaryIds b = graph.boundary_ids(members);
  layer.input_tensors.reserve(b.inputs.size());
  for (const TensorId t : b.inputs) {
    layer.input_tensors.emplace_back(graph.tensor_name(t));
  }
  layer.output_tensors.reserve(b.outputs.size());
  for (const TensorId t : b.outputs) {
    layer.output_tensors.emplace_back(graph.tensor_name(t));
  }
  for (const NodeId id : members) {
    layer.truth_nodes.push_back(graph.node(id).name);
  }

  if (!opaque || !options.split_regions_at_anchors) {
    layer.kernels.push_back(
        make_kernel(graph, members, layer.name, options, opaque));
    return layer;
  }

  // Opaque region: one kernel per matrix anchor.  Intermediates between
  // kernels round-trip through DRAM, so each segment is costed separately.
  const std::vector<std::vector<NodeId>> segments =
      region_kernel_segments(graph, members, options);
  for (size_t i = 0; i < segments.size(); ++i) {
    layer.kernels.push_back(make_kernel(graph, segments[i],
                                        layer.name + "_k" + std::to_string(i),
                                        options, /*in_region=*/true));
  }
  return layer;
}

std::vector<std::vector<NodeId>> region_kernel_segments(
    const Graph& graph, const std::vector<NodeId>& members,
    const LoweringOptions& options) {
  std::vector<std::vector<NodeId>> segments;
  std::vector<NodeId> current;
  int anchors_in_current = 0;
  for (const NodeId id : members) {
    const bool anchor = is_matrix_anchor(graph.node(id).op_type);
    if (anchor && anchors_in_current > 0 &&
        static_cast<int>(segments.size()) < options.max_kernels_per_region - 1) {
      segments.push_back(current);
      current.clear();
      anchors_in_current = 0;
    }
    current.push_back(id);
    if (anchor) {
      ++anchors_in_current;
    }
  }
  if (!current.empty()) {
    segments.push_back(current);
  }
  return segments;
}

std::vector<LayerRecipe> extract_layer_recipes(
    const Graph& built, const std::vector<BackendLayer>& layers,
    const BuildPlan& plan) {
  std::vector<LayerRecipe> recipes;
  recipes.reserve(layers.size());
  size_t gi = 0;
  for (const BackendLayer& layer : layers) {
    LayerRecipe r;
    r.is_reorder = layer.is_reorder;
    r.name = layer.name;
    r.info = layer.info;
    r.is_opaque = layer.is_opaque;
    r.input_tensors = layer.input_tensors;
    r.output_tensors = layer.output_tensors;
    r.truth_nodes = layer.truth_nodes;
    if (layer.is_reorder) {
      PROOF_CHECK(layer.kernels.size() == 1 && !layer.input_tensors.empty(),
                  "reorder layer '" << layer.name
                                    << "' has an unexpected kernel/IO shape");
      // Reorders always source a pre-rename model tensor that exists in the
      // prepared graph; freeze the traffic as a per-byte factor so it scales
      // exactly with the instantiated tensor size.
      r.reorder_bytes = layer.kernels[0].bytes;
      const TensorDesc& src = built.tensor(layer.input_tensors[0]);
      const double src_bytes = static_cast<double>(src.size_bytes());
      r.reorder_bytes_per_byte =
          src_bytes > 0.0 ? r.reorder_bytes / src_bytes : 0.0;
    } else {
      PROOF_CHECK(gi < plan.groups.size(),
                  "layer list has more fused layers than the build plan has "
                  "groups (layer '"
                      << layer.name << "')");
      r.members = plan.groups[gi++];
      if (layer.kernels.size() == 1 && layer.kernels[0].name == layer.name) {
        // Single-kernel form (non-opaque layers, or split disabled): the
        // kernel covers the whole group; in_region mirrors lower_group's
        // `opaque` argument.
        KernelRecipe k;
        k.name = layer.name;
        k.members = r.members;
        k.in_region = layer.is_opaque;
        if (k.members.size() > 1) {
          k.boundary = built.boundary_ids(k.members);
          k.boundary_cached = true;
        }
        r.kernels.push_back(std::move(k));
      } else {
        // Segmented opaque region: re-derive the (structural) segmentation
        // and check it reproduces the canonical kernel list.
        const std::vector<std::vector<NodeId>> segments =
            region_kernel_segments(built, r.members, LoweringOptions{});
        PROOF_CHECK(segments.size() == layer.kernels.size(),
                    "kernel segmentation of '"
                        << layer.name << "' diverged from the canonical build ("
                        << segments.size() << " vs " << layer.kernels.size()
                        << " kernels)");
        for (size_t i = 0; i < segments.size(); ++i) {
          KernelRecipe k;
          k.name = layer.name + "_k" + std::to_string(i);
          PROOF_CHECK(k.name == layer.kernels[i].name,
                      "kernel name mismatch in '" << layer.name << "'");
          k.members = segments[i];
          k.in_region = true;
          if (k.members.size() > 1) {
            k.boundary = built.boundary_ids(k.members);
            k.boundary_cached = true;
          }
          r.kernels.push_back(std::move(k));
        }
      }
    }
    recipes.push_back(std::move(r));
  }
  PROOF_CHECK(gi == plan.groups.size(),
              "build plan has " << plan.groups.size()
                                << " groups but only " << gi
                                << " fused layers were lowered");
  return recipes;
}

BackendLayer replay_layer_recipe(const Graph& g, const LayerRecipe& recipe,
                                 const LoweringOptions& options,
                                 const std::vector<NodeAnalysis>* analyses) {
  BackendLayer layer;
  layer.name = recipe.name;
  layer.info = recipe.info;
  layer.is_reorder = recipe.is_reorder;
  layer.is_opaque = recipe.is_opaque;
  layer.input_tensors = recipe.input_tensors;
  layer.output_tensors = recipe.output_tensors;
  layer.truth_nodes = recipe.truth_nodes;
  if (recipe.is_reorder) {
    layer.cls = OpClass::kCopy;
    const TensorDesc& src = g.tensor(recipe.input_tensors[0]);
    const double src_bytes = static_cast<double>(src.size_bytes());
    hw::KernelWork k;
    k.name = layer.name;
    k.cls = OpClass::kCopy;
    k.dtype = src.dtype;
    k.bytes = src_bytes > 0.0 ? recipe.reorder_bytes_per_byte * src_bytes
                              : recipe.reorder_bytes;
    layer.kernels.push_back(std::move(k));
    return layer;
  }
  // Shape-dependent numbers are recomputed per cell through the same costing
  // code lower_group uses, so replayed layers match a full lower() bit-wise.
  // Structural shortcuts only: a whole-group kernel's dominant class IS the
  // layer class just computed, and cached boundaries skip the boundary walk.
  layer.cls = analyses != nullptr
                  ? dominant_op_class_precomputed(recipe.members, *analyses)
                  : dominant_op_class(g, recipe.members);
  layer.kernels.reserve(recipe.kernels.size());
  for (const KernelRecipe& k : recipe.kernels) {
    const bool whole_group = recipe.kernels.size() == 1 &&
                             k.members.size() == recipe.members.size();
    layer.kernels.push_back(make_kernel(
        g, k.members, k.name, options, k.in_region,
        whole_group ? &layer.cls : nullptr,
        k.boundary_cached ? &k.boundary : nullptr, analyses));
  }
  return layer;
}

BackendLayer make_reorder_layer(std::string name, const std::string& input_tensor,
                                const std::string& output_tensor, double bytes,
                                DType dtype) {
  BackendLayer layer;
  layer.name = std::move(name);
  layer.is_reorder = true;
  layer.cls = OpClass::kCopy;
  layer.input_tensors = {input_tensor};
  layer.output_tensors = {output_tensor};
  hw::KernelWork k;
  k.name = layer.name;
  k.cls = OpClass::kCopy;
  k.dtype = dtype;
  k.bytes = bytes;
  layer.kernels.push_back(std::move(k));
  return layer;
}

}  // namespace proof::backends

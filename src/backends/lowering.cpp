#include "backends/lowering.hpp"

#include <array>

#include "hw/hardware_flops.hpp"
#include "support/error.hpp"

namespace proof::backends {

namespace {

bool is_matrix_anchor(std::string_view op_type) {
  return op_type == "Conv" || op_type == "ConvTranspose" || op_type == "Gemm" ||
         op_type == "MatMul";
}

/// DRAM traffic of a node set assuming on-chip forwarding of intermediates:
/// params streamed + boundary activations.  Single nodes use the per-op rule
/// (which also handles stride read fractions / zero-copy views).
double group_bytes(const Graph& g, const std::vector<NodeId>& members) {
  if (members.size() == 1) {
    const Node& node = g.node(members[0]);
    const OpContext ctx(g, node);
    return op_def_for(node).memory(ctx).total();
  }
  const Graph::BoundaryIds b = g.boundary_ids(members);
  double bytes = 0.0;
  for (const TensorId t : b.params) {
    bytes += static_cast<double>(g.tensor(t).size_bytes());
  }
  for (const TensorId t : b.inputs) {
    bytes += static_cast<double>(g.tensor(t).size_bytes());
  }
  for (const TensorId t : b.outputs) {
    bytes += static_cast<double>(g.tensor(t).size_bytes());
  }
  return bytes;
}

hw::KernelWork make_kernel(const Graph& g, const std::vector<NodeId>& members,
                           const std::string& name, const LoweringOptions& options,
                           bool in_region) {
  hw::KernelWork k;
  k.name = name;
  k.cls = dominant_op_class(g, members);
  k.bytes = group_bytes(g, members);
  for (const NodeId id : members) {
    const Node& node = g.node(id);
    const OpContext ctx(g, node);
    double hwf = hw::hardware_flops(ctx, options.arch);
    if (is_matrix_anchor(node.op_type) &&
        op_def_for(node).op_class(ctx) != OpClass::kConvDepthwise) {
      // Myelin-style region compilers emit specialized fused-attention
      // kernels for long sequences that skip padded epilogue passes; the
      // counter sees ~13 % fewer MMA instructions than a naive lowering.
      if (in_region && node.op_type == "MatMul" &&
          ctx.out_shape(0).dim(-2) >= 128) {
        hwf *= 0.84;
      }
      k.hw_flops += hwf;
      k.matrix_flops += hwf;
    } else {
      k.hw_flops += hwf;
    }
  }
  if (!members.empty()) {
    k.dtype = g.tensor(g.node_output_ids(members[0])[0]).dtype;
  }
  for (const NodeId id : members) {
    const Node& n = g.node(id);
    if (n.is("QuantizeLinear") || n.is("DequantizeLinear")) {
      k.dtype = DType::kI8;  // folded QDQ group executes as an int8 kernel
      break;
    }
  }
  return k;
}

}  // namespace

OpClass dominant_op_class(const Graph& graph, const std::vector<NodeId>& members) {
  PROOF_CHECK(!members.empty(), "empty member set");
  // Dense per-class accumulators (no ordered-map churn on the lowering hot
  // path); `present` keeps the tie-breaking identical to the old map-based
  // version, which only considered classes that actually occur.
  std::array<double, kOpClassCount> flops_by_class{};
  std::array<double, kOpClassCount> bytes_by_class{};
  std::array<bool, kOpClassCount> present{};
  for (const NodeId id : members) {
    const Node& node = graph.node(id);
    const OpContext ctx(graph, node);
    const OpDef& def = op_def_for(node);
    const size_t cls = static_cast<size_t>(def.op_class(ctx));
    present[cls] = true;
    flops_by_class[cls] += def.flops(ctx);
    bytes_by_class[cls] += def.memory(ctx).total();
  }
  OpClass best = OpClass::kElementwise;
  double best_score = -1.0;
  for (size_t cls = 0; cls < kOpClassCount; ++cls) {
    if (present[cls] && flops_by_class[cls] > best_score) {
      best_score = flops_by_class[cls];
      best = static_cast<OpClass>(cls);
    }
  }
  if (best_score > 0.0) {
    return best;
  }
  best_score = -1.0;
  for (size_t cls = 0; cls < kOpClassCount; ++cls) {
    if (present[cls] && bytes_by_class[cls] > best_score) {
      best_score = bytes_by_class[cls];
      best = static_cast<OpClass>(cls);
    }
  }
  return best;
}

BackendLayer lower_group(const Graph& graph, const std::vector<NodeId>& members,
                         std::string layer_name, bool opaque,
                         const LoweringOptions& options) {
  PROOF_CHECK(!members.empty(), "cannot lower an empty group");
  BackendLayer layer;
  layer.name = std::move(layer_name);
  layer.is_opaque = opaque;
  layer.cls = dominant_op_class(graph, members);
  const Graph::BoundaryIds b = graph.boundary_ids(members);
  layer.input_tensors.reserve(b.inputs.size());
  for (const TensorId t : b.inputs) {
    layer.input_tensors.emplace_back(graph.tensor_name(t));
  }
  layer.output_tensors.reserve(b.outputs.size());
  for (const TensorId t : b.outputs) {
    layer.output_tensors.emplace_back(graph.tensor_name(t));
  }
  for (const NodeId id : members) {
    layer.truth_nodes.push_back(graph.node(id).name);
  }

  if (!opaque || !options.split_regions_at_anchors) {
    layer.kernels.push_back(
        make_kernel(graph, members, layer.name, options, opaque));
    return layer;
  }

  // Opaque region: one kernel per matrix anchor.  Intermediates between
  // kernels round-trip through DRAM, so each segment is costed separately.
  std::vector<std::vector<NodeId>> segments;
  std::vector<NodeId> current;
  int anchors_in_current = 0;
  for (const NodeId id : members) {
    const bool anchor = is_matrix_anchor(graph.node(id).op_type);
    if (anchor && anchors_in_current > 0 &&
        static_cast<int>(segments.size()) < options.max_kernels_per_region - 1) {
      segments.push_back(current);
      current.clear();
      anchors_in_current = 0;
    }
    current.push_back(id);
    if (anchor) {
      ++anchors_in_current;
    }
  }
  if (!current.empty()) {
    segments.push_back(current);
  }
  for (size_t i = 0; i < segments.size(); ++i) {
    layer.kernels.push_back(make_kernel(graph, segments[i],
                                        layer.name + "_k" + std::to_string(i),
                                        options, /*in_region=*/true));
  }
  return layer;
}

BackendLayer make_reorder_layer(std::string name, const std::string& input_tensor,
                                const std::string& output_tensor, double bytes,
                                DType dtype) {
  BackendLayer layer;
  layer.name = std::move(name);
  layer.is_reorder = true;
  layer.cls = OpClass::kCopy;
  layer.input_tensors = {input_tensor};
  layer.output_tensors = {output_tensor};
  hw::KernelWork k;
  k.name = layer.name;
  k.cls = OpClass::kCopy;
  k.dtype = dtype;
  k.bytes = bytes;
  layer.kernels.push_back(std::move(k));
  return layer;
}

}  // namespace proof::backends

#include "backends/fusion.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/error.hpp"

namespace proof::backends {

FusionState::FusionState(const Graph& graph) : graph_(&graph) {
  parent_.resize(graph.num_nodes());
  for (size_t i = 0; i < parent_.size(); ++i) {
    parent_[i] = static_cast<int>(i);
  }
}

int FusionState::find(int x) const {
  while (parent_[static_cast<size_t>(x)] != x) {
    x = parent_[static_cast<size_t>(x)];
  }
  return x;
}

int FusionState::group_of(NodeId id) const {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < parent_.size(), "bad node id " << id);
  return find(id);
}

bool FusionState::same_group(NodeId a, NodeId b) const {
  return group_of(a) == group_of(b);
}

void FusionState::merge(NodeId a, NodeId b) {
  const int ra = group_of(a);
  const int rb = group_of(b);
  if (ra != rb) {
    // Root at the smaller id so group identity follows the earliest member.
    parent_[static_cast<size_t>(std::max(ra, rb))] = std::min(ra, rb);
  }
}

std::vector<std::vector<NodeId>> FusionState::groups() const {
  std::map<int, std::vector<NodeId>> by_root;
  for (const NodeId id : graph_->topo_order()) {
    by_root[group_of(id)].push_back(id);
  }
  // Order groups by the topo position of their first member.
  std::vector<std::vector<NodeId>> out;
  out.reserve(by_root.size());
  std::vector<std::pair<size_t, std::vector<NodeId>>> keyed;
  const std::vector<NodeId> order = graph_->topo_order();
  std::vector<size_t> topo_pos(graph_->num_nodes());
  for (size_t i = 0; i < order.size(); ++i) {
    topo_pos[static_cast<size_t>(order[i])] = i;
  }
  for (auto& [root, members] : by_root) {
    size_t first = topo_pos[static_cast<size_t>(members.front())];
    for (const NodeId m : members) {
      first = std::min(first, topo_pos[static_cast<size_t>(m)]);
    }
    keyed.emplace_back(first, std::move(members));
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [pos, members] : keyed) {
    out.push_back(std::move(members));
  }
  return out;
}

bool FusionState::single_use(const std::string& tensor) const {
  const auto& outs = graph_->outputs();
  if (std::find(outs.begin(), outs.end(), tensor) != outs.end()) {
    return false;
  }
  return graph_->consumers(tensor).size() == 1;
}

NodeId FusionState::sole_consumer(NodeId id) const {
  const Node& node = graph_->node(id);
  if (node.outputs.size() != 1 || !single_use(node.outputs[0])) {
    return kInvalidNode;
  }
  return graph_->consumers(node.outputs[0]).front();
}

bool is_fusable_activation(const std::string& op_type) {
  static const std::set<std::string> kActs = {
      "Relu", "LeakyRelu", "Sigmoid", "Tanh", "Clip",      "HardSigmoid",
      "HardSwish", "Silu",  "Gelu",    "Erf",  "Softmax"};
  return kActs.count(op_type) > 0;
}

bool is_view_op(const std::string& op_type) {
  static const std::set<std::string> kViews = {"Reshape", "Flatten", "Squeeze",
                                               "Unsqueeze", "Identity"};
  return kViews.count(op_type) > 0;
}

bool is_pointwise_op(const std::string& op_type) {
  static const std::set<std::string> kPointwise = {
      "Add",  "Sub",   "Mul",  "Div",   "Pow",        "Sqrt", "Min",
      "Max",  "Equal", "Relu", "LeakyRelu", "Sigmoid", "Tanh", "Erf",
      "Exp",  "Log",   "Neg",  "Clip",  "HardSigmoid", "HardSwish",
      "Silu", "Gelu",  "Reciprocal", "Where", "Cast",
      "BatchNormalization", "LayerNormalization", "GroupNormalization",
      "Softmax"};
  return kPointwise.count(op_type) > 0;
}

void fuse_conv_epilogues(FusionState& state, const EpilogueOptions& options) {
  const Graph& g = state.graph();
  static const std::set<std::string> kAnchors = {"Conv", "ConvTranspose", "Gemm",
                                                 "MatMul"};
  for (const NodeId id : g.topo_order()) {
    if (kAnchors.count(g.node(id).op_type) == 0) {
      continue;
    }
    NodeId tail = id;
    // Walk the single-consumer chain, absorbing eligible epilogue nodes.
    while (true) {
      const NodeId next = state.sole_consumer(tail);
      if (next == kInvalidNode || state.same_group(tail, next) ||
          state.group_of(next) != next) {
        break;  // already claimed by another group
      }
      const std::string& type = g.node(next).op_type;
      bool eligible = false;
      if (options.fold_batchnorm && type == "BatchNormalization") {
        eligible = true;
      } else if (options.fuse_activation && is_fusable_activation(type) &&
                 type != "Softmax") {
        eligible = true;
      } else if (type == "Add" || type == "Mul") {
        // Bias / residual add: the other operand must come from outside the
        // chain (params always qualify; activations need the residual flag).
        const Node& add = g.node(next);
        bool other_is_param = false;
        for (const std::string& in : add.inputs) {
          if (g.has_tensor(in) && g.tensor(in).is_param) {
            other_is_param = true;
          }
        }
        eligible = other_is_param || options.fuse_residual_add;
      }
      if (!eligible) {
        break;
      }
      state.merge(id, next);
      tail = next;
    }
  }
}

void fuse_pointwise_chains(FusionState& state, int max_chain) {
  const Graph& g = state.graph();
  for (const NodeId id : g.topo_order()) {
    if (!is_pointwise_op(g.node(id).op_type) || state.group_of(id) != id) {
      continue;
    }
    NodeId tail = id;
    int length = 1;
    while (length < max_chain) {
      const NodeId next = state.sole_consumer(tail);
      if (next == kInvalidNode || state.same_group(tail, next) ||
          state.group_of(next) != next ||
          !is_pointwise_op(g.node(next).op_type)) {
        break;
      }
      state.merge(id, next);
      tail = next;
      ++length;
    }
  }
}

void absorb_view_ops(FusionState& state) {
  const Graph& g = state.graph();
  for (const NodeId id : g.topo_order()) {
    if (!is_view_op(g.node(id).op_type)) {
      continue;
    }
    const NodeId producer = g.producer(g.node(id).inputs.empty()
                                           ? std::string{}
                                           : g.node(id).inputs.front());
    if (producer != kInvalidNode && state.single_use(g.node(id).inputs.front())) {
      state.merge(producer, id);
      continue;
    }
    const NodeId consumer = state.sole_consumer(id);
    if (consumer != kInvalidNode) {
      state.merge(id, consumer);
    }
  }
}

void absorb_qdq_ops(FusionState& state) {
  const Graph& g = state.graph();
  const std::vector<NodeId> order = g.topo_order();
  // Reverse topo order so a DequantizeLinear joins its anchor first and the
  // paired QuantizeLinear then joins the same group transitively.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    const std::string& t = g.node(id).op_type;
    if (t != "QuantizeLinear" && t != "DequantizeLinear") {
      continue;
    }
    const NodeId consumer = state.sole_consumer(id);
    if (consumer != kInvalidNode) {
      state.merge(id, consumer);
      continue;
    }
    const NodeId producer =
        g.node(id).inputs.empty() ? kInvalidNode : g.producer(g.node(id).inputs[0]);
    if (producer != kInvalidNode) {
      state.merge(producer, id);
    }
  }
}

std::vector<NodeId> fuse_attention_regions(FusionState& state, int min_matmuls) {
  const Graph& g = state.graph();
  // Node types Myelin-style optimizers swallow into foreign-node regions:
  // everything except convolutions and pooling.
  const auto eligible = [&](const NodeId id) {
    if (state.group_of(id) != id) {
      return false;  // claimed by an earlier pass (e.g. conv epilogue)
    }
    const std::string& t = g.node(id).op_type;
    if (t == "Conv" || t == "ConvTranspose" || t == "MaxPool" ||
        t == "AveragePool" || t == "GlobalAveragePool" || t == "Resize" ||
        t == "Pad") {
      return false;
    }
    return true;
  };

  std::vector<NodeId> representatives;
  const std::vector<NodeId> order = g.topo_order();
  std::vector<NodeId> segment;
  int matmuls = 0;

  const auto flush = [&]() {
    if (matmuls >= min_matmuls && segment.size() >= 2) {
      for (size_t i = 1; i < segment.size(); ++i) {
        state.merge(segment[0], segment[i]);
      }
      representatives.push_back(segment[0]);
    }
    segment.clear();
    matmuls = 0;
  };

  for (const NodeId id : order) {
    if (!eligible(id)) {
      flush();
      continue;
    }
    const std::string& t = g.node(id).op_type;
    // A LayerNormalization opens a new region segment: regions are bounded
    // at transformer-block granularity so the layer-wise roofline stays
    // informative (TRT similarly emits one profiled entry per sub-kernel).
    if (t == "LayerNormalization" && matmuls >= min_matmuls) {
      flush();
    }
    segment.push_back(id);
    if (t == "MatMul" || t == "Gemm") {
      ++matmuls;
    }
  }
  flush();
  return representatives;
}

}  // namespace proof::backends

#include "backends/fusion.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/error.hpp"

namespace proof::backends {

FusionState::FusionState(const Graph& graph) : graph_(&graph) {
  parent_.resize(graph.num_nodes());
  for (size_t i = 0; i < parent_.size(); ++i) {
    parent_[i] = static_cast<int>(i);
  }
}

int FusionState::find(int x) const {
  while (parent_[static_cast<size_t>(x)] != x) {
    x = parent_[static_cast<size_t>(x)];
  }
  return x;
}

int FusionState::group_of(NodeId id) const {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < parent_.size(), "bad node id " << id);
  return find(id);
}

bool FusionState::same_group(NodeId a, NodeId b) const {
  return group_of(a) == group_of(b);
}

void FusionState::merge(NodeId a, NodeId b) {
  const int ra = group_of(a);
  const int rb = group_of(b);
  if (ra != rb) {
    // Root at the smaller id so group identity follows the earliest member.
    parent_[static_cast<size_t>(std::max(ra, rb))] = std::min(ra, rb);
  }
}

std::vector<std::vector<NodeId>> FusionState::groups() const {
  // Single pass over the cached topo order: the first member of each group
  // encountered is its minimum-topo-position member, so bucketing in
  // first-seen order reproduces the sort-by-min-topo-pos ordering, and
  // members land in topo order within their group.
  std::vector<int> bucket_of(graph_->num_nodes(), -1);
  std::vector<std::vector<NodeId>> out;
  for (const NodeId id : graph_->topo_order()) {
    const int root = group_of(id);
    int& bucket = bucket_of[static_cast<size_t>(root)];
    if (bucket < 0) {
      bucket = static_cast<int>(out.size());
      out.emplace_back();
    }
    out[static_cast<size_t>(bucket)].push_back(id);
  }
  return out;
}

bool FusionState::single_use(TensorId tensor) const {
  if (tensor == kInvalidTensor || graph_->is_graph_output(tensor)) {
    return false;
  }
  return graph_->consumers(tensor).size() == 1;
}

bool FusionState::single_use(std::string_view tensor) const {
  return single_use(graph_->tensor_id(tensor));
}

NodeId FusionState::sole_consumer(NodeId id) const {
  const std::span<const TensorId> outs = graph_->node_output_ids(id);
  if (outs.size() != 1 || !single_use(outs[0])) {
    return kInvalidNode;
  }
  return graph_->consumers(outs[0]).front();
}

bool is_fusable_activation(std::string_view op_type) {
  static const std::unordered_set<std::string_view> kActs = {
      "Relu", "LeakyRelu", "Sigmoid", "Tanh", "Clip",      "HardSigmoid",
      "HardSwish", "Silu",  "Gelu",    "Erf",  "Softmax"};
  return kActs.count(op_type) > 0;
}

bool is_view_op(std::string_view op_type) {
  static const std::unordered_set<std::string_view> kViews = {
      "Reshape", "Flatten", "Squeeze", "Unsqueeze", "Identity"};
  return kViews.count(op_type) > 0;
}

bool is_pointwise_op(std::string_view op_type) {
  static const std::unordered_set<std::string_view> kPointwise = {
      "Add",  "Sub",   "Mul",  "Div",   "Pow",        "Sqrt", "Min",
      "Max",  "Equal", "Relu", "LeakyRelu", "Sigmoid", "Tanh", "Erf",
      "Exp",  "Log",   "Neg",  "Clip",  "HardSigmoid", "HardSwish",
      "Silu", "Gelu",  "Reciprocal", "Where", "Cast",
      "BatchNormalization", "LayerNormalization", "GroupNormalization",
      "Softmax"};
  return kPointwise.count(op_type) > 0;
}

void fuse_conv_epilogues(FusionState& state, const EpilogueOptions& options) {
  const Graph& g = state.graph();
  static const std::unordered_set<std::string_view> kAnchors = {
      "Conv", "ConvTranspose", "Gemm", "MatMul"};
  for (const NodeId id : g.topo_order()) {
    if (kAnchors.count(g.node(id).op_type) == 0) {
      continue;
    }
    NodeId tail = id;
    // Walk the single-consumer chain, absorbing eligible epilogue nodes.
    while (true) {
      const NodeId next = state.sole_consumer(tail);
      if (next == kInvalidNode || state.same_group(tail, next) ||
          state.group_of(next) != next) {
        break;  // already claimed by another group
      }
      const Node& next_node = g.node(next);
      const std::string& type = next_node.op_type;
      bool eligible = false;
      if (options.fold_batchnorm && next_node.is("BatchNormalization")) {
        eligible = true;
      } else if (options.fuse_activation && is_fusable_activation(type) &&
                 !next_node.is("Softmax")) {
        eligible = true;
      } else if (next_node.is("Add") || next_node.is("Mul")) {
        // Bias / residual add: the other operand must come from outside the
        // chain (params always qualify; activations need the residual flag).
        bool other_is_param = false;
        for (const TensorId in : g.node_input_ids(next)) {
          if (g.tensor_is_param(in)) {
            other_is_param = true;
          }
        }
        eligible = other_is_param || options.fuse_residual_add;
      }
      if (!eligible) {
        break;
      }
      state.merge(id, next);
      tail = next;
    }
  }
}

void fuse_pointwise_chains(FusionState& state, int max_chain) {
  const Graph& g = state.graph();
  for (const NodeId id : g.topo_order()) {
    if (!is_pointwise_op(g.node(id).op_type) || state.group_of(id) != id) {
      continue;
    }
    NodeId tail = id;
    int length = 1;
    while (length < max_chain) {
      const NodeId next = state.sole_consumer(tail);
      if (next == kInvalidNode || state.same_group(tail, next) ||
          state.group_of(next) != next ||
          !is_pointwise_op(g.node(next).op_type)) {
        break;
      }
      state.merge(id, next);
      tail = next;
      ++length;
    }
  }
}

void absorb_view_ops(FusionState& state) {
  const Graph& g = state.graph();
  for (const NodeId id : g.topo_order()) {
    if (!is_view_op(g.node(id).op_type)) {
      continue;
    }
    const std::span<const TensorId> ins = g.node_input_ids(id);
    const NodeId producer = ins.empty() ? kInvalidNode : g.producer(ins.front());
    if (producer != kInvalidNode && state.single_use(ins.front())) {
      state.merge(producer, id);
      continue;
    }
    const NodeId consumer = state.sole_consumer(id);
    if (consumer != kInvalidNode) {
      state.merge(id, consumer);
    }
  }
}

void absorb_qdq_ops(FusionState& state) {
  const Graph& g = state.graph();
  const std::vector<NodeId>& order = g.topo_order();
  // Reverse topo order so a DequantizeLinear joins its anchor first and the
  // paired QuantizeLinear then joins the same group transitively.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    const Node& n = g.node(id);
    if (!n.is("QuantizeLinear") && !n.is("DequantizeLinear")) {
      continue;
    }
    const NodeId consumer = state.sole_consumer(id);
    if (consumer != kInvalidNode) {
      state.merge(id, consumer);
      continue;
    }
    const std::span<const TensorId> ins = g.node_input_ids(id);
    const NodeId producer = ins.empty() ? kInvalidNode : g.producer(ins[0]);
    if (producer != kInvalidNode) {
      state.merge(producer, id);
    }
  }
}

std::vector<NodeId> fuse_attention_regions(FusionState& state, int min_matmuls) {
  const Graph& g = state.graph();
  // Node types Myelin-style optimizers swallow into foreign-node regions:
  // everything except convolutions and pooling.
  const auto eligible = [&](const NodeId id) {
    if (state.group_of(id) != id) {
      return false;  // claimed by an earlier pass (e.g. conv epilogue)
    }
    const std::string& t = g.node(id).op_type;
    if (t == "Conv" || t == "ConvTranspose" || t == "MaxPool" ||
        t == "AveragePool" || t == "GlobalAveragePool" || t == "Resize" ||
        t == "Pad") {
      return false;
    }
    return true;
  };

  std::vector<NodeId> representatives;
  const std::vector<NodeId>& order = g.topo_order();
  std::vector<NodeId> segment;
  int matmuls = 0;

  const auto flush = [&]() {
    if (matmuls >= min_matmuls && segment.size() >= 2) {
      for (size_t i = 1; i < segment.size(); ++i) {
        state.merge(segment[0], segment[i]);
      }
      representatives.push_back(segment[0]);
    }
    segment.clear();
    matmuls = 0;
  };

  for (const NodeId id : order) {
    if (!eligible(id)) {
      flush();
      continue;
    }
    const Node& n = g.node(id);
    // A LayerNormalization opens a new region segment: regions are bounded
    // at transformer-block granularity so the layer-wise roofline stays
    // informative (TRT similarly emits one profiled entry per sub-kernel).
    if (n.is("LayerNormalization") && matmuls >= min_matmuls) {
      flush();
    }
    segment.push_back(id);
    if (n.is("MatMul") || n.is("Gemm")) {
      ++matmuls;
    }
  }
  flush();
  return representatives;
}

}  // namespace proof::backends

#include "backends/prepare.hpp"

#include "analysis/shape_inference.hpp"
#include "obs/span.hpp"
#include "support/error.hpp"

namespace proof::backends {

Graph prepare_model(const Graph& model, const BuildConfig& config,
                    const hw::PlatformDesc& platform) {
  PROOF_SPAN("prepare.model");
  PROOF_COUNT("prepare.models", 1);
  if (!platform.supports(config.dtype)) {
    throw ConfigError("platform '" + platform.id + "' does not support dtype " +
                      std::string(dtype_name(config.dtype)));
  }
  for (const Node& node : model.nodes()) {
    if (platform.unsupported_ops.count(node.op_type) > 0) {
      throw ConfigError("platform '" + platform.id + "' cannot lower operator '" +
                        node.op_type + "' (node '" + node.name +
                        "'): model conversion failed");
    }
  }
  Graph g = model;
  set_batch_size(g, config.batch);
  convert_float_dtype(g, config.dtype);
  return g;
}

std::string joined_layer_name(const Graph& graph, const std::vector<NodeId>& members,
                              const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < members.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += graph.node(members[i]).name;
  }
  return out;
}

}  // namespace proof::backends

// trt_sim: TensorRT-like simulated runtime.
//
// Behaviour modelled after the paper's description of TensorRT 8.x:
//  * aggressive fusion: Conv+BN+Add+activation epilogues, pointwise chains;
//  * the Myelin optimizer swallows transformer blocks into opaque
//    "{ForeignNode[...]}" regions whose layer names carry NO mapping
//    information — only the region I/O tensors are observable;
//  * fused non-region layers are named "a + b + c" after their source nodes;
//  * reformat layers appear around graph inputs/outputs at reduced precision.
#include "backends/builtin.hpp"
#include "backends/fusion.hpp"
#include "backends/lowering.hpp"
#include "backends/prepare.hpp"

#include <set>

namespace proof::backends {

namespace {

class TrtSimBackend final : public Backend {
 public:
  [[nodiscard]] std::string id() const override { return "trt_sim"; }
  [[nodiscard]] std::string name() const override { return "TensorRT-sim 8.6.1"; }

  [[nodiscard]] BuildPlan plan(const Graph& g) const override {
    FusionState state(g);
    absorb_qdq_ops(state);  // int8 QDQ models fold into int8 kernels
    EpilogueOptions epilogue;
    epilogue.fold_batchnorm = true;
    epilogue.fuse_activation = true;
    epilogue.fuse_residual_add = true;
    fuse_conv_epilogues(state, epilogue);
    const std::vector<NodeId> region_reps = fuse_attention_regions(state, 2);
    fuse_pointwise_chains(state, 8);
    absorb_view_ops(state);

    std::set<int> region_roots;
    for (const NodeId rep : region_reps) {
      region_roots.insert(state.group_of(rep));
    }

    BuildPlan plan;
    plan.groups = state.groups();
    plan.opaque.reserve(plan.groups.size());
    for (const std::vector<NodeId>& members : plan.groups) {
      plan.opaque.push_back(
          region_roots.count(state.group_of(members.front())) > 0 ? 1 : 0);
    }
    return plan;
  }

  [[nodiscard]] Engine lower(Graph g, const BuildPlan& plan,
                             const BuildConfig& config,
                             const hw::PlatformDesc& platform) const override {
    LoweringOptions lowering;
    lowering.arch = platform.arch;
    lowering.split_regions_at_anchors = true;

    std::vector<BackendLayer> layers;
    // Input reformat layers (NCHW -> NHWC / precision conversion).
    for (const std::string& in : g.inputs()) {
      const TensorDesc& desc = g.tensor(in);
      if (dtype_is_float(desc.dtype) || desc.dtype == DType::kI8) {
        layers.push_back(make_reorder_layer(
            "Reformatting CopyNode for Input Tensor " + in, in, in,
            2.0 * static_cast<double>(desc.size_bytes()), desc.dtype));
      }
    }
    for (size_t gi = 0; gi < plan.groups.size(); ++gi) {
      const std::vector<NodeId>& members = plan.groups[gi];
      const bool opaque = plan.opaque[gi] != 0;
      std::string name;
      if (opaque) {
        name = "{ForeignNode[" + g.node(members.front()).name + "..." +
               g.node(members.back()).name + "]}";
      } else {
        name = joined_layer_name(g, members, " + ");
      }
      BackendLayer layer = lower_group(g, members, std::move(name), opaque, lowering);
      // TensorRT layer names embed the source node names for ordinary fused
      // layers; Myelin regions expose nothing beyond their I/O tensors.
      layer.info = opaque ? "" : layer.name;
      layers.push_back(std::move(layer));
    }
    // TensorRT dispatches independent branches on auxiliary CUDA streams
    // (builder_config.max_aux_streams defaults to the engine's heuristic; 4
    // matches what Nsight timelines show for branchy CNNs on Ampere).
    return Engine(id(), std::move(g), std::move(layers), config,
                  StreamPolicy{4, "cuda stream"});
  }
};

}  // namespace

std::unique_ptr<Backend> make_trt_sim() { return std::make_unique<TrtSimBackend>(); }

}  // namespace proof::backends

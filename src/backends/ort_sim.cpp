// ort_sim: ONNX-Runtime-like simulated runtime (CPU execution provider).
//
// Behaviour modelled after ONNX Runtime 1.1x with oneDNN-style kernels:
//  * conservative fusion: Conv+BN+activation and bias adds only — no
//    residual-add fusion, no pointwise chains, no opaque regions;
//  * unfused layers keep their source node names (exact-name mapping);
//  * fused layers are renamed "fused_op_<n>" and expose NO name metadata —
//    exactly the Figure-2 situation, mapped via I/O subgraph search;
//  * "reorder_<n>" layers convert tensor layouts between plain and blocked
//    formats around convolution stacks, renaming the tensor with an "_r"
//    suffix (Figure 2's t2 -> t2_r).
#include "backends/builtin.hpp"
#include "backends/fusion.hpp"
#include "backends/lowering.hpp"
#include "backends/prepare.hpp"

#include <map>

namespace proof::backends {

namespace {

bool group_is_conv(const Graph& g, const std::vector<NodeId>& members) {
  for (const NodeId id : members) {
    const Node& n = g.node(id);
    if (n.is("Conv") || n.is("ConvTranspose")) {
      return true;
    }
  }
  return false;
}

class OrtSimBackend final : public Backend {
 public:
  [[nodiscard]] std::string id() const override { return "ort_sim"; }
  [[nodiscard]] std::string name() const override { return "ONNXRuntime-sim 1.15"; }

  [[nodiscard]] BuildPlan plan(const Graph& g) const override {
    FusionState state(g);
    absorb_qdq_ops(state);  // int8 QDQ models fold into int8 kernels
    EpilogueOptions epilogue;
    epilogue.fold_batchnorm = true;
    epilogue.fuse_activation = true;
    epilogue.fuse_residual_add = false;
    fuse_conv_epilogues(state, epilogue);

    BuildPlan plan;
    plan.groups = state.groups();
    plan.opaque.assign(plan.groups.size(), 0);
    return plan;
  }

  [[nodiscard]] Engine lower(Graph g, const BuildPlan& plan,
                             const BuildConfig& config,
                             const hw::PlatformDesc& platform) const override {
    LoweringOptions lowering;
    lowering.arch = platform.arch;
    lowering.split_regions_at_anchors = false;

    // First pass: which tensors cross a layout boundary (produced outside any
    // conv group, consumed by one)?  Graph inputs feeding convs also qualify.
    // Flags are indexed by TensorId: no string sets on this path.
    const std::vector<std::vector<NodeId>>& groups = plan.groups;
    const size_t num_ids = g.num_tensor_ids();
    std::vector<uint8_t> produced_by_conv(num_ids, 0);
    for (const std::vector<NodeId>& members : groups) {
      const bool conv = group_is_conv(g, members);
      for (const NodeId id : members) {
        for (const TensorId out : g.node_output_ids(id)) {
          produced_by_conv[static_cast<size_t>(out)] = conv ? 1 : 0;
        }
      }
    }
    std::vector<uint8_t> needs_reorder(num_ids, 0);
    for (const std::vector<NodeId>& members : groups) {
      if (!group_is_conv(g, members)) {
        continue;
      }
      const Graph::BoundaryIds b = g.boundary_ids(members);
      for (const TensorId in : b.inputs) {
        if (!produced_by_conv[static_cast<size_t>(in)]) {
          needs_reorder[static_cast<size_t>(in)] = 1;
        }
      }
    }

    std::vector<BackendLayer> layers;
    std::map<std::string, std::string, std::less<>> renames;
    int reorder_index = 0;
    int fused_index = 0;
    std::vector<uint8_t> reordered(num_ids, 0);

    for (const std::vector<NodeId>& members : groups) {
      const bool conv_group = group_is_conv(g, members);
      // Emit reorder layers for this group's blocked-layout inputs, once per
      // tensor, immediately before the first consumer (Figure 2 ordering).
      if (conv_group) {
        const Graph::BoundaryIds b = g.boundary_ids(members);
        for (const TensorId in : b.inputs) {
          if (!needs_reorder[static_cast<size_t>(in)] ||
              reordered[static_cast<size_t>(in)]) {
            continue;
          }
          reordered[static_cast<size_t>(in)] = 1;
          const TensorDesc& desc = g.tensor(in);
          const std::string in_name(g.tensor_name(in));
          const std::string renamed = in_name + "_r";
          layers.push_back(make_reorder_layer(
              "reorder_" + std::to_string(reorder_index++), in_name, renamed,
              2.0 * static_cast<double>(desc.size_bytes()), desc.dtype));
          renames[in_name] = renamed;
        }
      }

      std::string name;
      std::string info;
      if (members.size() == 1) {
        name = g.node(members.front()).name;
        info = name;  // exact-name mapping is available for unfused layers
      } else {
        name = "fused_op_" + std::to_string(fused_index++);
        info = "";  // fused layers expose only their I/O tensors
      }
      BackendLayer layer = lower_group(g, members, std::move(name), false, lowering);
      layer.info = info;
      for (std::string& t : layer.input_tensors) {
        const auto it = renames.find(t);
        if (it != renames.end()) {
          t = it->second;
        }
      }
      layers.push_back(std::move(layer));
    }
    // ONNX Runtime's parallel executor runs independent nodes on the
    // inter-op thread pool (session_options.inter_op_num_threads = 3 here).
    return Engine(id(), std::move(g), std::move(layers), config,
                  StreamPolicy{3, "inter-op thread"});
  }
};

}  // namespace

std::unique_ptr<Backend> make_ort_sim() { return std::make_unique<OrtSimBackend>(); }

}  // namespace proof::backends

// ort_sim: ONNX-Runtime-like simulated runtime (CPU execution provider).
//
// Behaviour modelled after ONNX Runtime 1.1x with oneDNN-style kernels:
//  * conservative fusion: Conv+BN+activation and bias adds only — no
//    residual-add fusion, no pointwise chains, no opaque regions;
//  * unfused layers keep their source node names (exact-name mapping);
//  * fused layers are renamed "fused_op_<n>" and expose NO name metadata —
//    exactly the Figure-2 situation, mapped via I/O subgraph search;
//  * "reorder_<n>" layers convert tensor layouts between plain and blocked
//    formats around convolution stacks, renaming the tensor with an "_r"
//    suffix (Figure 2's t2 -> t2_r).
#include "backends/builtin.hpp"
#include "backends/fusion.hpp"
#include "backends/lowering.hpp"
#include "backends/prepare.hpp"

#include <map>
#include <set>

namespace proof::backends {

namespace {

bool group_is_conv(const Graph& g, const std::vector<NodeId>& members) {
  for (const NodeId id : members) {
    const std::string& t = g.node(id).op_type;
    if (t == "Conv" || t == "ConvTranspose") {
      return true;
    }
  }
  return false;
}

class OrtSimBackend final : public Backend {
 public:
  [[nodiscard]] std::string id() const override { return "ort_sim"; }
  [[nodiscard]] std::string name() const override { return "ONNXRuntime-sim 1.15"; }

  [[nodiscard]] BuildPlan plan(const Graph& g) const override {
    FusionState state(g);
    absorb_qdq_ops(state);  // int8 QDQ models fold into int8 kernels
    EpilogueOptions epilogue;
    epilogue.fold_batchnorm = true;
    epilogue.fuse_activation = true;
    epilogue.fuse_residual_add = false;
    fuse_conv_epilogues(state, epilogue);

    BuildPlan plan;
    plan.groups = state.groups();
    plan.opaque.assign(plan.groups.size(), 0);
    return plan;
  }

  [[nodiscard]] Engine lower(Graph g, const BuildPlan& plan,
                             const BuildConfig& config,
                             const hw::PlatformDesc& platform) const override {
    LoweringOptions lowering;
    lowering.arch = platform.arch;
    lowering.split_regions_at_anchors = false;

    // First pass: which tensors cross a layout boundary (produced outside any
    // conv group, consumed by one)?  Graph inputs feeding convs also qualify.
    const std::vector<std::vector<NodeId>>& groups = plan.groups;
    std::map<std::string, bool> produced_by_conv;
    for (const std::vector<NodeId>& members : groups) {
      const bool conv = group_is_conv(g, members);
      for (const NodeId id : members) {
        for (const std::string& out : g.node(id).outputs) {
          produced_by_conv[out] = conv;
        }
      }
    }
    std::set<std::string> needs_reorder;
    for (const std::vector<NodeId>& members : groups) {
      if (!group_is_conv(g, members)) {
        continue;
      }
      const Graph::Boundary b = g.boundary(members);
      for (const std::string& in : b.inputs) {
        const auto it = produced_by_conv.find(in);
        const bool from_conv = it != produced_by_conv.end() && it->second;
        if (!from_conv) {
          needs_reorder.insert(in);
        }
      }
    }

    std::vector<BackendLayer> layers;
    std::map<std::string, std::string> renames;
    int reorder_index = 0;
    int fused_index = 0;
    std::set<std::string> reordered;

    for (const std::vector<NodeId>& members : groups) {
      const bool conv_group = group_is_conv(g, members);
      // Emit reorder layers for this group's blocked-layout inputs, once per
      // tensor, immediately before the first consumer (Figure 2 ordering).
      if (conv_group) {
        const Graph::Boundary b = g.boundary(members);
        for (const std::string& in : b.inputs) {
          if (needs_reorder.count(in) == 0 || reordered.count(in) > 0) {
            continue;
          }
          reordered.insert(in);
          const TensorDesc& desc = g.tensor(in);
          const std::string renamed = in + "_r";
          layers.push_back(make_reorder_layer(
              "reorder_" + std::to_string(reorder_index++), in, renamed,
              2.0 * static_cast<double>(desc.size_bytes()), desc.dtype));
          renames[in] = renamed;
        }
      }

      std::string name;
      std::string info;
      if (members.size() == 1) {
        name = g.node(members.front()).name;
        info = name;  // exact-name mapping is available for unfused layers
      } else {
        name = "fused_op_" + std::to_string(fused_index++);
        info = "";  // fused layers expose only their I/O tensors
      }
      BackendLayer layer = lower_group(g, members, std::move(name), false, lowering);
      layer.info = info;
      for (std::string& t : layer.input_tensors) {
        const auto it = renames.find(t);
        if (it != renames.end()) {
          t = it->second;
        }
      }
      layers.push_back(std::move(layer));
    }
    return Engine(id(), std::move(g), std::move(layers), config);
  }
};

}  // namespace

std::unique_ptr<Backend> make_ort_sim() { return std::make_unique<OrtSimBackend>(); }

}  // namespace proof::backends

// Graph-fusion planning shared by the simulated runtimes.
//
// Each simulated backend (trt_sim / ov_sim / ort_sim) composes these passes
// with different aggressiveness, reproducing the optimization behaviours that
// make backend layers diverge from the model design: conv+BN+activation
// folding, GEMM epilogue fusion, pointwise chains, view absorption and
// opaque attention regions (TensorRT Myelin).
#pragma once

#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace proof::backends {

/// Mutable grouping state over a graph's nodes.  Nodes start in singleton
/// groups; passes merge groups.  Merges are only legal when the union stays
/// convex (no dataflow path leaves and re-enters the group), which the
/// chain-based passes guarantee by construction.
class FusionState {
 public:
  explicit FusionState(const Graph& graph);

  [[nodiscard]] const Graph& graph() const { return *graph_; }

  /// Group id a node currently belongs to.
  [[nodiscard]] int group_of(NodeId id) const;

  /// Merges the group of `b` into the group of `a`.
  void merge(NodeId a, NodeId b);

  /// All groups with >= 1 member, ordered by first member in topo order.
  [[nodiscard]] std::vector<std::vector<NodeId>> groups() const;

  /// True when `tensor` has exactly one consumer and is not a graph output.
  [[nodiscard]] bool single_use(TensorId tensor) const;
  [[nodiscard]] bool single_use(std::string_view tensor) const;

  /// The unique consumer of node `id`'s single output, or kInvalidNode when
  /// the node has multiple outputs / consumers or feeds a graph output.
  [[nodiscard]] NodeId sole_consumer(NodeId id) const;

  /// True when the two nodes are already in the same group.
  [[nodiscard]] bool same_group(NodeId a, NodeId b) const;

 private:
  const Graph* graph_;
  std::vector<int> parent_;  // union-find
  [[nodiscard]] int find(int x) const;
  mutable std::vector<int> find_cache_;
};

/// Options controlling the conv/GEMM epilogue passes.
struct EpilogueOptions {
  bool fold_batchnorm = true;        ///< Conv+BN -> Conv (weight folding)
  bool fuse_activation = true;       ///< + Relu/Sigmoid/Silu/HardSwish/...
  bool fuse_residual_add = false;    ///< + Add with a skip connection
};

/// Fuses Conv/ConvTranspose/Gemm/MatMul nodes with their BN / bias-add /
/// activation / residual-add epilogues (single-consumer chains).
void fuse_conv_epilogues(FusionState& state, const EpilogueOptions& options);

/// Fuses maximal single-consumer chains of pointwise ops (elementwise,
/// normalization, softmax) up to `max_chain` nodes.
void fuse_pointwise_chains(FusionState& state, int max_chain);

/// Absorbs pure view ops (Reshape/Flatten/Squeeze/Unsqueeze/Identity) into
/// the producing group when the producer exists, otherwise into the consumer.
void absorb_view_ops(FusionState& state);

/// Folds QuantizeLinear/DequantizeLinear nodes into the group that consumes
/// them — the runtimes execute the wrapped matrix operator as one int8
/// kernel (TensorRT's PTQ folding).  Run before the other passes.
void absorb_qdq_ops(FusionState& state);

/// Finds transformer attention/MLP regions — maximal runs of MatMul-anchored
/// single-consumer chains containing >= `min_matmuls` MatMul/Gemm nodes —
/// and fuses each into one opaque region (the Myelin behaviour).  Returns
/// one representative node per region created.
std::vector<NodeId> fuse_attention_regions(FusionState& state, int min_matmuls);

/// True for activation op types the runtimes fuse as epilogues.
[[nodiscard]] bool is_fusable_activation(std::string_view op_type);

/// True for pure view ops (no data movement).
[[nodiscard]] bool is_view_op(std::string_view op_type);

/// True for pointwise-ish ops eligible for chain fusion.
[[nodiscard]] bool is_pointwise_op(std::string_view op_type);

}  // namespace proof::backends

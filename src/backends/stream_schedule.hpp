// Multi-stream dispatch simulation for built engines.
//
// Derives the backend-layer dependency DAG from the engine's tensor dataflow
// (id-indexed through the analysis graph's interned tensor table, with a
// name-map fallback for backend-renamed tensors such as ort_sim's "_r"
// reorder outputs or ov_sim's "/convert" inputs), then list-schedules the
// layers onto up to N streams: each layer starts as soon as its producers
// have finished and a stream is free, preferring the stream of its
// latest-finishing producer so dependent chains stay sync-free.  Cross-stream
// dependencies become explicit SyncEvents — the cudaStreamWaitEvent edges the
// critical-path engine later reconstructs the DAG from.
//
// With streams == 1 this degenerates to the seed's serial cursor: one lane,
// no syncs, makespan == serial latency sum.
#pragma once

#include <vector>

#include "analysis/critical_path/timeline.hpp"
#include "backends/backend.hpp"

namespace proof::backends {

/// Producer layer indices for every backend layer, deduplicated and sorted.
/// Every dependency precedes its consumer (the sims emit layers in
/// topological order); violations throw ModelError.
[[nodiscard]] std::vector<std::vector<int>> layer_dependencies(
    const Engine& engine);

/// Schedules the engine's layers (with the given simulated per-layer
/// latencies, parallel to Engine::layers()) onto up to `streams` streams.
/// `streams` is clamped to [1, engine.stream_policy().max_streams].
[[nodiscard]] ExecutionTimeline schedule_streams(
    const Engine& engine, const std::vector<double>& layer_latency_s,
    int streams);

}  // namespace proof::backends

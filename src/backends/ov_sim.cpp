// ov_sim: OpenVINO-like simulated runtime.
//
// Behaviour modelled after OpenVINO 2024:
//  * moderate fusion: Conv+BN+activation (+residual add), pointwise chains;
//  * no opaque regions — transformer ops stay as individual fused layers;
//  * executed layers carry `originalLayersNames`-style metadata: the `info`
//    string lists the source node names comma-separated (this is the mapping
//    information PRoof's OpenVINO support consumes);
//  * Convert/Reorder layers appear at graph inputs and outputs, renaming the
//    boundary tensors (exercises the alias machinery).
#include "backends/builtin.hpp"
#include "backends/fusion.hpp"
#include "backends/lowering.hpp"
#include "backends/prepare.hpp"

#include <map>

namespace proof::backends {

namespace {

class OvSimBackend final : public Backend {
 public:
  [[nodiscard]] std::string id() const override { return "ov_sim"; }
  [[nodiscard]] std::string name() const override { return "OpenVINO-sim 2024.0"; }

  [[nodiscard]] BuildPlan plan(const Graph& g) const override {
    FusionState state(g);
    absorb_qdq_ops(state);  // int8 QDQ models fold into int8 kernels
    EpilogueOptions epilogue;
    epilogue.fold_batchnorm = true;
    epilogue.fuse_activation = true;
    epilogue.fuse_residual_add = true;
    fuse_conv_epilogues(state, epilogue);
    fuse_pointwise_chains(state, 6);
    absorb_view_ops(state);

    BuildPlan plan;
    plan.groups = state.groups();
    plan.opaque.assign(plan.groups.size(), 0);
    return plan;
  }

  [[nodiscard]] Engine lower(Graph g, const BuildPlan& plan,
                             const BuildConfig& config,
                             const hw::PlatformDesc& platform) const override {
    LoweringOptions lowering;
    lowering.arch = platform.arch;
    lowering.split_regions_at_anchors = false;

    std::vector<BackendLayer> layers;
    std::map<std::string, std::string, std::less<>> renames;  // model tensor -> backend name

    // Input Convert layers: rename "input" -> "input/convert".
    for (const std::string& in : g.inputs()) {
      const TensorDesc& desc = g.tensor(in);
      const std::string converted = in + "/convert";
      layers.push_back(make_reorder_layer("Convert_" + in, in, converted,
                                          2.0 * static_cast<double>(desc.size_bytes()),
                                          desc.dtype));
      renames[in] = converted;
    }

    int index = 0;
    for (const std::vector<NodeId>& members : plan.groups) {
      const std::string& anchor_type = g.node(members.front()).op_type;
      BackendLayer layer = lower_group(
          g, members, anchor_type + "_" + std::to_string(index++), false, lowering);
      // originalLayersNames metadata: comma-joined source node names.
      layer.info = joined_layer_name(g, members, ",");
      // Consumers of renamed inputs observe the backend tensor names.
      for (std::string& t : layer.input_tensors) {
        const auto it = renames.find(t);
        if (it != renames.end()) {
          t = it->second;
        }
      }
      layers.push_back(std::move(layer));
    }
    // OpenVINO's throughput hint splits the compiled model across two infer
    // streams per socket; branch-level concurrency is bounded accordingly.
    return Engine(id(), std::move(g), std::move(layers), config,
                  StreamPolicy{2, "infer stream"});
  }
};

}  // namespace

std::unique_ptr<Backend> make_ov_sim() { return std::make_unique<OvSimBackend>(); }

}  // namespace proof::backends

#include "backends/stream_schedule.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <string>

#include "obs/span.hpp"
#include "support/error.hpp"

namespace proof::backends {

std::vector<std::vector<int>> layer_dependencies(const Engine& engine) {
  const Graph& graph = engine.analysis_graph();
  const std::vector<BackendLayer>& layers = engine.layers();

  // Producer table indexed by interned TensorId for graph tensors; backend
  // tensors the runtime invented (reorder/convert renames) are not in the
  // graph's pool and fall back to a small string map.
  std::vector<int> producer_of(graph.num_tensor_ids(), -1);
  std::map<std::string, int, std::less<>> renamed_producer;
  const auto record_producer = [&](const std::string& tensor, int layer) {
    const TensorId id = graph.tensor_id(tensor);
    if (id >= 0) {
      producer_of[static_cast<size_t>(id)] = layer;
    } else {
      renamed_producer[tensor] = layer;
    }
  };
  const auto producer = [&](const std::string& tensor) {
    const TensorId id = graph.tensor_id(tensor);
    if (id >= 0) {
      return producer_of[static_cast<size_t>(id)];
    }
    const auto it = renamed_producer.find(tensor);
    return it == renamed_producer.end() ? -1 : it->second;
  };

  std::vector<std::vector<int>> deps(layers.size());
  for (size_t i = 0; i < layers.size(); ++i) {
    std::vector<int>& mine = deps[i];
    for (const std::string& input : layers[i].input_tensors) {
      const int p = producer(input);
      if (p >= 0 && p != static_cast<int>(i)) {
        PROOF_CHECK(p < static_cast<int>(i),
                    "backend layer '" << layers[i].name
                                      << "' consumes a tensor produced by the "
                                         "later layer '"
                                      << layers[static_cast<size_t>(p)].name
                                      << "' — emission order is not topological");
        mine.push_back(p);
      }
    }
    std::sort(mine.begin(), mine.end());
    mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
    for (const std::string& output : layers[i].output_tensors) {
      record_producer(output, static_cast<int>(i));
    }
  }
  return deps;
}

ExecutionTimeline schedule_streams(const Engine& engine,
                                   const std::vector<double>& layer_latency_s,
                                   int streams) {
  PROOF_SPAN("critical_path.schedule");
  const std::vector<BackendLayer>& layers = engine.layers();
  PROOF_CHECK(layer_latency_s.size() == layers.size(),
              "latency vector (" << layer_latency_s.size()
                                 << ") does not match the engine's "
                                 << layers.size() << " layers");
  const StreamPolicy& policy = engine.stream_policy();
  if (streams <= 0) {
    streams = policy.max_streams;  // 0 = "whatever the runtime offers"
  }
  streams = std::clamp(streams, 1, std::max(policy.max_streams, 1));

  ExecutionTimeline timeline;
  timeline.num_streams = streams;
  timeline.lane_name = policy.lane_name;
  timeline.events.reserve(layers.size());

  const std::vector<std::vector<int>> deps = layer_dependencies(engine);
  std::vector<double> stream_avail(static_cast<size_t>(streams), 0.0);
  std::vector<double> finish(layers.size(), 0.0);
  std::vector<int> stream_of(layers.size(), 0);

  for (size_t i = 0; i < layers.size(); ++i) {
    const double dur_ns = layer_latency_s[i] * 1e9;
    // Ready when the latest producer finishes; remember that producer's
    // stream as the affinity candidate (staying there needs no sync).
    double ready = 0.0;
    int affinity = -1;
    for (const int d : deps[i]) {
      if (finish[static_cast<size_t>(d)] > ready) {
        ready = finish[static_cast<size_t>(d)];
        affinity = stream_of[static_cast<size_t>(d)];
      }
    }
    // Earliest-start stream wins; ties prefer the affinity stream, then the
    // lowest index — fully deterministic.
    int best = -1;
    double best_start = std::numeric_limits<double>::infinity();
    for (int s = 0; s < streams; ++s) {
      const double start = std::max(ready, stream_avail[static_cast<size_t>(s)]);
      const bool better =
          start < best_start ||
          (start == best_start && s == affinity && best != affinity);
      if (better) {
        best = s;
        best_start = start;
      }
    }
    TimelineEvent event;
    event.layer = static_cast<int>(i);
    event.stream = best;
    event.start_ns = best_start;
    event.dur_ns = dur_ns;
    event.deps = deps[i];
    for (const int d : deps[i]) {
      if (stream_of[static_cast<size_t>(d)] != best) {
        timeline.syncs.push_back({d, static_cast<int>(i)});
      }
    }
    stream_avail[static_cast<size_t>(best)] = best_start + dur_ns;
    finish[i] = best_start + dur_ns;
    stream_of[i] = best;
    timeline.makespan_ns = std::max(timeline.makespan_ns, finish[i]);
    timeline.events.push_back(std::move(event));
  }
  return timeline;
}

}  // namespace proof::backends

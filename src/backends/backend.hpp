// Backend abstraction (paper §3.3).
//
// A Backend mirrors a production inference runtime: it takes the model graph
// plus a build configuration (precision, batch size), optimizes the graph
// into *backend layers* (fusion, inserted conversion layers, renamed
// tensors), lowers layers to device kernels and exposes a built-in profiler
// reporting per-backend-layer latency — exactly the information surface PRoof
// gets from TensorRT / OpenVINO / ONNX Runtime.
//
// The ground-truth layer->node mapping is stored on each BackendLayer for
// test verification, but the mapping module must only consume the public
// surface: layer names, `info` metadata and I/O tensor names.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/critical_path/timeline.hpp"
#include "graph/graph.hpp"
#include "hw/counters.hpp"
#include "hw/latency_model.hpp"
#include "hw/power.hpp"

namespace proof::backends {

struct BuildConfig {
  DType dtype = DType::kF16;
  int64_t batch = 1;
};

/// One optimized layer in a built engine.
struct BackendLayer {
  std::string name;                        ///< backend naming convention
  std::vector<std::string> input_tensors;  ///< backend tensor names
  std::vector<std::string> output_tensors;
  /// Runtime-specific mapping metadata: ort_sim exposes the original node
  /// name; ov_sim exposes a comma-separated fused-names list (OpenVINO's
  /// originalLayersNames); trt_sim regions expose nothing ("").
  std::string info;
  bool is_reorder = false;   ///< backend-inserted conversion layer
  bool is_opaque = false;    ///< Myelin-style region: no name-based mapping
  OpClass cls = OpClass::kElementwise;
  std::vector<hw::KernelWork> kernels;

  /// Ground truth for tests only — model node names this layer implements.
  std::vector<std::string> truth_nodes;
};

/// Built-in profiler result (per-iteration averages).
struct EngineProfile {
  std::vector<double> layer_latency_s;  ///< parallel to Engine::layers()
  double total_latency_s = 0.0;
  hw::Utilization utilization;          ///< engine busy fractions
};

class Engine {
 public:
  Engine(std::string backend_id, Graph analysis_graph, std::vector<BackendLayer> layers,
         BuildConfig config, StreamPolicy stream_policy = {});

  /// Shares an already-frozen graph instead of owning a fresh copy — the
  /// plan-cache instantiation path hands the same immutable graph to the
  /// engine and the analyze representation.
  Engine(std::string backend_id, std::shared_ptr<const Graph> analysis_graph,
         std::vector<BackendLayer> layers, BuildConfig config,
         StreamPolicy stream_policy = {});

  [[nodiscard]] const std::string& backend_id() const { return backend_id_; }
  [[nodiscard]] const BuildConfig& config() const { return config_; }

  /// The runtime's dispatch concurrency surface (stream count + lane names).
  [[nodiscard]] const StreamPolicy& stream_policy() const {
    return stream_policy_;
  }

  /// The batch/dtype-converted model graph the layers reference (same node
  /// names as the input model).
  [[nodiscard]] const Graph& analysis_graph() const { return *analysis_graph_; }

  /// The same graph as analysis_graph(), shareable without a copy (the graph
  /// is immutable once the engine owns it; lazy lookup indexes are
  /// thread-safe to materialize).
  [[nodiscard]] const std::shared_ptr<const Graph>& shared_analysis_graph() const {
    return analysis_graph_;
  }

  [[nodiscard]] const std::vector<BackendLayer>& layers() const { return layers_; }

  /// Built-in profiler: per-layer latency under a platform clock state, with
  /// deterministic measurement jitter shrinking with iteration count.
  [[nodiscard]] EngineProfile profile(const hw::PlatformState& state,
                                      int iterations = 50) const;

  /// Multi-stream execution timeline: the same simulated latencies as
  /// profile(), dispatched onto up to `streams` streams (0 = the backend's
  /// stream_policy() maximum; clamped to it otherwise) with explicit
  /// cross-stream sync events.  streams == 1 reproduces the seed's serial
  /// cursor exactly.  See backends/stream_schedule.hpp.
  [[nodiscard]] ExecutionTimeline profile_timeline(const hw::PlatformState& state,
                                                   int iterations = 50,
                                                   int streams = 0) const;

  /// All kernels in execution order (for the counter profiler).
  [[nodiscard]] std::vector<hw::KernelWork> all_kernels() const;

 private:
  std::string backend_id_;
  std::shared_ptr<const Graph> analysis_graph_;
  std::vector<BackendLayer> layers_;
  BuildConfig config_;
  StreamPolicy stream_policy_;
};

/// Batch-independent half of a backend build: the fused-group structure the
/// backend's graph passes decide.  Fusion decisions are purely structural
/// (node names, op types, dataflow), so one plan serves every batch size of a
/// (model, backend, platform, dtype) combination — this is what the
/// preparation cache memoizes (see core/prep_cache.hpp).  Node ids refer to
/// the prepared graph, which preserves the source model's node ordering.
struct BuildPlan {
  std::vector<std::vector<NodeId>> groups;  ///< fused groups in layer order
  std::vector<uint8_t> opaque;              ///< parallel: Myelin-style region?
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Short id: "trt_sim" / "ov_sim" / "ort_sim".
  [[nodiscard]] virtual std::string id() const = 0;
  /// Display name mirroring Table 2's runtime column.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Optimizes + lowers `model` for `platform`.  Throws ConfigError when the
  /// dtype is unsupported by the platform.  Equivalent to
  /// `lower(prepare, plan(prepare), ...)`; callers holding a memoized plan
  /// use the two-phase form directly.
  [[nodiscard]] Engine build(const Graph& model, const BuildConfig& config,
                             const hw::PlatformDesc& platform) const;

  /// Phase 1 — graph optimization: runs the backend's fusion passes over a
  /// prepared graph (see prepare_model) and returns the group structure.
  /// Batch-independent: the same plan is valid for every batch size.
  [[nodiscard]] virtual BuildPlan plan(const Graph& prepared) const = 0;

  /// Phase 2 — lowering: turns a prepared graph plus a plan into an Engine
  /// with per-layer kernels.  Kernel work sizes are shape-dependent and are
  /// always computed from `prepared`'s actual tensor shapes.
  [[nodiscard]] virtual Engine lower(Graph prepared, const BuildPlan& plan,
                                     const BuildConfig& config,
                                     const hw::PlatformDesc& platform) const = 0;
};

class BackendRegistry {
 public:
  static BackendRegistry& instance();

  void add(std::unique_ptr<Backend> backend);
  [[nodiscard]] const Backend& get(const std::string& id) const;
  [[nodiscard]] bool contains(const std::string& id) const;
  [[nodiscard]] std::vector<std::string> ids() const;

 private:
  BackendRegistry();
  std::map<std::string, std::unique_ptr<Backend>> backends_;
};

}  // namespace proof::backends

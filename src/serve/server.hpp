// Profiling-as-a-service: the long-running `proof serve` daemon.
//
// A Server owns one listening endpoint (TCP loopback or unix-domain socket)
// and turns each accepted connection into a Session speaking the
// length-prefixed JSON protocol (serve/protocol.hpp).  Request execution
// rides the existing machinery instead of duplicating it:
//
//  * heavy requests (profile / analyze / sweep) are submitted to the global
//    work-stealing ThreadPool — concurrent requests are the parallelism, and
//    nested sweep fan-outs compose with it;
//  * all requests share the process-wide PrepCache and one interned-graph
//    ModelPool, so the expensive artifacts (prepared engines, fusion plans,
//    mappings, warmed graph indices) are paid once per process and amortized
//    across all traffic — the daemon-shaped answer to per-invocation CLI
//    startup cost;
//  * admission control bounds the work in the building: at most
//    `max_inflight` heavy requests are admitted (executing or queued); the
//    excess is rejected immediately with a typed 429-style error instead of
//    queueing unboundedly or hanging;
//  * per-request deadlines cancel cooperatively between sweep points — never
//    mid-build, so a cancelled request can not poison the shared caches;
//  * graceful shutdown (SIGINT/SIGTERM or the `shutdown` method) stops
//    accepting, fails new requests with 503, drains in-flight work up to
//    `drain_timeout_s`, flushes PROOF_METRICS_OUT, and joins every thread.
//
// See DESIGN.md §11 for the architecture and docs/SERVE.md for the wire
// protocol.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/model_pool.hpp"
#include "support/socket.hpp"

namespace proof::serve {

class Session;

struct ServerOptions {
  /// "unix:/path/to.sock" or "host:port" (port 0 = ephemeral, reported by
  /// Server::endpoint() after start()).
  std::string listen = "127.0.0.1:0";
  /// Max heavy requests admitted at once (executing or queued on the pool);
  /// 0 = 2x the global thread pool's parallelism.
  unsigned max_inflight = 0;
  /// Applied when a request carries no deadline_ms of its own; 0 = none.
  double default_deadline_s = 0.0;
  /// How long graceful shutdown waits for in-flight requests.
  double drain_timeout_s = 10.0;
  /// Zoo models to load + warm at startup ("all" = the whole Table-3 zoo).
  std::vector<std::string> preload;
  /// Log connection/request lines to stderr.
  bool verbose = false;
};

/// Native-atomic counters (valid even when the obs layer is compiled out;
/// the per-endpoint latency histograms additionally live in obs).
struct ServerStats {
  uint64_t connections = 0;
  uint64_t requests_total = 0;
  uint64_t requests_ok = 0;
  uint64_t requests_error = 0;
  uint64_t rejected_overloaded = 0;
  uint64_t rejected_shutdown = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t inflight = 0;
  double uptime_s = 0.0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the endpoint, preloads models and spawns the acceptor thread.
  void start();

  /// The bound endpoint (with the real port for ephemeral TCP binds).
  [[nodiscard]] const net::Endpoint& endpoint() const;

  /// Requests a graceful stop; returns immediately.  Safe from any thread
  /// and from the `shutdown` request handler.
  void request_stop();

  /// Blocks until the server has stopped and fully drained (acceptor and
  /// every session joined, metrics flushed).
  void wait();

  /// request_stop() + wait().
  void stop();

  [[nodiscard]] bool running() const;
  [[nodiscard]] bool draining() const;

  [[nodiscard]] ServerStats stats() const;

  /// The JSON document the `stats` endpoint returns: server counters,
  /// per-endpoint latency (from obs), reconciled PrepCache stats, model-pool
  /// occupancy and the full self-profile snapshot.
  [[nodiscard]] std::string stats_json() const;

  [[nodiscard]] ModelPool& models() { return models_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }

  /// Effective admission bound after defaulting (>= 1).
  [[nodiscard]] unsigned max_inflight() const { return max_inflight_; }

  /// Routes SIGINT/SIGTERM to request_stop() of this server (one server per
  /// process may install handlers; the CLI daemon does).
  void install_signal_handlers();

 private:
  friend class Session;

  void acceptor_loop();
  void reap_finished_sessions();
  void drain_and_join();
  void log(const std::string& line) const;

  // Admission ledger for heavy requests.
  [[nodiscard]] bool try_admit();
  void release_admission();

  ServerOptions options_;
  unsigned max_inflight_ = 1;
  net::Listener listener_;
  ModelPool models_;
  std::thread acceptor_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> handle_signals_{false};

  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> requests_ok_{0};
  std::atomic<uint64_t> requests_error_{0};
  std::atomic<uint64_t> rejected_overloaded_{0};
  std::atomic<uint64_t> rejected_shutdown_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  double start_time_s_ = 0.0;

  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;

  std::mutex wait_mu_;  ///< serializes wait()/stop() callers
};

}  // namespace proof::serve

// One accepted connection of the serve daemon.
//
// A Session owns its socket and a dedicated reader thread running run():
// read frame -> parse request -> dispatch -> write response frame(s).  The
// connection handles one request at a time (no pipelining); heavy requests
// are executed as tasks on the global ThreadPool while the session thread
// waits, so streaming progress frames (sweep points as they complete) can be
// written from the executing task without racing the reader.
//
// Error discipline: malformed payloads produce a typed error response and
// the connection stays usable; framing violations (oversized prefix,
// truncated stream) and transport failures end the session.  A session never
// takes the daemon down — every exception is contained here.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "serve/protocol.hpp"
#include "support/socket.hpp"

namespace proof::serve {

class Server;

/// Cooperative per-request deadline.  Handlers call check() at cancellation
/// points (request start, between sweep points); an expired deadline throws
/// DeadlineExceeded, which the session maps to a typed 408 response.
/// Cancellation never happens inside backend preparation, so the shared
/// PrepCache only ever publishes fully built entries.
class Deadline {
 public:
  /// `budget_s <= 0` means no deadline.
  explicit Deadline(double budget_s);

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] bool expired() const;
  void check(const char* stage) const;  ///< throws DeadlineExceeded

 private:
  bool armed_ = false;
  double end_s_ = 0.0;  ///< steady-clock seconds
};

/// Thrown by Deadline::check; carries the stage that observed expiry.
class DeadlineExceeded : public Error {
 public:
  using Error::Error;
};

class Session {
 public:
  Session(Server& server, net::Socket socket, uint64_t id);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Spawns the reader thread.
  void start();

  /// True once run() returned and the thread is joinable without blocking.
  [[nodiscard]] bool finished() const { return finished_.load(); }

  /// Wakes a blocked read so run() can exit (server shutdown).
  void shutdown_socket();

  /// Joins the reader thread (idempotent).
  void join();

  [[nodiscard]] uint64_t id() const { return id_; }

 private:
  void run();
  void handle(const Request& request);

  /// Admission control + pool submission + typed error mapping for
  /// profile/analyze/sweep.  Returns true when a result was sent.
  bool execute_heavy(const Request& request);

  /// Runs inside the pool task; returns the raw result JSON to splice into
  /// the envelope.  Streams sweep progress frames via send_payload.
  [[nodiscard]] std::string execute(const Request& request,
                                    const Deadline& deadline);

  // Method handlers (run inside the pool task).
  [[nodiscard]] std::string do_profile(const Request& request,
                                       const Deadline& deadline,
                                       bool full_report);
  [[nodiscard]] std::string do_sweep(const Request& request,
                                     const Deadline& deadline);
  [[nodiscard]] std::string do_sweep_decode(const Request& request,
                                            const Deadline& deadline);
  [[nodiscard]] std::string do_optimize(const Request& request,
                                        const Deadline& deadline);

  void send_payload(const std::string& payload);

  Server& server_;
  net::Socket socket_;
  uint64_t id_ = 0;
  std::thread thread_;
  std::atomic<bool> finished_{false};
  std::atomic<bool> broken_{false};  ///< transport failed; stop writing
  std::mutex write_mu_;
};

}  // namespace proof::serve

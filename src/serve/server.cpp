#include "serve/server.hpp"

#include <csignal>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <thread>

#include "core/prep_cache.hpp"
#include "obs/self_profile.hpp"
#include "obs/span.hpp"
#include "serve/session.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace proof::serve {

namespace {

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Set by the SIGINT/SIGTERM handler.  A signal handler may only touch
/// lock-free atomics, so the flag is polled by the acceptor loop (which wakes
/// every 100 ms anyway to check for programmatic stops).
std::atomic<bool> g_signal_stop{false};
static_assert(std::atomic<bool>::is_always_lock_free);

extern "C" void handle_stop_signal(int) { g_signal_stop.store(true); }

/// The serve-protocol methods with per-endpoint latency histograms.
constexpr const char* kMethods[] = {"ping",    "stats", "shutdown",
                                    "profile", "analyze", "sweep"};

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  max_inflight_ = options_.max_inflight != 0
                      ? options_.max_inflight
                      : 2 * ThreadPool::global().jobs();
  if (max_inflight_ == 0) {
    max_inflight_ = 1;
  }
}

Server::~Server() {
  if (started_.load() && !stopped_.load()) {
    stop();
  }
}

void Server::start() {
  PROOF_CHECK(!started_.load(), "Server::start called twice");
  start_time_s_ = steady_now_s();
  listener_ = net::Listener::listen(net::Endpoint::parse(options_.listen));
  log("listening on " + listener_.endpoint().describe() +
      " (max_inflight=" + std::to_string(max_inflight_) +
      ", pool jobs=" + std::to_string(ThreadPool::global().jobs()) + ")");
  if (!options_.preload.empty()) {
    const size_t n = models_.preload(options_.preload);
    log("preloaded " + std::to_string(n) + " model(s)");
  }
  started_.store(true);
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

const net::Endpoint& Server::endpoint() const { return listener_.endpoint(); }

void Server::request_stop() {
  draining_.store(true);
  stop_requested_.store(true);
}

bool Server::running() const { return started_.load() && !stopped_.load(); }

bool Server::draining() const { return draining_.load(); }

void Server::install_signal_handlers() {
  handle_signals_.store(true);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
}

void Server::acceptor_loop() {
  while (!stop_requested_.load()) {
    if (handle_signals_.load() && g_signal_stop.load()) {
      log("caught stop signal; draining");
      request_stop();
      break;
    }
    bool ready = false;
    try {
      ready = listener_.poll_accept(100);
    } catch (const net::IoError& e) {
      log(std::string("acceptor: ") + e.what());
      break;
    }
    reap_finished_sessions();
    if (!ready) {
      continue;
    }
    net::Socket socket = listener_.accept();
    if (!socket.valid()) {
      break;  // listener torn down under us
    }
    const uint64_t id = connections_.fetch_add(1) + 1;
    PROOF_COUNT("serve.connections", 1);
    log("connection " + std::to_string(id) + " accepted");
    auto session = std::make_unique<Session>(*this, std::move(socket), id);
    Session* raw = session.get();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(std::move(session));
    }
    raw->start();
  }
}

void Server::reap_finished_sessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->finished()) {
      (*it)->join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::wait() {
  std::lock_guard<std::mutex> lock(wait_mu_);
  if (stopped_.load()) {
    return;
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  drain_and_join();
  stopped_.store(true);
}

void Server::stop() {
  request_stop();
  wait();
}

void Server::drain_and_join() {
  // Phase 1: let in-flight heavy work finish.  New heavy requests have been
  // rejected with 503 since draining_ went true; light requests (stats, ping)
  // still answer, which is deliberate — observability should survive
  // shutdown pressure.
  const double deadline = steady_now_s() + options_.drain_timeout_s;
  while (inflight_.load() != 0 && steady_now_s() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (inflight_.load() != 0) {
    log("drain timeout with " + std::to_string(inflight_.load()) +
        " request(s) still in flight");
  }

  // Phase 2: wake every session thread blocked in read_frame and join.  The
  // shutdown is a half-close, so responses already in flight still reach the
  // peer before the socket dies.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) {
      session->shutdown_socket();
    }
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) {
      session->join();
    }
    sessions_.clear();
  }
  listener_.close();

  // Final flush: a daemon killed by SIGTERM must still leave its metrics
  // record behind (the atexit hook also fires, but flushing here makes the
  // file complete the moment wait() returns).
  if (const char* path = std::getenv("PROOF_METRICS_OUT")) {
    obs::dump_self_profile(path);
  }
  log("stopped (uptime " +
      std::to_string(steady_now_s() - start_time_s_) + "s, " +
      std::to_string(requests_total_.load()) + " request(s))");
}

bool Server::try_admit() {
  uint64_t current = inflight_.load();
  while (true) {
    if (current >= max_inflight_) {
      return false;
    }
    if (inflight_.compare_exchange_weak(current, current + 1)) {
      return true;
    }
  }
}

void Server::release_admission() { inflight_.fetch_sub(1); }

ServerStats Server::stats() const {
  ServerStats s;
  s.connections = connections_.load();
  s.requests_total = requests_total_.load();
  s.requests_ok = requests_ok_.load();
  s.requests_error = requests_error_.load();
  s.rejected_overloaded = rejected_overloaded_.load();
  s.rejected_shutdown = rejected_shutdown_.load();
  s.deadline_exceeded = deadline_exceeded_.load();
  s.inflight = inflight_.load();
  s.uptime_s = started_.load() ? steady_now_s() - start_time_s_ : 0.0;
  return s;
}

std::string Server::stats_json() const {
  const ServerStats s = stats();
  std::ostringstream out;
  out.precision(12);
  out << "{\"server\":{"
      << "\"uptime_s\":" << s.uptime_s
      << ",\"connections\":" << s.connections
      << ",\"requests_total\":" << s.requests_total
      << ",\"requests_ok\":" << s.requests_ok
      << ",\"requests_error\":" << s.requests_error
      << ",\"rejected_overloaded\":" << s.rejected_overloaded
      << ",\"rejected_shutdown\":" << s.rejected_shutdown
      << ",\"deadline_exceeded\":" << s.deadline_exceeded
      << ",\"inflight\":" << s.inflight
      << ",\"max_inflight\":" << max_inflight_
      << ",\"draining\":" << (draining_.load() ? "true" : "false")
      << ",\"pool_jobs\":" << ThreadPool::global().jobs() << "}";

  // Per-endpoint latency distributions (empty when the obs layer is compiled
  // out or disabled at runtime — the native counters above always work).
  out << ",\"endpoints\":{";
#ifndef PROOF_OBS_DISABLED
  if (obs::enabled()) {
    bool first = true;
    for (const char* method : kMethods) {
      const obs::HistogramSnapshot h = obs::MetricsRegistry::instance()
                                           .histogram(std::string("serve.latency.") + method)
                                           .snapshot();
      if (h.count == 0) {
        continue;
      }
      if (!first) {
        out << ",";
      }
      first = false;
      out << json::quote(method) << ":{"
          << "\"count\":" << h.count
          << ",\"mean_s\":" << h.mean_s()
          << ",\"p50_s\":" << h.quantile_s(0.50)
          << ",\"p99_s\":" << h.quantile_s(0.99)
          << ",\"max_s\":" << static_cast<double>(h.max_ns) / 1e9 << "}";
    }
  }
#endif
  out << "}";

  // Shared-cache effectiveness: the reconciled ledger (lookups always equals
  // hits + misses; see docs/METRICS.md).
  const PrepCacheStats c = PrepCache::instance().stats();
  out << ",\"prep_cache\":{"
      << "\"enabled\":" << (PrepCache::instance().enabled() ? "true" : "false")
      << ",\"entries\":" << PrepCache::instance().size()
      << ",\"capacity\":" << PrepCache::instance().capacity()
      << ",\"engine_lookups\":" << (c.engine_hits + c.engine_misses)
      << ",\"engine_hits\":" << c.engine_hits
      << ",\"engine_misses\":" << c.engine_misses
      << ",\"engine_hit_rate\":" << c.engine_hit_rate()
      << ",\"plan_lookups\":" << (c.plan_hits + c.plan_misses)
      << ",\"plan_hits\":" << c.plan_hits
      << ",\"plan_misses\":" << c.plan_misses
      << ",\"plan_hit_rate\":" << c.plan_hit_rate()
      << ",\"evictions\":" << c.evictions << "}";

  // Shape-polymorphic AnalysisPlan level (structural-fingerprint keyed);
  // entries are shared by every batch size / decode position of a model, so
  // hits here are whole prepare pipelines replaced by cheap instantiations.
  out << ",\"plan_cache\":{"
      << "\"enabled\":"
      << (PrepCache::instance().plan_cache_enabled() ? "true" : "false")
      << ",\"entries\":" << PrepCache::instance().plan_cache_size()
      << ",\"capacity\":" << PrepCache::instance().plan_cache_capacity()
      << ",\"hits\":" << c.plan_cache_hits
      << ",\"misses\":" << c.plan_cache_misses
      << ",\"evictions\":" << c.plan_cache_evictions
      << ",\"collisions\":" << c.plan_cache_collisions
      << ",\"build_ns\":" << c.plan_cache_build_ns << "}";

  out << ",\"model_pool\":{\"models\":" << models_.size() << "}";

  // The full observability snapshot (already a JSON object; spliced raw).
  out << ",\"self_profile\":" << obs::self_profile_json();
  out << "}";
  return out.str();
}

void Server::log(const std::string& line) const {
  if (options_.verbose) {
    std::cerr << "[proof serve] " << line << "\n";
  }
}

}  // namespace proof::serve

#include "serve/session.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <sstream>
#include <thread>

#include "core/decode_sweep.hpp"
#include "core/profiler.hpp"
#include "core/report_json.hpp"
#include "core/sweep.hpp"
#include "hw/platform.hpp"
#include "opt/optimizer.hpp"
#include "obs/span.hpp"
#include "serve/server.hpp"
#include "support/thread_pool.hpp"
#include "tensor/dtype.hpp"

namespace proof::serve {

namespace {

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Known methods only — dynamic metric names must not let a misbehaving
/// client grow the registry unboundedly.
bool known_method(const std::string& method) {
  return method == "ping" || method == "stats" || method == "shutdown" ||
         method == "profile" || method == "analyze" || method == "sweep" ||
         method == "sweep_decode" || method == "optimize";
}

void count_metric(const std::string& name, uint64_t n = 1) {
#ifndef PROOF_OBS_DISABLED
  if (obs::enabled()) {
    obs::MetricsRegistry::instance().counter(name).add(n);
  }
#else
  (void)name;
  (void)n;
#endif
}

void observe_latency(const std::string& method, uint64_t ns) {
#ifndef PROOF_OBS_DISABLED
  if (obs::enabled() && known_method(method)) {
    obs::MetricsRegistry::instance()
        .histogram("serve.latency." + method)
        .observe_ns(ns);
  }
#else
  (void)method;
  (void)ns;
#endif
}

void set_inflight_gauge(uint64_t value) {
  PROOF_GAUGE_SET("serve.inflight", static_cast<double>(value));
}

/// Test/bench aid: `"debug_sleep_ms": N` stretches a request (per sweep
/// point) so admission-control and deadline behaviour can be exercised
/// deterministically with fast models.  Documented in docs/SERVE.md.
void debug_sleep(const json::Value& params) {
  const int64_t ms = params.get_int("debug_sleep_ms", 0);
  if (ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

std::string require_string(const json::Value& params, const char* key) {
  const json::Value* v = params.find(key);
  if (v == nullptr || !v->is_string() || v->string_value.empty()) {
    throw ConfigError(std::string("request params need a non-empty string \"") +
                      key + "\"");
  }
  return v->string_value;
}

/// Mirrors the CLI's options_from(): platform-defaulted dtype, predicted
/// metric mode unless requested otherwise.
ProfileOptions options_from_params(const json::Value& p) {
  ProfileOptions opt;
  opt.platform_id = require_string(p, "platform");
  const hw::PlatformDesc& desc =
      hw::PlatformRegistry::instance().get(opt.platform_id);
  const std::string dtype = p.get_string("dtype");
  if (!dtype.empty()) {
    opt.dtype = dtype_from_name(dtype);
  } else {
    opt.dtype = desc.supports(DType::kF16) ? DType::kF16 : DType::kF32;
  }
  opt.backend_id = p.get_string("backend");
  opt.batch = p.get_int("batch", 1);
  PROOF_CHECK(opt.batch > 0, "batch must be positive, got " << opt.batch);
  // The service default is the analytical path ("negligible cost", §4.2);
  // counter replay is opt-in per request.
  const std::string mode = p.get_string("mode", "predicted");
  if (mode == "predicted") {
    opt.mode = MetricMode::kPredicted;
  } else if (mode == "measured") {
    opt.mode = MetricMode::kMeasured;
  } else if (mode == "auto") {
    opt.mode = MetricMode::kAuto;
  } else {
    throw ConfigError("unknown mode '" + mode +
                      "' (expected predicted | measured | auto)");
  }
  if (const json::Value* gpu = p.find("gpu_mhz")) {
    opt.clocks.gpu_mhz = gpu->as_double();
  }
  if (const json::Value* mem = p.find("mem_mhz")) {
    opt.clocks.mem_mhz = mem->as_double();
  }
  if (const json::Value* iters = p.find("iterations")) {
    opt.iterations = static_cast<int>(iters->as_int(50));
    PROOF_CHECK(opt.iterations > 0, "iterations must be positive");
  }
  return opt;
}

}  // namespace

// --- Deadline ----------------------------------------------------------------

Deadline::Deadline(double budget_s) {
  if (budget_s > 0.0) {
    armed_ = true;
    end_s_ = steady_now_s() + budget_s;
  }
}

bool Deadline::expired() const { return armed_ && steady_now_s() > end_s_; }

void Deadline::check(const char* stage) const {
  if (expired()) {
    throw DeadlineExceeded(std::string("deadline exceeded at ") + stage);
  }
}

// --- Session lifecycle -------------------------------------------------------

Session::Session(Server& server, net::Socket socket, uint64_t id)
    : server_(server), socket_(std::move(socket)), id_(id) {}

Session::~Session() { join(); }

void Session::start() {
  thread_ = std::thread([this] { run(); });
}

void Session::shutdown_socket() { socket_.shutdown_both(); }

void Session::join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

void Session::run() {
  try {
    while (true) {
      const std::optional<std::string> payload = read_frame(socket_);
      if (!payload.has_value()) {
        break;  // client closed cleanly between frames
      }
      Request request;
      try {
        request = parse_request(*payload);
      } catch (const ProtocolError& e) {
        // The frame itself was well-formed, so the stream is still in sync:
        // answer with a typed error and keep serving this connection.
        send_payload(make_error(0, ErrorCode::kBadRequest, e.what()));
        server_.requests_error_.fetch_add(1);
        count_metric("serve.responses.error");
        continue;
      }
      handle(request);
      if (broken_.load()) {
        break;  // responses are not reaching the client; stop reading
      }
    }
  } catch (const ProtocolError& e) {
    // Framing violation (oversized prefix, truncated frame): the byte stream
    // can not be re-synchronized — drop the connection.
    server_.log("session " + std::to_string(id_) + ": " + e.what());
  } catch (const net::IoError& e) {
    server_.log("session " + std::to_string(id_) + ": " + e.what());
  } catch (const std::exception& e) {
    server_.log("session " + std::to_string(id_) +
                ": unexpected error: " + e.what());
  }
  finished_.store(true);
}

void Session::send_payload(const std::string& payload) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (broken_.load()) {
    return;
  }
  try {
    write_frame(socket_, payload);
  } catch (const Error&) {
    // Peer went away mid-response (includes EPIPE).  Swallow: the request
    // keeps executing to completion so the shared caches stay warm, but no
    // further bytes are written on this connection.
    broken_.store(true);
  }
}

// --- dispatch ----------------------------------------------------------------

void Session::handle(const Request& request) {
  const auto t0 = std::chrono::steady_clock::now();
  server_.requests_total_.fetch_add(1);
  count_metric("serve.requests");
  if (known_method(request.method)) {
    count_metric("serve.requests." + request.method);
  }

  bool ok = false;
  if (request.method == "ping") {
    send_payload(make_result(request.id,
                             "{\"ok\":true,\"version\":" +
                                 std::to_string(kProtocolVersion) + "}"));
    ok = true;
  } else if (request.method == "stats") {
    send_payload(make_result(request.id, server_.stats_json()));
    ok = true;
  } else if (request.method == "shutdown") {
    send_payload(make_result(request.id, "{\"ok\":true,\"draining\":true}"));
    ok = true;
    server_.log("session " + std::to_string(id_) + ": shutdown requested");
    server_.request_stop();
  } else if (request.method == "profile" || request.method == "analyze" ||
             request.method == "sweep" || request.method == "sweep_decode" ||
             request.method == "optimize") {
    ok = execute_heavy(request);
  } else {
    send_payload(make_error(request.id, ErrorCode::kNotFound,
                            "unknown method '" + request.method + "'"));
  }

  if (ok) {
    server_.requests_ok_.fetch_add(1);
    count_metric("serve.responses.ok");
  } else {
    server_.requests_error_.fetch_add(1);
    count_metric("serve.responses.error");
  }
  const uint64_t ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  observe_latency(request.method, ns);
}

bool Session::execute_heavy(const Request& request) {
  if (server_.draining()) {
    server_.rejected_shutdown_.fetch_add(1);
    count_metric("serve.rejected.shutdown");
    send_payload(make_error(request.id, ErrorCode::kShuttingDown,
                            "server is draining; request not admitted"));
    return false;
  }
  if (!server_.try_admit()) {
    server_.rejected_overloaded_.fetch_add(1);
    count_metric("serve.rejected.overloaded");
    send_payload(make_error(
        request.id, ErrorCode::kOverloaded,
        "admission control: " + std::to_string(server_.max_inflight()) +
            " requests already in flight (max_inflight); retry later"));
    return false;
  }
  set_inflight_gauge(server_.inflight_.load());

  // Deadline budget: the request's own deadline_ms beats the server default.
  const double deadline_ms =
      request.p().get_double("deadline_ms",
                             server_.options().default_deadline_s * 1e3);
  const Deadline deadline(deadline_ms / 1e3);

  bool ok = false;
  try {
    // Execution rides the shared work-stealing pool; this reader thread is
    // not a pool participant, so a plain future wait cannot deadlock.
    std::future<std::string> future = ThreadPool::global().submit([&] {
      return execute(request, deadline);
    });
    const std::string result = future.get();
    server_.release_admission();
    set_inflight_gauge(server_.inflight_.load());
    send_payload(make_result(request.id, result));
    return true;
  } catch (const DeadlineExceeded& e) {
    server_.deadline_exceeded_.fetch_add(1);
    count_metric("serve.deadline_exceeded");
    send_payload(make_error(request.id, ErrorCode::kDeadlineExceeded, e.what()));
  } catch (const ConfigError& e) {
    send_payload(make_error(request.id, ErrorCode::kBadRequest, e.what()));
  } catch (const ModelError& e) {
    send_payload(make_error(request.id, ErrorCode::kBadRequest, e.what()));
  } catch (const Error& e) {
    send_payload(make_error(request.id, ErrorCode::kInternal, e.what()));
  } catch (const std::exception& e) {
    send_payload(make_error(request.id, ErrorCode::kInternal, e.what()));
  }
  server_.release_admission();
  set_inflight_gauge(server_.inflight_.load());
  return ok;
}

std::string Session::execute(const Request& request, const Deadline& deadline) {
  deadline.check("request start");
  if (request.method == "sweep") {
    return do_sweep(request, deadline);
  }
  if (request.method == "sweep_decode") {
    return do_sweep_decode(request, deadline);
  }
  if (request.method == "optimize") {
    return do_optimize(request, deadline);
  }
  return do_profile(request, deadline, request.method == "analyze");
}

// --- handlers ----------------------------------------------------------------

std::string Session::do_profile(const Request& request,
                                const Deadline& deadline, bool full_report) {
  const json::Value& p = request.p();
  const std::string model_id = require_string(p, "model");
  const ProfileOptions opt = options_from_params(p);
  debug_sleep(p);
  deadline.check("before profiling");

  const std::shared_ptr<const Graph> model = server_.models().get(model_id);
  const ProfileReport report = Profiler(opt).run(*model);

  if (full_report) {
    // Byte-identical to the single-shot CLI report serialization (the
    // self-profile section stays out: it is wall-clock-dependent and would
    // break the determinism contract the goldens freeze).
    return report_to_json(report);
  }
  std::ostringstream out;
  out.precision(12);
  out << "{\"model\":" << json::quote(report.model_name)
      << ",\"platform\":" << json::quote(report.platform_name)
      << ",\"backend\":" << json::quote(report.backend_name)
      << ",\"batch\":" << report.options.batch
      << ",\"dtype\":" << json::quote(dtype_name(report.options.dtype))
      << ",\"total_latency_s\":" << report.total_latency_s
      << ",\"throughput_per_s\":" << report.throughput_per_s()
      << ",\"power_w\":" << report.power_w
      << ",\"mapping_coverage\":" << report.mapping_coverage
      << ",\"layers\":" << report.layers.size()
      << ",\"analysis_time_s\":" << report.analysis_time_s << "}";
  return out.str();
}

std::string Session::do_sweep(const Request& request, const Deadline& deadline) {
  const json::Value& p = request.p();
  const std::string model_id = require_string(p, "model");
  const ProfileOptions base = options_from_params(p);
  const double knee_tolerance = p.get_double("knee_tolerance", 0.05);
  PROOF_CHECK(knee_tolerance >= 0.0 && knee_tolerance < 1.0,
              "knee_tolerance must be in [0, 1)");

  // Candidate validation mirrors sweep_batches: positive batches, first
  // occurrence wins, default = powers of two up to 2048.
  std::vector<int64_t> candidates;
  if (const json::Value* list = p.find("batches")) {
    PROOF_CHECK(list->is_array(), "\"batches\" must be an array of integers");
    std::vector<int64_t> requested;
    for (const json::Value& v : list->array) {
      requested.push_back(v.as_int());
    }
    for (const int64_t b : requested) {
      if (b > 0 && std::find(candidates.begin(), candidates.end(), b) ==
                       candidates.end()) {
        candidates.push_back(b);
      }
    }
    PROOF_CHECK(!candidates.empty(),
                "sweep needs at least one positive batch candidate");
  } else {
    for (int64_t b = 1; b <= 2048; b *= 2) {
      candidates.push_back(b);
    }
  }

  const std::shared_ptr<const Graph> model = server_.models().get(model_id);

  // Points run one at a time with a cancellation check between them — the
  // cooperative deadline contract.  Each completed point is streamed to the
  // client immediately as a progress frame.
  std::vector<BatchPoint> points;
  points.reserve(candidates.size());
  std::ostringstream points_json;
  points_json.precision(12);
  points_json << "[";
  for (size_t i = 0; i < candidates.size(); ++i) {
    deadline.check("sweep point");
    debug_sleep(p);
    ProfileOptions opt = base;
    opt.batch = candidates[i];
    const ProfileReport r = Profiler(opt).run(*model);
    BatchPoint point;
    point.batch = candidates[i];
    point.latency_s = r.total_latency_s;
    point.throughput_per_s = r.throughput_per_s();
    point.attained_flops = r.roofline.end_to_end.attained_flops();
    points.push_back(point);

    std::ostringstream pj;
    pj.precision(12);
    pj << "{\"batch\":" << point.batch
       << ",\"latency_s\":" << point.latency_s
       << ",\"throughput_per_s\":" << point.throughput_per_s
       << ",\"attained_flops\":" << point.attained_flops << "}";
    send_payload(make_progress(request.id, pj.str()));
    if (i > 0) {
      points_json << ",";
    }
    points_json << pj.str();
  }
  points_json << "]";

  const int64_t optimal = select_optimal_batch(points, knee_tolerance);
  std::ostringstream out;
  out << "{\"model\":" << json::quote(model_id)
      << ",\"points\":" << points_json.str()
      << ",\"optimal_batch\":" << optimal
      << ",\"completed\":" << points.size() << "}";
  return out.str();
}

std::string Session::do_sweep_decode(const Request& request,
                                     const Deadline& deadline) {
  const json::Value& p = request.p();
  DecodeSweepOptions options;
  options.config_id = p.get_string("model", "gpt2");
  options.platform_id = p.get_string("platform");
  options.backend_id = p.get_string("backend");
  const std::string dtype = p.get_string("dtype");
  if (!dtype.empty()) {
    options.dtype = dtype_from_name(dtype);
  }
  options.prefill_len = p.get_int("prefill_len", options.prefill_len);
  PROOF_CHECK(options.prefill_len > 0, "prefill_len must be positive, got "
                                           << options.prefill_len);
  const auto int_array = [&p](const char* key, std::vector<int64_t>& out) {
    const json::Value* list = p.find(key);
    if (list == nullptr) {
      return;
    }
    PROOF_CHECK(list->is_array(),
                "\"" << key << "\" must be an array of integers");
    out.clear();
    for (const json::Value& v : list->array) {
      out.push_back(v.as_int());
    }
  };
  int_array("batches", options.batches);
  int_array("positions", options.positions);
  debug_sleep(p);
  deadline.check("before decode sweep");

  // Empty or "all" platform: the cross-platform decode-bound-ness summary.
  // sweep_decode validates grids/config and the per-platform runs ride the
  // shared ThreadPool + PrepCache like every other heavy request.
  if (options.platform_id.empty() || options.platform_id == "all") {
    options.platform_id.clear();
    return decode_platforms_json(sweep_decode_platforms(options));
  }
  return decode_sweep_json(sweep_decode(options));
}

std::string Session::do_optimize(const Request& request,
                                 const Deadline& deadline) {
  const json::Value& p = request.p();
  const std::string model_id = require_string(p, "model");

  opt::OptimizeOptions options;
  options.base = options_from_params(p);
  const std::string objective = p.get_string("objective");
  if (!objective.empty()) {
    options.objective = opt::objective_from_name(objective);
  }
  options.power_budget_w = p.get_double("power_budget_w", 0.0);
  PROOF_CHECK(options.power_budget_w >= 0.0,
              "power_budget_w must be non-negative");
  options.noise_threshold = p.get_double("noise_threshold", 0.02);
  PROOF_CHECK(
      options.noise_threshold >= 0.0 && options.noise_threshold < 1.0,
      "noise_threshold must be in [0, 1)");
  options.max_rounds = static_cast<int>(p.get_int("max_rounds", 4));
  PROOF_CHECK(options.max_rounds >= 0, "max_rounds must be non-negative");
  const std::string axes = p.get_string("axes");
  if (!axes.empty()) {
    options.axes = opt::axes_from_string(axes);
  }
  // Cooperative cancellation between rounds — a round profiles its variants
  // to completion (like a sweep point) before the deadline is re-checked.
  options.round_hook = [&deadline, &p](int) {
    deadline.check("optimize round");
    debug_sleep(p);
  };
  debug_sleep(p);
  deadline.check("before optimizing");

  // Validates the model id against the shared pool (typed 400 on a bad id)
  // and reuses its cached graph for the baseline-equivalent warm-up path.
  (void)server_.models().get(model_id);
  const opt::OptimizeResult result = opt::optimize(model_id, options);
  return report_to_json(result.final_report, false,
                        opt::optimization_section_json(result.log));
}

}  // namespace proof::serve

// Wire protocol of the profiling daemon (`proof serve`): length-prefixed
// JSON frames over a stream socket.
//
// Frame layout (everything big-endian):
//
//     +-------------------+----------------------------+
//     | uint32 length N   | N bytes of UTF-8 JSON      |
//     +-------------------+----------------------------+
//
// N counts payload bytes only and must be <= kMaxFrameBytes; a larger prefix
// is a protocol violation and tears the connection down (it is far more
// likely line noise than a 4 GiB request).  Requests and responses are
// single JSON objects:
//
//   request:   {"id":7,"method":"analyze","params":{"model":"resnet50",...}}
//   result:    {"id":7,"type":"result","result":{...}}
//   progress:  {"id":7,"type":"progress","progress":{...}}   (0..n per request)
//   error:     {"id":7,"type":"error",
//               "error":{"code":429,"kind":"overloaded","message":"..."}}
//
// One request is in flight per connection at a time (no pipelining); a
// request yields zero or more progress frames followed by exactly one result
// or error frame.  Error codes borrow HTTP semantics so operators recognise
// them: 400 bad request, 404 unknown method/model, 408 deadline exceeded,
// 429 admission-control rejection, 500 internal, 503 shutting down.
//
// See docs/SERVE.md for worked wire examples and DESIGN.md §11 for how the
// server executes these requests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/socket.hpp"

namespace proof::serve {

/// Protocol-level violation (oversized frame, truncated stream, payload that
/// is not a JSON object, ...).  Distinct from net::IoError: an IoError means
/// the transport died, a ProtocolError means the peer is speaking garbage.
class ProtocolError : public Error {
 public:
  using Error::Error;
};

constexpr uint32_t kProtocolVersion = 1;

/// Hard payload bound; chosen to fit any report JSON the framework can emit
/// with two orders of magnitude of slack.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

// --- framing -----------------------------------------------------------------

/// 4-byte big-endian length prefix + payload; throws ProtocolError when the
/// payload exceeds kMaxFrameBytes.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame decoder for byte streams that arrive in arbitrary
/// chunks.  feed() appends bytes; next() pops the earliest complete payload
/// or nullopt when more bytes are needed.  An oversized length prefix throws
/// ProtocolError from next() (the stream is unrecoverable after that).
class FrameDecoder {
 public:
  void feed(std::string_view bytes) { buffer_.append(bytes); }
  [[nodiscard]] std::optional<std::string> next();

  /// Bytes buffered but not yet consumed (tests assert no leftovers).
  [[nodiscard]] size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Blocking frame read; nullopt on clean EOF between frames, ProtocolError on
/// truncation inside a frame or an oversized prefix, net::IoError when the
/// transport fails.
[[nodiscard]] std::optional<std::string> read_frame(net::Socket& socket);

/// Blocking frame write.
void write_frame(net::Socket& socket, std::string_view payload);

// --- requests ----------------------------------------------------------------

/// A parsed request envelope.  `params` points into `document`; keep the
/// Request alive while using it.
struct Request {
  int64_t id = 0;
  std::string method;
  json::Value document;   ///< the whole request object
  const json::Value* params = nullptr;  ///< never null after parse_request

  [[nodiscard]] const json::Value& p() const { return *params; }
};

/// Parses and validates a request payload; throws ProtocolError with a
/// client-presentable message on malformed JSON, a non-object payload, or a
/// missing/empty "method".
[[nodiscard]] Request parse_request(const std::string& payload);

// --- responses ---------------------------------------------------------------

enum class ErrorCode : int {
  kBadRequest = 400,
  kNotFound = 404,
  kDeadlineExceeded = 408,
  kOverloaded = 429,
  kInternal = 500,
  kShuttingDown = 503,
};

/// Stable machine-readable names ("bad_request", "overloaded", ...).
[[nodiscard]] std::string_view error_kind(ErrorCode code);

/// `result_raw` / `progress_raw` are spliced into the envelope verbatim and
/// must already be valid JSON — this is what keeps an `analyze` report
/// byte-identical to its single-shot CLI serialization.
[[nodiscard]] std::string make_result(int64_t id, std::string_view result_raw);
[[nodiscard]] std::string make_progress(int64_t id, std::string_view progress_raw);
[[nodiscard]] std::string make_error(int64_t id, ErrorCode code,
                                     std::string_view message);

/// Client-side view of one response frame.
struct Response {
  int64_t id = 0;
  std::string type;       ///< "result" | "progress" | "error"
  std::string payload;    ///< raw JSON of result/progress, or "" for errors
  int error_code = 0;     ///< set for type == "error"
  std::string error_kind;
  std::string error_message;

  [[nodiscard]] bool is_result() const { return type == "result"; }
  [[nodiscard]] bool is_progress() const { return type == "progress"; }
  [[nodiscard]] bool is_error() const { return type == "error"; }
};

/// Parses a response payload (client side); throws ProtocolError on frames
/// that do not match the envelope shape.
[[nodiscard]] Response parse_response(const std::string& payload);

}  // namespace proof::serve

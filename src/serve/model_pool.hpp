// Process-wide interned-graph pool for the serve daemon.
//
// Every request naming a zoo model shares one immutable Graph instance:
// built once on first use (concurrent first users wait on the winner, the
// PrepCache in-flight pattern), then `warm_indices()` is called eagerly so
// the interned string table, CSR adjacency and cached topo order exist
// before the graph is ever read from two threads at once — all later access
// is pure const reads.  Combined with the shared PrepCache this is what
// turns a daemon request into "hash the graph, hit the cache, simulate":
// the zoo build + index construction cost is paid once per process, not per
// request.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace proof::serve {

class ModelPool {
 public:
  ModelPool();
  ModelPool(const ModelPool&) = delete;
  ModelPool& operator=(const ModelPool&) = delete;
  ~ModelPool();

  /// The shared graph for a zoo model id; builds + warms it exactly once per
  /// pool even under concurrent callers.  Throws ConfigError for unknown ids
  /// (same contract as models::build_model).
  [[nodiscard]] std::shared_ptr<const Graph> get(const std::string& model_id);

  /// Eagerly builds a set of models (server startup warm-up).  Ids equal to
  /// "all" expand to the full Table-3 zoo.  Returns the number of graphs
  /// loaded.
  size_t preload(const std::vector<std::string>& model_ids);

  /// Graphs resident right now.
  [[nodiscard]] size_t size() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace proof::serve

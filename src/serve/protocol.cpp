#include "serve/protocol.hpp"

#include <cstring>

namespace proof::serve {

namespace {

uint32_t decode_be32(const unsigned char* b) {
  return (static_cast<uint32_t>(b[0]) << 24) |
         (static_cast<uint32_t>(b[1]) << 16) |
         (static_cast<uint32_t>(b[2]) << 8) | static_cast<uint32_t>(b[3]);
}

void encode_be32(uint32_t v, char* out) {
  out[0] = static_cast<char>((v >> 24) & 0xFF);
  out[1] = static_cast<char>((v >> 16) & 0xFF);
  out[2] = static_cast<char>((v >> 8) & 0xFF);
  out[3] = static_cast<char>(v & 0xFF);
}

[[noreturn]] void oversized(uint32_t length) {
  throw ProtocolError("frame length " + std::to_string(length) +
                      " exceeds the " + std::to_string(kMaxFrameBytes) +
                      "-byte limit");
}

}  // namespace

// --- framing -----------------------------------------------------------------

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    oversized(static_cast<uint32_t>(payload.size()));
  }
  std::string frame(4 + payload.size(), '\0');
  encode_be32(static_cast<uint32_t>(payload.size()), frame.data());
  std::memcpy(frame.data() + 4, payload.data(), payload.size());
  return frame;
}

std::optional<std::string> FrameDecoder::next() {
  if (buffer_.size() < 4) {
    return std::nullopt;
  }
  const uint32_t length =
      decode_be32(reinterpret_cast<const unsigned char*>(buffer_.data()));
  if (length > kMaxFrameBytes) {
    oversized(length);
  }
  if (buffer_.size() < 4u + length) {
    return std::nullopt;
  }
  std::string payload = buffer_.substr(4, length);
  buffer_.erase(0, 4u + length);
  return payload;
}

std::optional<std::string> read_frame(net::Socket& socket) {
  unsigned char prefix[4];
  try {
    if (!socket.read_exact(prefix, sizeof(prefix))) {
      return std::nullopt;  // clean EOF on a frame boundary
    }
  } catch (const net::IoError& e) {
    // EOF inside the 4 length bytes: the peer died mid-frame.
    throw ProtocolError(std::string("truncated frame: ") + e.what());
  }
  const uint32_t length = decode_be32(prefix);
  if (length > kMaxFrameBytes) {
    oversized(length);
  }
  std::string payload(length, '\0');
  if (length > 0) {
    try {
      if (!socket.read_exact(payload.data(), length)) {
        throw ProtocolError("stream ended after a frame's length prefix");
      }
    } catch (const net::IoError& e) {
      throw ProtocolError(std::string("truncated frame: ") + e.what());
    }
  }
  return payload;
}

void write_frame(net::Socket& socket, std::string_view payload) {
  const std::string frame = encode_frame(payload);
  socket.write_all(frame.data(), frame.size());
}

// --- requests ----------------------------------------------------------------

namespace {

/// Shared empty params object for requests that omit "params".
const json::Value& empty_params() {
  static const json::Value* empty = [] {
    auto* v = new json::Value();
    v->kind = json::Value::Kind::kObject;
    return v;
  }();
  return *empty;
}

}  // namespace

Request parse_request(const std::string& payload) {
  Request req;
  try {
    req.document = json::parse(payload);
  } catch (const json::ParseError& e) {
    throw ProtocolError(std::string("request is not valid JSON: ") + e.what());
  }
  if (!req.document.is_object()) {
    throw ProtocolError("request payload must be a JSON object");
  }
  req.id = req.document.get_int("id", 0);
  req.method = req.document.get_string("method");
  if (req.method.empty()) {
    throw ProtocolError("request needs a non-empty \"method\" string");
  }
  const json::Value* params = req.document.find("params");
  if (params == nullptr) {
    req.params = &empty_params();
  } else if (params->is_object()) {
    req.params = params;
  } else {
    throw ProtocolError("\"params\" must be a JSON object when present");
  }
  return req;
}

// --- responses ---------------------------------------------------------------

std::string_view error_kind(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

std::string make_result(int64_t id, std::string_view result_raw) {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"type\":\"result\",\"result\":";
  out.append(result_raw);
  out.push_back('}');
  return out;
}

std::string make_progress(int64_t id, std::string_view progress_raw) {
  std::string out =
      "{\"id\":" + std::to_string(id) + ",\"type\":\"progress\",\"progress\":";
  out.append(progress_raw);
  out.push_back('}');
  return out;
}

std::string make_error(int64_t id, ErrorCode code, std::string_view message) {
  std::string out = "{\"id\":" + std::to_string(id) +
                    ",\"type\":\"error\",\"error\":{\"code\":" +
                    std::to_string(static_cast<int>(code)) + ",\"kind\":\"";
  out.append(error_kind(code));
  out += "\",\"message\":";
  out += json::quote(message);
  out += "}}";
  return out;
}

Response parse_response(const std::string& payload) {
  json::Value doc;
  try {
    doc = json::parse(payload);
  } catch (const json::ParseError& e) {
    throw ProtocolError(std::string("response is not valid JSON: ") + e.what());
  }
  if (!doc.is_object()) {
    throw ProtocolError("response payload must be a JSON object");
  }
  Response resp;
  resp.id = doc.get_int("id", 0);
  resp.type = doc.get_string("type");
  if (resp.type == "result" || resp.type == "progress") {
    const json::Value* body = doc.find(resp.type);
    if (body == nullptr) {
      throw ProtocolError("response of type \"" + resp.type +
                          "\" is missing its \"" + resp.type + "\" member");
    }
    resp.payload = std::string(json::raw(*body, payload));
    return resp;
  }
  if (resp.type == "error") {
    const json::Value* err = doc.find("error");
    if (err == nullptr || !err->is_object()) {
      throw ProtocolError("error response is missing its \"error\" object");
    }
    resp.error_code = static_cast<int>(err->get_int("code", 500));
    resp.error_kind = err->get_string("kind", "unknown");
    resp.error_message = err->get_string("message");
    return resp;
  }
  throw ProtocolError("unknown response type '" + resp.type + "'");
}

}  // namespace proof::serve

#include "serve/model_pool.hpp"

#include <future>
#include <map>
#include <mutex>

#include "models/zoo.hpp"
#include "obs/span.hpp"

namespace proof::serve {

struct ModelPool::Impl {
  std::mutex mu;
  std::map<std::string, std::shared_future<std::shared_ptr<const Graph>>> graphs;
};

ModelPool::ModelPool() : impl_(std::make_unique<Impl>()) {}
ModelPool::~ModelPool() = default;

std::shared_ptr<const Graph> ModelPool::get(const std::string& model_id) {
  Impl& state = *impl_;
  std::promise<std::shared_ptr<const Graph>> promise;
  std::shared_future<std::shared_ptr<const Graph>> ready;
  bool is_builder = false;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    const auto it = state.graphs.find(model_id);
    if (it != state.graphs.end()) {
      ready = it->second;
    } else {
      ready = state.graphs.emplace(model_id, promise.get_future().share())
                  .first->second;
      is_builder = true;
    }
  }
  if (!is_builder) {
    PROOF_COUNT("serve.model_pool.hits", 1);
    return ready.get();  // rethrows the builder's failure to waiters
  }

  PROOF_COUNT("serve.model_pool.misses", 1);
  try {
    PROOF_SPAN("serve.model_pool.load");
    auto graph = std::make_shared<Graph>(models::build_model(model_id));
    // Materialize every lazy index before the graph becomes shared: all
    // subsequent concurrent lookups are pure const reads.
    graph->warm_indices();
    std::shared_ptr<const Graph> published = std::move(graph);
    promise.set_value(published);
    return published;
  } catch (...) {
    // Drop the key so a later request retries instead of replaying the error
    // forever (e.g. a transient unknown-id typo must not poison the slot).
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(state.mu);
    state.graphs.erase(model_id);
    throw;
  }
}

size_t ModelPool::preload(const std::vector<std::string>& model_ids) {
  size_t loaded = 0;
  for (const std::string& id : model_ids) {
    if (id == "all") {
      for (const models::ModelSpec& spec : models::model_zoo()) {
        (void)get(spec.id);
        ++loaded;
      }
      continue;
    }
    (void)get(id);
    ++loaded;
  }
  return loaded;
}

size_t ModelPool::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->graphs.size();
}

}  // namespace proof::serve

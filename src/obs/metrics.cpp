#include "obs/metrics.hpp"

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <variant>

#include "support/error.hpp"

namespace proof::obs {

namespace {

std::atomic<size_t> g_next_shard{0};

bool env_enables_obs() {
  const char* env = std::getenv("PROOF_OBS");
  if (env == nullptr) {
    return true;
  }
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0 ||
           std::strcmp(env, "off") == 0);
}

std::atomic<bool> g_enabled{env_enables_obs()};

}  // namespace

size_t shard_index() {
  thread_local const size_t idx =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

// --- Counter -----------------------------------------------------------------

uint64_t Counter::value() const {
  uint64_t total = 0;
  for (const ShardCell& cell : shards_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (ShardCell& cell : shards_) {
    cell.v.store(0, std::memory_order_relaxed);
  }
}

// --- Histogram ---------------------------------------------------------------

uint64_t histogram_bucket_bound_ns(size_t i) {
  return 1000ull << i;  // 1 us, 2 us, 4 us, ...
}

namespace {

size_t bucket_for_ns(uint64_t ns) {
  for (size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    if (ns <= histogram_bucket_bound_ns(i)) {
      return i;
    }
  }
  return kHistogramBuckets - 1;
}

void atomic_store_max(std::atomic<uint64_t>& slot, uint64_t v) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe_ns(uint64_t ns) {
  Shard& shard = shards_[shard_index()];
  shard.buckets[bucket_for_ns(ns)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum_ns.fetch_add(ns, std::memory_order_relaxed);
  atomic_store_max(shard.max_ns, ns);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (const Shard& shard : shards_) {
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum_ns += shard.sum_ns.load(std::memory_order_relaxed);
    snap.max_ns = std::max(snap.max_ns, shard.max_ns.load(std::memory_order_relaxed));
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      snap.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum_ns.store(0, std::memory_order_relaxed);
    shard.max_ns.store(0, std::memory_order_relaxed);
    for (std::atomic<uint64_t>& b : shard.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
  }
}

double HistogramSnapshot::quantile_s(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::min(std::max(q, 0.0), 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(seen + in_bucket) >= rank) {
      const uint64_t hi = std::min(histogram_bucket_bound_ns(i), max_ns);
      const uint64_t lo = i == 0 ? 0 : histogram_bucket_bound_ns(i - 1);
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return (static_cast<double>(lo) +
              frac * static_cast<double>(hi > lo ? hi - lo : 0)) /
             1e9;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max_ns) / 1e9;
}

// --- MetricsRegistry ---------------------------------------------------------

struct MetricsRegistry::Impl {
  using Metric =
      std::variant<std::unique_ptr<Counter>, std::unique_ptr<Gauge>,
                   std::unique_ptr<Histogram>>;
  mutable std::mutex mu;
  std::map<std::string, Metric> metrics;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {}

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked singleton: instrumentation sites cache references and may fire
  // from arbitrary threads during shutdown, so never destroy it.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

template <typename T>
T& find_or_register(MetricsRegistry::Impl& impl, const std::string& name) {
  std::lock_guard<std::mutex> lock(impl.mu);
  auto it = impl.metrics.find(name);
  if (it == impl.metrics.end()) {
    it = impl.metrics.emplace(name, std::make_unique<T>()).first;
  }
  auto* slot = std::get_if<std::unique_ptr<T>>(&it->second);
  if (slot == nullptr) {
    throw ConfigError("metric '" + name +
                      "' already registered with a different kind");
  }
  return **slot;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  return find_or_register<Counter>(*impl_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return find_or_register<Gauge>(*impl_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return find_or_register<Histogram>(*impl_, name);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& [name, metric] : impl_->metrics) {  // map: name-sorted
    if (const auto* c = std::get_if<std::unique_ptr<Counter>>(&metric)) {
      snap.counters.emplace_back(name, (*c)->value());
    } else if (const auto* g = std::get_if<std::unique_ptr<Gauge>>(&metric)) {
      snap.gauges.emplace_back(name, (*g)->value());
    } else if (const auto* h = std::get_if<std::unique_ptr<Histogram>>(&metric)) {
      snap.histograms.emplace_back(name, (*h)->snapshot());
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, metric] : impl_->metrics) {
    if (auto* c = std::get_if<std::unique_ptr<Counter>>(&metric)) {
      (*c)->reset();
    } else if (auto* g = std::get_if<std::unique_ptr<Gauge>>(&metric)) {
      (*g)->reset();
    } else if (auto* h = std::get_if<std::unique_ptr<Histogram>>(&metric)) {
      (*h)->reset();
    }
  }
}

}  // namespace proof::obs

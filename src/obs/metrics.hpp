// Self-profiling metrics: lock-cheap counters, gauges and fixed-bucket
// latency histograms for the profiler's own pipeline (the framework equivalent
// of the hierarchical visibility the paper demands of model profiling, §3).
//
// Design:
//  * Every metric is sharded kShards ways; a writer touches only the
//    cache-line-padded atomic slot of its own shard (threads are assigned
//    shards round-robin at birth), so ThreadPool workers never contend on a
//    shared line.  Readers sum the shards.
//  * Registration (name -> metric) takes a mutex once; hot paths hold a
//    cached reference (the PROOF_COUNT / PROOF_SPAN macros stash it in a
//    function-local static), so steady-state cost is one relaxed-atomic add.
//  * Histograms use fixed power-of-two buckets over nanoseconds (1 us .. 67 s
//    + overflow): no allocation, no locks, mergeable across shards.
//  * A process-wide runtime switch (PROOF_OBS=0 or set_enabled(false)) turns
//    every instrumentation site into a single relaxed load; compiling with
//    PROOF_OBS_DISABLED removes the sites entirely (see span.hpp).
//
// Values survive for the life of the process; `MetricsRegistry::reset()`
// zeroes them (tests) but never invalidates previously returned references.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace proof::obs {

/// Shard count for every metric (power of two; threads pick slots
/// round-robin, so up to kShards writers proceed without sharing a line).
constexpr size_t kShards = 16;

/// Slot index of the calling thread (stable for the thread's lifetime).
[[nodiscard]] size_t shard_index();

/// Master runtime switch, initialized from PROOF_OBS ("0"/"false"/"off"
/// disables; default enabled).  Checked by every instrumentation macro.
[[nodiscard]] bool enabled();
void set_enabled(bool enabled);

struct alignas(64) ShardCell {
  std::atomic<uint64_t> v{0};
};

/// Monotonic event counter.
class Counter {
 public:
  void add(uint64_t n = 1) {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t value() const;
  void reset();

 private:
  std::array<ShardCell, kShards> shards_;
};

/// Last-write-wins instantaneous value (not sharded: gauges are set rarely).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram bucket layout: bucket i counts durations <= 1000 << i ns
/// (1 us, 2 us, ... ~67 s); the last bucket absorbs everything larger.
constexpr size_t kHistogramBuckets = 28;

/// Upper bound (ns) of bucket `i`; the final bucket is unbounded.
[[nodiscard]] uint64_t histogram_bucket_bound_ns(size_t i);

/// Aggregated view of one histogram (all shards merged).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  uint64_t max_ns = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] double mean_s() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_ns) / 1e9 /
                                  static_cast<double>(count);
  }
  [[nodiscard]] double total_s() const {
    return static_cast<double>(sum_ns) / 1e9;
  }
  /// Quantile estimate in seconds (linear interpolation inside the bucket).
  [[nodiscard]] double quantile_s(double q) const;
};

/// Fixed-bucket latency histogram (durations in nanoseconds).
class Histogram {
 public:
  void observe_ns(uint64_t ns);
  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_ns{0};
    std::atomic<uint64_t> max_ns{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Process-wide metric namespace.  Metric objects live forever once
/// registered (the registry is a leaked singleton, like PrepCache), so
/// references returned here may be cached indefinitely.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or registers the named metric.  Registering the same name as two
  /// different kinds throws ConfigError.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;  ///< name-sorted
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every metric value; registrations (and outstanding references)
  /// stay valid.  Intended for tests and long-lived servers rolling windows.
  void reset();

  struct Impl;  ///< public only for the implementation file's helpers

 private:
  MetricsRegistry();
  Impl* impl_;  ///< leaked with the singleton
};

}  // namespace proof::obs

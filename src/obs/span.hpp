// RAII span tracer for the profiler's own pipeline stages.
//
// A span measures one stage (prepare, plan, lower, mapping, latency, sweep
// ...) and on destruction feeds
//  * the stage's latency histogram + invocation counter (MetricsRegistry),
//  * a bounded trace-event buffer serialized into the chrome_trace writer,
//    with one track per OS thread so parallel sweep work renders as real
//    per-thread lanes in chrome://tracing.
//
// Cost model: when obs::enabled() is false a span is one relaxed atomic load;
// when compiled with PROOF_OBS_DISABLED the macros expand to nothing.  Use
// spans at stage granularity (>= microseconds of work), not per node.
//
// Usage — always through the macros so the metric lookup happens once per
// call site (function-local static):
//
//   void run() {
//     PROOF_SPAN("profiler.run");          // whole-function span
//     ...
//     { PROOF_SPAN("profiler.prepare"); prepare(); }   // scoped stage
//   }
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace proof::obs {

/// Monotonic nanoseconds since the process's first observability call.
[[nodiscard]] uint64_t now_ns();

/// One completed span in the self-profile timeline.
struct TraceEvent {
  const char* name = nullptr;  ///< string literal from the span site
  uint32_t tid = 0;            ///< small per-OS-thread track id (1-based)
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
};

/// Per-call-site metric bundle; constructed once (function-local static in
/// PROOF_SPAN) so steady-state spans never touch the registry mutex.
struct SpanSite {
  explicit SpanSite(const char* name_in)
      : name(name_in),
        hist(MetricsRegistry::instance().histogram(name_in)) {}
  const char* name;
  Histogram& hist;
};

class Span {
 public:
  explicit Span(const SpanSite& site)
      : site_(&site), active_(enabled()), start_ns_(active_ ? now_ns() : 0) {}
  ~Span() { if (active_) { finish(); } }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void finish();

  const SpanSite* site_;
  bool active_;
  uint64_t start_ns_;
};

// --- trace buffer ------------------------------------------------------------

/// Hard cap on buffered self-profile events; completions past the cap are
/// still counted in metrics but dropped from the timeline (see
/// `obs.trace.dropped` in the self-profile export).
constexpr size_t kMaxTraceEvents = 1 << 16;

/// All buffered events, merged across threads and sorted by start time.
[[nodiscard]] std::vector<TraceEvent> trace_events();

/// Number of events dropped since the last clear_trace() due to the cap.
[[nodiscard]] uint64_t trace_dropped();

/// Empties the trace buffer (metrics are untouched; see MetricsRegistry).
void clear_trace();

}  // namespace proof::obs

// --- instrumentation macros --------------------------------------------------

#define PROOF_OBS_CAT_(a, b) a##b
#define PROOF_OBS_CAT(a, b) PROOF_OBS_CAT_(a, b)

#ifndef PROOF_OBS_DISABLED

/// Opens an RAII span named `name` (string literal) until end of scope.
#define PROOF_SPAN(name)                                                     \
  static const ::proof::obs::SpanSite PROOF_OBS_CAT(proof_span_site_,        \
                                                    __LINE__){name};         \
  const ::proof::obs::Span PROOF_OBS_CAT(proof_span_, __LINE__)(             \
      PROOF_OBS_CAT(proof_span_site_, __LINE__))

/// Adds `n` to the counter named `name` (string literal).
#define PROOF_COUNT(name, n)                                                 \
  do {                                                                       \
    if (::proof::obs::enabled()) {                                           \
      static ::proof::obs::Counter& proof_count_site =                       \
          ::proof::obs::MetricsRegistry::instance().counter(name);           \
      proof_count_site.add(n);                                               \
    }                                                                        \
  } while (0)

/// Sets the gauge named `name` (string literal) to `v`.
#define PROOF_GAUGE_SET(name, v)                                             \
  do {                                                                       \
    if (::proof::obs::enabled()) {                                           \
      static ::proof::obs::Gauge& proof_gauge_site =                         \
          ::proof::obs::MetricsRegistry::instance().gauge(name);             \
      proof_gauge_site.set(v);                                               \
    }                                                                        \
  } while (0)

#else  // PROOF_OBS_DISABLED: compile instrumentation out entirely.

#define PROOF_SPAN(name) ((void)0)
#define PROOF_COUNT(name, n) ((void)0)
#define PROOF_GAUGE_SET(name, v) ((void)0)

#endif

#include "obs/span.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

namespace proof::obs {

namespace {

uint64_t raw_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Sharded trace buffer: spans are coarse (stage granularity), so a short
/// per-shard mutex push is cheap and keeps the merge logic trivial.
struct TraceShard {
  std::mutex mu;
  std::vector<TraceEvent> events;
};

struct TraceBuffer {
  std::array<TraceShard, kShards> shards;
  std::atomic<size_t> recorded{0};
  std::atomic<uint64_t> dropped{0};
};

TraceBuffer& trace_buffer() {
  static TraceBuffer* buffer = new TraceBuffer();  // leaked, like the registry
  return *buffer;
}

std::atomic<uint32_t> g_next_tid{0};

/// Small stable per-OS-thread track id (1-based, in order of first span).
uint32_t thread_track_id() {
  thread_local const uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed) + 1;
  return tid;
}

}  // namespace

uint64_t now_ns() {
  static const uint64_t anchor = raw_now_ns();
  return raw_now_ns() - anchor;
}

void Span::finish() {
  const uint64_t end_ns = now_ns();
  const uint64_t dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  site_->hist.observe_ns(dur_ns);

  TraceBuffer& buffer = trace_buffer();
  if (buffer.recorded.fetch_add(1, std::memory_order_relaxed) >=
      kMaxTraceEvents) {
    buffer.recorded.fetch_sub(1, std::memory_order_relaxed);
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent event{site_->name, thread_track_id(), start_ns_, dur_ns};
  TraceShard& shard = buffer.shards[shard_index()];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.events.push_back(event);
}

std::vector<TraceEvent> trace_events() {
  std::vector<TraceEvent> out;
  TraceBuffer& buffer = trace_buffer();
  for (TraceShard& shard : buffer.shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.insert(out.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns : a.tid < b.tid;
  });
  return out;
}

uint64_t trace_dropped() {
  return trace_buffer().dropped.load(std::memory_order_relaxed);
}

void clear_trace() {
  TraceBuffer& buffer = trace_buffer();
  size_t removed = 0;
  for (TraceShard& shard : buffer.shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    removed += shard.events.size();
    shard.events.clear();
  }
  buffer.recorded.fetch_sub(removed, std::memory_order_relaxed);
  buffer.dropped.store(0, std::memory_order_relaxed);
}

}  // namespace proof::obs

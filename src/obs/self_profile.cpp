#include "obs/self_profile.hpp"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <mutex>
#include <sstream>

#include "obs/span.hpp"
#include "support/error.hpp"

namespace proof::obs {

namespace {

void append_escaped(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

std::string ms(double seconds) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3) << seconds * 1e3;
  return out.str();
}

}  // namespace

std::string self_profile_json() {
  const MetricsRegistry::Snapshot snap = MetricsRegistry::instance().snapshot();
  std::ostringstream out;
  out.precision(9);
  out << "{\"enabled\":" << (enabled() ? "true" : "false");

  out << ",\"counters\":{";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) {
      out << ',';
    }
    append_escaped(out, snap.counters[i].first);
    out << ':' << snap.counters[i].second;
  }
  out << '}';

  out << ",\"gauges\":{";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) {
      out << ',';
    }
    append_escaped(out, snap.gauges[i].first);
    out << ':' << snap.gauges[i].second;
  }
  out << '}';

  out << ",\"spans\":[";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, hist] = snap.histograms[i];
    if (i > 0) {
      out << ',';
    }
    out << "{\"name\":";
    append_escaped(out, name);
    out << ",\"count\":" << hist.count << ",\"total_s\":" << hist.total_s()
        << ",\"mean_s\":" << hist.mean_s()
        << ",\"p50_s\":" << hist.quantile_s(0.5)
        << ",\"p95_s\":" << hist.quantile_s(0.95)
        << ",\"max_s\":" << static_cast<double>(hist.max_ns) / 1e9 << '}';
  }
  out << ']';

  out << ",\"trace_events\":" << trace_events().size()
      << ",\"trace_dropped\":" << trace_dropped() << '}';
  return out.str();
}

std::string self_profile_text() {
  const MetricsRegistry::Snapshot snap = MetricsRegistry::instance().snapshot();
  std::ostringstream out;
  out << "self-profile (observability "
      << (enabled() ? "enabled" : "disabled") << ")\n\n";

  out << std::left << std::setw(28) << "span" << std::right << std::setw(8)
      << "count" << std::setw(12) << "total ms" << std::setw(12) << "mean ms"
      << std::setw(12) << "p95 ms" << std::setw(12) << "max ms" << "\n";
  for (const auto& [name, hist] : snap.histograms) {
    out << std::left << std::setw(28) << name << std::right << std::setw(8)
        << hist.count << std::setw(12) << ms(hist.total_s()) << std::setw(12)
        << ms(hist.mean_s()) << std::setw(12) << ms(hist.quantile_s(0.95))
        << std::setw(12) << ms(static_cast<double>(hist.max_ns) / 1e9) << "\n";
  }

  out << "\n" << std::left << std::setw(40) << "counter" << std::right
      << std::setw(16) << "value" << "\n";
  for (const auto& [name, value] : snap.counters) {
    out << std::left << std::setw(40) << name << std::right << std::setw(16)
        << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out << std::left << std::setw(40) << name + " (gauge)" << std::right
        << std::setw(16) << value << "\n";
  }
  return out.str();
}

void dump_self_profile(const std::string& path) {
  if (path.empty()) {
    return;
  }
  std::ofstream out(path);
  PROOF_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << self_profile_json() << "\n";
}

void arm_metrics_dump_at_exit() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* path = std::getenv("PROOF_METRICS_OUT");
    if (path == nullptr || path[0] == '\0') {
      return;
    }
    std::atexit([] {
      const char* out = std::getenv("PROOF_METRICS_OUT");
      if (out != nullptr && out[0] != '\0') {
        dump_self_profile(out);
      }
    });
  });
}

}  // namespace proof::obs

// Self-profile export: the queryable record every run leaves behind.
//
// Three surfaces share this serialization:
//  * `report_to_json(report, /*include_self_profile=*/true)` embeds it as a
//    "self_profile" section of the profile report,
//  * `proof stats` prints the human table and can save the JSON,
//  * PROOF_METRICS_OUT=<path> dumps the JSON at process exit (registered by
//    the first instrumented call; crash-free runs always leave the record).
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace proof::obs {

/// Whole-registry snapshot as one JSON object:
/// {"enabled":…,"counters":{…},"gauges":{…},
///  "spans":[{"name","count","total_s","mean_s","p50_s","p95_s","max_s"},…],
///  "trace_events":N,"trace_dropped":N}
/// Span histograms are keyed by their span name; units are seconds.
[[nodiscard]] std::string self_profile_json();

/// Human-readable rendering of the same snapshot (span table + counters).
[[nodiscard]] std::string self_profile_text();

/// Writes self_profile_json() to `path` ("" = no-op).
void dump_self_profile(const std::string& path);

/// Registers an atexit dump to $PROOF_METRICS_OUT once per process; cheap to
/// call repeatedly.  Invoked by the instrumented pipeline entry points.
void arm_metrics_dump_at_exit();

}  // namespace proof::obs

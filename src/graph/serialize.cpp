#include "graph/serialize.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace proof {

namespace {

std::string attr_to_text(const AttrValue& value) {
  struct Visitor {
    std::string operator()(int64_t v) const { return "i:" + std::to_string(v); }
    std::string operator()(double v) const {
      std::ostringstream out;
      out.precision(17);
      out << "f:" << v;
      return out.str();
    }
    std::string operator()(const std::string& v) const { return "s:" + v; }
    std::string operator()(const std::vector<int64_t>& v) const {
      std::string out = "is:";
      for (size_t i = 0; i < v.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(v[i]);
      }
      return out;
    }
    std::string operator()(const std::vector<double>& v) const {
      std::ostringstream out;
      out.precision(17);
      out << "fs:";
      for (size_t i = 0; i < v.size(); ++i) {
        if (i > 0) out << ',';
        out << v[i];
      }
      return out.str();
    }
  };
  return std::visit(Visitor{}, value);
}

AttrValue attr_from_text(const std::string& text) {
  const size_t colon = text.find(':');
  if (colon == std::string::npos) {
    throw ModelError("malformed attribute value '" + text + "'");
  }
  const std::string tag = text.substr(0, colon);
  const std::string body = text.substr(colon + 1);
  if (tag == "i") return strings::parse_int(body);
  if (tag == "f") return strings::parse_double(body);
  if (tag == "s") return body;
  if (tag == "is") {
    std::vector<int64_t> values;
    for (const auto& field : strings::split_trimmed(body, ',')) {
      values.push_back(strings::parse_int(field));
    }
    return values;
  }
  if (tag == "fs") {
    std::vector<double> values;
    for (const auto& field : strings::split_trimmed(body, ',')) {
      values.push_back(strings::parse_double(field));
    }
    return values;
  }
  throw ModelError("unknown attribute tag '" + tag + "'");
}

std::string shape_to_text(const Shape& shape) {
  std::string out = "[";
  for (size_t i = 0; i < shape.rank(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(shape.dims()[i]);
  }
  out += "]";
  return out;
}

Shape shape_from_text(const std::string& text) {
  if (text.size() < 2 || text.front() != '[' || text.back() != ']') {
    throw ModelError("malformed shape '" + text + "'");
  }
  std::vector<int64_t> dims;
  for (const auto& field : strings::split_trimmed(text.substr(1, text.size() - 2), ',')) {
    dims.push_back(strings::parse_int(field));
  }
  return Shape(std::move(dims));
}

}  // namespace

std::string graph_to_text(const Graph& graph) {
  std::ostringstream out;
  out << "graph " << graph.name() << "\n";
  for (const std::string& in : graph.inputs()) {
    out << "input " << in << "\n";
  }
  for (const std::string& o : graph.outputs()) {
    out << "output " << o << "\n";
  }
  for (const auto& [name, desc] : graph.tensors()) {
    out << "tensor " << name << ' ' << dtype_name(desc.dtype) << ' '
        << shape_to_text(desc.shape) << ' ' << (desc.is_param ? "param" : "var") << "\n";
  }
  for (const Node& node : graph.nodes()) {
    out << "node " << node.name << ' ' << node.op_type << " in="
        << strings::join(node.inputs, ",") << " out=" << strings::join(node.outputs, ",");
    for (const auto& [key, value] : node.attrs.raw()) {
      out << ' ' << key << '=' << attr_to_text(value);
    }
    out << "\n";
  }
  return out.str();
}

Graph graph_from_text(const std::string& text) {
  Graph graph;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::string_view trimmed = strings::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      continue;
    }
    std::istringstream fields{std::string(trimmed)};
    std::string kind;
    fields >> kind;
    try {
      if (kind == "graph") {
        std::string name;
        fields >> name;
        graph.set_name(name);
      } else if (kind == "input") {
        std::string name;
        fields >> name;
        graph.add_input(name);
      } else if (kind == "output") {
        std::string name;
        fields >> name;
        graph.add_output(name);
      } else if (kind == "tensor") {
        std::string name, dtype, shape, role;
        fields >> name >> dtype >> shape >> role;
        TensorDesc desc;
        desc.name = name;
        desc.dtype = dtype_from_name(dtype);
        desc.shape = shape_from_text(shape);
        desc.is_param = (role == "param");
        graph.set_tensor(std::move(desc));
      } else if (kind == "node") {
        Node node;
        fields >> node.name >> node.op_type;
        std::string token;
        while (fields >> token) {
          const size_t eq = token.find('=');
          if (eq == std::string::npos) {
            throw ModelError("malformed node field '" + token + "'");
          }
          const std::string key = token.substr(0, eq);
          const std::string value = token.substr(eq + 1);
          if (key == "in") {
            node.inputs = strings::split_trimmed(value, ',');
          } else if (key == "out") {
            node.outputs = strings::split_trimmed(value, ',');
          } else {
            node.attrs.set(key, attr_from_text(value));
          }
        }
        graph.add_node(std::move(node));
      } else {
        throw ModelError("unknown record '" + kind + "'");
      }
    } catch (const Error& e) {
      throw ModelError("line " + std::to_string(line_no) + ": " + e.what());
    }
  }
  return graph;
}

void save_graph(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  PROOF_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << graph_to_text(graph);
}

Graph load_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw ModelError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return graph_from_text(buffer.str());
}

}  // namespace proof

// A node in the model graph: one operator application.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "graph/attributes.hpp"

namespace proof {

/// Stable node identifier within a Graph (index into Graph::nodes()).
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

struct Node {
  std::string name;               ///< Unique within the graph.
  std::string op_type;            ///< "Conv", "MatMul", ... (or "_FusedOp").
  std::vector<std::string> inputs;   ///< Tensor names (may include params).
  std::vector<std::string> outputs;  ///< Tensor names.
  AttrMap attrs;

  [[nodiscard]] bool is(std::string_view type) const { return op_type == type; }
};

}  // namespace proof

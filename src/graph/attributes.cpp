#include "graph/attributes.hpp"

#include "support/error.hpp"

namespace proof {

namespace {

template <typename T>
const T& get_typed(const AttrMap::Map& values, std::string_view key) {
  const auto it = values.find(key);
  PROOF_CHECK(it != values.end(), "missing attribute '" << key << "'");
  const T* ptr = std::get_if<T>(&it->second);
  PROOF_CHECK(ptr != nullptr, "attribute '" << key << "' has unexpected type");
  return *ptr;
}

}  // namespace

int64_t AttrMap::get_int(std::string_view key) const {
  return get_typed<int64_t>(values_, key);
}

int64_t AttrMap::get_int_or(std::string_view key, int64_t fallback) const {
  return has(key) ? get_int(key) : fallback;
}

double AttrMap::get_float(std::string_view key) const {
  const auto it = values_.find(key);
  PROOF_CHECK(it != values_.end(), "missing attribute '" << key << "'");
  if (const double* d = std::get_if<double>(&it->second)) {
    return *d;
  }
  // Integers promote to float transparently (mirrors ONNX attribute reuse).
  if (const int64_t* i = std::get_if<int64_t>(&it->second)) {
    return static_cast<double>(*i);
  }
  PROOF_FAIL("attribute '" << key << "' is not numeric");
}

double AttrMap::get_float_or(std::string_view key, double fallback) const {
  return has(key) ? get_float(key) : fallback;
}

const std::string& AttrMap::get_string(std::string_view key) const {
  return get_typed<std::string>(values_, key);
}

std::string AttrMap::get_string_or(std::string_view key, std::string_view fallback) const {
  return has(key) ? get_string(key) : std::string(fallback);
}

const std::vector<int64_t>& AttrMap::get_ints(std::string_view key) const {
  return get_typed<std::vector<int64_t>>(values_, key);
}

std::vector<int64_t> AttrMap::get_ints_or(std::string_view key,
                                          std::vector<int64_t> fallback) const {
  return has(key) ? get_ints(key) : std::move(fallback);
}

}  // namespace proof

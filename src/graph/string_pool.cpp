#include "graph/string_pool.hpp"

#include "support/error.hpp"

namespace proof {

int32_t StringPool::intern(std::string_view s) {
  const auto it = ids_.find(s);
  if (it != ids_.end()) {
    return it->second;
  }
  const int32_t id = static_cast<int32_t>(storage_.size());
  storage_.emplace_back(s);
  ids_.emplace(std::string_view(storage_.back()), id);
  return id;
}

std::string_view StringPool::view(int32_t id) const {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < storage_.size(),
              "bad string pool id " << id);
  return storage_[static_cast<size_t>(id)];
}

const std::string& StringPool::str(int32_t id) const {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < storage_.size(),
              "bad string pool id " << id);
  return storage_[static_cast<size_t>(id)];
}

void StringPool::clear() {
  ids_.clear();
  storage_.clear();
}

}  // namespace proof

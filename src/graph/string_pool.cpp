#include "graph/string_pool.hpp"

#include "support/error.hpp"

namespace proof {

int32_t StringPool::intern(std::string_view s) {
  if (rep_ != nullptr) {
    const auto it = rep_->ids.find(s);
    if (it != rep_->ids.end()) {
      return it->second;
    }
  }
  detach();
  const int32_t id = static_cast<int32_t>(rep_->storage.size());
  rep_->storage.emplace_back(s);
  rep_->ids.emplace(std::string_view(rep_->storage.back()), id);
  return id;
}

std::string_view StringPool::view(int32_t id) const {
  PROOF_CHECK(rep_ != nullptr && id >= 0 &&
                  static_cast<size_t>(id) < rep_->storage.size(),
              "bad string pool id " << id);
  return rep_->storage[static_cast<size_t>(id)];
}

const std::string& StringPool::str(int32_t id) const {
  PROOF_CHECK(rep_ != nullptr && id >= 0 &&
                  static_cast<size_t>(id) < rep_->storage.size(),
              "bad string pool id " << id);
  return rep_->storage[static_cast<size_t>(id)];
}

StringPool StringPool::clone() const {
  StringPool copy;
  copy.rep_ = rep_;
  return copy;
}

void StringPool::detach() {
  if (rep_ != nullptr && rep_.use_count() == 1) {
    return;
  }
  auto fresh = std::make_shared<Rep>();
  if (rep_ != nullptr) {
    fresh->storage = rep_->storage;
    fresh->ids.reserve(fresh->storage.size());
    for (size_t i = 0; i < fresh->storage.size(); ++i) {
      fresh->ids.emplace(std::string_view(fresh->storage[i]),
                         static_cast<int32_t>(i));
    }
  }
  rep_ = std::move(fresh);
}

void StringPool::clear() { rep_.reset(); }

}  // namespace proof

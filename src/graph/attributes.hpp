// Node attributes (ONNX-style): a small named-value map attached to a node.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace proof {

using AttrValue = std::variant<int64_t, double, std::string, std::vector<int64_t>,
                               std::vector<double>>;

/// Ordered attribute map with heterogeneous (string_view, allocation-free)
/// lookup.  Accessors throw proof::Error on missing keys or type mismatches;
/// the *_or variants return a default instead.
class AttrMap {
 public:
  /// Ordered storage (std::less<> enables transparent string_view find);
  /// ordering keeps serialization and fingerprinting deterministic.
  using Map = std::map<std::string, AttrValue, std::less<>>;

  void set(const std::string& key, AttrValue value) { values_[key] = std::move(value); }

  [[nodiscard]] bool has(std::string_view key) const {
    return values_.find(key) != values_.end();
  }

  [[nodiscard]] int64_t get_int(std::string_view key) const;
  [[nodiscard]] int64_t get_int_or(std::string_view key, int64_t fallback) const;
  [[nodiscard]] double get_float(std::string_view key) const;
  [[nodiscard]] double get_float_or(std::string_view key, double fallback) const;
  [[nodiscard]] const std::string& get_string(std::string_view key) const;
  [[nodiscard]] std::string get_string_or(std::string_view key,
                                          std::string_view fallback) const;
  [[nodiscard]] const std::vector<int64_t>& get_ints(std::string_view key) const;
  [[nodiscard]] std::vector<int64_t> get_ints_or(std::string_view key,
                                                 std::vector<int64_t> fallback) const;

  [[nodiscard]] const Map& raw() const { return values_; }

 private:
  Map values_;
};

}  // namespace proof

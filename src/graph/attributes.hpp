// Node attributes (ONNX-style): a small named-value map attached to a node.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace proof {

using AttrValue = std::variant<int64_t, double, std::string, std::vector<int64_t>,
                               std::vector<double>>;

/// Ordered attribute map.  Accessors throw proof::Error on missing keys or
/// type mismatches; the *_or variants return a default instead.
class AttrMap {
 public:
  void set(const std::string& key, AttrValue value) { values_[key] = std::move(value); }

  [[nodiscard]] bool has(const std::string& key) const { return values_.count(key) > 0; }

  [[nodiscard]] int64_t get_int(const std::string& key) const;
  [[nodiscard]] int64_t get_int_or(const std::string& key, int64_t fallback) const;
  [[nodiscard]] double get_float(const std::string& key) const;
  [[nodiscard]] double get_float_or(const std::string& key, double fallback) const;
  [[nodiscard]] const std::string& get_string(const std::string& key) const;
  [[nodiscard]] std::string get_string_or(const std::string& key,
                                          const std::string& fallback) const;
  [[nodiscard]] const std::vector<int64_t>& get_ints(const std::string& key) const;
  [[nodiscard]] std::vector<int64_t> get_ints_or(const std::string& key,
                                                 std::vector<int64_t> fallback) const;

  [[nodiscard]] const std::map<std::string, AttrValue>& raw() const { return values_; }

 private:
  std::map<std::string, AttrValue> values_;
};

}  // namespace proof

// String interner backing the graph IR's indexed lookup layer.
//
// A StringPool resolves each distinct string to a dense int32 id in
// first-intern order.  Once a name has been interned, every later lookup is
// one allocation-free hash probe, and all id-indexed side tables
// (producer-of, CSR consumer adjacency, tensor descriptors) become plain
// vector indexing.  The pool is append-only: ids stay stable for the
// lifetime of the pool, which is what lets the Graph's lazy edge indexes be
// invalidated and rebuilt without renumbering anything eagerly cached.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace proof {

class StringPool {
 public:
  static constexpr int32_t kInvalidId = -1;

  StringPool() = default;
  // Movable but not copyable: the lookup table holds string_views into
  // storage_, which a memberwise copy would leave dangling.  Owners that
  // need copy semantics (Graph) rebuild a fresh pool instead.
  StringPool(StringPool&&) noexcept = default;
  StringPool& operator=(StringPool&&) noexcept = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Id of `s`, interning it when absent.  Ids are dense and start at 0.
  int32_t intern(std::string_view s);

  /// Id of `s`, or kInvalidId when it has never been interned.
  [[nodiscard]] int32_t find(std::string_view s) const {
    const auto it = ids_.find(s);
    return it == ids_.end() ? kInvalidId : it->second;
  }

  /// The string behind an id; throws proof::Error on out-of-range ids.
  [[nodiscard]] std::string_view view(int32_t id) const;
  [[nodiscard]] const std::string& str(int32_t id) const;

  [[nodiscard]] size_t size() const { return storage_.size(); }
  [[nodiscard]] bool contains(std::string_view s) const {
    return ids_.find(s) != ids_.end();
  }

  void clear();

 private:
  // deque: element addresses are stable across growth, so the string_view
  // keys in ids_ stay valid as new strings are appended.
  std::deque<std::string> storage_;
  std::unordered_map<std::string_view, int32_t> ids_;
};

}  // namespace proof

// String interner backing the graph IR's indexed lookup layer.
//
// A StringPool resolves each distinct string to a dense int32 id in
// first-intern order.  Once a name has been interned, every later lookup is
// one allocation-free hash probe, and all id-indexed side tables
// (producer-of, CSR consumer adjacency, tensor descriptors) become plain
// vector indexing.  The pool is append-only: ids stay stable for the
// lifetime of the pool, which is what lets the Graph's lazy edge indexes be
// invalidated and rebuilt without renumbering anything eagerly cached.
//
// Storage is copy-on-write: clone() shares the interned table (an O(1)
// shared_ptr copy), and the first intern of a *new* string on a shared pool
// detaches onto a private deep copy that preserves every id.  Lookups never
// detach.  This makes cloning a fully interned graph — the plan-cache
// instantiation hot path, where clones only ever look names up — free, while
// clones that do grow (graph surgery, quantization rewrites) behave exactly
// like the old deep copy.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

namespace proof {

class StringPool {
 public:
  static constexpr int32_t kInvalidId = -1;

  StringPool() = default;
  // Movable but not copyable: copy semantics are spelled clone() so sharing
  // is always explicit at the call site.
  StringPool(StringPool&&) noexcept = default;
  StringPool& operator=(StringPool&&) noexcept = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Id of `s`, interning it when absent.  Ids are dense and start at 0.
  /// Interning a new string into a shared pool detaches (id-preserving deep
  /// copy) first; interning an existing string never detaches.
  int32_t intern(std::string_view s);

  /// Id of `s`, or kInvalidId when it has never been interned.
  [[nodiscard]] int32_t find(std::string_view s) const {
    if (rep_ == nullptr) {
      return kInvalidId;
    }
    const auto it = rep_->ids.find(s);
    return it == rep_->ids.end() ? kInvalidId : it->second;
  }

  /// The string behind an id; throws proof::Error on out-of-range ids.
  [[nodiscard]] std::string_view view(int32_t id) const;
  [[nodiscard]] const std::string& str(int32_t id) const;

  /// Id-preserving copy.  O(1): the interned table is shared with this pool
  /// until either side interns a new string (copy-on-write).
  [[nodiscard]] StringPool clone() const;

  [[nodiscard]] size_t size() const {
    return rep_ == nullptr ? 0 : rep_->storage.size();
  }
  [[nodiscard]] bool contains(std::string_view s) const {
    return find(s) != kInvalidId;
  }

  void clear();

 private:
  struct Rep {
    // deque: element addresses are stable across growth, so the string_view
    // keys in ids stay valid as new strings are appended.
    std::deque<std::string> storage;
    std::unordered_map<std::string_view, int32_t> ids;
  };

  /// Ensures rep_ is non-null and uniquely owned, deep-copying a shared rep
  /// with every id preserved (storage order *is* the id order).
  void detach();

  std::shared_ptr<Rep> rep_;
};

}  // namespace proof

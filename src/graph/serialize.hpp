// Text serialization of model graphs (".pg" — proof graph).
//
// The paper's tool consumes ONNX protobufs; this reproduction uses an
// equivalent self-contained line-oriented text format so models can be saved,
// diffed and loaded without a protobuf dependency.  Format:
//
//   graph <name>
//   input <tensor-name>
//   output <tensor-name>
//   tensor <name> <dtype> [d0,d1,...] (param|var)
//   node <name> <op-type> in=<t1,t2> out=<t3> <key>=i:<int> <key>=f:<float>
//        <key>=s:<string> <key>=is:<int,int,...>
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace proof {

/// Serializes `graph` to the text format.
[[nodiscard]] std::string graph_to_text(const Graph& graph);

/// Parses the text format; throws ModelError on malformed input.
[[nodiscard]] Graph graph_from_text(const std::string& text);

/// File convenience wrappers.
void save_graph(const Graph& graph, const std::string& path);
[[nodiscard]] Graph load_graph(const std::string& path);

}  // namespace proof

#include "graph/graph.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <set>
#include <utility>

#include "obs/span.hpp"
#include "support/error.hpp"

namespace proof {

namespace {

// Process-wide A/B switch; relaxed loads compile to a plain read on the hot
// path.  Flipped only by bench_graph_index and the differential fuzz tests.
std::atomic<int> g_lookup_mode{static_cast<int>(Graph::LookupMode::kIndexed)};

}  // namespace

void Graph::set_lookup_mode(LookupMode mode) {
  g_lookup_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

Graph::LookupMode Graph::lookup_mode() {
  return static_cast<LookupMode>(g_lookup_mode.load(std::memory_order_relaxed));
}

// Lazy structural index.  Rebuilt as a whole on first query after a
// structural mutation; guarded by `mutex` with double-checked atomic validity
// flags so warmed-up const lookups are lock-free.
struct Graph::Index {
  std::mutex mutex;
  std::atomic<bool> edges_valid{false};
  std::atomic<bool> topo_valid{false};
  std::atomic<int> built_mode{-1};  ///< LookupMode the edge index was built for
  std::atomic<uint64_t> generation{0};
  bool edges_built_once = false;  ///< for the rebuild-after-invalidation counter
  bool topo_built_once = false;

  // Node name (pool id) -> node id; kInvalidNode for non-node names.
  std::vector<NodeId> node_of_name;
  // Per-node interned input/output tensor ids (CSR: offsets + flat arrays).
  std::vector<uint32_t> in_offsets;   ///< size num_nodes + 1
  std::vector<TensorId> in_ids;
  std::vector<uint32_t> out_offsets;  ///< size num_nodes + 1
  std::vector<TensorId> out_ids;
  // Interned op types and the per-type node buckets (CSR over OpTypeId).
  StringPool op_types;
  std::vector<OpTypeId> node_op_type;  ///< per node
  std::vector<uint32_t> type_offsets;  ///< size num_op_types + 1
  std::vector<NodeId> type_list;
  // Producer / consumers over the TensorId space.  consumer_list holds one
  // entry per *use* (a node consuming a tensor twice appears twice), matching
  // the multiplicity the Kahn in-degree bookkeeping relies on.
  std::vector<NodeId> producer_of;         ///< size = pool size at build time
  std::vector<uint32_t> consumer_offsets;  ///< size = pool size + 1
  std::vector<NodeId> consumer_list;
  // Cached topological order (kIndexed) / per-call scratch (kLegacyMaps).
  std::vector<NodeId> topo;

  // --- LookupMode::kLegacyMaps baseline only ------------------------------
  // Mirrors of the pre-interning std::map indexes; never touched in the
  // default mode.
  std::map<std::string, NodeId, std::less<>> legacy_producer;
  std::map<std::string, std::vector<NodeId>, std::less<>> legacy_consumers;
  std::map<std::string, NodeId, std::less<>> legacy_node_by_name;
  std::vector<NodeId> legacy_type_scratch;  ///< nodes_of_type per-call result
};

// --- lifecycle ---------------------------------------------------------------

Graph::Graph() { init_index(); }

Graph::Graph(std::string name) : name_(std::move(name)) { init_index(); }

Graph::~Graph() = default;

void Graph::init_index() { index_ = std::make_unique<Index>(); }

Graph::Graph(const Graph& other)
    : name_(other.name_),
      nodes_(other.nodes_),
      tensors_(other.tensors_),
      inputs_(other.inputs_),
      outputs_(other.outputs_) {
  init_index();
  rebuild_eager_tables();
}

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) {
    return *this;
  }
  name_ = other.name_;
  nodes_ = other.nodes_;
  tensors_ = other.tensors_;
  inputs_ = other.inputs_;
  outputs_ = other.outputs_;
  init_index();
  rebuild_eager_tables();
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : name_(std::move(other.name_)),
      nodes_(std::move(other.nodes_)),
      tensors_(std::move(other.tensors_)),
      inputs_(std::move(other.inputs_)),
      outputs_(std::move(other.outputs_)),
      names_(std::move(other.names_)),
      desc_of_(std::move(other.desc_of_)),
      is_output_(std::move(other.is_output_)),
      index_(std::move(other.index_)) {
  // Leave the source a valid empty graph rather than a nullptr-index husk.
  other.init_index();
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  name_ = std::move(other.name_);
  nodes_ = std::move(other.nodes_);
  tensors_ = std::move(other.tensors_);
  inputs_ = std::move(other.inputs_);
  outputs_ = std::move(other.outputs_);
  names_ = std::move(other.names_);
  desc_of_ = std::move(other.desc_of_);
  is_output_ = std::move(other.is_output_);
  index_ = std::move(other.index_);
  other.init_index();
  return *this;
}

// --- eager tables ------------------------------------------------------------

TensorId Graph::intern_name(std::string_view name) const {
  const TensorId id = names_.intern(name);
  if (static_cast<size_t>(id) >= desc_of_.size()) {
    desc_of_.resize(static_cast<size_t>(id) + 1, nullptr);
    is_output_.resize(static_cast<size_t>(id) + 1, 0);
  }
  return id;
}

void Graph::rebuild_eager_tables() {
  names_.clear();
  desc_of_.clear();
  is_output_.clear();
  for (auto& [tensor_name, desc] : tensors_) {
    desc_of_[static_cast<size_t>(intern_name(tensor_name))] = &desc;
  }
  for (const Node& n : nodes_) {
    intern_name(n.name);
    for (const std::string& in : n.inputs) {
      intern_name(in);
    }
    for (const std::string& out : n.outputs) {
      intern_name(out);
    }
  }
  for (const std::string& in : inputs_) {
    intern_name(in);
  }
  for (const std::string& out : outputs_) {
    is_output_[static_cast<size_t>(intern_name(out))] = 1;
  }
}

// --- construction ------------------------------------------------------------

NodeId Graph::add_node(Node node) {
  PROOF_CHECK(!node.name.empty(), "node must have a name");
  PROOF_CHECK(!node.op_type.empty(), "node '" << node.name << "' must have an op_type");
  intern_name(node.name);
  for (const std::string& in : node.inputs) {
    intern_name(in);
  }
  for (const std::string& out : node.outputs) {
    const TensorId tid = intern_name(out);
    if (desc_of_[static_cast<size_t>(tid)] == nullptr) {
      TensorDesc desc;
      desc.name = out;
      const auto it = tensors_.emplace(out, std::move(desc)).first;
      desc_of_[static_cast<size_t>(tid)] = &it->second;
    }
  }
  nodes_.push_back(std::move(node));
  invalidate_structure();
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Graph::set_tensor(TensorDesc desc) {
  PROOF_CHECK(!desc.name.empty(), "tensor must have a name");
  const TensorId tid = intern_name(desc.name);
  std::string key = desc.name;
  const auto it = tensors_.insert_or_assign(std::move(key), std::move(desc)).first;
  // std::map nodes are address-stable, so this pointer survives unrelated
  // inserts; overwriting an existing entry reuses the node (and the pointer).
  desc_of_[static_cast<size_t>(tid)] = &it->second;
}

void Graph::add_param(const std::string& name, DType dtype, Shape shape) {
  TensorDesc desc;
  desc.name = name;
  desc.dtype = dtype;
  desc.shape = std::move(shape);
  desc.is_param = true;
  set_tensor(std::move(desc));
}

void Graph::add_input(const std::string& tensor_name) {
  PROOF_CHECK(std::find(inputs_.begin(), inputs_.end(), tensor_name) == inputs_.end(),
              "duplicate graph input '" << tensor_name << "'");
  intern_name(tensor_name);
  inputs_.push_back(tensor_name);
}

void Graph::add_output(const std::string& tensor_name) {
  PROOF_CHECK(std::find(outputs_.begin(), outputs_.end(), tensor_name) == outputs_.end(),
              "duplicate graph output '" << tensor_name << "'");
  is_output_[static_cast<size_t>(intern_name(tensor_name))] = 1;
  outputs_.push_back(tensor_name);
}

// --- invalidation / rebuild --------------------------------------------------

void Graph::invalidate_structure() {
  Index& ix = *index_;
  ix.edges_valid.store(false, std::memory_order_release);
  ix.topo_valid.store(false, std::memory_order_release);
  ix.generation.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Graph::index_generation() const {
  return index_->generation.load(std::memory_order_relaxed);
}

void Graph::rebuild_edges(Index& ix) const {
  PROOF_SPAN("graph.index.build");
  const size_t interned_before = names_.size();
  const size_t n = nodes_.size();

  ix.in_offsets.assign(n + 1, 0);
  ix.out_offsets.assign(n + 1, 0);
  ix.in_ids.clear();
  ix.out_ids.clear();
  ix.op_types.clear();
  ix.node_op_type.assign(n, kInvalidOpType);

  std::vector<TensorId> name_of_node(n, kInvalidTensor);
  for (size_t i = 0; i < n; ++i) {
    const Node& nd = nodes_[i];
    name_of_node[i] = intern_name(nd.name);
    ix.node_op_type[i] = ix.op_types.intern(nd.op_type);
    for (const std::string& in : nd.inputs) {
      ix.in_ids.push_back(intern_name(in));
    }
    ix.in_offsets[i + 1] = static_cast<uint32_t>(ix.in_ids.size());
    for (const std::string& out : nd.outputs) {
      ix.out_ids.push_back(intern_name(out));
    }
    ix.out_offsets[i + 1] = static_cast<uint32_t>(ix.out_ids.size());
  }

  const size_t num_ids = names_.size();
  ix.node_of_name.assign(num_ids, kInvalidNode);
  for (size_t i = 0; i < n; ++i) {
    NodeId& slot = ix.node_of_name[static_cast<size_t>(name_of_node[i])];
    if (slot != kInvalidNode) {
      throw ModelError("duplicate node name '" + nodes_[i].name + "'");
    }
    slot = static_cast<NodeId>(i);
  }

  // Producer: last writer wins, matching the seed's map-assignment semantics.
  ix.producer_of.assign(num_ids, kInvalidNode);
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t o = ix.out_offsets[i]; o < ix.out_offsets[i + 1]; ++o) {
      ix.producer_of[static_cast<size_t>(ix.out_ids[o])] = static_cast<NodeId>(i);
    }
  }

  // Consumers CSR, in node order (two-pass count + fill).
  ix.consumer_offsets.assign(num_ids + 1, 0);
  for (const TensorId tid : ix.in_ids) {
    ++ix.consumer_offsets[static_cast<size_t>(tid) + 1];
  }
  for (size_t t = 0; t < num_ids; ++t) {
    ix.consumer_offsets[t + 1] += ix.consumer_offsets[t];
  }
  ix.consumer_list.assign(ix.in_ids.size(), kInvalidNode);
  {
    std::vector<uint32_t> cursor(ix.consumer_offsets.begin(),
                                 ix.consumer_offsets.end() - 1);
    for (size_t i = 0; i < n; ++i) {
      for (uint32_t o = ix.in_offsets[i]; o < ix.in_offsets[i + 1]; ++o) {
        const size_t tid = static_cast<size_t>(ix.in_ids[o]);
        ix.consumer_list[cursor[tid]++] = static_cast<NodeId>(i);
      }
    }
  }

  // Per-op-type node buckets, in node order.
  const size_t num_types = ix.op_types.size();
  ix.type_offsets.assign(num_types + 1, 0);
  for (const OpTypeId t : ix.node_op_type) {
    ++ix.type_offsets[static_cast<size_t>(t) + 1];
  }
  for (size_t t = 0; t < num_types; ++t) {
    ix.type_offsets[t + 1] += ix.type_offsets[t];
  }
  ix.type_list.assign(n, kInvalidNode);
  {
    std::vector<uint32_t> cursor(ix.type_offsets.begin(), ix.type_offsets.end() - 1);
    for (size_t i = 0; i < n; ++i) {
      ix.type_list[cursor[static_cast<size_t>(ix.node_op_type[i])]++] =
          static_cast<NodeId>(i);
    }
  }

  PROOF_COUNT("graph.index.builds", 1);
  if (ix.edges_built_once) {
    PROOF_COUNT("graph.index.rebuilds", 1);
  }
  ix.edges_built_once = true;
  PROOF_COUNT("graph.intern.strings",
              static_cast<int64_t>(names_.size() - interned_before));
}

void Graph::rebuild_legacy(Index& ix) const {
  ix.legacy_producer.clear();
  ix.legacy_consumers.clear();
  ix.legacy_node_by_name.clear();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const NodeId id = static_cast<NodeId>(i);
    ix.legacy_node_by_name.emplace(n.name, id);
    for (const std::string& out : n.outputs) {
      ix.legacy_producer[out] = id;
    }
    for (const std::string& in : n.inputs) {
      ix.legacy_consumers[in].push_back(id);
    }
  }
}

const Graph::Index& Graph::ensure_edges() const {
  Index& ix = *index_;
  const int mode = g_lookup_mode.load(std::memory_order_relaxed);
  if (ix.edges_valid.load(std::memory_order_acquire) &&
      ix.built_mode.load(std::memory_order_relaxed) == mode) {
    return ix;
  }
  std::lock_guard<std::mutex> lock(ix.mutex);
  if (!ix.edges_valid.load(std::memory_order_relaxed) ||
      ix.built_mode.load(std::memory_order_relaxed) != mode) {
    ix.topo_valid.store(false, std::memory_order_relaxed);
    rebuild_edges(ix);
    if (static_cast<LookupMode>(mode) == LookupMode::kLegacyMaps) {
      rebuild_legacy(ix);
    }
    ix.built_mode.store(mode, std::memory_order_relaxed);
    ix.edges_valid.store(true, std::memory_order_release);
  }
  return ix;
}

void Graph::rebuild_topo(Index& ix) const {
  PROOF_SPAN("graph.topo.build");
  // Kahn's algorithm over the CSR adjacency.  FIFO via a head cursor: the pop
  // order equals the push order, so `order` doubles as the ready queue.  The
  // resulting sequence is identical to the seed's deque-based walk.
  const size_t n = nodes_.size();
  std::vector<int32_t> in_degree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t o = ix.in_offsets[i]; o < ix.in_offsets[i + 1]; ++o) {
      if (ix.producer_of[static_cast<size_t>(ix.in_ids[o])] != kInvalidNode) {
        ++in_degree[i];
      }
    }
  }
  std::vector<NodeId> order;
  order.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) {
      order.push_back(static_cast<NodeId>(i));
    }
  }
  for (size_t head = 0; head < order.size(); ++head) {
    const size_t id = static_cast<size_t>(order[head]);
    for (uint32_t o = ix.out_offsets[id]; o < ix.out_offsets[id + 1]; ++o) {
      const size_t tid = static_cast<size_t>(ix.out_ids[o]);
      for (uint32_t c = ix.consumer_offsets[tid]; c < ix.consumer_offsets[tid + 1];
           ++c) {
        const NodeId consumer = ix.consumer_list[c];
        if (--in_degree[static_cast<size_t>(consumer)] == 0) {
          order.push_back(consumer);
        }
      }
    }
  }
  if (order.size() != n) {
    throw ModelError("graph '" + name_ + "' contains a cycle");
  }
  ix.topo = std::move(order);
  PROOF_COUNT("graph.topo.builds", 1);
  if (ix.topo_built_once) {
    PROOF_COUNT("graph.topo.rebuilds", 1);
  }
  ix.topo_built_once = true;
}

const Graph::Index& Graph::ensure_topo() const {
  Index& ix = const_cast<Index&>(ensure_edges());
  if (ix.topo_valid.load(std::memory_order_acquire)) {
    return ix;
  }
  std::lock_guard<std::mutex> lock(ix.mutex);
  if (!ix.topo_valid.load(std::memory_order_relaxed)) {
    rebuild_topo(ix);
    ix.topo_valid.store(true, std::memory_order_release);
  }
  return ix;
}

void Graph::warm_indices() const {
  (void)ensure_edges();
  if (lookup_mode() == LookupMode::kIndexed) {
    (void)ensure_topo();
  }
}

Graph Graph::clone_warm() const {
  Graph g;
  g.name_ = name_;
  {
    PROOF_SPAN("graph.clone.nodes");
    g.nodes_ = nodes_;
  }
  {
    PROOF_SPAN("graph.clone.tensors");
    g.tensors_ = tensors_;
  }
  g.inputs_ = inputs_;
  g.outputs_ = outputs_;
  // Eager tables: clone the interner id-for-id and re-point the descriptor
  // table at the copy's own tensor map (map nodes are address-stable).  Id
  // preservation holds in every lookup mode — interned ids cached against
  // the source (plan-cache kernel boundary ids) stay valid in the clone.
  {
    PROOF_SPAN("graph.clone.pool");
    g.names_ = names_.clone();
  }
  g.is_output_ = is_output_;
  {
    PROOF_SPAN("graph.clone.descs");
    g.desc_of_.assign(desc_of_.size(), nullptr);
    for (auto& [tensor_name, desc] : g.tensors_) {
      g.desc_of_[static_cast<size_t>(g.names_.find(tensor_name))] = &desc;
    }
  }
  if (lookup_mode() != LookupMode::kIndexed) {
    return g;  // legacy mode has no warm structural index worth preserving
  }
  warm_indices();
  // Lazy index: every id in the source's CSR arrays is valid verbatim in the
  // copy because the cloned pool preserved the numbering.
  const Index& src = *index_;
  Index& dst = *g.index_;
  dst.node_of_name = src.node_of_name;
  dst.in_offsets = src.in_offsets;
  dst.in_ids = src.in_ids;
  dst.out_offsets = src.out_offsets;
  dst.out_ids = src.out_ids;
  dst.op_types = src.op_types.clone();
  dst.node_op_type = src.node_op_type;
  dst.type_offsets = src.type_offsets;
  dst.type_list = src.type_list;
  dst.producer_of = src.producer_of;
  dst.consumer_offsets = src.consumer_offsets;
  dst.consumer_list = src.consumer_list;
  dst.topo = src.topo;
  dst.edges_built_once = true;
  dst.topo_built_once = true;
  dst.built_mode.store(src.built_mode.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  dst.edges_valid.store(true, std::memory_order_release);
  dst.topo_valid.store(true, std::memory_order_release);
  return g;
}

// --- node / tensor accessors -------------------------------------------------

const Node& Graph::node(NodeId id) const {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size(), "bad node id " << id);
  return nodes_[static_cast<size_t>(id)];
}

Node& Graph::node(NodeId id) {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size(), "bad node id " << id);
  invalidate_structure();
  return nodes_[static_cast<size_t>(id)];
}

bool Graph::has_tensor(std::string_view name) const {
  if (lookup_mode() == LookupMode::kLegacyMaps) {
    return tensors_.find(name) != tensors_.end();
  }
  const TensorId id = names_.find(name);
  return id != kInvalidTensor && desc_of_[static_cast<size_t>(id)] != nullptr;
}

const TensorDesc& Graph::tensor(std::string_view name) const {
  if (lookup_mode() == LookupMode::kLegacyMaps) {
    const auto it = tensors_.find(name);
    PROOF_CHECK(it != tensors_.end(), "unknown tensor '" << name << "'");
    return it->second;
  }
  const TensorId id = names_.find(name);
  const TensorDesc* desc =
      id == kInvalidTensor ? nullptr : desc_of_[static_cast<size_t>(id)];
  PROOF_CHECK(desc != nullptr, "unknown tensor '" << name << "'");
  return *desc;
}

TensorDesc& Graph::tensor(std::string_view name) {
  return const_cast<TensorDesc&>(std::as_const(*this).tensor(name));
}

TensorId Graph::tensor_id(std::string_view name) const { return names_.find(name); }

std::string_view Graph::tensor_name(TensorId id) const { return names_.view(id); }

size_t Graph::num_tensor_ids() const { return names_.size(); }

bool Graph::has_tensor(TensorId id) const {
  return id >= 0 && static_cast<size_t>(id) < desc_of_.size() &&
         desc_of_[static_cast<size_t>(id)] != nullptr;
}

const TensorDesc& Graph::tensor(TensorId id) const {
  PROOF_CHECK(has_tensor(id), "unknown tensor id " << id);
  return *desc_of_[static_cast<size_t>(id)];
}

bool Graph::tensor_is_param(TensorId id) const {
  if (id < 0 || static_cast<size_t>(id) >= desc_of_.size()) {
    return false;
  }
  const TensorDesc* desc = desc_of_[static_cast<size_t>(id)];
  return desc != nullptr && desc->is_param;
}

bool Graph::is_graph_output(TensorId id) const {
  return id >= 0 && static_cast<size_t>(id) < is_output_.size() &&
         is_output_[static_cast<size_t>(id)] != 0;
}

// --- edge queries ------------------------------------------------------------

NodeId Graph::producer(TensorId id) const {
  if (id < 0) {
    return kInvalidNode;
  }
  const Index& ix = ensure_edges();
  if (lookup_mode() == LookupMode::kLegacyMaps) {
    const auto it = ix.legacy_producer.find(names_.view(id));
    return it == ix.legacy_producer.end() ? kInvalidNode : it->second;
  }
  return static_cast<size_t>(id) < ix.producer_of.size()
             ? ix.producer_of[static_cast<size_t>(id)]
             : kInvalidNode;
}

NodeId Graph::producer(std::string_view tensor_name) const {
  if (lookup_mode() == LookupMode::kLegacyMaps) {
    const Index& ix = ensure_edges();
    const auto it = ix.legacy_producer.find(tensor_name);
    return it == ix.legacy_producer.end() ? kInvalidNode : it->second;
  }
  return producer(names_.find(tensor_name));
}

std::span<const NodeId> Graph::consumers(TensorId id) const {
  if (id < 0) {
    return {};
  }
  const Index& ix = ensure_edges();
  if (lookup_mode() == LookupMode::kLegacyMaps) {
    const auto it = ix.legacy_consumers.find(names_.view(id));
    if (it == ix.legacy_consumers.end()) {
      return {};
    }
    return {it->second.data(), it->second.size()};
  }
  if (static_cast<size_t>(id) + 1 >= ix.consumer_offsets.size()) {
    return {};
  }
  const uint32_t begin = ix.consumer_offsets[static_cast<size_t>(id)];
  const uint32_t end = ix.consumer_offsets[static_cast<size_t>(id) + 1];
  return {ix.consumer_list.data() + begin, static_cast<size_t>(end - begin)};
}

std::span<const NodeId> Graph::consumers(std::string_view tensor_name) const {
  if (lookup_mode() == LookupMode::kLegacyMaps) {
    const Index& ix = ensure_edges();
    const auto it = ix.legacy_consumers.find(tensor_name);
    if (it == ix.legacy_consumers.end()) {
      return {};
    }
    return {it->second.data(), it->second.size()};
  }
  return consumers(names_.find(tensor_name));
}

std::span<const TensorId> Graph::node_input_ids(NodeId id) const {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size(), "bad node id " << id);
  const Index& ix = ensure_edges();
  const uint32_t begin = ix.in_offsets[static_cast<size_t>(id)];
  const uint32_t end = ix.in_offsets[static_cast<size_t>(id) + 1];
  return {ix.in_ids.data() + begin, static_cast<size_t>(end - begin)};
}

std::span<const TensorId> Graph::node_output_ids(NodeId id) const {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size(), "bad node id " << id);
  const Index& ix = ensure_edges();
  const uint32_t begin = ix.out_offsets[static_cast<size_t>(id)];
  const uint32_t end = ix.out_offsets[static_cast<size_t>(id) + 1];
  return {ix.out_ids.data() + begin, static_cast<size_t>(end - begin)};
}

OpTypeId Graph::op_type_id(NodeId id) const {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size(), "bad node id " << id);
  return ensure_edges().node_op_type[static_cast<size_t>(id)];
}

OpTypeId Graph::op_type_id(std::string_view op_type) const {
  return ensure_edges().op_types.find(op_type);
}

NodeId Graph::find_node(std::string_view node_name) const {
  const Index& ix = ensure_edges();
  if (lookup_mode() == LookupMode::kLegacyMaps) {
    const auto it = ix.legacy_node_by_name.find(node_name);
    return it == ix.legacy_node_by_name.end() ? kInvalidNode : it->second;
  }
  const TensorId id = names_.find(node_name);
  if (id == kInvalidTensor || static_cast<size_t>(id) >= ix.node_of_name.size()) {
    return kInvalidNode;
  }
  return ix.node_of_name[static_cast<size_t>(id)];
}

std::span<const NodeId> Graph::nodes_of_type(std::string_view op_type) const {
  if (lookup_mode() == LookupMode::kLegacyMaps) {
    // Seed behavior: a fresh linear scan per call.
    Index& ix = *index_;
    ix.legacy_type_scratch.clear();
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].op_type == op_type) {
        ix.legacy_type_scratch.push_back(static_cast<NodeId>(i));
      }
    }
    return {ix.legacy_type_scratch.data(), ix.legacy_type_scratch.size()};
  }
  const Index& ix = ensure_edges();
  const OpTypeId t = ix.op_types.find(op_type);
  if (t == kInvalidOpType) {
    return {};
  }
  const uint32_t begin = ix.type_offsets[static_cast<size_t>(t)];
  const uint32_t end = ix.type_offsets[static_cast<size_t>(t) + 1];
  return {ix.type_list.data() + begin, static_cast<size_t>(end - begin)};
}

// --- analysis primitives -----------------------------------------------------

const std::vector<NodeId>& Graph::topo_order() const {
  if (lookup_mode() == LookupMode::kLegacyMaps) {
    // Seed behavior: recompute from scratch on every call.
    (void)ensure_edges();
    Index& ix = *index_;
    ix.topo = legacy_topo_order();
    return ix.topo;
  }
  return ensure_topo().topo;
}

std::vector<NodeId> Graph::legacy_topo_order() const {
  const Index& ix = *index_;
  std::vector<int> in_degree(nodes_.size(), 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (const std::string& in : nodes_[i].inputs) {
      if (ix.legacy_producer.find(in) != ix.legacy_producer.end()) {
        ++in_degree[i];
      }
    }
  }
  std::deque<NodeId> ready;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (in_degree[i] == 0) {
      ready.push_back(static_cast<NodeId>(i));
    }
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const std::string& out : nodes_[static_cast<size_t>(id)].outputs) {
      const auto it = ix.legacy_consumers.find(out);
      if (it == ix.legacy_consumers.end()) {
        continue;
      }
      for (const NodeId consumer : it->second) {
        if (--in_degree[static_cast<size_t>(consumer)] == 0) {
          ready.push_back(consumer);
        }
      }
    }
  }
  if (order.size() != nodes_.size()) {
    throw ModelError("graph '" + name_ + "' contains a cycle");
  }
  return order;
}

std::optional<std::vector<NodeId>> Graph::subgraph_by_io(
    const std::vector<std::string>& input_tensors,
    const std::vector<std::string>& output_tensors) const {
  if (lookup_mode() == LookupMode::kLegacyMaps) {
    return legacy_subgraph_by_io(input_tensors, output_tensors);
  }
  std::vector<TensorId> in_ids;
  in_ids.reserve(input_tensors.size());
  for (const std::string& in : input_tensors) {
    const TensorId id = names_.find(in);
    if (id != kInvalidTensor) {
      in_ids.push_back(id);  // unknown names can't stop any known edge
    }
  }
  std::vector<TensorId> out_ids;
  out_ids.reserve(output_tensors.size());
  for (const std::string& out : output_tensors) {
    const TensorId id = names_.find(out);
    if (id == kInvalidTensor) {
      return std::nullopt;  // output is not produced by any node
    }
    out_ids.push_back(id);
  }
  return subgraph_by_io_ids(in_ids, out_ids);
}

std::optional<std::vector<NodeId>> Graph::subgraph_by_io_ids(
    std::span<const TensorId> input_tensors,
    std::span<const TensorId> output_tensors) const {
  if (lookup_mode() == LookupMode::kLegacyMaps) {
    std::vector<std::string> ins;
    ins.reserve(input_tensors.size());
    for (const TensorId t : input_tensors) {
      ins.push_back(names_.str(t));
    }
    std::vector<std::string> outs;
    outs.reserve(output_tensors.size());
    for (const TensorId t : output_tensors) {
      outs.push_back(names_.str(t));
    }
    return legacy_subgraph_by_io(ins, outs);
  }

  const Index& ix = ensure_edges();
  std::vector<uint8_t> stop(names_.size(), 0);
  for (const TensorId t : input_tensors) {
    if (t >= 0 && static_cast<size_t>(t) < stop.size()) {
      stop[static_cast<size_t>(t)] = 1;
    }
  }
  std::vector<uint8_t> in_set(nodes_.size(), 0);
  std::vector<NodeId> frontier;  // FIFO via head cursor
  for (const TensorId t : output_tensors) {
    const NodeId p = t >= 0 && static_cast<size_t>(t) < ix.producer_of.size()
                         ? ix.producer_of[static_cast<size_t>(t)]
                         : kInvalidNode;
    if (p == kInvalidNode) {
      return std::nullopt;  // output is not produced by any node
    }
    if (!in_set[static_cast<size_t>(p)]) {
      in_set[static_cast<size_t>(p)] = 1;
      frontier.push_back(p);
    }
  }
  for (size_t head = 0; head < frontier.size(); ++head) {
    const size_t id = static_cast<size_t>(frontier[head]);
    for (uint32_t o = ix.in_offsets[id]; o < ix.in_offsets[id + 1]; ++o) {
      const size_t tid = static_cast<size_t>(ix.in_ids[o]);
      if (stop[tid]) {
        continue;  // boundary input: stop the walk here
      }
      const TensorDesc* desc = desc_of_[tid];
      if (desc != nullptr && desc->is_param) {
        continue;  // params live inside the subgraph
      }
      const NodeId p = ix.producer_of[tid];
      if (p == kInvalidNode) {
        // Reached a graph input / external tensor that is not in the declared
        // boundary: the requested subgraph does not exist.
        return std::nullopt;
      }
      if (!in_set[static_cast<size_t>(p)]) {
        in_set[static_cast<size_t>(p)] = 1;
        frontier.push_back(p);
      }
    }
  }
  std::vector<NodeId> result;
  result.reserve(frontier.size());
  for (size_t i = 0; i < in_set.size(); ++i) {
    if (in_set[i]) {
      result.push_back(static_cast<NodeId>(i));
    }
  }
  return result;
}

std::optional<std::vector<NodeId>> Graph::legacy_subgraph_by_io(
    const std::vector<std::string>& input_tensors,
    const std::vector<std::string>& output_tensors) const {
  (void)ensure_edges();
  const Index& ix = *index_;
  const auto legacy_producer = [&ix](const std::string& t) {
    const auto it = ix.legacy_producer.find(t);
    return it == ix.legacy_producer.end() ? kInvalidNode : it->second;
  };
  const std::set<std::string> stop(input_tensors.begin(), input_tensors.end());
  std::set<NodeId> visited;
  std::deque<NodeId> frontier;
  for (const std::string& out : output_tensors) {
    const NodeId p = legacy_producer(out);
    if (p == kInvalidNode) {
      return std::nullopt;
    }
    if (visited.insert(p).second) {
      frontier.push_back(p);
    }
  }
  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop_front();
    for (const std::string& in : nodes_[static_cast<size_t>(id)].inputs) {
      if (stop.count(in) > 0) {
        continue;
      }
      const auto it = tensors_.find(in);
      if (it != tensors_.end() && it->second.is_param) {
        continue;
      }
      const NodeId p = legacy_producer(in);
      if (p == kInvalidNode) {
        return std::nullopt;
      }
      if (visited.insert(p).second) {
        frontier.push_back(p);
      }
    }
  }
  std::vector<NodeId> result(visited.begin(), visited.end());
  std::sort(result.begin(), result.end());
  return result;
}

Graph::Boundary Graph::boundary(const std::vector<NodeId>& node_set) const {
  if (lookup_mode() == LookupMode::kLegacyMaps) {
    return legacy_boundary(node_set);
  }
  const BoundaryIds ids = boundary_ids(node_set);
  Boundary result;
  result.inputs.reserve(ids.inputs.size());
  for (const TensorId t : ids.inputs) {
    result.inputs.push_back(names_.str(t));
  }
  result.outputs.reserve(ids.outputs.size());
  for (const TensorId t : ids.outputs) {
    result.outputs.push_back(names_.str(t));
  }
  result.params.reserve(ids.params.size());
  for (const TensorId t : ids.params) {
    result.params.push_back(names_.str(t));
  }
  return result;
}

Graph::BoundaryIds Graph::boundary_ids(std::span<const NodeId> node_set) const {
  if (lookup_mode() == LookupMode::kLegacyMaps) {
    const Boundary b =
        legacy_boundary(std::vector<NodeId>(node_set.begin(), node_set.end()));
    BoundaryIds ids;
    for (const std::string& t : b.inputs) {
      ids.inputs.push_back(names_.find(t));
    }
    for (const std::string& t : b.outputs) {
      ids.outputs.push_back(names_.find(t));
    }
    for (const std::string& t : b.params) {
      ids.params.push_back(names_.find(t));
    }
    return ids;
  }

  const Index& ix = ensure_edges();
  std::vector<uint8_t> member(nodes_.size(), 0);
  std::vector<uint8_t> produced_inside(names_.size(), 0);
  for (const NodeId id : node_set) {
    PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size(),
                "bad node id " << id);
    member[static_cast<size_t>(id)] = 1;
    for (uint32_t o = ix.out_offsets[static_cast<size_t>(id)];
         o < ix.out_offsets[static_cast<size_t>(id) + 1]; ++o) {
      produced_inside[static_cast<size_t>(ix.out_ids[o])] = 1;
    }
  }
  BoundaryIds result;
  // Inputs and params are disjoint categories, so one seen-set suffices.
  std::vector<uint8_t> seen(names_.size(), 0);
  for (const NodeId id : node_set) {
    for (uint32_t o = ix.in_offsets[static_cast<size_t>(id)];
         o < ix.in_offsets[static_cast<size_t>(id) + 1]; ++o) {
      const size_t tid = static_cast<size_t>(ix.in_ids[o]);
      if (produced_inside[tid] || seen[tid]) {
        continue;
      }
      seen[tid] = 1;
      const TensorDesc* desc = desc_of_[tid];
      if (desc != nullptr && desc->is_param) {
        result.params.push_back(static_cast<TensorId>(tid));
      } else {
        result.inputs.push_back(static_cast<TensorId>(tid));
      }
    }
  }
  for (const NodeId id : node_set) {
    for (uint32_t o = ix.out_offsets[static_cast<size_t>(id)];
         o < ix.out_offsets[static_cast<size_t>(id) + 1]; ++o) {
      const size_t tid = static_cast<size_t>(ix.out_ids[o]);
      bool external = is_output_[tid] != 0;
      if (!external) {
        for (uint32_t c = ix.consumer_offsets[tid]; c < ix.consumer_offsets[tid + 1];
             ++c) {
          if (!member[static_cast<size_t>(ix.consumer_list[c])]) {
            external = true;
            break;
          }
        }
      }
      if (external) {
        result.outputs.push_back(static_cast<TensorId>(tid));
      }
    }
  }
  return result;
}

Graph::Boundary Graph::legacy_boundary(const std::vector<NodeId>& node_set) const {
  (void)ensure_edges();
  const Index& ix = *index_;
  const std::set<NodeId> members(node_set.begin(), node_set.end());
  std::set<std::string> produced_inside;
  for (const NodeId id : node_set) {
    for (const std::string& out : node(id).outputs) {
      produced_inside.insert(out);
    }
  }
  Boundary result;
  std::set<std::string> seen_inputs;
  std::set<std::string> seen_params;
  for (const NodeId id : node_set) {
    for (const std::string& in : node(id).inputs) {
      if (produced_inside.count(in) > 0) {
        continue;
      }
      const auto it = tensors_.find(in);
      const bool is_param = it != tensors_.end() && it->second.is_param;
      if (is_param) {
        if (seen_params.insert(in).second) {
          result.params.push_back(in);
        }
      } else if (seen_inputs.insert(in).second) {
        result.inputs.push_back(in);
      }
    }
  }
  const std::set<std::string> graph_outputs(outputs_.begin(), outputs_.end());
  for (const NodeId id : node_set) {
    for (const std::string& out : node(id).outputs) {
      bool external = graph_outputs.count(out) > 0;
      if (!external) {
        const auto it = ix.legacy_consumers.find(out);
        if (it != ix.legacy_consumers.end()) {
          for (const NodeId consumer : it->second) {
            if (members.count(consumer) == 0) {
              external = true;
              break;
            }
          }
        }
      }
      if (external) {
        result.outputs.push_back(out);
      }
    }
  }
  return result;
}

// --- validation / stats ------------------------------------------------------

void Graph::validate() const {
  (void)ensure_edges();  // also checks duplicate node names
  for (const Node& n : nodes_) {
    for (const std::string& in : n.inputs) {
      const bool resolvable = has_tensor(in) || producer(in) != kInvalidNode ||
                              std::find(inputs_.begin(), inputs_.end(), in) != inputs_.end();
      if (!resolvable) {
        throw ModelError("node '" + n.name + "' consumes undeclared tensor '" + in + "'");
      }
    }
  }
  for (const std::string& out : outputs_) {
    if (producer(out) == kInvalidNode) {
      throw ModelError("graph output '" + out + "' has no producer");
    }
  }
  (void)topo_order();  // throws on cycles
}

int64_t Graph::param_bytes() const {
  int64_t total = 0;
  for (const auto& [tensor_name, desc] : tensors_) {
    if (desc.is_param) {
      total += desc.size_bytes();
    }
  }
  return total;
}

int64_t Graph::param_count() const {
  int64_t total = 0;
  for (const auto& [tensor_name, desc] : tensors_) {
    if (desc.is_param) {
      total += desc.numel();
    }
  }
  return total;
}

}  // namespace proof

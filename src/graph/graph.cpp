#include "graph/graph.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "support/error.hpp"

namespace proof {

NodeId Graph::add_node(Node node) {
  PROOF_CHECK(!node.name.empty(), "node must have a name");
  PROOF_CHECK(!node.op_type.empty(), "node '" << node.name << "' must have an op_type");
  for (const std::string& out : node.outputs) {
    if (tensors_.find(out) == tensors_.end()) {
      TensorDesc desc;
      desc.name = out;
      tensors_.emplace(out, std::move(desc));
    }
  }
  nodes_.push_back(std::move(node));
  indices_valid_ = false;
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Graph::set_tensor(TensorDesc desc) {
  PROOF_CHECK(!desc.name.empty(), "tensor must have a name");
  tensors_[desc.name] = std::move(desc);
}

void Graph::add_param(const std::string& name, DType dtype, Shape shape) {
  TensorDesc desc;
  desc.name = name;
  desc.dtype = dtype;
  desc.shape = std::move(shape);
  desc.is_param = true;
  set_tensor(std::move(desc));
}

void Graph::add_input(const std::string& tensor_name) {
  PROOF_CHECK(std::find(inputs_.begin(), inputs_.end(), tensor_name) == inputs_.end(),
              "duplicate graph input '" << tensor_name << "'");
  inputs_.push_back(tensor_name);
}

void Graph::add_output(const std::string& tensor_name) {
  PROOF_CHECK(std::find(outputs_.begin(), outputs_.end(), tensor_name) == outputs_.end(),
              "duplicate graph output '" << tensor_name << "'");
  outputs_.push_back(tensor_name);
}

const Node& Graph::node(NodeId id) const {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size(), "bad node id " << id);
  return nodes_[static_cast<size_t>(id)];
}

Node& Graph::node(NodeId id) {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size(), "bad node id " << id);
  indices_valid_ = false;
  return nodes_[static_cast<size_t>(id)];
}

bool Graph::has_tensor(const std::string& name) const {
  return tensors_.find(name) != tensors_.end();
}

const TensorDesc& Graph::tensor(const std::string& name) const {
  const auto it = tensors_.find(name);
  PROOF_CHECK(it != tensors_.end(), "unknown tensor '" << name << "'");
  return it->second;
}

TensorDesc& Graph::tensor(const std::string& name) {
  const auto it = tensors_.find(name);
  PROOF_CHECK(it != tensors_.end(), "unknown tensor '" << name << "'");
  return it->second;
}

void Graph::rebuild_indices() const {
  producer_of_.clear();
  consumers_of_.clear();
  node_by_name_.clear();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const NodeId id = static_cast<NodeId>(i);
    const auto [it, inserted] = node_by_name_.emplace(n.name, id);
    (void)it;
    if (!inserted) {
      throw ModelError("duplicate node name '" + n.name + "'");
    }
    for (const std::string& out : n.outputs) {
      producer_of_[out] = id;
    }
    for (const std::string& in : n.inputs) {
      consumers_of_[in].push_back(id);
    }
  }
  indices_valid_ = true;
}

NodeId Graph::producer(const std::string& tensor_name) const {
  if (!indices_valid_) {
    rebuild_indices();
  }
  const auto it = producer_of_.find(tensor_name);
  return it == producer_of_.end() ? kInvalidNode : it->second;
}

std::vector<NodeId> Graph::consumers(const std::string& tensor_name) const {
  if (!indices_valid_) {
    rebuild_indices();
  }
  const auto it = consumers_of_.find(tensor_name);
  return it == consumers_of_.end() ? std::vector<NodeId>{} : it->second;
}

NodeId Graph::find_node(const std::string& node_name) const {
  if (!indices_valid_) {
    rebuild_indices();
  }
  const auto it = node_by_name_.find(node_name);
  return it == node_by_name_.end() ? kInvalidNode : it->second;
}

std::vector<NodeId> Graph::nodes_of_type(const std::string& op_type) const {
  std::vector<NodeId> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].op_type == op_type) {
      out.push_back(static_cast<NodeId>(i));
    }
  }
  return out;
}

std::vector<NodeId> Graph::topo_order() const {
  if (!indices_valid_) {
    rebuild_indices();
  }
  // Kahn's algorithm over tensor-mediated dependencies.
  std::vector<int> in_degree(nodes_.size(), 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (const std::string& in : nodes_[i].inputs) {
      if (producer(in) != kInvalidNode) {
        ++in_degree[i];
      }
    }
  }
  std::deque<NodeId> ready;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (in_degree[i] == 0) {
      ready.push_back(static_cast<NodeId>(i));
    }
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const std::string& out : nodes_[static_cast<size_t>(id)].outputs) {
      for (const NodeId consumer : consumers(out)) {
        if (--in_degree[static_cast<size_t>(consumer)] == 0) {
          ready.push_back(consumer);
        }
      }
    }
  }
  if (order.size() != nodes_.size()) {
    throw ModelError("graph '" + name_ + "' contains a cycle");
  }
  return order;
}

std::optional<std::vector<NodeId>> Graph::subgraph_by_io(
    const std::vector<std::string>& input_tensors,
    const std::vector<std::string>& output_tensors) const {
  const std::set<std::string> stop(input_tensors.begin(), input_tensors.end());
  std::set<NodeId> visited;
  std::deque<NodeId> frontier;

  for (const std::string& out : output_tensors) {
    const NodeId p = producer(out);
    if (p == kInvalidNode) {
      return std::nullopt;  // output is not produced by any node
    }
    if (visited.insert(p).second) {
      frontier.push_back(p);
    }
  }

  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop_front();
    for (const std::string& in : nodes_[static_cast<size_t>(id)].inputs) {
      if (stop.count(in) > 0) {
        continue;  // boundary input: stop the walk here
      }
      const TensorDesc* desc = has_tensor(in) ? &tensor(in) : nullptr;
      if (desc != nullptr && desc->is_param) {
        continue;  // params live inside the subgraph
      }
      const NodeId p = producer(in);
      if (p == kInvalidNode) {
        // Reached a graph input / external tensor that is not in the declared
        // boundary: the requested subgraph does not exist.
        return std::nullopt;
      }
      if (visited.insert(p).second) {
        frontier.push_back(p);
      }
    }
  }

  std::vector<NodeId> result(visited.begin(), visited.end());
  std::sort(result.begin(), result.end());
  return result;
}

Graph::Boundary Graph::boundary(const std::vector<NodeId>& node_set) const {
  const std::set<NodeId> members(node_set.begin(), node_set.end());
  std::set<std::string> produced_inside;
  for (const NodeId id : node_set) {
    for (const std::string& out : node(id).outputs) {
      produced_inside.insert(out);
    }
  }
  Boundary result;
  std::set<std::string> seen_inputs;
  std::set<std::string> seen_params;
  for (const NodeId id : node_set) {
    for (const std::string& in : node(id).inputs) {
      if (produced_inside.count(in) > 0) {
        continue;
      }
      const bool is_param = has_tensor(in) && tensor(in).is_param;
      if (is_param) {
        if (seen_params.insert(in).second) {
          result.params.push_back(in);
        }
      } else if (seen_inputs.insert(in).second) {
        result.inputs.push_back(in);
      }
    }
  }
  const std::set<std::string> graph_outputs(outputs_.begin(), outputs_.end());
  for (const NodeId id : node_set) {
    for (const std::string& out : node(id).outputs) {
      bool external = graph_outputs.count(out) > 0;
      if (!external) {
        for (const NodeId consumer : consumers(out)) {
          if (members.count(consumer) == 0) {
            external = true;
            break;
          }
        }
      }
      if (external) {
        result.outputs.push_back(out);
      }
    }
  }
  return result;
}

void Graph::validate() const {
  if (!indices_valid_) {
    rebuild_indices();  // also checks duplicate node names
  }
  for (const Node& n : nodes_) {
    for (const std::string& in : n.inputs) {
      const bool resolvable = has_tensor(in) || producer(in) != kInvalidNode ||
                              std::find(inputs_.begin(), inputs_.end(), in) != inputs_.end();
      if (!resolvable) {
        throw ModelError("node '" + n.name + "' consumes undeclared tensor '" + in + "'");
      }
    }
  }
  for (const std::string& out : outputs_) {
    if (producer(out) == kInvalidNode) {
      throw ModelError("graph output '" + out + "' has no producer");
    }
  }
  (void)topo_order();  // throws on cycles
}

int64_t Graph::param_bytes() const {
  int64_t total = 0;
  for (const auto& [name, desc] : tensors_) {
    if (desc.is_param) {
      total += desc.size_bytes();
    }
  }
  return total;
}

int64_t Graph::param_count() const {
  int64_t total = 0;
  for (const auto& [name, desc] : tensors_) {
    if (desc.is_param) {
      total += desc.numel();
    }
  }
  return total;
}

}  // namespace proof

// Model graph IR.
//
// A Graph mirrors the information PRoof extracts from an ONNX file: a list of
// operator nodes, a tensor table (shapes/dtypes, which tensors are params),
// and the designated model inputs/outputs.  The graph also provides the
// search primitives the Optimized Analyze Representation relies on, most
// importantly subgraph extraction by boundary tensors
// (`get_subgraph_ops_by_io`, Figure 2 of the paper).
//
// Lookup layer: every tensor and node name is interned into a StringPool on
// first sight, so the analysis hot path (fusion, lowering, layer mapping,
// Equation-1 memory prediction) works on dense int32 ids instead of
// std::string map keys.  Two tiers of index exist:
//   * eager — the name pool, the TensorId -> TensorDesc table and the
//     graph-output flags are maintained incrementally on every mutation and
//     are always current;
//   * lazy  — producer-of, the CSR consumers adjacency, node-by-name,
//     per-type node buckets and the cached topological order are rebuilt on
//     first query after a structural mutation (add_node, non-const node()
//     access).  Rebuilds are serialized behind a mutex with double-checked
//     atomic validity flags, so concurrent *const* lookups on a shared graph
//     are safe once no thread mutates it (call warm_indices() before
//     fanning a graph out to a thread pool to keep the hot path lock-free).
//
// The pre-interning std::map-based lookup code is retained behind
// LookupMode::kLegacyMaps purely as an A/B baseline for bench_graph_index
// and the differential fuzz tests; the default mode never touches it.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/node.hpp"
#include "graph/string_pool.hpp"
#include "tensor/tensor.hpp"

namespace proof {

/// Dense id of an interned tensor (or node) name within one Graph.
using TensorId = int32_t;
inline constexpr TensorId kInvalidTensor = -1;

/// Dense id of an interned operator type within one Graph.
using OpTypeId = int32_t;
inline constexpr OpTypeId kInvalidOpType = -1;

class Graph {
 public:
  Graph();
  explicit Graph(std::string name);
  ~Graph();

  // Copying resets the lookup indexes on the copy (they hold views into the
  // source's string pool); moving transfers them intact.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- construction -------------------------------------------------------

  /// Adds a node; all of its output tensors get placeholder descs if unknown.
  NodeId add_node(Node node);

  /// Declares/overwrites a tensor description.
  void set_tensor(TensorDesc desc);

  /// Declares a model parameter (weight) tensor.
  void add_param(const std::string& name, DType dtype, Shape shape);

  /// Marks graph-level inputs/outputs.
  void add_input(const std::string& tensor_name);
  void add_output(const std::string& tensor_name);

  // --- lookup -------------------------------------------------------------

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] std::vector<Node>& nodes() { return nodes_; }
  [[nodiscard]] const Node& node(NodeId id) const;
  /// Non-const access may rename/rewire the node: invalidates lazy indexes.
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] size_t num_nodes() const { return nodes_.size(); }

  /// Ordered tensor table (deterministic iteration for serialization).
  /// Lookups go through the interned-name index, never through this map.
  using TensorMap = std::map<std::string, TensorDesc, std::less<>>;

  [[nodiscard]] bool has_tensor(std::string_view name) const;
  [[nodiscard]] const TensorDesc& tensor(std::string_view name) const;
  [[nodiscard]] TensorDesc& tensor(std::string_view name);
  [[nodiscard]] const TensorMap& tensors() const { return tensors_; }

  [[nodiscard]] const std::vector<std::string>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<std::string>& outputs() const { return outputs_; }

  // --- interned-id lookup (the analysis hot path) --------------------------

  /// Id of an interned tensor/node name; kInvalidTensor when never seen.
  [[nodiscard]] TensorId tensor_id(std::string_view name) const;
  /// Name behind a tensor id.
  [[nodiscard]] std::string_view tensor_name(TensorId id) const;
  /// Number of interned name ids (bound for id-indexed scratch tables).
  [[nodiscard]] size_t num_tensor_ids() const;

  [[nodiscard]] bool has_tensor(TensorId id) const;
  [[nodiscard]] const TensorDesc& tensor(TensorId id) const;
  /// True when the tensor exists and is a model parameter.
  [[nodiscard]] bool tensor_is_param(TensorId id) const;
  /// True when the tensor is a declared graph output.
  [[nodiscard]] bool is_graph_output(TensorId id) const;

  /// Node that produces the tensor, or kInvalidNode for inputs/params.
  [[nodiscard]] NodeId producer(TensorId id) const;
  [[nodiscard]] NodeId producer(std::string_view tensor_name) const;

  /// Nodes consuming the tensor (in node order), as a view into the CSR
  /// adjacency — no per-query allocation.  Stable until the next mutation.
  [[nodiscard]] std::span<const NodeId> consumers(TensorId id) const;
  [[nodiscard]] std::span<const NodeId> consumers(std::string_view tensor_name) const;

  /// Interned input/output tensor ids of a node (index-cached).
  [[nodiscard]] std::span<const TensorId> node_input_ids(NodeId id) const;
  [[nodiscard]] std::span<const TensorId> node_output_ids(NodeId id) const;

  /// Interned op-type ids: per node, and by name (kInvalidOpType if absent).
  [[nodiscard]] OpTypeId op_type_id(NodeId id) const;
  [[nodiscard]] OpTypeId op_type_id(std::string_view op_type) const;

  /// Finds a node by its unique name; returns kInvalidNode when absent.
  [[nodiscard]] NodeId find_node(std::string_view node_name) const;

  /// All node ids with the given op_type, in node order (bucketed index).
  [[nodiscard]] std::span<const NodeId> nodes_of_type(std::string_view op_type) const;

  // --- analysis primitives --------------------------------------------------

  /// Topological order of node ids; throws ModelError on cycles.  Cached —
  /// the reference stays valid until the next structural mutation.
  [[nodiscard]] const std::vector<NodeId>& topo_order() const;

  /// Returns the set of nodes forming the subgraph whose external inputs are
  /// covered by `input_tensors` and which produces all `output_tensors`
  /// (paper interface `get_subgraph_ops_by_io`).  Walks backwards from the
  /// outputs over the cached adjacency, stopping at the given inputs /
  /// params / graph inputs.  Returns std::nullopt when the walk escapes the
  /// boundary (no such subgraph).
  [[nodiscard]] std::optional<std::vector<NodeId>> subgraph_by_io(
      const std::vector<std::string>& input_tensors,
      const std::vector<std::string>& output_tensors) const;
  [[nodiscard]] std::optional<std::vector<NodeId>> subgraph_by_io_ids(
      std::span<const TensorId> input_tensors,
      std::span<const TensorId> output_tensors) const;

  /// Boundary tensors of a node set: external inputs (consumed but not
  /// produced inside, excluding params unless `include_params`) and external
  /// outputs (produced inside and consumed outside or graph outputs).
  struct Boundary {
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;
    std::vector<std::string> params;
  };
  [[nodiscard]] Boundary boundary(const std::vector<NodeId>& node_set) const;

  /// Same computation on interned ids — the form the lowering/mapping hot
  /// path consumes (no string copies).
  struct BoundaryIds {
    std::vector<TensorId> inputs;
    std::vector<TensorId> outputs;
    std::vector<TensorId> params;
  };
  [[nodiscard]] BoundaryIds boundary_ids(std::span<const NodeId> node_set) const;

  /// Structural validation: unique names, inputs resolvable, no orphan
  /// outputs.  Throws ModelError with a precise message on violation.
  void validate() const;

  /// Total parameter bytes (all tensors flagged is_param).
  [[nodiscard]] int64_t param_bytes() const;
  /// Total parameter element count.
  [[nodiscard]] int64_t param_count() const;

  // --- index lifecycle ------------------------------------------------------

  /// Builds every lazy index (edges, type buckets, topo order) now, so later
  /// const lookups from concurrent threads are pure reads.
  void warm_indices() const;

  /// Copy that *keeps* the source's warm lookup state instead of resetting
  /// it: the name pool is deep-cloned id-for-id, the eager tables are
  /// re-pointed at the copy's own tensor map, and the lazy structural index
  /// (CSR adjacency, type buckets, topo order) is duplicated already-valid.
  /// Skips the ~O(names) re-interning and the first-query index rebuild the
  /// plain copy constructor pays — the win the plan cache's per-cell skeleton
  /// instantiation is built on.  Safe to call concurrently from readers of a
  /// warmed graph (all pure reads).  Under LookupMode::kLegacyMaps only the
  /// eager tables are cloned (there is no warm structural index to keep);
  /// interned ids are preserved in every mode.
  [[nodiscard]] Graph clone_warm() const;

  /// Monotonic counter bumped on every structural invalidation; lets callers
  /// detect that cached derived state (spans, topo references) went stale.
  [[nodiscard]] uint64_t index_generation() const;

  /// A/B switch for bench_graph_index and the differential fuzz tests:
  /// kLegacyMaps re-routes every lookup through the pre-interning
  /// std::map<std::string, ...> code path (and recomputes topo_order per
  /// call, as the seed implementation did).  Process-wide; not thread-safe
  /// to flip while graphs are in use.  Default: kIndexed.
  enum class LookupMode { kIndexed, kLegacyMaps };
  static void set_lookup_mode(LookupMode mode);
  [[nodiscard]] static LookupMode lookup_mode();

 private:
  struct Index;

  void init_index();
  /// Re-interns all tensor names / graph outputs after a copy.
  void rebuild_eager_tables();
  /// Interns `name` and keeps the eager id-indexed tables sized.  Const
  /// because lazy rebuilds may intern names edited through node().
  TensorId intern_name(std::string_view name) const;
  void invalidate_structure();
  /// Double-checked lazy build of the structural (edge) index.
  const Index& ensure_edges() const;
  /// As above plus the cached topological order.
  const Index& ensure_topo() const;
  void rebuild_edges(Index& ix) const;
  void rebuild_topo(Index& ix) const;
  void rebuild_legacy(Index& ix) const;
  std::vector<NodeId> legacy_topo_order() const;
  [[nodiscard]] std::optional<std::vector<NodeId>> legacy_subgraph_by_io(
      const std::vector<std::string>& input_tensors,
      const std::vector<std::string>& output_tensors) const;
  [[nodiscard]] Boundary legacy_boundary(const std::vector<NodeId>& node_set) const;

  std::string name_;
  std::vector<Node> nodes_;
  TensorMap tensors_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;

  // Eager name table: interner + id-indexed views of tensors_ (std::map
  // nodes are address-stable, so the pointers survive unrelated inserts).
  mutable StringPool names_;
  mutable std::vector<TensorDesc*> desc_of_;     ///< by TensorId; null = no desc
  mutable std::vector<uint8_t> is_output_;       ///< by TensorId

  // Lazy structural index; see graph.cpp.  unique_ptr so the atomics and
  // mutex inside don't block Graph's move operations.
  mutable std::unique_ptr<Index> index_;
};

}  // namespace proof

// Model graph IR.
//
// A Graph mirrors the information PRoof extracts from an ONNX file: a list of
// operator nodes, a tensor table (shapes/dtypes, which tensors are params),
// and the designated model inputs/outputs.  The graph also provides the
// search primitives the Optimized Analyze Representation relies on, most
// importantly subgraph extraction by boundary tensors
// (`get_subgraph_ops_by_io`, Figure 2 of the paper).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "graph/node.hpp"
#include "tensor/tensor.hpp"

namespace proof {

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- construction -------------------------------------------------------

  /// Adds a node; all of its output tensors get placeholder descs if unknown.
  NodeId add_node(Node node);

  /// Declares/overwrites a tensor description.
  void set_tensor(TensorDesc desc);

  /// Declares a model parameter (weight) tensor.
  void add_param(const std::string& name, DType dtype, Shape shape);

  /// Marks graph-level inputs/outputs.
  void add_input(const std::string& tensor_name);
  void add_output(const std::string& tensor_name);

  // --- lookup -------------------------------------------------------------

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] std::vector<Node>& nodes() { return nodes_; }
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] size_t num_nodes() const { return nodes_.size(); }

  [[nodiscard]] bool has_tensor(const std::string& name) const;
  [[nodiscard]] const TensorDesc& tensor(const std::string& name) const;
  [[nodiscard]] TensorDesc& tensor(const std::string& name);
  [[nodiscard]] const std::map<std::string, TensorDesc>& tensors() const { return tensors_; }

  [[nodiscard]] const std::vector<std::string>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<std::string>& outputs() const { return outputs_; }

  /// Node that produces `tensor_name`, or kInvalidNode for inputs/params.
  [[nodiscard]] NodeId producer(const std::string& tensor_name) const;

  /// Nodes that consume `tensor_name` (in node order).
  [[nodiscard]] std::vector<NodeId> consumers(const std::string& tensor_name) const;

  /// Finds a node by its unique name; returns kInvalidNode when absent.
  [[nodiscard]] NodeId find_node(const std::string& node_name) const;

  /// All node ids with the given op_type, in node order.
  [[nodiscard]] std::vector<NodeId> nodes_of_type(const std::string& op_type) const;

  // --- analysis primitives --------------------------------------------------

  /// Topological order of node ids; throws ModelError on cycles.
  [[nodiscard]] std::vector<NodeId> topo_order() const;

  /// Returns the set of nodes forming the subgraph whose external inputs are
  /// covered by `input_tensors` and which produces all `output_tensors`
  /// (paper interface `get_subgraph_ops_by_io`).  Walks backwards from the
  /// outputs, stopping at the given inputs / params / graph inputs.  Returns
  /// std::nullopt when the walk escapes the boundary (no such subgraph).
  [[nodiscard]] std::optional<std::vector<NodeId>> subgraph_by_io(
      const std::vector<std::string>& input_tensors,
      const std::vector<std::string>& output_tensors) const;

  /// Boundary tensors of a node set: external inputs (consumed but not
  /// produced inside, excluding params unless `include_params`) and external
  /// outputs (produced inside and consumed outside or graph outputs).
  struct Boundary {
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;
    std::vector<std::string> params;
  };
  [[nodiscard]] Boundary boundary(const std::vector<NodeId>& node_set) const;

  /// Structural validation: unique names, inputs resolvable, no orphan
  /// outputs.  Throws ModelError with a precise message on violation.
  void validate() const;

  /// Total parameter bytes (all tensors flagged is_param).
  [[nodiscard]] int64_t param_bytes() const;
  /// Total parameter element count.
  [[nodiscard]] int64_t param_count() const;

 private:
  void rebuild_indices() const;

  std::string name_;
  std::vector<Node> nodes_;
  std::map<std::string, TensorDesc> tensors_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;

  // Lazy caches, rebuilt on demand after mutation.
  mutable bool indices_valid_ = false;
  mutable std::map<std::string, NodeId> producer_of_;
  mutable std::map<std::string, std::vector<NodeId>> consumers_of_;
  mutable std::map<std::string, NodeId> node_by_name_;
};

}  // namespace proof

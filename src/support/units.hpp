// Human-readable unit formatting used by the dataviewer and benches.
#pragma once

#include <cstdint>
#include <string>

namespace proof::units {

/// "1.234 G" style SI scaling (powers of 1000) with 3 decimals.
[[nodiscard]] std::string si(double value, const std::string& unit);

/// Bytes with binary prefixes ("11669.419 MB" uses MB = 1e6 like the paper).
[[nodiscard]] std::string megabytes(double bytes);

/// FLOP count in GFLOP with 3 decimals, matching Table 3/4 formatting.
[[nodiscard]] std::string gflop(double flops);

/// Rate in TFLOP/s with 3 decimals.
[[nodiscard]] std::string tflops(double flops_per_s);

/// Rate in GB/s with 3 decimals.
[[nodiscard]] std::string gbps(double bytes_per_s);

/// Milliseconds with 3 decimals.
[[nodiscard]] std::string ms(double seconds);

/// Fixed-precision helper.
[[nodiscard]] std::string fixed(double value, int decimals);

/// Signed percentage with 2 decimals ("-19.82%").
[[nodiscard]] std::string percent(double fraction);

}  // namespace proof::units

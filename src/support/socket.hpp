// Thin POSIX socket layer for the serve daemon (src/serve/).
//
// Wraps exactly what the length-prefixed protocol needs — blocking stream
// sockets with RAII ownership, EINTR-safe full reads/writes, and listeners
// over two transports:
//  * TCP on a loopback/interface address ("host:port", port 0 = ephemeral),
//  * Unix-domain sockets ("unix:/path/to.sock") for local, permission-scoped
//    serving (the default for tests and the bench harness).
//
// Failures throw net::IoError (a proof::Error); a clean peer close is
// reported as a 0-byte read, never an exception, so protocol code can
// distinguish "client went away" from "transport broke".
#pragma once

#include <cstddef>
#include <string>
#include <utility>

#include "support/error.hpp"

namespace proof::net {

/// Thrown on socket-level failures (bind, connect, broken pipe, ...).
class IoError : public Error {
 public:
  using Error::Error;
};

/// A parsed listen/connect target: "unix:/path", "host:port" or ":port"
/// (empty host = 127.0.0.1; TCP binds are loopback-only unless a host is
/// given explicitly — a profiling daemon has no business on the open
/// internet by accident).
struct Endpoint {
  bool is_unix = false;
  std::string path;         ///< unix transport
  std::string host;         ///< tcp transport
  int port = 0;             ///< tcp transport; 0 = ephemeral

  [[nodiscard]] static Endpoint parse(const std::string& spec);
  [[nodiscard]] std::string describe() const;
};

/// RAII connected stream socket (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Reads up to `n` bytes; returns 0 on orderly peer shutdown (EOF).
  [[nodiscard]] size_t read_some(void* buf, size_t n);

  /// Reads exactly `n` bytes; returns false when EOF arrives before the first
  /// byte (clean close between frames) and throws IoError when the stream
  /// ends mid-read (truncation).
  [[nodiscard]] bool read_exact(void* buf, size_t n);

  /// Writes all `n` bytes (EINTR/partial-write safe).
  void write_all(const void* buf, size_t n);

  /// Half-close both directions; any blocked read on this socket (in another
  /// thread) wakes up with EOF.  Safe to call repeatedly.
  void shutdown_both();

  void close();

  /// A connected AF_UNIX socket pair (tests exercise framing over real fds
  /// without binding anything).
  [[nodiscard]] static std::pair<Socket, Socket> make_pair();

 private:
  int fd_ = -1;
};

/// RAII listening socket over either transport.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens; unix paths are unlinked first (stale socket files
  /// from a crashed daemon) and unlinked again on close.
  [[nodiscard]] static Listener listen(const Endpoint& endpoint, int backlog = 64);

  /// Blocks for the next connection.  Returns an invalid Socket when the
  /// listener was closed concurrently (the graceful-shutdown wakeup) and
  /// throws IoError on genuine failures.
  [[nodiscard]] Socket accept();

  /// Waits up to `timeout_ms` for a pending connection (-1 = forever).
  /// Returns false on timeout without accepting.
  [[nodiscard]] bool poll_accept(int timeout_ms);

  /// The endpoint actually bound — for TCP with port 0 this carries the
  /// kernel-assigned ephemeral port.
  [[nodiscard]] const Endpoint& endpoint() const { return endpoint_; }

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Closes the listening fd (wakes a blocked accept) and removes the unix
  /// socket file if any.
  void close();

 private:
  int fd_ = -1;
  Endpoint endpoint_;
};

/// Connects to a listening endpoint.
[[nodiscard]] Socket connect(const Endpoint& endpoint);

}  // namespace proof::net

#include "support/error.hpp"

namespace proof::detail {

void throw_check_failure(const char* file, int line, const char* expr,
                         const std::string& message) {
  std::ostringstream out;
  out << "check failed at " << file << ':' << line << " (" << expr << ")";
  if (!message.empty()) {
    out << ": " << message;
  }
  throw Error(out.str());
}

}  // namespace proof::detail

// Work-stealing thread pool shared by every sweep-shaped loop.
//
// The analytical path is the hot loop of large profiling campaigns (model x
// batch x precision x clock matrices), so the pool is tuned for coarse,
// CPU-bound, exception-throwing tasks rather than microsecond latency:
//  * per-worker deques with FIFO stealing; an idle worker steals from its
//    neighbours before sleeping;
//  * `submit` returns a std::future that propagates exceptions;
//  * `parallel_for` runs the calling thread as one of the workers, so nested
//    parallel sections can never deadlock (a pool of zero workers degrades to
//    plain serial execution);
//  * results keep deterministic ordering: `parallel_map` writes slot `i` from
//    iteration `i`, whatever thread ran it.
//
// Global parallelism is controlled by `--jobs N` on the CLI or the
// `PROOF_JOBS` environment variable; `ThreadPool::global()` is the instance
// every library sweep uses.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace proof {

class ThreadPool {
 public:
  /// `jobs` is the total parallelism including the calling thread: a pool of
  /// `jobs = N` spawns `N - 1` workers.  `jobs <= 1` spawns none and every
  /// operation runs inline on the caller (the degenerate serial pool).
  explicit ThreadPool(unsigned jobs);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (worker threads + the participating caller), >= 1.
  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Number of spawned worker threads (jobs() - 1, or 0 for a serial pool).
  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Schedules `fn` and returns its future.  On a serial pool the task runs
  /// inline before `submit` returns.  Never block on the returned future from
  /// inside a pool task without draining (`wait` does both).
  template <typename F, typename R = std::invoke_result_t<F>>
  std::future<R> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Blocks on `future` while helping to drain the pool's queues, so a task
  /// may safely submit subtasks and wait for them.
  template <typename R>
  R wait(std::future<R>& future) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!try_run_one()) {
        // Blocking briefly beats spinning when cores are oversubscribed.
        (void)future.wait_for(std::chrono::microseconds(50));
      }
    }
    return future.get();
  }

  /// Runs `body(i)` for every i in [0, n).  The caller participates, workers
  /// steal the rest; returns when all iterations finished.  The first
  /// exception thrown by any iteration is rethrown on the caller after every
  /// in-flight iteration has completed.  Safe to call from inside pool tasks.
  void parallel_for(size_t n, const std::function<void(size_t)>& body);

  /// Ordered parallel map: returns {f(0), f(1), ..., f(n-1)} with result `i`
  /// always in slot `i`, byte-identical to the serial loop.  The result type
  /// must be default-constructible.
  template <typename F, typename T = std::invoke_result_t<F, size_t>>
  std::vector<T> parallel_map(size_t n, F&& fn) {
    std::vector<T> out(n);
    parallel_for(n, [&](size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Steals and runs one pending task; false when every queue is empty.
  bool try_run_one();

  // --- global pool -----------------------------------------------------------

  /// The process-wide pool used by every library sweep.  Created on first use
  /// with `default_jobs()` parallelism.
  static ThreadPool& global();

  /// Replaces the global pool (CLI `--jobs N`).  `jobs = 0` resets to
  /// `default_jobs()`.  Not safe while global-pool sweeps are in flight.
  static void set_global_jobs(unsigned jobs);

  /// Parallelism of the global pool without forcing its creation order:
  /// `PROOF_JOBS` when set (clamped to >= 1), else hardware concurrency.
  static unsigned default_jobs();

 private:
  struct Queue;

  void enqueue(std::function<void()> fn);
  void worker_loop(size_t self);
  bool pop_task(size_t preferred, std::function<void()>& out);

  unsigned jobs_ = 1;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> next_queue_{0};
  std::atomic<size_t> pending_{0};
  std::vector<std::unique_ptr<Queue>> queues_;  // one per worker
  std::vector<std::thread> workers_;

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
};

}  // namespace proof

// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the framework (measurement jitter, synthetic
// weights) must be reproducible run-to-run, so everything draws from this
// SplitMix64 generator seeded explicitly by the caller.
#pragma once

#include <cstdint>
#include <string_view>

namespace proof {

/// SplitMix64: tiny, fast, good-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Derives a seed deterministically from a string (FNV-1a) and a salt so
  /// that e.g. per-kernel jitter depends only on the kernel identity.
  static Rng from_string(std::string_view key, uint64_t salt = 0);

  /// Next raw 64-bit value.
  uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Approximately normal(0, 1) via sum of uniforms (Irwin-Hall, 12 draws).
  double next_gaussian();

  /// Uniform integer in [0, n).
  uint64_t next_below(uint64_t n);

 private:
  uint64_t state_;
};

}  // namespace proof

#include "support/thread_pool.hpp"

#include <cstdlib>
#include <mutex>
#include <string>

#include "support/error.hpp"

namespace proof {

struct ThreadPool::Queue {
  std::mutex mu;
  std::deque<std::function<void()>> tasks;
};

ThreadPool::ThreadPool(unsigned jobs) : jobs_(jobs == 0 ? 1 : jobs) {
  const unsigned workers = jobs_ - 1;
  queues_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  {
    // Pairing the notify with the lock closes the race against a worker that
    // checked `stop_` just before blocking on the condition variable.
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::enqueue(std::function<void()> fn) {
  if (queues_.empty()) {
    fn();  // serial pool: run inline
    return;
  }
  const size_t slot = next_queue_.fetch_add(1) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mu);
    queues_[slot]->tasks.push_back(std::move(fn));
  }
  {
    // Pairing the increment + notify with the lock closes the lost-wakeup
    // race against a worker that evaluated the wait predicate (pending_ == 0)
    // but has not yet blocked on the condition variable.
    std::lock_guard<std::mutex> lock(sleep_mu_);
    pending_.fetch_add(1);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::pop_task(size_t preferred, std::function<void()>& out) {
  const size_t n = queues_.size();
  // Own queue first (LIFO for locality), then steal FIFO from the others.
  for (size_t attempt = 0; attempt < n; ++attempt) {
    Queue& q = *queues_[(preferred + attempt) % n];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) {
      continue;
    }
    if (attempt == 0) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
    } else {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
    }
    pending_.fetch_sub(1);
    return true;
  }
  return false;
}

bool ThreadPool::try_run_one() {
  if (queues_.empty() || pending_.load() == 0) {
    return false;
  }
  std::function<void()> task;
  if (!pop_task(next_queue_.load() % queues_.size(), task)) {
    return false;
  }
  task();
  return true;
}

void ThreadPool::worker_loop(size_t self) {
  while (true) {
    std::function<void()> task;
    if (pop_task(self, task)) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleep_cv_.wait(lock, [this] { return stop_.load() || pending_.load() > 0; });
    if (stop_.load() && pending_.load() == 0) {
      return;
    }
  }
}

void ThreadPool::parallel_for(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) {
    return;
  }
  if (queues_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }

  // Shared iteration counter; every participant (caller + helpers) loops
  // grabbing the next index.  The caller always participates, so progress is
  // guaranteed even when every worker is stuck in outer-level tasks.
  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<bool> abort{false};
    std::mutex error_mu;
    std::exception_ptr error;
    size_t n;
    const std::function<void(size_t)>* body;
  };
  auto shared = std::make_shared<Shared>();
  shared->n = n;
  shared->body = &body;

  const auto drain = [](const std::shared_ptr<Shared>& s) {
    size_t i;
    while ((i = s->next.fetch_add(1)) < s->n) {
      if (s->abort.load()) {
        s->done.fetch_add(1);
        continue;  // count skipped iterations so the caller can leave
      }
      try {
        (*s->body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s->error_mu);
        if (!s->error) {
          s->error = std::current_exception();
        }
        s->abort.store(true);
      }
      s->done.fetch_add(1);
    }
  };

  const size_t helpers = std::min<size_t>(workers_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    enqueue([shared, drain] { drain(shared); });
  }
  drain(shared);
  while (shared->done.load() < shared->n) {
    // Helpers may still be mid-iteration (or not yet started if the pool is
    // saturated by outer tasks); help drain unrelated work meanwhile.  Sleep
    // rather than spin when there is nothing to steal — on machines with
    // fewer cores than jobs a hot wait loop starves the very helpers it is
    // waiting for.
    if (!try_run_one()) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  if (shared->error) {
    std::rethrow_exception(shared->error);
  }
}

namespace {

std::mutex g_global_mu;
std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool>* slot = new std::unique_ptr<ThreadPool>();
  return *slot;
}

}  // namespace

unsigned ThreadPool::default_jobs() {
  if (const char* env = std::getenv("PROOF_JOBS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 0) {
      return parsed < 1 ? 1u : static_cast<unsigned>(parsed);
    }
    throw ConfigError("PROOF_JOBS must be a non-negative integer, got '" +
                      std::string(env) + "'");
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (!global_slot()) {
    global_slot() = std::make_unique<ThreadPool>(default_jobs());
  }
  return *global_slot();
}

void ThreadPool::set_global_jobs(unsigned jobs) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  global_slot() =
      std::make_unique<ThreadPool>(jobs == 0 ? default_jobs() : jobs);
}

}  // namespace proof

// Error handling primitives for PRoof.
//
// The framework uses exceptions for unrecoverable contract violations
// (malformed graphs, unknown operators, bad configurations).  Every throw
// goes through proof::Error so callers can catch one type at the API
// boundary.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace proof {

/// Base exception for all PRoof failures.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Thrown when an input model or serialized file is structurally invalid.
class ModelError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a configuration (platform, backend, dtype, batch) is invalid.
class ConfigError : public Error {
 public:
  using Error::Error;
};

namespace detail {

[[noreturn]] void throw_check_failure(const char* file, int line, const char* expr,
                                      const std::string& message);

/// Stream-style message builder used by PROOF_CHECK.
class MessageStream {
 public:
  template <typename T>
  MessageStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  [[nodiscard]] std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace proof

/// Contract check: throws proof::Error with file/line context when `cond` is
/// false.  Usage: PROOF_CHECK(a == b, "mismatch: " << a << " vs " << b);
#define PROOF_CHECK(cond, msg)                                                  \
  do {                                                                          \
    if (!(cond)) {                                                              \
      ::proof::detail::throw_check_failure(__FILE__, __LINE__, #cond,           \
                                           (::proof::detail::MessageStream{} << msg).str()); \
    }                                                                           \
  } while (false)

/// Unconditional failure with message.
#define PROOF_FAIL(msg) PROOF_CHECK(false, msg)

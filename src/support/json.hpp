// Minimal JSON document model + recursive-descent parser for the serve
// protocol (src/serve/).
//
// The framework's report serializers (core/report_json.cpp, obs/self_profile)
// only ever *write* JSON; the profiling-as-a-service daemon also has to
// *read* request payloads off the wire.  This parser covers the full JSON
// grammar with two properties the protocol layer relies on:
//  * every parsed value remembers its raw byte span [raw_begin, raw_end) in
//    the input, so a sub-document (e.g. the "report" of an analyze response)
//    can be spliced back out verbatim — byte-identical to what the producer
//    serialized, immune to number-formatting round-trip drift;
//  * malformed input always throws json::ParseError (a proof::Error) with
//    a byte offset, never crashes or reads out of bounds — the server turns
//    these into typed protocol error responses.
//
// Not a performance-critical path: requests are tiny compared to the
// profiling work they trigger.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace proof::json {

/// Thrown on malformed input; the message includes the byte offset.
class ParseError : public Error {
 public:
  using Error::Error;
};

class Value {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<Value> array;
  /// Insertion-ordered; duplicate keys keep the last occurrence reachable
  /// via find() (it scans back to front).
  std::vector<std::pair<std::string, Value>> object;
  /// Byte span of this value in the parsed input (see raw()).
  size_t raw_begin = 0;
  size_t raw_end = 0;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  // Typed accessors with defaults (loose: a missing/mistyped field yields the
  // default; use require_* in the protocol layer for mandatory fields).
  [[nodiscard]] std::string as_string(std::string default_value = "") const;
  [[nodiscard]] double as_double(double default_value = 0.0) const;
  [[nodiscard]] int64_t as_int(int64_t default_value = 0) const;
  [[nodiscard]] bool as_bool(bool default_value = false) const;

  // Convenience: member access + typed coercion in one call.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string default_value = "") const;
  [[nodiscard]] double get_double(std::string_view key,
                                  double default_value = 0.0) const;
  [[nodiscard]] int64_t get_int(std::string_view key,
                                int64_t default_value = 0) const;
  [[nodiscard]] bool get_bool(std::string_view key,
                              bool default_value = false) const;
};

/// Parses one JSON document; trailing non-whitespace throws.  The returned
/// tree's raw spans index into `text`, which the caller must keep alive for
/// raw() extraction.
[[nodiscard]] Value parse(std::string_view text);

/// The verbatim bytes of `value` inside the `text` it was parsed from.
[[nodiscard]] std::string_view raw(const Value& value, std::string_view text);

/// Escapes `text` for embedding inside a JSON string literal (adds no
/// surrounding quotes); matches the report serializers' escaping.
[[nodiscard]] std::string escape(std::string_view text);

/// `"escaped"` with quotes — the common case when hand-writing documents.
[[nodiscard]] std::string quote(std::string_view text);

}  // namespace proof::json

#include "support/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace proof::units {

std::string fixed(double value, int decimals) {
  std::array<char, 64> buffer{};
  std::snprintf(buffer.data(), buffer.size(), "%.*f", decimals, value);
  return std::string(buffer.data());
}

std::string si(double value, const std::string& unit) {
  static constexpr std::array<const char*, 7> kPrefixes = {"", "K", "M", "G", "T", "P", "E"};
  size_t idx = 0;
  double scaled = value;
  while (std::abs(scaled) >= 1000.0 && idx + 1 < kPrefixes.size()) {
    scaled /= 1000.0;
    ++idx;
  }
  return fixed(scaled, 3) + " " + kPrefixes[idx] + unit;
}

std::string megabytes(double bytes) { return fixed(bytes / 1e6, 3) + " MB"; }

std::string gflop(double flops) { return fixed(flops / 1e9, 3) + " GFLOP"; }

std::string tflops(double flops_per_s) { return fixed(flops_per_s / 1e12, 3) + " TFLOP/s"; }

std::string gbps(double bytes_per_s) { return fixed(bytes_per_s / 1e9, 3) + " GB/s"; }

std::string ms(double seconds) { return fixed(seconds * 1e3, 3) + " ms"; }

std::string percent(double fraction) {
  const double pct = fraction * 100.0;
  const std::string body = fixed(pct, 2) + "%";
  return pct >= 0.0 ? "+" + body : body;
}

}  // namespace proof::units

#include "support/rng.hpp"

#include "support/error.hpp"

namespace proof {

Rng Rng::from_string(std::string_view key, uint64_t salt) {
  // FNV-1a 64-bit over the key bytes, mixed with the salt.
  uint64_t hash = 1469598103934665603ULL;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  hash ^= salt + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
  return Rng(hash);
}

uint64_t Rng::next_u64() {
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::next_gaussian() {
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) {
    sum += next_double();
  }
  return sum - 6.0;
}

uint64_t Rng::next_below(uint64_t n) {
  PROOF_CHECK(n > 0, "next_below: n must be positive");
  return next_u64() % n;
}

}  // namespace proof

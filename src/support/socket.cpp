#include "support/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/strings.hpp"

namespace proof::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

int checked_socket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) {
    throw_errno("socket()");
  }
  return fd;
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PROOF_CHECK(path.size() < sizeof(addr.sun_path),
              "unix socket path too long (" << path.size() << " bytes, max "
                                            << sizeof(addr.sun_path) - 1
                                            << "): " << path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(ep.port));
  const std::string host = ep.host.empty() ? "127.0.0.1" : ep.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw IoError("invalid IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

// --- Endpoint ----------------------------------------------------------------

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint ep;
  if (strings::starts_with(spec, "unix:")) {
    ep.is_unix = true;
    ep.path = spec.substr(5);
    PROOF_CHECK(!ep.path.empty(), "unix endpoint needs a path: '" << spec << "'");
    return ep;
  }
  const size_t colon = spec.rfind(':');
  PROOF_CHECK(colon != std::string::npos,
              "endpoint must be 'unix:/path' or 'host:port', got '" << spec
                                                                    << "'");
  ep.host = spec.substr(0, colon);
  const long long port = strings::parse_int(spec.substr(colon + 1));
  PROOF_CHECK(port >= 0 && port <= 65535,
              "port out of range in endpoint '" << spec << "'");
  ep.port = static_cast<int>(port);
  return ep;
}

std::string Endpoint::describe() const {
  if (is_unix) {
    return "unix:" + path;
  }
  return (host.empty() ? "127.0.0.1" : host) + ":" + std::to_string(port);
}

// --- Socket ------------------------------------------------------------------

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

size_t Socket::read_some(void* buf, size_t n) {
  PROOF_CHECK(valid(), "read on a closed socket");
  while (true) {
    const ssize_t got = ::recv(fd_, buf, n, 0);
    if (got >= 0) {
      return static_cast<size_t>(got);
    }
    if (errno == EINTR) {
      continue;
    }
    throw_errno("recv()");
  }
}

bool Socket::read_exact(void* buf, size_t n) {
  char* out = static_cast<char*>(buf);
  size_t done = 0;
  while (done < n) {
    const size_t got = read_some(out + done, n - done);
    if (got == 0) {
      if (done == 0) {
        return false;  // clean EOF on a message boundary
      }
      throw IoError("connection closed mid-read (" + std::to_string(done) +
                    " of " + std::to_string(n) + " bytes)");
    }
    done += got;
  }
  return true;
}

void Socket::write_all(const void* buf, size_t n) {
  PROOF_CHECK(valid(), "write on a closed socket");
  const char* data = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < n) {
    // MSG_NOSIGNAL: a dying peer surfaces as EPIPE -> IoError, not SIGPIPE.
    const ssize_t sent = ::send(fd_, data + done, n - done, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("send()");
    }
    done += static_cast<size_t>(sent);
  }
}

void Socket::shutdown_both() {
  if (valid()) {
    ::shutdown(fd_, SHUT_RDWR);  // already-closed peers make this ENOTCONN; fine
  }
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Socket, Socket> Socket::make_pair() {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw_errno("socketpair()");
  }
  return {Socket(fds[0]), Socket(fds[1])};
}

// --- Listener ----------------------------------------------------------------

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), endpoint_(std::move(other.endpoint_)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    endpoint_ = std::move(other.endpoint_);
  }
  return *this;
}

Listener Listener::listen(const Endpoint& endpoint, int backlog) {
  Listener l;
  l.endpoint_ = endpoint;
  if (endpoint.is_unix) {
    l.fd_ = checked_socket(AF_UNIX);
    ::unlink(endpoint.path.c_str());  // stale file from a crashed daemon
    const sockaddr_un addr = unix_addr(endpoint.path);
    if (::bind(l.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw_errno("bind(" + endpoint.describe() + ")");
    }
  } else {
    l.fd_ = checked_socket(AF_INET);
    const int one = 1;
    ::setsockopt(l.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = tcp_addr(endpoint);
    if (::bind(l.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw_errno("bind(" + endpoint.describe() + ")");
    }
    if (endpoint.port == 0) {  // report the kernel-assigned ephemeral port
      socklen_t len = sizeof(addr);
      if (::getsockname(l.fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        throw_errno("getsockname()");
      }
      l.endpoint_.port = ntohs(addr.sin_port);
    }
  }
  if (::listen(l.fd_, backlog) != 0) {
    throw_errno("listen(" + endpoint.describe() + ")");
  }
  return l;
}

Socket Listener::accept() {
  while (true) {
    if (!valid()) {
      return Socket();  // closed concurrently during shutdown
    }
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      if (!endpoint_.is_unix) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      return Socket(fd);
    }
    if (errno == EINTR || errno == ECONNABORTED) {
      continue;
    }
    if (errno == EBADF || errno == EINVAL) {
      return Socket();  // listener torn down under us
    }
    throw_errno("accept()");
  }
}

bool Listener::poll_accept(int timeout_ms) {
  PROOF_CHECK(valid(), "poll on a closed listener");
  pollfd pfd{fd_, POLLIN, 0};
  while (true) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) {
      return true;
    }
    if (n == 0) {
      return false;
    }
    if (errno == EINTR) {
      continue;
    }
    throw_errno("poll()");
  }
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (endpoint_.is_unix) {
      ::unlink(endpoint_.path.c_str());
    }
  }
}

// --- connect -----------------------------------------------------------------

Socket connect(const Endpoint& endpoint) {
  if (endpoint.is_unix) {
    Socket s(checked_socket(AF_UNIX));
    const sockaddr_un addr = unix_addr(endpoint.path);
    if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw_errno("connect(" + endpoint.describe() + ")");
    }
    return s;
  }
  Socket s(checked_socket(AF_INET));
  const sockaddr_in addr = tcp_addr(endpoint);
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("connect(" + endpoint.describe() + ")");
  }
  const int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

}  // namespace proof::net

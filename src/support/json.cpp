#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace proof::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr size_t kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("JSON parse error at byte " + std::to_string(pos_) + ": " +
                     what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value parse_value(size_t depth) {
    if (depth > kMaxDepth) {
      fail("nesting deeper than " + std::to_string(kMaxDepth) + " levels");
    }
    skip_ws();
    Value v;
    v.raw_begin = pos_;
    const char c = peek();
    switch (c) {
      case '{':
        parse_object(v, depth);
        break;
      case '[':
        parse_array(v, depth);
        break;
      case '"':
        v.kind = Value::Kind::kString;
        v.string_value = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) {
          fail("invalid literal");
        }
        v.kind = Value::Kind::kBool;
        v.bool_value = true;
        break;
      case 'f':
        if (!consume_literal("false")) {
          fail("invalid literal");
        }
        v.kind = Value::Kind::kBool;
        v.bool_value = false;
        break;
      case 'n':
        if (!consume_literal("null")) {
          fail("invalid literal");
        }
        v.kind = Value::Kind::kNull;
        break;
      default:
        v.kind = Value::Kind::kNumber;
        v.number_value = parse_number();
        break;
    }
    v.raw_end = pos_;
    return v;
  }

  void parse_object(Value& v, size_t depth) {
    v.kind = Value::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      if (sep == ',') {
        ++pos_;
        continue;
      }
      if (sep == '}') {
        ++pos_;
        return;
      }
      fail("expected ',' or '}' in object");
    }
  }

  void parse_array(Value& v, size_t depth) {
    v.kind = Value::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      if (sep == ',') {
        ++pos_;
        continue;
      }
      if (sep == ']') {
        ++pos_;
        return;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // consume backslash
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape character");
      }
    }
  }

  uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: expect a pair
      if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
          text_[pos_ + 1] == 'u') {
        pos_ += 2;
        const uint32_t low = parse_hex4();
        if (low < 0xDC00 || low > 0xDFFF) {
          fail("invalid low surrogate");
        }
        cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
      } else {
        fail("unpaired high surrogate");
      }
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  double parse_number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    auto digits = [&] {
      const size_t before = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return pos_ > before;
    };
    const size_t int_start = pos_;
    if (!digits()) {
      fail("invalid number");
    }
    // JSON forbids leading zeros ("01"); a lone 0 is fine.
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) {
        fail("digits required after decimal point");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) {
        fail("digits required in exponent");
      }
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || end != text_.data() + pos_) {
      fail("number out of range");
    }
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (auto it = object.rbegin(); it != object.rend(); ++it) {
    if (it->first == key) {
      return &it->second;
    }
  }
  return nullptr;
}

std::string Value::as_string(std::string default_value) const {
  return kind == Kind::kString ? string_value : std::move(default_value);
}

double Value::as_double(double default_value) const {
  return kind == Kind::kNumber ? number_value : default_value;
}

int64_t Value::as_int(int64_t default_value) const {
  if (kind != Kind::kNumber) {
    return default_value;
  }
  return static_cast<int64_t>(std::llround(number_value));
}

bool Value::as_bool(bool default_value) const {
  return kind == Kind::kBool ? bool_value : default_value;
}

std::string Value::get_string(std::string_view key,
                              std::string default_value) const {
  const Value* v = find(key);
  return v == nullptr ? std::move(default_value)
                      : v->as_string(std::move(default_value));
}

double Value::get_double(std::string_view key, double default_value) const {
  const Value* v = find(key);
  return v == nullptr ? default_value : v->as_double(default_value);
}

int64_t Value::get_int(std::string_view key, int64_t default_value) const {
  const Value* v = find(key);
  return v == nullptr ? default_value : v->as_int(default_value);
}

bool Value::get_bool(std::string_view key, bool default_value) const {
  const Value* v = find(key);
  return v == nullptr ? default_value : v->as_bool(default_value);
}

Value parse(std::string_view text) { return Parser(text).run(); }

std::string_view raw(const Value& value, std::string_view text) {
  PROOF_CHECK(value.raw_end >= value.raw_begin && value.raw_end <= text.size(),
              "raw span [" << value.raw_begin << ", " << value.raw_end
                           << ") does not fit the given text ("
                           << text.size() << " bytes)");
  return text.substr(value.raw_begin, value.raw_end - value.raw_begin);
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string quote(std::string_view text) { return "\"" + escape(text) + "\""; }

}  // namespace proof::json

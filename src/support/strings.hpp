// Small string utilities shared across the framework.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace proof::strings {

/// Splits `text` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Splits and drops empty fields after trimming whitespace from each field.
[[nodiscard]] std::vector<std::string> split_trimmed(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);
[[nodiscard]] bool contains(std::string_view text, std::string_view needle);

/// Replaces every occurrence of `from` with `to`.
[[nodiscard]] std::string replace_all(std::string_view text, std::string_view from,
                                      std::string_view to);

/// Parses a signed integer; throws proof::Error on malformed input.
[[nodiscard]] long long parse_int(std::string_view text);

/// Parses a double; throws proof::Error on malformed input.
[[nodiscard]] double parse_double(std::string_view text);

}  // namespace proof::strings

#include "support/strings.hpp"

#include <cctype>
#include <charconv>

#include "support/error.hpp"

namespace proof::strings {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_trimmed(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (const auto& field : split(text, sep)) {
    const std::string_view trimmed = trim(field);
    if (!trimmed.empty()) {
      out.emplace_back(trimmed);
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string_view text, std::string_view from, std::string_view to) {
  PROOF_CHECK(!from.empty(), "replace_all: empty pattern");
  std::string out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

long long parse_int(std::string_view text) {
  const std::string_view trimmed = trim(text);
  long long value = 0;
  const auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  PROOF_CHECK(ec == std::errc{} && ptr == trimmed.data() + trimmed.size(),
              "malformed integer: '" << std::string(text) << "'");
  return value;
}

double parse_double(std::string_view text) {
  const std::string trimmed{trim(text)};
  PROOF_CHECK(!trimmed.empty(), "malformed double: empty string");
  size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(trimmed, &consumed);
  } catch (const std::exception&) {
    PROOF_FAIL("malformed double: '" << trimmed << "'");
  }
  PROOF_CHECK(consumed == trimmed.size(), "malformed double: '" << trimmed << "'");
  return value;
}

}  // namespace proof::strings

// Critical-path engine over multi-stream execution timelines.
//
// Reconstructs the execution DAG from an emitted timeline — program-order
// edges between consecutive events on the same stream plus the explicit
// cross-stream sync edges — and runs classic CPM over it: forward pass for
// earliest start/finish (the longest path gives `critical_path_ns`), backward
// pass for latest start/finish, and per-layer slack = latest − earliest
// start.  Layers with zero slack gate the end-to-end latency; layers with
// large slack are free to get slower without moving the makespan, which is
// exactly the prioritization signal a time-based roofline wants (Wang et al.,
// arXiv:2009.04598; DAG mining after DeepProf, arXiv:1707.03750).
//
// On a single-stream timeline the DAG degenerates to a chain, so
// critical_path_ns equals the serial latency sum and every layer is critical
// — the seed-faithful baseline the tests pin down.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/critical_path/timeline.hpp"

namespace proof::critpath {

/// Execution DAG reconstructed from a timeline; indices are event indices.
struct Dag {
  std::vector<std::vector<int>> preds;
  std::vector<std::vector<int>> succs;
  size_t num_edges = 0;
};

/// Program order per stream (events sorted by start time) + sync edges,
/// deduplicated.  Uses only what the timeline records — stream ids, start
/// times and syncs — never the scheduler's internal dependency lists.
[[nodiscard]] Dag reconstruct_dag(const ExecutionTimeline& timeline);

/// CPM result for one backend layer (one timeline event).
struct LayerStats {
  int layer = -1;
  int stream = 0;
  double start_ns = 0.0;
  double dur_ns = 0.0;
  double earliest_start_ns = 0.0;  ///< forward-pass earliest dispatch time
  double latest_start_ns = 0.0;    ///< latest dispatch that keeps the makespan
  double slack_ns = 0.0;           ///< total float: latest − earliest start
  /// dur / (dur + slack) ∈ (0, 1]: 1 on the critical path, → 0 as the layer
  /// drowns in float.  The ranking weight for the layer-wise roofline.
  double criticality = 0.0;
  bool on_critical_path = false;   ///< member of the extracted longest path
};

struct Report {
  int num_streams = 1;
  double critical_path_ns = 0.0;  ///< longest path through the execution DAG
  double makespan_ns = 0.0;       ///< observed wall-clock span of the timeline
  double serial_sum_ns = 0.0;     ///< sum of all layer durations
  /// serial_sum / critical_path — how much the multi-stream dispatch bought.
  double parallel_speedup = 1.0;
  size_t sync_count = 0;          ///< cross-stream sync edges in the timeline
  size_t edge_count = 0;          ///< edges of the reconstructed DAG
  /// Indexed by backend layer (same order as ProfileReport::layers).
  std::vector<LayerStats> layers;
  /// Layer indices along the extracted critical path, in execution order.
  std::vector<int> critical_layers;
};

/// Full analysis: DAG reconstruction + CPM + slack/criticality assignment.
[[nodiscard]] Report analyze(const ExecutionTimeline& timeline);

}  // namespace proof::critpath

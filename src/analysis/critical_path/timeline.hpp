// Multi-stream execution timeline — the data the backend sims emit and the
// critical-path engine consumes (ROADMAP: trace-derived execution DAG).
//
// Real inference runtimes dispatch independent branches on separate hardware
// queues (CUDA streams, OpenVINO infer streams, ONNX Runtime inter-op
// threads).  A timeline records what actually executed: one event per backend
// layer with its stream, start time and duration, plus the explicit
// cross-stream synchronization edges the schedule required.  Timestamps are
// double nanoseconds so a single-stream timeline sums to the serial latency
// exactly (no per-event integer rounding).
//
// The types live under analysis/ (not backends/) so the critical-path engine
// can consume timelines without depending on the backend library; backends
// depend on analysis already.
#pragma once

#include <string>
#include <vector>

namespace proof {

/// How a backend dispatches independent work — each simulated runtime
/// declares the concurrency surface of the engine it models.
struct StreamPolicy {
  /// Hardware queues the runtime can target (1 = strictly serial).
  int max_streams = 1;
  /// Trace lane naming: "<lane_name> <index>" (e.g. "cuda stream 2").
  std::string lane_name = "stream";
};

/// One backend-layer execution on a stream.
struct TimelineEvent {
  int layer = -1;    ///< index into Engine::layers() / ProfileReport::layers
  int stream = 0;    ///< 0-based stream the layer was dispatched on
  double start_ns = 0.0;
  double dur_ns = 0.0;
  /// Data dependencies (producer layer indices) this dispatch waited on.
  std::vector<int> deps;

  [[nodiscard]] double end_ns() const { return start_ns + dur_ns; }
};

/// An explicit cross-stream wait: `to_layer`'s stream blocked on an event
/// recorded at `from_layer`'s completion (cudaStreamWaitEvent-style).
struct SyncEvent {
  int from_layer = -1;
  int to_layer = -1;
};

/// Everything a backend emits about one simulated execution.
struct ExecutionTimeline {
  int num_streams = 1;
  std::string lane_name = "stream";  ///< from the backend's StreamPolicy
  /// In dispatch order (layer order); per-stream starts are nondecreasing.
  std::vector<TimelineEvent> events;
  std::vector<SyncEvent> syncs;
  double makespan_ns = 0.0;  ///< max end_ns over events (wall-clock span)

  /// Sum of all event durations — the serial execution time.
  [[nodiscard]] double serial_sum_ns() const {
    double total = 0.0;
    for (const TimelineEvent& e : events) {
      total += e.dur_ns;
    }
    return total;
  }
};

}  // namespace proof

#include "analysis/critical_path/critical_path.hpp"

#include <algorithm>
#include <limits>

#include "obs/span.hpp"
#include "support/error.hpp"

namespace proof::critpath {

namespace {

/// Kahn topological order over the reconstructed DAG, lowest event index
/// first among ready events — deterministic and independent of how the
/// timeline happened to order its event list.
std::vector<int> topo_order(const Dag& dag) {
  const size_t n = dag.preds.size();
  std::vector<int> in_degree(n, 0);
  for (size_t v = 0; v < n; ++v) {
    in_degree[v] = static_cast<int>(dag.preds[v].size());
  }
  // Ready set kept sorted by draining a min-heap-free sweep: indices enter in
  // increasing order and the queue is consumed front to back; ties resolve by
  // insertion order, which is ascending for the initial sources.
  std::vector<int> order;
  order.reserve(n);
  std::vector<int> ready;
  for (size_t v = 0; v < n; ++v) {
    if (in_degree[v] == 0) {
      ready.push_back(static_cast<int>(v));
    }
  }
  size_t head = 0;
  while (head < ready.size()) {
    const int u = ready[head++];
    order.push_back(u);
    for (const int v : dag.succs[u]) {
      if (--in_degree[v] == 0) {
        ready.push_back(v);
      }
    }
  }
  PROOF_CHECK(order.size() == n,
              "execution timeline DAG has a cycle (" << order.size() << " of "
                                                     << n << " events ordered)");
  return order;
}

}  // namespace

Dag reconstruct_dag(const ExecutionTimeline& timeline) {
  const size_t n = timeline.events.size();
  Dag dag;
  dag.preds.resize(n);
  dag.succs.resize(n);
  if (n == 0) {
    return dag;
  }

  const auto add_edge = [&](int u, int v) {
    if (u < 0 || v < 0 || u == v) {
      return;
    }
    std::vector<int>& out = dag.succs[static_cast<size_t>(u)];
    if (std::find(out.begin(), out.end(), v) == out.end()) {
      out.push_back(v);
      dag.preds[static_cast<size_t>(v)].push_back(u);
      ++dag.num_edges;
    }
  };

  // Program order: consecutive events on the same stream, by start time.
  int max_stream = 0;
  int max_layer = -1;
  for (const TimelineEvent& e : timeline.events) {
    max_stream = std::max(max_stream, e.stream);
    max_layer = std::max(max_layer, e.layer);
  }
  std::vector<std::vector<int>> by_stream(static_cast<size_t>(max_stream) + 1);
  for (size_t i = 0; i < n; ++i) {
    const int stream = timeline.events[i].stream;
    PROOF_CHECK(stream >= 0, "timeline event " << i << " has negative stream");
    by_stream[static_cast<size_t>(stream)].push_back(static_cast<int>(i));
  }
  for (std::vector<int>& lane : by_stream) {
    std::stable_sort(lane.begin(), lane.end(), [&](int a, int b) {
      return timeline.events[static_cast<size_t>(a)].start_ns <
             timeline.events[static_cast<size_t>(b)].start_ns;
    });
    for (size_t i = 1; i < lane.size(); ++i) {
      add_edge(lane[i - 1], lane[i]);
    }
  }

  // Cross-stream sync edges, resolved from layer ids to event indices.
  std::vector<int> event_of_layer(static_cast<size_t>(max_layer) + 1, -1);
  for (size_t i = 0; i < n; ++i) {
    const int layer = timeline.events[i].layer;
    if (layer >= 0) {
      event_of_layer[static_cast<size_t>(layer)] = static_cast<int>(i);
    }
  }
  const auto event_of = [&](int layer) {
    return layer >= 0 && layer <= max_layer
               ? event_of_layer[static_cast<size_t>(layer)]
               : -1;
  };
  for (const SyncEvent& sync : timeline.syncs) {
    add_edge(event_of(sync.from_layer), event_of(sync.to_layer));
  }
  return dag;
}

Report analyze(const ExecutionTimeline& timeline) {
  PROOF_SPAN("critical_path.analyze");
  PROOF_COUNT("critical_path.runs", 1);
  PROOF_COUNT("critical_path.events",
              static_cast<int64_t>(timeline.events.size()));
  PROOF_COUNT("critical_path.sync_edges",
              static_cast<int64_t>(timeline.syncs.size()));

  Report report;
  report.num_streams = timeline.num_streams;
  report.sync_count = timeline.syncs.size();
  const size_t n = timeline.events.size();
  if (n == 0) {
    return report;
  }

  const Dag dag = reconstruct_dag(timeline);
  report.edge_count = dag.num_edges;
  const std::vector<int> order = topo_order(dag);

  // Forward pass: earliest start/finish; the longest finish is the critical
  // path length.  Backward pass: latest finish that preserves it.
  std::vector<double> earliest_start(n, 0.0);
  std::vector<double> earliest_finish(n, 0.0);
  for (const int u : order) {
    const size_t ui = static_cast<size_t>(u);
    double start = 0.0;
    for (const int p : dag.preds[ui]) {
      start = std::max(start, earliest_finish[static_cast<size_t>(p)]);
    }
    earliest_start[ui] = start;
    earliest_finish[ui] = start + timeline.events[ui].dur_ns;
  }
  double critical_path = 0.0;
  double makespan = 0.0;
  for (size_t i = 0; i < n; ++i) {
    critical_path = std::max(critical_path, earliest_finish[i]);
    makespan = std::max(makespan, timeline.events[i].end_ns());
  }
  std::vector<double> latest_start(n, 0.0);
  {
    std::vector<double> latest_finish(n, critical_path);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const size_t ui = static_cast<size_t>(*it);
      double finish = critical_path;
      for (const int s : dag.succs[ui]) {
        finish = std::min(finish, latest_start[static_cast<size_t>(s)]);
      }
      latest_finish[ui] = finish;
      latest_start[ui] = finish - timeline.events[ui].dur_ns;
    }
  }

  report.critical_path_ns = critical_path;
  report.makespan_ns = makespan;
  report.serial_sum_ns = timeline.serial_sum_ns();
  report.parallel_speedup =
      critical_path > 0.0 ? report.serial_sum_ns / critical_path : 1.0;

  // Extract one longest path: start from the sink with the maximal earliest
  // finish, walk back through the predecessor that set each earliest start.
  // Ties break toward the lowest event index, so the path is deterministic.
  int cursor = 0;
  for (size_t i = 1; i < n; ++i) {
    if (earliest_finish[i] > earliest_finish[static_cast<size_t>(cursor)]) {
      cursor = static_cast<int>(i);
    }
  }
  std::vector<int> path_events;
  while (cursor >= 0) {
    path_events.push_back(cursor);
    const std::vector<int>& preds = dag.preds[static_cast<size_t>(cursor)];
    int best = -1;
    for (const int p : preds) {
      if (best < 0 ||
          earliest_finish[static_cast<size_t>(p)] >
              earliest_finish[static_cast<size_t>(best)] ||
          (earliest_finish[static_cast<size_t>(p)] ==
               earliest_finish[static_cast<size_t>(best)] &&
           p < best)) {
        best = p;
      }
    }
    cursor = best;
  }
  std::reverse(path_events.begin(), path_events.end());

  // Per-layer stats, indexed by backend layer id.
  int max_layer = -1;
  for (const TimelineEvent& e : timeline.events) {
    max_layer = std::max(max_layer, e.layer);
  }
  report.layers.assign(static_cast<size_t>(max_layer) + 1, LayerStats{});
  const double tolerance = 1e-9 * std::max(critical_path, 1.0);
  for (size_t i = 0; i < n; ++i) {
    const TimelineEvent& event = timeline.events[i];
    if (event.layer < 0) {
      continue;
    }
    LayerStats& stats = report.layers[static_cast<size_t>(event.layer)];
    stats.layer = event.layer;
    stats.stream = event.stream;
    stats.start_ns = event.start_ns;
    stats.dur_ns = event.dur_ns;
    stats.earliest_start_ns = earliest_start[i];
    stats.latest_start_ns = latest_start[i];
    stats.slack_ns = std::max(0.0, latest_start[i] - earliest_start[i]);
    if (stats.slack_ns <= tolerance) {
      stats.slack_ns = 0.0;
    }
    stats.criticality = event.dur_ns > 0.0
                            ? event.dur_ns / (event.dur_ns + stats.slack_ns)
                            : (stats.slack_ns == 0.0 ? 1.0 : 0.0);
  }
  report.critical_layers.reserve(path_events.size());
  for (const int e : path_events) {
    const int layer = timeline.events[static_cast<size_t>(e)].layer;
    if (layer >= 0) {
      report.critical_layers.push_back(layer);
      report.layers[static_cast<size_t>(layer)].on_critical_path = true;
    }
  }
  return report;
}

}  // namespace proof::critpath

// Reference graph executor.
//
// Runs a model graph on the CPU using the operator defines' reference
// implementations, materializing parameters as deterministic pseudo-random
// tensors.  Used to validate shape inference and operator semantics (the
// profiling pipeline itself never needs numerics).
#pragma once

#include <map>
#include <string>

#include "graph/graph.hpp"

namespace proof {

class ReferenceExecutor {
 public:
  /// The graph must outlive the executor and have inferred shapes.
  explicit ReferenceExecutor(const Graph& graph);

  /// Executes the graph on the given input feeds; returns every tensor
  /// produced (inputs + params + intermediates + outputs).  Throws when an
  /// operator lacks a reference implementation.
  [[nodiscard]] std::map<std::string, Tensor> run(
      const std::map<std::string, Tensor>& feeds) const;

  /// Convenience: runs with pseudo-random inputs and returns the outputs.
  [[nodiscard]] std::map<std::string, Tensor> run_random() const;

  /// True when every node in the graph has a reference implementation.
  [[nodiscard]] bool fully_supported() const;

 private:
  const Graph* graph_;
};

}  // namespace proof

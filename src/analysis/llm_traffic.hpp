// KV-cache traffic audit for autoregressive decode-step graphs.
//
// Decode graphs (models::build_llm_decode_step) carry their per-layer KV
// cache as graph inputs named `past_k_<l>` / `past_v_<l>` and write the
// appended caches back as graph outputs.  This audit splits the graph's DRAM
// traffic into cache reads, cache write-backs, weights, and everything else,
// so tests (and the decode sweep report) can assert the property that makes
// decode memory-bound: cache bytes grow linearly with the decode position
// while weights and activations stay flat.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analyze_representation.hpp"
#include "graph/graph.hpp"

namespace proof {

/// DRAM traffic of one decode step, split by source.  All byte counts use
/// the graph's logical dtypes (Equation-1 accounting, matching
/// AnalyzeRepresentation).
struct DecodeTraffic {
  int64_t kv_cache_read_bytes = 0;   ///< past_k_* / past_v_* inputs read
  int64_t kv_cache_write_bytes = 0;  ///< appended caches written back
  int64_t weight_bytes = 0;          ///< parameter tensors read
  int64_t activation_bytes = 0;      ///< everything else (total - above)
  int64_t total_bytes = 0;           ///< AnalyzeRepresentation total traffic
  int64_t kv_cache_tensors = 0;      ///< number of past_* inputs found

  [[nodiscard]] int64_t kv_cache_bytes() const {
    return kv_cache_read_bytes + kv_cache_write_bytes;
  }
  /// Fraction of step traffic that is KV-cache movement.
  [[nodiscard]] double kv_cache_fraction() const {
    return total_bytes > 0 ? static_cast<double>(kv_cache_bytes()) /
                                 static_cast<double>(total_bytes)
                           : 0.0;
  }
};

/// True for tensor names following the decode-graph cache convention.
[[nodiscard]] bool is_kv_cache_input(const std::string& name);

/// Audits a decode-step AR.  Works on any graph: one without past_* inputs
/// simply reports zero cache traffic.
[[nodiscard]] DecodeTraffic audit_decode_traffic(const AnalyzeRepresentation& ar);

}  // namespace proof

// Post-training quantization to the ONNX QDQ representation.
//
// The paper's int8 evaluations run quantized models ("the metric should be
// integer operation per second", §1 fn.1).  This transform produces the
// standard QDQ form: weights stored as int8 with a DequantizeLinear, and
// QuantizeLinear/DequantizeLinear pairs on the activations feeding matrix
// operators.  The simulated runtimes fold QDQ pairs into int8 kernels
// (backends/fusion.hpp: absorb_qdq_ops), mirroring TensorRT's PTQ flow.
#pragma once

#include "graph/graph.hpp"

namespace proof {

struct QuantizeStats {
  size_t quantized_anchors = 0;  ///< Conv/Gemm/MatMul nodes wrapped in QDQ
  size_t q_nodes = 0;
  size_t dq_nodes = 0;
  size_t int8_params = 0;        ///< weight tensors converted to int8
};

/// Rewrites `model` into QDQ form.  Only matrix operators (Conv, Gemm,
/// MatMul) are quantized — the standard mixed-precision PTQ recipe.
/// Returns statistics about the rewrite.
QuantizeStats quantize_to_qdq(Graph& model);

/// True when the graph contains QDQ nodes.
[[nodiscard]] bool is_qdq_model(const Graph& model);

}  // namespace proof

// Analyze Representation (paper §3.2.2).
//
// Wraps a model graph with per-node FLOP / memory-access predictions from the
// operator defines, plus whole-model aggregates.  This is the backend-
// independent half of PRoof's analysis.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "ops/op_def.hpp"

namespace proof {

/// Predicted performance-relevant quantities of one model node.
struct NodeAnalysis {
  std::string name;
  std::string op_type;
  double flops = 0.0;
  MemoryEstimate memory;
  OpClass op_class = OpClass::kElementwise;
};

class AnalyzeRepresentation {
 public:
  /// Takes a copy of the model, runs validation + shape inference, and
  /// precomputes the per-node analyses.
  explicit AnalyzeRepresentation(Graph graph);

  /// Tag for graphs the caller guarantees are already validated and
  /// shape-inferred (plan-cache instantiations replay a previously validated
  /// skeleton through one infer_shapes pass); skips both and only runs the
  /// per-node analysis.
  struct TrustedGraphTag {};
  AnalyzeRepresentation(Graph graph, TrustedGraphTag tag);
  /// Same trust contract, but shares an already-frozen graph (typically the
  /// engine's) instead of copying it.
  AnalyzeRepresentation(std::shared_ptr<const Graph> graph, TrustedGraphTag tag);

  [[nodiscard]] const Graph& graph() const { return *graph_; }

  [[nodiscard]] const NodeAnalysis& analysis(NodeId id) const;
  [[nodiscard]] const std::vector<NodeAnalysis>& analyses() const { return analyses_; }

  [[nodiscard]] double total_flops() const;
  [[nodiscard]] MemoryEstimate total_memory() const;
  [[nodiscard]] int64_t param_count() const { return graph_->param_count(); }
  [[nodiscard]] int64_t param_bytes() const { return graph_->param_bytes(); }
  [[nodiscard]] size_t num_nodes() const { return graph_->num_nodes(); }

 private:
  /// Computes the per-node analyses from the frozen graph.
  void refresh();

  std::shared_ptr<const Graph> graph_;
  std::vector<NodeAnalysis> analyses_;
};

}  // namespace proof

// Analyze Representation (paper §3.2.2).
//
// Wraps a model graph with per-node FLOP / memory-access predictions from the
// operator defines, plus whole-model aggregates.  This is the backend-
// independent half of PRoof's analysis.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "ops/op_def.hpp"

namespace proof {

/// Predicted performance-relevant quantities of one model node.
struct NodeAnalysis {
  std::string name;
  std::string op_type;
  double flops = 0.0;
  MemoryEstimate memory;
  OpClass op_class = OpClass::kElementwise;
};

class AnalyzeRepresentation {
 public:
  /// Takes a copy of the model, runs validation + shape inference, and
  /// precomputes the per-node analyses.
  explicit AnalyzeRepresentation(Graph graph);

  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] Graph& mutable_graph() { return graph_; }

  /// Re-runs the per-node analysis (after batch/dtype changes).
  void refresh();

  [[nodiscard]] const NodeAnalysis& analysis(NodeId id) const;
  [[nodiscard]] const std::vector<NodeAnalysis>& analyses() const { return analyses_; }

  [[nodiscard]] double total_flops() const;
  [[nodiscard]] MemoryEstimate total_memory() const;
  [[nodiscard]] int64_t param_count() const { return graph_.param_count(); }
  [[nodiscard]] int64_t param_bytes() const { return graph_.param_bytes(); }
  [[nodiscard]] size_t num_nodes() const { return graph_.num_nodes(); }

 private:
  Graph graph_;
  std::vector<NodeAnalysis> analyses_;
};

}  // namespace proof

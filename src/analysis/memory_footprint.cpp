#include "analysis/memory_footprint.hpp"

#include <vector>

#include "support/error.hpp"

namespace proof {

MemoryFootprint memory_footprint(const Graph& graph) {
  MemoryFootprint fp;
  fp.weight_bytes = graph.param_bytes();
  for (const std::string& name : graph.inputs()) {
    fp.io_bytes += graph.tensor(name).size_bytes();
  }
  for (const std::string& name : graph.outputs()) {
    fp.io_bytes += graph.tensor(name).size_bytes();
  }

  // Liveness: a tensor is live from its producer until its last consumer.
  // View-op outputs alias their input's storage: charge zero for the view
  // output but extend the aliased tensor's lifetime.  Everything below is
  // indexed by interned TensorId — no string maps on this path.
  const auto is_view = [](const Node& node) {
    return node.is("Reshape") || node.is("Flatten") || node.is("Squeeze") ||
           node.is("Unsqueeze") || node.is("Identity");
  };

  const std::vector<NodeId>& order = graph.topo_order();
  const size_t num_ids = graph.num_tensor_ids();
  constexpr size_t kNever = static_cast<size_t>(-1);
  std::vector<size_t> last_use(num_ids, kNever);     // storage -> topo position
  std::vector<TensorId> storage_of(num_ids, kInvalidTensor);  // tensor -> storage

  const auto resolve_storage = [&](TensorId tensor) -> TensorId {
    TensorId current = tensor;
    while (storage_of[static_cast<size_t>(current)] != kInvalidTensor &&
           storage_of[static_cast<size_t>(current)] != current) {
      current = storage_of[static_cast<size_t>(current)];
    }
    return current;
  };

  for (size_t pos = 0; pos < order.size(); ++pos) {
    const Node& node = graph.node(order[pos]);
    const bool view = is_view(node);
    for (const TensorId in : graph.node_input_ids(order[pos])) {
      if (graph.tensor_is_param(in)) {
        continue;
      }
      last_use[static_cast<size_t>(resolve_storage(in))] = pos;
    }
    const std::span<const TensorId> ins = graph.node_input_ids(order[pos]);
    for (const TensorId out : graph.node_output_ids(order[pos])) {
      if (view && !ins.empty()) {
        storage_of[static_cast<size_t>(out)] = resolve_storage(ins.front());
      } else {
        storage_of[static_cast<size_t>(out)] = out;
        last_use[static_cast<size_t>(out)] = pos;  // live through its production
      }
    }
  }
  // Graph outputs stay live to the end.
  for (const std::string& out : graph.outputs()) {
    const TensorId id = graph.tensor_id(out);
    if (id != kInvalidTensor) {
      last_use[static_cast<size_t>(resolve_storage(id))] = order.size();
    }
  }

  // Invert last_use once so the sweep frees in O(1) per tensor instead of
  // scanning the live set at every step.
  std::vector<std::vector<TensorId>> frees_at(order.size());
  for (size_t t = 0; t < num_ids; ++t) {
    if (last_use[t] != kNever && last_use[t] < order.size()) {
      frees_at[last_use[t]].push_back(static_cast<TensorId>(t));
    }
  }

  // Sweep: track the live set size at each step.
  std::vector<int64_t> live(num_ids, -1);  // storage -> bytes; -1 = not live
  int64_t live_bytes = 0;
  // Graph inputs are live from the start.
  for (const std::string& in : graph.inputs()) {
    const TensorId storage = resolve_storage(graph.tensor_id(in));
    const int64_t bytes = graph.tensor(in).size_bytes();
    live[static_cast<size_t>(storage)] = bytes;
    live_bytes += bytes;
  }
  fp.peak_activation_bytes = live_bytes;

  for (size_t pos = 0; pos < order.size(); ++pos) {
    const Node& node = graph.node(order[pos]);
    // Allocate outputs (views are free).
    for (const TensorId out : graph.node_output_ids(order[pos])) {
      const TensorId storage = resolve_storage(out);
      if (live[static_cast<size_t>(storage)] < 0) {
        const int64_t bytes = graph.tensor(storage).size_bytes();
        live[static_cast<size_t>(storage)] = bytes;
        live_bytes += bytes;
      }
    }
    if (live_bytes > fp.peak_activation_bytes) {
      fp.peak_activation_bytes = live_bytes;
      fp.peak_at_node = node.name;
    }
    // Free tensors whose last use is this step.
    for (const TensorId storage : frees_at[pos]) {
      if (live[static_cast<size_t>(storage)] >= 0) {
        live_bytes -= live[static_cast<size_t>(storage)];
        live[static_cast<size_t>(storage)] = -1;
      }
    }
  }
  return fp;
}

}  // namespace proof

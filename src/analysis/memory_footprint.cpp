#include "analysis/memory_footprint.hpp"

#include <map>
#include <set>

#include "support/error.hpp"

namespace proof {

MemoryFootprint memory_footprint(const Graph& graph) {
  MemoryFootprint fp;
  fp.weight_bytes = graph.param_bytes();
  for (const std::string& name : graph.inputs()) {
    fp.io_bytes += graph.tensor(name).size_bytes();
  }
  for (const std::string& name : graph.outputs()) {
    fp.io_bytes += graph.tensor(name).size_bytes();
  }

  // Liveness: a tensor is live from its producer until its last consumer.
  // View-op outputs alias their input's storage: charge zero for the view
  // output but extend the aliased tensor's lifetime.
  const auto is_view = [](const std::string& op_type) {
    static const std::set<std::string> kViews = {"Reshape", "Flatten", "Squeeze",
                                                 "Unsqueeze", "Identity"};
    return kViews.count(op_type) > 0;
  };

  const std::vector<NodeId> order = graph.topo_order();
  std::map<std::string, size_t> last_use;  // storage tensor -> topo position
  std::map<std::string, std::string> storage_of;  // tensor -> owning storage

  const auto resolve_storage = [&](const std::string& tensor) -> std::string {
    std::string current = tensor;
    auto it = storage_of.find(current);
    while (it != storage_of.end() && it->second != current) {
      current = it->second;
      it = storage_of.find(current);
    }
    return current;
  };

  for (size_t pos = 0; pos < order.size(); ++pos) {
    const Node& node = graph.node(order[pos]);
    const bool view = is_view(node.op_type);
    for (const std::string& in : node.inputs) {
      if (graph.has_tensor(in) && graph.tensor(in).is_param) {
        continue;
      }
      last_use[resolve_storage(in)] = pos;
    }
    for (const std::string& out : node.outputs) {
      if (view && !node.inputs.empty()) {
        storage_of[out] = resolve_storage(node.inputs.front());
      } else {
        storage_of[out] = out;
        last_use[out] = pos;  // at least live through its own production
      }
    }
  }
  // Graph outputs stay live to the end.
  for (const std::string& out : graph.outputs()) {
    last_use[resolve_storage(out)] = order.size();
  }

  // Sweep: track the live set size at each step.
  std::map<std::string, int64_t> live;  // storage -> bytes
  int64_t live_bytes = 0;
  // Graph inputs are live from the start.
  for (const std::string& in : graph.inputs()) {
    const std::string storage = resolve_storage(in);
    live[storage] = graph.tensor(in).size_bytes();
    live_bytes += live[storage];
  }
  fp.peak_activation_bytes = live_bytes;

  for (size_t pos = 0; pos < order.size(); ++pos) {
    const Node& node = graph.node(order[pos]);
    // Allocate outputs (views are free).
    for (const std::string& out : node.outputs) {
      const std::string storage = resolve_storage(out);
      if (live.count(storage) == 0) {
        const int64_t bytes = graph.tensor(storage).size_bytes();
        live[storage] = bytes;
        live_bytes += bytes;
      }
    }
    if (live_bytes > fp.peak_activation_bytes) {
      fp.peak_activation_bytes = live_bytes;
      fp.peak_at_node = node.name;
    }
    // Free tensors whose last use is this step.
    for (auto it = live.begin(); it != live.end();) {
      const auto lu = last_use.find(it->first);
      if (lu != last_use.end() && lu->second == pos) {
        live_bytes -= it->second;
        it = live.erase(it);
      } else {
        ++it;
      }
    }
  }
  return fp;
}

}  // namespace proof

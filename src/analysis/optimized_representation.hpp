// Optimized Analyze Representation (paper §3.2.3).
//
// Represents the model *after* backend optimization as an overlay over the
// original Analyze Representation: fused groups of original nodes (the
// paper's `_FusedOp`) plus tensor aliases for backend-inserted conversion
// layers.  Keeping the original graph intact is what preserves the composite
// relationship between backend layers and model-design layers (Figure 2).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyze_representation.hpp"

namespace proof {

/// Identifier of a fused group inside an OptimizedAnalyzeRepresentation.
using FusedOpId = int32_t;

class OptimizedAnalyzeRepresentation {
 public:
  explicit OptimizedAnalyzeRepresentation(const AnalyzeRepresentation& base);

  [[nodiscard]] const AnalyzeRepresentation& base() const { return *base_; }

  // --- interfaces used by layer mapping (paper Figure 2) -------------------

  /// Registers `alias` as another name for `tensor` (backend reorder output,
  /// renamed tensor, ...).  Resolution is transitive.
  void set_tensor_alias(const std::string& tensor, const std::string& alias);

  /// Resolves a (possibly aliased) tensor name to the model tensor name.
  [[nodiscard]] std::string resolve(const std::string& name) const;
  /// Allocation-free resolve: the returned view points into the alias map or
  /// the caller's argument and stays valid until the next set_tensor_alias.
  [[nodiscard]] std::string_view resolve_view(std::string_view name) const;
  /// Resolves through aliases straight to the model graph's interned tensor
  /// id (kInvalidTensor for names the graph has never seen).
  [[nodiscard]] TensorId resolve_id(std::string_view name) const;

  /// Finds the node set whose boundary matches the given (possibly aliased)
  /// input/output tensors; members already claimed by a fused op make the
  /// lookup fail.  Mirrors `get_subgraph_ops_by_io`.
  [[nodiscard]] std::optional<std::vector<NodeId>> get_subgraph_ops_by_io(
      const std::vector<std::string>& inputs,
      const std::vector<std::string>& outputs) const;

  /// Fuses `members` into a `_FusedOp` named `name`; throws when a member is
  /// already claimed.  Mirrors `set_fused_op`.
  FusedOpId set_fused_op(const std::string& name, const std::vector<NodeId>& members);

  /// True when the node has been claimed by some fused op.
  [[nodiscard]] bool is_fused(NodeId id) const;

  // --- resulting optimized-layer view ---------------------------------------

  /// One layer of the optimized model: either a fused group or a left-over
  /// original node.
  struct OptLayer {
    std::string name;
    std::vector<NodeId> members;     ///< original node ids (singleton if unfused)
    bool is_fused = false;
    double flops = 0.0;              ///< sum over members
    MemoryEstimate memory;           ///< fusion-aware (boundary tensors only)
    OpClass op_class = OpClass::kElementwise;  ///< dominant member class
  };

  /// All optimized layers in topological order of their first member.
  [[nodiscard]] std::vector<OptLayer> layers() const;

  /// Analysis of a single fused group.
  [[nodiscard]] OptLayer layer_for_fused(FusedOpId id) const;

  /// Fusion-aware memory estimate of an arbitrary node set: params inside +
  /// boundary activations only (intermediates stay on-chip).
  [[nodiscard]] MemoryEstimate fused_memory(const std::vector<NodeId>& members) const;

  /// Sum of member FLOP.
  [[nodiscard]] double fused_flops(const std::vector<NodeId>& members) const;

  /// Dominant op class of a node set: the class contributing the most FLOP,
  /// falling back to the most memory-heavy class for FLOP-free sets.
  [[nodiscard]] OpClass dominant_class(const std::vector<NodeId>& members) const;

 private:
  struct FusedGroup {
    std::string name;
    std::vector<NodeId> members;
  };

  const AnalyzeRepresentation* base_;
  std::map<std::string, std::string, std::less<>> alias_to_canonical_;
  std::vector<FusedGroup> groups_;
  std::vector<FusedOpId> owner_;  ///< per node: group id or -1
};

}  // namespace proof

// Whole-graph shape inference.
//
// PRoof runs ONNX shape inference once when building the Analyze
// Representation; this is the equivalent driver over our op registry.
#pragma once

#include "graph/graph.hpp"

namespace proof {

/// Infers every intermediate/output tensor desc in topological order.
/// Graph inputs and params must already carry shapes.  Throws ModelError when
/// an operator cannot be inferred.
///
/// Purity contract (the plan cache leans on this — core/analysis_plan.hpp):
/// the pass is a pure function of the graph's input descs, param descs and
/// node attrs.  Every node-output desc is fully OVERWRITTEN — shape and
/// dtype, is_param forced false — so stale descs left by a previous
/// inference at other shapes never leak into the result, and re-inferring a
/// copied graph after restoring its inputs/attrs reproduces a fresh build
/// bit-for-bit.  Ops must not read pre-existing output descs.
void infer_shapes(Graph& graph);

/// Rewrites the batch dimension (dim 0 of every graph input) to `batch` and
/// re-runs shape inference.  Attribute-encoded shapes (Reshape targets,
/// Expand shapes) that carry the old batch in dim 0 are rewritten as well.
void set_batch_size(Graph& graph, int64_t batch);

/// Converts all float tensors (activations and params) to `dtype`; used by
/// backends when building an engine at a reduced precision.
void convert_float_dtype(Graph& graph, DType dtype);

}  // namespace proof

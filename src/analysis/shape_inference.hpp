// Whole-graph shape inference.
//
// PRoof runs ONNX shape inference once when building the Analyze
// Representation; this is the equivalent driver over our op registry.
#pragma once

#include "graph/graph.hpp"

namespace proof {

/// Infers every intermediate/output tensor desc in topological order.
/// Graph inputs and params must already carry shapes.  Throws ModelError when
/// an operator cannot be inferred.
void infer_shapes(Graph& graph);

/// Rewrites the batch dimension (dim 0 of every graph input) to `batch` and
/// re-runs shape inference.  Attribute-encoded shapes (Reshape targets,
/// Expand shapes) that carry the old batch in dim 0 are rewritten as well.
void set_batch_size(Graph& graph, int64_t batch);

/// Converts all float tensors (activations and params) to `dtype`; used by
/// backends when building an engine at a reduced precision.
void convert_float_dtype(Graph& graph, DType dtype);

}  // namespace proof

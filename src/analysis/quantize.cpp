#include "analysis/quantize.hpp"

#include <map>
#include <set>

#include "analysis/shape_inference.hpp"
#include "support/error.hpp"

namespace proof {

namespace {

bool is_matrix_anchor(const std::string& op_type) {
  return op_type == "Conv" || op_type == "ConvTranspose" || op_type == "Gemm" ||
         op_type == "MatMul";
}

}  // namespace

bool is_qdq_model(const Graph& model) {
  for (const Node& node : model.nodes()) {
    if (node.op_type == "QuantizeLinear" || node.op_type == "DequantizeLinear") {
      return true;
    }
  }
  return false;
}

QuantizeStats quantize_to_qdq(Graph& model) {
  PROOF_CHECK(!is_qdq_model(model), "model is already quantized");
  QuantizeStats stats;
  int fresh = 0;
  const auto scale_param = [&](const std::string& hint) {
    const std::string name = "qdq_scale_" + hint + "_" + std::to_string(fresh++);
    model.add_param(name, DType::kF32, Shape{1});
    return name;
  };

  // Activation tensors already wrapped (shared across consumers).
  std::map<std::string, std::string> dequantized_of;
  // Collect the anchor edits first; node insertion invalidates iteration.
  struct Edit {
    NodeId node;
    size_t input_index;
  };
  std::vector<Edit> activation_edits;
  std::vector<Edit> weight_edits;
  for (size_t i = 0; i < model.num_nodes(); ++i) {
    const Node& node = model.nodes()[i];
    if (!is_matrix_anchor(node.op_type)) {
      continue;
    }
    ++stats.quantized_anchors;
    for (size_t in = 0; in < node.inputs.size() && in < 2; ++in) {
      const TensorDesc& desc = model.tensor(node.inputs[in]);
      if (!dtype_is_float(desc.dtype)) {
        continue;  // integer inputs (e.g. Gather indices) stay untouched
      }
      if (desc.is_param) {
        weight_edits.push_back({static_cast<NodeId>(i), in});
      } else {
        activation_edits.push_back({static_cast<NodeId>(i), in});
      }
    }
  }

  // Weights: store int8 + DequantizeLinear.
  std::map<std::string, std::string> weight_dq;
  for (const Edit& edit : weight_edits) {
    const std::string weight = model.node(edit.node).inputs[edit.input_index];
    auto it = weight_dq.find(weight);
    if (it == weight_dq.end()) {
      TensorDesc& desc = model.tensor(weight);
      desc.dtype = DType::kI8;
      ++stats.int8_params;
      Node dq;
      dq.name = weight + "_dq";
      dq.op_type = "DequantizeLinear";
      dq.inputs = {weight, scale_param("w")};
      dq.outputs = {weight + "_dqo"};
      model.add_node(std::move(dq));
      ++stats.dq_nodes;
      it = weight_dq.emplace(weight, weight + "_dqo").first;
    }
    model.node(edit.node).inputs[edit.input_index] = it->second;
  }

  // Activations: QuantizeLinear -> DequantizeLinear pairs, shared per tensor.
  for (const Edit& edit : activation_edits) {
    const std::string tensor = model.node(edit.node).inputs[edit.input_index];
    auto it = dequantized_of.find(tensor);
    if (it == dequantized_of.end()) {
      Node q;
      q.name = tensor + "_q";
      q.op_type = "QuantizeLinear";
      q.inputs = {tensor, scale_param("a")};
      q.outputs = {tensor + "_qo"};
      model.add_node(std::move(q));
      ++stats.q_nodes;
      Node dq;
      dq.name = tensor + "_dq";
      dq.op_type = "DequantizeLinear";
      dq.inputs = {tensor + "_qo", scale_param("a")};
      dq.outputs = {tensor + "_dqo"};
      model.add_node(std::move(dq));
      ++stats.dq_nodes;
      it = dequantized_of.emplace(tensor, tensor + "_dqo").first;
    }
    model.node(edit.node).inputs[edit.input_index] = it->second;
  }

  model.validate();
  infer_shapes(model);
  return stats;
}

}  // namespace proof

#include "analysis/reference_executor.hpp"

#include "ops/op_def.hpp"
#include "support/error.hpp"

namespace proof {

ReferenceExecutor::ReferenceExecutor(const Graph& graph) : graph_(&graph) {}

bool ReferenceExecutor::fully_supported() const {
  for (const Node& node : graph_->nodes()) {
    if (!op_def_for(node).has_reference()) {
      return false;
    }
  }
  return true;
}

std::map<std::string, Tensor> ReferenceExecutor::run(
    const std::map<std::string, Tensor>& feeds) const {
  std::map<std::string, Tensor> values;
  for (const std::string& in : graph_->inputs()) {
    const auto it = feeds.find(in);
    PROOF_CHECK(it != feeds.end(), "missing feed for input '" << in << "'");
    PROOF_CHECK(it->second.shape() == graph_->tensor(in).shape,
                "feed shape " << it->second.shape().to_string()
                              << " != declared " << graph_->tensor(in).shape.to_string()
                              << " for '" << in << "'");
    values.emplace(in, it->second);
  }
  // Materialize params deterministically keyed by tensor name.
  for (const auto& [name, desc] : graph_->tensors()) {
    if (desc.is_param) {
      values.emplace(name, Tensor::random(desc.shape, name));
    }
  }
  for (const NodeId id : graph_->topo_order()) {
    const Node& node = graph_->node(id);
    const OpDef& def = op_def_for(node);
    const OpContext ctx(*graph_, node);
    std::vector<const Tensor*> inputs;
    inputs.reserve(node.inputs.size());
    for (const std::string& in : node.inputs) {
      const auto it = values.find(in);
      PROOF_CHECK(it != values.end(),
                  "tensor '" << in << "' not computed before node '" << node.name
                             << "'");
      inputs.push_back(&it->second);
    }
    std::vector<Tensor> outputs;
    outputs.reserve(node.outputs.size());
    for (const std::string& out : node.outputs) {
      outputs.emplace_back(graph_->tensor(out).shape);
    }
    def.eval(ctx, inputs, outputs);
    for (size_t i = 0; i < node.outputs.size(); ++i) {
      values.insert_or_assign(node.outputs[i], std::move(outputs[i]));
    }
  }
  return values;
}

std::map<std::string, Tensor> ReferenceExecutor::run_random() const {
  std::map<std::string, Tensor> feeds;
  for (const std::string& in : graph_->inputs()) {
    feeds.emplace(in, Tensor::random(graph_->tensor(in).shape, "feed:" + in));
  }
  return run(feeds);
}

}  // namespace proof

#include "analysis/optimized_representation.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/error.hpp"

namespace proof {

OptimizedAnalyzeRepresentation::OptimizedAnalyzeRepresentation(
    const AnalyzeRepresentation& base)
    : base_(&base), owner_(base.graph().num_nodes(), -1) {}

void OptimizedAnalyzeRepresentation::set_tensor_alias(const std::string& tensor,
                                                      const std::string& alias) {
  PROOF_CHECK(alias != tensor, "alias equals tensor name '" << tensor << "'");
  alias_to_canonical_[alias] = resolve(tensor);
}

std::string OptimizedAnalyzeRepresentation::resolve(const std::string& name) const {
  std::string current = name;
  // Aliases are stored pre-resolved, so a single hop suffices; loop guards
  // against direct map edits in future code.
  for (int hops = 0; hops < 8; ++hops) {
    const auto it = alias_to_canonical_.find(current);
    if (it == alias_to_canonical_.end()) {
      return current;
    }
    current = it->second;
  }
  PROOF_FAIL("alias cycle at '" << name << "'");
}

std::optional<std::vector<NodeId>>
OptimizedAnalyzeRepresentation::get_subgraph_ops_by_io(
    const std::vector<std::string>& inputs,
    const std::vector<std::string>& outputs) const {
  std::vector<std::string> in_resolved;
  in_resolved.reserve(inputs.size());
  for (const std::string& n : inputs) {
    in_resolved.push_back(resolve(n));
  }
  std::vector<std::string> out_resolved;
  out_resolved.reserve(outputs.size());
  for (const std::string& n : outputs) {
    out_resolved.push_back(resolve(n));
  }
  auto result = base_->graph().subgraph_by_io(in_resolved, out_resolved);
  if (!result.has_value()) {
    return std::nullopt;
  }
  for (const NodeId id : *result) {
    if (is_fused(id)) {
      return std::nullopt;  // member already claimed by another backend layer
    }
  }
  return result;
}

FusedOpId OptimizedAnalyzeRepresentation::set_fused_op(
    const std::string& name, const std::vector<NodeId>& members) {
  PROOF_CHECK(!members.empty(), "fused op '" << name << "' has no members");
  for (const NodeId id : members) {
    PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < owner_.size(),
                "bad node id " << id);
    PROOF_CHECK(owner_[static_cast<size_t>(id)] < 0,
                "node '" << base_->graph().node(id).name
                         << "' already fused into group "
                         << owner_[static_cast<size_t>(id)]);
  }
  const FusedOpId gid = static_cast<FusedOpId>(groups_.size());
  groups_.push_back(FusedGroup{name, members});
  for (const NodeId id : members) {
    owner_[static_cast<size_t>(id)] = gid;
  }
  return gid;
}

bool OptimizedAnalyzeRepresentation::is_fused(NodeId id) const {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < owner_.size(), "bad node id " << id);
  return owner_[static_cast<size_t>(id)] >= 0;
}

MemoryEstimate OptimizedAnalyzeRepresentation::fused_memory(
    const std::vector<NodeId>& members) const {
  if (members.size() == 1) {
    return base_->analysis(members[0]).memory;
  }
  const Graph& g = base_->graph();
  const Graph::Boundary b = g.boundary(members);
  MemoryEstimate est;
  for (const std::string& t : b.params) {
    est.param_bytes += static_cast<double>(g.tensor(t).size_bytes());
  }
  for (const std::string& t : b.inputs) {
    est.read_bytes += static_cast<double>(g.tensor(t).size_bytes());
  }
  for (const std::string& t : b.outputs) {
    est.write_bytes += static_cast<double>(g.tensor(t).size_bytes());
  }
  return est;
}

double OptimizedAnalyzeRepresentation::fused_flops(
    const std::vector<NodeId>& members) const {
  double total = 0.0;
  for (const NodeId id : members) {
    total += base_->analysis(id).flops;
  }
  return total;
}

OpClass OptimizedAnalyzeRepresentation::dominant_class(
    const std::vector<NodeId>& members) const {
  std::map<OpClass, double> flops_by_class;
  std::map<OpClass, double> bytes_by_class;
  for (const NodeId id : members) {
    const NodeAnalysis& a = base_->analysis(id);
    flops_by_class[a.op_class] += a.flops;
    bytes_by_class[a.op_class] += a.memory.total();
  }
  OpClass best = base_->analysis(members.front()).op_class;
  double best_flops = -1.0;
  for (const auto& [cls, f] : flops_by_class) {
    if (f > best_flops) {
      best_flops = f;
      best = cls;
    }
  }
  if (best_flops > 0.0) {
    return best;
  }
  double best_bytes = -1.0;
  for (const auto& [cls, by] : bytes_by_class) {
    if (by > best_bytes) {
      best_bytes = by;
      best = cls;
    }
  }
  return best;
}

std::vector<OptimizedAnalyzeRepresentation::OptLayer>
OptimizedAnalyzeRepresentation::layers() const {
  const std::vector<NodeId> order = base_->graph().topo_order();
  std::vector<OptLayer> out;
  std::set<FusedOpId> emitted;
  for (const NodeId id : order) {
    const FusedOpId gid = owner_[static_cast<size_t>(id)];
    if (gid < 0) {
      OptLayer layer;
      layer.name = base_->graph().node(id).name;
      layer.members = {id};
      layer.is_fused = false;
      const NodeAnalysis& a = base_->analysis(id);
      layer.flops = a.flops;
      layer.memory = a.memory;
      layer.op_class = a.op_class;
      out.push_back(std::move(layer));
    } else if (emitted.insert(gid).second) {
      out.push_back(layer_for_fused(gid));
    }
  }
  return out;
}

OptimizedAnalyzeRepresentation::OptLayer
OptimizedAnalyzeRepresentation::layer_for_fused(FusedOpId id) const {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < groups_.size(),
              "bad fused op id " << id);
  const FusedGroup& group = groups_[static_cast<size_t>(id)];
  OptLayer layer;
  layer.name = group.name;
  layer.members = group.members;
  layer.is_fused = true;
  layer.flops = fused_flops(group.members);
  layer.memory = fused_memory(group.members);
  layer.op_class = dominant_class(group.members);
  return layer;
}

}  // namespace proof

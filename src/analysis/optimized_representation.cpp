#include "analysis/optimized_representation.hpp"

#include <algorithm>
#include <array>

#include "support/error.hpp"

namespace proof {

OptimizedAnalyzeRepresentation::OptimizedAnalyzeRepresentation(
    const AnalyzeRepresentation& base)
    : base_(&base), owner_(base.graph().num_nodes(), -1) {}

void OptimizedAnalyzeRepresentation::set_tensor_alias(const std::string& tensor,
                                                      const std::string& alias) {
  PROOF_CHECK(alias != tensor, "alias equals tensor name '" << tensor << "'");
  alias_to_canonical_[alias] = resolve(tensor);
}

std::string_view OptimizedAnalyzeRepresentation::resolve_view(
    std::string_view name) const {
  std::string_view current = name;
  // Aliases are stored pre-resolved, so a single hop suffices; loop guards
  // against direct map edits in future code.
  for (int hops = 0; hops < 8; ++hops) {
    const auto it = alias_to_canonical_.find(current);
    if (it == alias_to_canonical_.end()) {
      return current;
    }
    current = it->second;
  }
  PROOF_FAIL("alias cycle at '" << name << "'");
}

std::string OptimizedAnalyzeRepresentation::resolve(const std::string& name) const {
  return std::string(resolve_view(name));
}

TensorId OptimizedAnalyzeRepresentation::resolve_id(std::string_view name) const {
  return base_->graph().tensor_id(resolve_view(name));
}

std::optional<std::vector<NodeId>>
OptimizedAnalyzeRepresentation::get_subgraph_ops_by_io(
    const std::vector<std::string>& inputs,
    const std::vector<std::string>& outputs) const {
  std::vector<TensorId> in_ids;
  in_ids.reserve(inputs.size());
  for (const std::string& n : inputs) {
    const TensorId id = resolve_id(n);
    if (id != kInvalidTensor) {
      in_ids.push_back(id);  // unknown names can't stop any known edge
    }
  }
  std::vector<TensorId> out_ids;
  out_ids.reserve(outputs.size());
  for (const std::string& n : outputs) {
    const TensorId id = resolve_id(n);
    if (id == kInvalidTensor) {
      return std::nullopt;  // output tensor unknown to the model graph
    }
    out_ids.push_back(id);
  }
  auto result = base_->graph().subgraph_by_io_ids(in_ids, out_ids);
  if (!result.has_value()) {
    return std::nullopt;
  }
  for (const NodeId id : *result) {
    if (is_fused(id)) {
      return std::nullopt;  // member already claimed by another backend layer
    }
  }
  return result;
}

FusedOpId OptimizedAnalyzeRepresentation::set_fused_op(
    const std::string& name, const std::vector<NodeId>& members) {
  PROOF_CHECK(!members.empty(), "fused op '" << name << "' has no members");
  for (const NodeId id : members) {
    PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < owner_.size(),
                "bad node id " << id);
    PROOF_CHECK(owner_[static_cast<size_t>(id)] < 0,
                "node '" << base_->graph().node(id).name
                         << "' already fused into group "
                         << owner_[static_cast<size_t>(id)]);
  }
  const FusedOpId gid = static_cast<FusedOpId>(groups_.size());
  groups_.push_back(FusedGroup{name, members});
  for (const NodeId id : members) {
    owner_[static_cast<size_t>(id)] = gid;
  }
  return gid;
}

bool OptimizedAnalyzeRepresentation::is_fused(NodeId id) const {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < owner_.size(), "bad node id " << id);
  return owner_[static_cast<size_t>(id)] >= 0;
}

MemoryEstimate OptimizedAnalyzeRepresentation::fused_memory(
    const std::vector<NodeId>& members) const {
  if (members.size() == 1) {
    return base_->analysis(members[0]).memory;
  }
  const Graph& g = base_->graph();
  const Graph::BoundaryIds b = g.boundary_ids(members);
  MemoryEstimate est;
  for (const TensorId t : b.params) {
    est.param_bytes += static_cast<double>(g.tensor(t).size_bytes());
  }
  for (const TensorId t : b.inputs) {
    est.read_bytes += static_cast<double>(g.tensor(t).size_bytes());
  }
  for (const TensorId t : b.outputs) {
    est.write_bytes += static_cast<double>(g.tensor(t).size_bytes());
  }
  return est;
}

double OptimizedAnalyzeRepresentation::fused_flops(
    const std::vector<NodeId>& members) const {
  double total = 0.0;
  for (const NodeId id : members) {
    total += base_->analysis(id).flops;
  }
  return total;
}

OpClass OptimizedAnalyzeRepresentation::dominant_class(
    const std::vector<NodeId>& members) const {
  // Dense per-class accumulators; `present` preserves the map-based
  // tie-breaking, which only considered classes that actually occur.
  std::array<double, kOpClassCount> flops_by_class{};
  std::array<double, kOpClassCount> bytes_by_class{};
  std::array<bool, kOpClassCount> present{};
  for (const NodeId id : members) {
    const NodeAnalysis& a = base_->analysis(id);
    const size_t cls = static_cast<size_t>(a.op_class);
    present[cls] = true;
    flops_by_class[cls] += a.flops;
    bytes_by_class[cls] += a.memory.total();
  }
  OpClass best = base_->analysis(members.front()).op_class;
  double best_flops = -1.0;
  for (size_t cls = 0; cls < kOpClassCount; ++cls) {
    if (present[cls] && flops_by_class[cls] > best_flops) {
      best_flops = flops_by_class[cls];
      best = static_cast<OpClass>(cls);
    }
  }
  if (best_flops > 0.0) {
    return best;
  }
  double best_bytes = -1.0;
  for (size_t cls = 0; cls < kOpClassCount; ++cls) {
    if (present[cls] && bytes_by_class[cls] > best_bytes) {
      best_bytes = bytes_by_class[cls];
      best = static_cast<OpClass>(cls);
    }
  }
  return best;
}

std::vector<OptimizedAnalyzeRepresentation::OptLayer>
OptimizedAnalyzeRepresentation::layers() const {
  const std::vector<NodeId>& order = base_->graph().topo_order();
  std::vector<OptLayer> out;
  std::vector<uint8_t> emitted(groups_.size(), 0);
  for (const NodeId id : order) {
    const FusedOpId gid = owner_[static_cast<size_t>(id)];
    if (gid < 0) {
      OptLayer layer;
      layer.name = base_->graph().node(id).name;
      layer.members = {id};
      layer.is_fused = false;
      const NodeAnalysis& a = base_->analysis(id);
      layer.flops = a.flops;
      layer.memory = a.memory;
      layer.op_class = a.op_class;
      out.push_back(std::move(layer));
    } else if (!emitted[static_cast<size_t>(gid)]) {
      emitted[static_cast<size_t>(gid)] = 1;
      out.push_back(layer_for_fused(gid));
    }
  }
  return out;
}

OptimizedAnalyzeRepresentation::OptLayer
OptimizedAnalyzeRepresentation::layer_for_fused(FusedOpId id) const {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < groups_.size(),
              "bad fused op id " << id);
  const FusedGroup& group = groups_[static_cast<size_t>(id)];
  OptLayer layer;
  layer.name = group.name;
  layer.members = group.members;
  layer.is_fused = true;
  layer.flops = fused_flops(group.members);
  layer.memory = fused_memory(group.members);
  layer.op_class = dominant_class(group.members);
  return layer;
}

}  // namespace proof

#include "analysis/shape_inference.hpp"

#include <utility>

#include "ops/op_def.hpp"
#include "support/error.hpp"

namespace proof {

void infer_shapes(Graph& graph) {
  for (const std::string& in : graph.inputs()) {
    PROOF_CHECK(graph.has_tensor(in) && !graph.tensor(in).shape.empty(),
                "graph input '" << in << "' must carry a shape before inference");
  }
  for (const NodeId id : graph.topo_order()) {
    // Read-only node access: the non-const overload would invalidate the
    // cached topological order we are iterating.
    const Node& node = std::as_const(graph).node(id);
    const OpDef& def = op_def_for(node);
    const OpContext ctx(graph, node);
    std::vector<TensorDesc> outs;
    try {
      outs = def.infer(ctx);
    } catch (const Error& e) {
      throw ModelError("shape inference failed at node '" + node.name + "' (" +
                       node.op_type + "): " + e.what());
    }
    PROOF_CHECK(outs.size() == node.outputs.size(),
                "node '" << node.name << "' declares " << node.outputs.size()
                         << " outputs but op inferred " << outs.size());
    for (size_t i = 0; i < outs.size(); ++i) {
      outs[i].name = node.outputs[i];
      outs[i].is_param = false;
      graph.set_tensor(std::move(outs[i]));
    }
  }
}

void set_batch_size(Graph& graph, int64_t batch) {
  PROOF_CHECK(batch > 0, "batch must be positive, got " << batch);
  PROOF_CHECK(!graph.inputs().empty(), "graph has no inputs");
  const int64_t old_batch = graph.tensor(graph.inputs()[0]).shape.dim(0);
  for (const std::string& in : graph.inputs()) {
    graph.tensor(in).shape.set_dim(0, batch);
  }
  if (old_batch != batch) {
    // Shape-carrying attributes that bake in the old batch size (builders use
    // 0/-1 placeholders where possible; explicit batch appears in e.g.
    // Expand of broadcast tokens).
    for (Node& node : graph.nodes()) {
      for (const char* key : {"shape", "sizes"}) {
        if (!node.attrs.has(key)) {
          continue;
        }
        std::vector<int64_t> dims = node.attrs.get_ints(key);
        if (!dims.empty() && dims[0] == old_batch) {
          dims[0] = batch;
          node.attrs.set(key, dims);
        }
      }
    }
  }
  infer_shapes(graph);
}

void convert_float_dtype(Graph& graph, DType dtype) {
  PROOF_CHECK(dtype_is_float(dtype) || dtype == DType::kI8,
              "conversion target must be a float type or int8");
  for (const std::string& name : graph.inputs()) {
    TensorDesc& desc = graph.tensor(name);
    if (dtype_is_float(desc.dtype)) {
      desc.dtype = dtype;
    }
  }
  std::vector<std::string> names;
  names.reserve(graph.tensors().size());
  for (const auto& [name, desc] : graph.tensors()) {
    names.push_back(name);
  }
  for (const std::string& name : names) {
    TensorDesc& desc = graph.tensor(name);
    if (dtype_is_float(desc.dtype)) {
      desc.dtype = dtype;
    }
  }
  infer_shapes(graph);
}

}  // namespace proof

#include "analysis/llm_traffic.hpp"

#include <string_view>

namespace proof {

namespace {

bool has_prefix(std::string_view name, std::string_view prefix) {
  return name.size() >= prefix.size() && name.substr(0, prefix.size()) == prefix;
}

}  // namespace

bool is_kv_cache_input(const std::string& name) {
  return has_prefix(name, "past_k_") || has_prefix(name, "past_v_");
}

DecodeTraffic audit_decode_traffic(const AnalyzeRepresentation& ar) {
  const Graph& graph = ar.graph();
  DecodeTraffic traffic;
  for (const std::string& input : graph.inputs()) {
    if (!is_kv_cache_input(input)) {
      continue;
    }
    traffic.kv_cache_read_bytes += graph.tensor(input).size_bytes();
    ++traffic.kv_cache_tensors;
  }
  // Write-back: graph outputs produced by a Concat that consumes a cache
  // input (the `concat(past, new)` append in the decode builders).
  for (const std::string& output : graph.outputs()) {
    const NodeId producer = graph.producer(output);
    if (producer == kInvalidNode) {
      continue;
    }
    const Node& node = graph.nodes()[static_cast<size_t>(producer)];
    if (!node.is("Concat")) {
      continue;
    }
    bool appends_cache = false;
    for (const std::string& in : node.inputs) {
      if (is_kv_cache_input(in)) {
        appends_cache = true;
        break;
      }
    }
    if (appends_cache) {
      traffic.kv_cache_write_bytes += graph.tensor(output).size_bytes();
    }
  }
  traffic.weight_bytes = graph.param_bytes();
  traffic.total_bytes = static_cast<int64_t>(ar.total_memory().total());
  const int64_t rest =
      traffic.total_bytes - traffic.kv_cache_bytes() - traffic.weight_bytes;
  traffic.activation_bytes = rest > 0 ? rest : 0;
  return traffic;
}

}  // namespace proof

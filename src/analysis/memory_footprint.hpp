// Device memory footprint analysis.
//
// Complements the DRAM-traffic model (Equation 1) with a *capacity* view:
// how much device memory an inference needs — weights plus the peak of live
// activation tensors under topological execution order with exact liveness.
// Runtimes allocate close to this bound with memory pooling.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace proof {

struct MemoryFootprint {
  int64_t weight_bytes = 0;          ///< all parameter tensors
  int64_t peak_activation_bytes = 0; ///< max live activation set
  int64_t io_bytes = 0;              ///< graph inputs + outputs
  /// Node (by name) at which the activation peak occurs.
  std::string peak_at_node;

  [[nodiscard]] int64_t total_bytes() const {
    return weight_bytes + peak_activation_bytes;
  }
};

/// Computes the footprint of a shape-inferred graph.  View ops (Reshape,
/// Flatten, ...) alias their input and do not add to the live set.
[[nodiscard]] MemoryFootprint memory_footprint(const Graph& graph);

}  // namespace proof

#include "analysis/analyze_representation.hpp"

#include "analysis/shape_inference.hpp"
#include "support/error.hpp"

namespace proof {

AnalyzeRepresentation::AnalyzeRepresentation(Graph graph) {
  graph.validate();
  infer_shapes(graph);
  graph_ = std::make_shared<const Graph>(std::move(graph));
  refresh();
}

AnalyzeRepresentation::AnalyzeRepresentation(Graph graph, TrustedGraphTag)
    : graph_(std::make_shared<const Graph>(std::move(graph))) {
  refresh();
}

AnalyzeRepresentation::AnalyzeRepresentation(std::shared_ptr<const Graph> graph,
                                             TrustedGraphTag)
    : graph_(std::move(graph)) {
  PROOF_CHECK(graph_ != nullptr, "analyze representation requires a graph");
  refresh();
}

void AnalyzeRepresentation::refresh() {
  analyses_.clear();
  analyses_.reserve(graph_->num_nodes());
  for (const Node& node : graph_->nodes()) {
    const OpDef& def = op_def_for(node);
    const OpContext ctx(*graph_, node);
    NodeAnalysis a;
    a.name = node.name;
    a.op_type = node.op_type;
    a.flops = def.flops(ctx);
    a.memory = def.memory(ctx);
    a.op_class = def.op_class(ctx);
    analyses_.push_back(std::move(a));
  }
}

const NodeAnalysis& AnalyzeRepresentation::analysis(NodeId id) const {
  PROOF_CHECK(id >= 0 && static_cast<size_t>(id) < analyses_.size(),
              "bad node id " << id);
  return analyses_[static_cast<size_t>(id)];
}

double AnalyzeRepresentation::total_flops() const {
  double total = 0.0;
  for (const NodeAnalysis& a : analyses_) {
    total += a.flops;
  }
  return total;
}

MemoryEstimate AnalyzeRepresentation::total_memory() const {
  MemoryEstimate total;
  for (const NodeAnalysis& a : analyses_) {
    total += a.memory;
  }
  return total;
}

}  // namespace proof

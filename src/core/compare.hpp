// Report comparison: the A/B workflow behind §4.5 (original vs modified
// model) and §4.6 (clock profiles) as a first-class API.
#pragma once

#include <string>

#include "core/profiler.hpp"

namespace proof {

/// Aggregate deltas between a baseline and a candidate report.
struct ReportDelta {
  std::string baseline_name;
  std::string candidate_name;

  double speedup = 0.0;           ///< baseline latency / candidate latency
  double throughput_ratio = 0.0;  ///< candidate / baseline
  double flop_ratio = 0.0;        ///< candidate / baseline (Model FLOP)
  double bytes_ratio = 0.0;
  double power_delta_w = 0.0;     ///< candidate - baseline
  /// Perf per watt improvement: (cand thr / cand W) / (base thr / base W).
  double efficiency_ratio = 0.0;

  /// Latency moved between workload classes: positive = candidate spends
  /// more absolute time in this class.
  std::map<OpClass, double> class_latency_delta_s;
};

/// Computes the delta between two reports (any two models/configs).
[[nodiscard]] ReportDelta compare_reports(const ProfileReport& baseline,
                                          const ProfileReport& candidate);

/// Human-readable rendering of a delta.
[[nodiscard]] std::string delta_text(const ReportDelta& delta);

}  // namespace proof

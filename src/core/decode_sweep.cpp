#include "core/decode_sweep.hpp"

#include <algorithm>
#include <sstream>

#include "core/json_writer.hpp"
#include "core/prep_cache.hpp"
#include "core/sweep_axis.hpp"
#include "hw/platform.hpp"
#include "models/zoo.hpp"
#include "obs/span.hpp"
#include "report/table.hpp"
#include "report/time_view.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "support/units.hpp"

namespace proof {

namespace {

/// Positive, ascending, deduplicated grid axis; throws naming the axis for
/// an empty grid or any non-positive entry.
std::vector<int64_t> clean_axis(const std::vector<int64_t>& values,
                                const char* what) {
  sweep_axis::AxisSpec spec;
  spec.context = "sweep_decode";
  spec.what = what;
  spec.reject_nonpositive = true;
  spec.sorted = true;
  return sweep_axis::clean_axis(values, spec);
}

ProfileOptions profile_options(const DecodeSweepOptions& options, int64_t batch) {
  ProfileOptions opt;
  opt.platform_id = options.platform_id;
  opt.backend_id = options.backend_id;
  opt.dtype = options.dtype;
  opt.batch = batch;
  opt.mode = MetricMode::kPredicted;  // deterministic, runs on every platform
  return opt;
}

}  // namespace

DecodeSweep sweep_decode(const DecodeSweepOptions& options) {
  if (options.platform_id.empty()) {
    throw ConfigError("sweep_decode: platform_id is required");
  }
  DecodeSweep sweep;
  sweep.options = options;
  sweep.options.batches = clean_axis(options.batches, "batch sizes");
  sweep.options.positions = clean_axis(options.positions, "decode positions");
  PROOF_CHECK(options.prefill_len >= 1,
              "prefill length must be >= 1, got " << options.prefill_len);
  const models::LlmConfig& cfg = models::llm_config(options.config_id);
  sweep.model_display = cfg.display;

  const std::vector<int64_t>& batches = sweep.options.batches;
  const std::vector<int64_t>& positions = sweep.options.positions;

  PROOF_SPAN("sweep.decode");
  PROOF_COUNT("sweep.points",
              batches.size() * positions.size() + batches.size());

  // One graph per decode position plus the prefill graph; each is shared
  // read-only across the batch fan-out (batch is applied during backend
  // prepare, which copies), so warm the lazy indices and hash the cache
  // fingerprints up front — each graph is profiled at every batch size.
  // All decode positions map to one structural fingerprint (position only
  // appears in KV-cache input dims, which the structural mode rank-erases),
  // so the whole grid shares a single AnalysisPlan.
  const Graph prefill_graph =
      models::build_llm_prefill(cfg, options.prefill_len);
  sweep_axis::warm_shared_graph(prefill_graph);
  const GraphKeys prefill_keys = compute_graph_keys(prefill_graph);
  std::vector<Graph> decode_graphs;
  std::vector<GraphKeys> decode_keys;
  decode_graphs.reserve(positions.size());
  decode_keys.reserve(positions.size());
  for (const int64_t position : positions) {
    decode_graphs.push_back(models::build_llm_decode_step(cfg, position));
    sweep_axis::warm_shared_graph(decode_graphs.back());
    decode_keys.push_back(compute_graph_keys(decode_graphs.back()));
  }

  sweep.prefill = ThreadPool::global().parallel_map(
      batches.size(), [&](size_t i) {
        const ProfileReport r = Profiler(profile_options(options, batches[i]))
                                    .run(prefill_graph, &prefill_keys);
        PrefillPoint point;
        point.batch = batches[i];
        point.latency_s = r.total_latency_s;
        point.tokens_per_s =
            r.total_latency_s > 0.0
                ? static_cast<double>(batches[i] * options.prefill_len) /
                      r.total_latency_s
                : 0.0;
        point.bandwidth_bound_fraction =
            roofline::time_analysis(r.roofline).bandwidth_bound_latency_fraction();
        return point;
      });

  sweep.points = ThreadPool::global().parallel_map(
      batches.size() * positions.size(), [&](size_t i) {
        const int64_t batch = batches[i / positions.size()];
        const size_t pos_idx = i % positions.size();
        const ProfileReport r = Profiler(profile_options(options, batch))
                                    .run(decode_graphs[pos_idx],
                                         &decode_keys[pos_idx]);
        const roofline::TimeAnalysis time = roofline::time_analysis(r.roofline);
        DecodePoint point;
        point.batch = batch;
        point.position = positions[pos_idx];
        point.latency_s = r.total_latency_s;
        point.tokens_per_s = r.throughput_per_s();  // batch tokens per step
        point.flops = r.roofline.end_to_end.flops;
        point.bytes = r.roofline.end_to_end.bytes;
        point.arithmetic_intensity =
            r.roofline.end_to_end.arithmetic_intensity();
        point.bandwidth_bound_fraction = time.bandwidth_bound_latency_fraction();
        point.bandwidth_bound = point.bandwidth_bound_fraction > 0.5;
        return point;
      });

  // Representative per-phase views (smallest batch; decode at the deepest
  // position): full per-layer time analyses for the table/SVG renderers.
  // PrepCache makes these re-runs cheap — the grid already prepared both.
  {
    const ProfileReport r = Profiler(profile_options(options, batches.front()))
                                .run(prefill_graph, &prefill_keys);
    sweep.prefill_time = roofline::time_analysis(r.roofline);
  }
  {
    const ProfileReport r = Profiler(profile_options(options, batches.front()))
                                .run(decode_graphs.back(), &decode_keys.back());
    sweep.decode_time = roofline::time_analysis(r.roofline);
  }

  // Headline bound-ness: latency-weighted over the smallest-batch points.
  double latency_sum = 0.0;
  double weighted = 0.0;
  for (const DecodePoint& point : sweep.points) {
    if (point.batch != batches.front()) {
      continue;
    }
    latency_sum += point.latency_s;
    weighted += point.latency_s * point.bandwidth_bound_fraction;
  }
  sweep.decode_bound_fraction = latency_sum > 0.0 ? weighted / latency_sum : 0.0;

  const hw::PlatformDesc& platform =
      hw::PlatformRegistry::instance().get(options.platform_id);
  sweep.platform_name = platform.name;
  sweep.backend_name =
      options.backend_id.empty() ? platform.runtime : options.backend_id;
  return sweep;
}

std::string decode_sweep_text(const DecodeSweep& sweep) {
  std::ostringstream out;
  out << "LLM decode sweep: " << sweep.model_display << "  platform: "
      << sweep.platform_name << "  backend: " << sweep.backend_name << "\n";
  out << "prefill length: " << sweep.options.prefill_len
      << "  dtype: " << dtype_name(sweep.options.dtype) << "\n\n";

  report::TextTable prefill({"batch", "prefill latency", "prefill tokens/s",
                             "bw-bound"});
  for (const PrefillPoint& p : sweep.prefill) {
    prefill.add_row({std::to_string(p.batch), units::ms(p.latency_s),
                     units::fixed(p.tokens_per_s, 0) + "/s",
                     units::percent(p.bandwidth_bound_fraction)});
  }
  out << "prefill phase:\n" << prefill.to_string() << "\n";

  std::vector<std::string> headers = {"batch"};
  for (const int64_t position : sweep.options.positions) {
    headers.push_back("tok/s @p" + std::to_string(position));
  }
  headers.push_back("bw-bound @p" +
                    std::to_string(sweep.options.positions.back()));
  report::TextTable decode(std::move(headers));
  for (const int64_t batch : sweep.options.batches) {
    std::vector<std::string> row = {std::to_string(batch)};
    double last_fraction = 0.0;
    for (const DecodePoint& p : sweep.points) {
      if (p.batch != batch) {
        continue;
      }
      row.push_back(units::fixed(p.tokens_per_s, 0));
      last_fraction = p.bandwidth_bound_fraction;
    }
    row.push_back(units::percent(last_fraction));
    decode.add_row(std::move(row));
  }
  out << "decode phase (tokens/s per step):\n" << decode.to_string() << "\n";

  out << "decode-bound-ness @ batch " << sweep.options.batches.front() << ": "
      << units::percent(sweep.decode_bound_fraction)
      << " of decode time bandwidth-bound -> "
      << (sweep.decode_bandwidth_bound() ? "memory" : "compute") << "-bound\n\n";

  out << "prefill time roofline (batch " << sweep.options.batches.front()
      << ", S=" << sweep.options.prefill_len << "):\n"
      << report::time_roofline_table_text(sweep.prefill_time, 10) << "\n";
  out << "decode time roofline (batch " << sweep.options.batches.front()
      << ", S_past=" << sweep.options.positions.back() << "):\n"
      << report::time_roofline_table_text(sweep.decode_time, 10);
  return out.str();
}

namespace {

void emit_time_phase(JsonWriter& w, const std::string& key,
                     const roofline::TimeAnalysis& time) {
  w.begin_object(key);
  w.field("flops", time.total.flops);
  w.field("bytes", time.total.bytes);
  w.field("latency_s", time.total.latency_s);
  w.field("compute_time_s", time.total.compute_time_s);
  w.field("memory_time_s", time.total.memory_time_s);
  w.field("bound_time_s", time.total.bound_time_s);
  w.field("bandwidth_bound", time.total.bandwidth_bound);
  w.field("bandwidth_bound_time_fraction", time.bandwidth_bound_time_fraction());
  w.field("bandwidth_bound_latency_fraction",
          time.bandwidth_bound_latency_fraction());
  w.field("layers", static_cast<int64_t>(time.layers.size()));
  w.end_object();
}

}  // namespace

std::string decode_sweep_json(const DecodeSweep& sweep) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.field("config", sweep.options.config_id);
  w.field("model", sweep.model_display);
  w.field("platform", sweep.options.platform_id);
  w.field("backend", sweep.backend_name);
  w.field("dtype", std::string(dtype_name(sweep.options.dtype)));
  w.field("prefill_len", sweep.options.prefill_len);
  w.begin_array("prefill");
  for (const PrefillPoint& p : sweep.prefill) {
    w.begin_object();
    w.field("batch", p.batch);
    w.field("latency_s", p.latency_s);
    w.field("tokens_per_s", p.tokens_per_s);
    w.field("bandwidth_bound_fraction", p.bandwidth_bound_fraction);
    w.end_object();
  }
  w.end_array();
  w.begin_array("decode");
  for (const DecodePoint& p : sweep.points) {
    w.begin_object();
    w.field("batch", p.batch);
    w.field("position", p.position);
    w.field("latency_s", p.latency_s);
    w.field("tokens_per_s", p.tokens_per_s);
    w.field("flops", p.flops);
    w.field("bytes", p.bytes);
    w.field("arithmetic_intensity", p.arithmetic_intensity);
    w.field("bandwidth_bound_fraction", p.bandwidth_bound_fraction);
    w.field("bandwidth_bound", p.bandwidth_bound);
    w.end_object();
  }
  w.end_array();
  emit_time_phase(w, "prefill_time_roofline", sweep.prefill_time);
  emit_time_phase(w, "decode_time_roofline", sweep.decode_time);
  w.field("decode_bound_fraction", sweep.decode_bound_fraction);
  w.field("decode_bandwidth_bound", sweep.decode_bandwidth_bound());
  w.end_object();
  return out.str();
}

std::vector<PlatformDecodeSummary> sweep_decode_platforms(
    const DecodeSweepOptions& base, std::vector<std::string> platform_ids) {
  if (platform_ids.empty()) {
    platform_ids = hw::PlatformRegistry::instance().ids();
  }
  PROOF_SPAN("sweep.decode_platforms");
  std::vector<PlatformDecodeSummary> rows;
  rows.reserve(platform_ids.size());
  // Serial over platforms: each platform's sweep is itself a pool fan-out,
  // and nesting fan-outs would only shuffle the same work.
  for (const std::string& platform_id : platform_ids) {
    PlatformDecodeSummary row;
    row.platform_id = platform_id;
    row.platform_name = platform_id;
    try {
      DecodeSweepOptions options = base;
      options.platform_id = platform_id;
      options.backend_id.clear();  // each platform uses its default runtime
      const DecodeSweep sweep = sweep_decode(options);
      row.platform_name = sweep.platform_name;
      row.decode_bound_fraction = sweep.decode_bound_fraction;
      row.decode_bandwidth_bound = sweep.decode_bandwidth_bound();
      for (const DecodePoint& p : sweep.points) {
        if (p.batch == sweep.options.batches.front() &&
            p.position == sweep.options.positions.back()) {
          row.decode_tokens_per_s = p.tokens_per_s;
        }
      }
      row.prefill_latency_s = sweep.prefill.front().latency_s;
    } catch (const Error& e) {
      row.error = e.what();  // e.g. NPU compiler rejecting Gelu/Silu
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string decode_platforms_text(
    const std::vector<PlatformDecodeSummary>& rows) {
  if (rows.empty()) {
    return "(no platforms)\n";
  }
  report::TextTable table({"platform", "decode tok/s", "prefill latency",
                           "bw-bound time", "decode bound"});
  size_t bandwidth_bound = 0;
  size_t ran = 0;
  for (const PlatformDecodeSummary& row : rows) {
    if (!row.error.empty()) {
      table.add_row({row.platform_name, "failed", "-", "-", "-"});
      continue;
    }
    ++ran;
    if (row.decode_bandwidth_bound) {
      ++bandwidth_bound;
    }
    table.add_row({row.platform_name, units::fixed(row.decode_tokens_per_s, 0),
                   units::ms(row.prefill_latency_s),
                   units::percent(row.decode_bound_fraction),
                   row.decode_bandwidth_bound ? "memory" : "compute"});
  }
  std::ostringstream out;
  out << table.to_string();
  out << "decode bandwidth-bound on " << bandwidth_bound << " of " << ran
      << " platforms (" << rows.size() - ran << " failed)\n";
  return out.str();
}

std::string decode_platforms_json(
    const std::vector<PlatformDecodeSummary>& rows) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.begin_array("platforms");
  for (const PlatformDecodeSummary& row : rows) {
    w.begin_object();
    w.field("platform", row.platform_id);
    w.field("name", row.platform_name);
    if (!row.error.empty()) {
      w.field("error", row.error);
    } else {
      w.field("decode_tokens_per_s", row.decode_tokens_per_s);
      w.field("prefill_latency_s", row.prefill_latency_s);
      w.field("decode_bound_fraction", row.decode_bound_fraction);
      w.field("decode_bandwidth_bound", row.decode_bandwidth_bound);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out.str();
}

}  // namespace proof

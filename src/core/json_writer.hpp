// Minimal JSON writer: enough for flat objects/arrays of strings + numbers.
// Shared by the report serializers (report_json.cpp, decode_sweep.cpp) so
// every JSON section formats numbers identically (precision 12) — a
// requirement for byte-reproducible golden diffing.
#pragma once

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

namespace proof {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostringstream& out) : out_(out) { out_.precision(12); }

  void begin_object() { separator(); out_ << '{'; fresh_ = true; }
  void begin_object(const std::string& key) {
    separator();
    emit_key(key);
    out_ << '{';
    fresh_ = true;
  }
  void end_object() { out_ << '}'; fresh_ = false; }
  void begin_array(const std::string& key) {
    separator();
    emit_key(key);
    out_ << '[';
    fresh_ = true;
  }
  void end_array() { out_ << ']'; fresh_ = false; }

  void field(const std::string& key, const std::string& value) {
    separator();
    emit_key(key);
    emit_string(value);
  }
  void field(const std::string& key, double value) {
    separator();
    emit_key(key);
    if (std::isfinite(value)) {
      out_ << value;
    } else {
      out_ << "null";
    }
  }
  void field(const std::string& key, int64_t value) {
    separator();
    emit_key(key);
    out_ << value;
  }
  void field(const std::string& key, bool value) {
    separator();
    emit_key(key);
    out_ << (value ? "true" : "false");
  }
  void string_element(const std::string& value) {
    separator();
    emit_string(value);
  }
  /// Splices a pre-serialized JSON value under `key` (self-profile section).
  void raw_field(const std::string& key, const std::string& json) {
    separator();
    emit_key(key);
    out_ << json;
  }

 private:
  void separator() {
    if (!fresh_) {
      out_ << ',';
    }
    fresh_ = false;
  }
  void emit_key(const std::string& key) { emit_string(key); out_ << ':'; }
  void emit_string(const std::string& value) {
    out_ << '"';
    for (const char c : value) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\t':
          out_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostringstream& out_;
  bool fresh_ = true;
};

}  // namespace proof

#include "core/profiler.hpp"

#include "backends/stream_schedule.hpp"
#include "core/prep_cache.hpp"
#include "hw/counters.hpp"
#include "hw/platform.hpp"
#include "mapping/stack_mapping.hpp"
#include "models/zoo.hpp"
#include "obs/self_profile.hpp"
#include "obs/span.hpp"
#include "support/error.hpp"

namespace proof {

roofline::Point LayerReport::to_point() const {
  roofline::Point p;
  p.name = backend_layer;
  p.flops = flops;
  p.bytes = bytes;
  p.latency_s = latency_s;
  p.cls = cls;
  return p;
}

Profiler::Profiler(ProfileOptions options) : options_(std::move(options)) {
  PROOF_CHECK(!options_.platform_id.empty(), "platform_id is required");
  PROOF_CHECK(options_.batch > 0, "batch must be positive");
}

ProfileReport Profiler::run_zoo(const std::string& model_id) const {
  return run(models::build_model(model_id));
}

ProfileReport Profiler::run(const Graph& model, const GraphKeys* keys) const {
  PROOF_SPAN("profiler.run");
  PROOF_COUNT("profiler.runs", 1);
  obs::arm_metrics_dump_at_exit();
  const hw::PlatformDesc& platform =
      hw::PlatformRegistry::instance().get(options_.platform_id);
  const std::string backend_id =
      options_.backend_id.empty() ? platform.runtime : options_.backend_id;
  const backends::Backend& backend =
      backends::BackendRegistry::instance().get(backend_id);

  ProfileReport report;
  report.model_name = model.name();
  report.backend_name = backend.name();
  report.platform_name = platform.name;
  report.options = options_;
  report.options.backend_id = backend_id;

  // 1+2. Engine build (backend graph optimization + lowering) and analysis
  // representation + layer mapping, memoized across batches / clock settings
  // by the preparation cache (uncached when disabled — identical results).
  backends::BuildConfig config;
  config.dtype = options_.dtype;
  config.batch = options_.batch;
  std::shared_ptr<const PreparedEngine> prep;
  {
    PROOF_SPAN("profiler.prepare");
    prep = PrepCache::instance().get_or_prepare(model, backend, platform,
                                                config, keys);
  }
  const backends::Engine& engine = prep->engine;
  const AnalyzeRepresentation& ar = prep->ar;
  const OptimizedAnalyzeRepresentation& oar = prep->oar;
  const mapping::LayerMapping& layer_map = prep->mapping;
  report.mapping_coverage = prep->mapping_coverage;
  report.unmapped_layers = prep->unmapped_layers;
  report.analysis_time_s = prep->analysis_time_s;

  // 3. Latency from the backend's built-in profiler.
  const hw::PlatformState state(platform, options_.clocks);
  const backends::EngineProfile profile = [&] {
    PROOF_SPAN("profiler.latency");
    return engine.profile(state, options_.iterations);
  }();
  report.total_latency_s = profile.total_latency_s;
  report.utilization = profile.utilization;
  report.power_w = hw::PowerModel(state).power_w(profile.utilization);

  // 4. FLOP / memory metrics per layer.
  const bool use_counters =
      options_.mode == MetricMode::kMeasured ||
      (options_.mode == MetricMode::kAuto && platform.has_counter_profiler);
  if (use_counters && !platform.has_counter_profiler) {
    throw ConfigError("platform '" + platform.id + "' has no counter profiler");
  }

  std::vector<double> measured_flops(engine.layers().size(), 0.0);
  std::vector<double> measured_bytes(engine.layers().size(), 0.0);
  if (use_counters) {
    PROOF_SPAN("profiler.counters");
    const hw::CounterProfiler counters(platform);
    const hw::CounterReport counter_report =
        counters.profile(engine.all_kernels(), hw::LatencyModel(state));
    report.counter_profiling_time_s = counter_report.profiling_time_s;
    const mapping::StackMapping stack(engine, layer_map);
    for (const hw::CounterSample& sample : counter_report.samples) {
      const int layer = stack.backend_layer_of_kernel(sample.kernel_name);
      if (layer >= 0) {
        measured_flops[static_cast<size_t>(layer)] += sample.corrected_flops;
        measured_bytes[static_cast<size_t>(layer)] += sample.dram_bytes;
      }
    }
  }

  PROOF_SPAN("profiler.metrics_and_roofline");
  report.layers.reserve(engine.layers().size());
  for (size_t i = 0; i < engine.layers().size(); ++i) {
    const backends::BackendLayer& bl = engine.layers()[i];
    const mapping::LayerMapEntry& entry = layer_map.entries[i];
    LayerReport layer;
    layer.backend_layer = bl.name;
    layer.model_nodes = entry.model_nodes;
    layer.method = entry.method;
    layer.cls = bl.cls;
    layer.is_reorder = bl.is_reorder;
    layer.latency_s = profile.layer_latency_s[i];
    for (const hw::KernelWork& kernel : bl.kernels) {
      layer.kernels.push_back(kernel.name);
    }
    if (use_counters) {
      layer.flops = measured_flops[i];
      layer.bytes = measured_bytes[i];
    } else if (!entry.model_nodes.empty()) {
      // Analytical model over the mapped node set (fusion-aware Equation 1).
      std::vector<NodeId> ids;
      ids.reserve(entry.model_nodes.size());
      for (const std::string& name : entry.model_nodes) {
        ids.push_back(ar.graph().find_node(name));
      }
      layer.flops = oar.fused_flops(ids);
      layer.bytes = oar.fused_memory(ids).total();
    } else if (bl.is_reorder) {
      // Conversion layer: traffic derivable from its I/O tensor sizes.
      double bytes = 0.0;
      for (const hw::KernelWork& k : bl.kernels) {
        bytes += k.bytes;
      }
      layer.bytes = bytes;
    }
    report.layers.push_back(std::move(layer));
  }

  // 5. Roofline assembly (theoretical ceilings at the active clocks).
  report.roofline.ceilings.peak_flops =
      platform.matrix_peak(options_.dtype) * state.gpu_scale();
  report.roofline.ceilings.peak_bw = platform.dram_bw * state.mem_scale();
  report.roofline.layers.reserve(report.layers.size());
  for (const LayerReport& layer : report.layers) {
    report.roofline.layers.push_back(layer.to_point());
  }
  report.roofline.end_to_end =
      roofline::aggregate(report.roofline.layers, model.name());

  // 6. Multi-stream dispatch + critical-path analysis (options.streams != 1;
  // the serial default skips this entirely so reports match the seed
  // byte-for-byte).  Reuses the per-layer latencies already simulated above.
  if (options_.streams != 1) {
    report.timeline = backends::schedule_streams(
        engine, profile.layer_latency_s, options_.streams);
    report.critical_path = critpath::analyze(*report.timeline);
    for (const critpath::LayerStats& stats : report.critical_path->layers) {
      if (stats.layer >= 0 &&
          static_cast<size_t>(stats.layer) < report.roofline.layers.size()) {
        report.roofline.layers[static_cast<size_t>(stats.layer)].criticality =
            stats.criticality;
      }
    }
  }
  return report;
}

}  // namespace proof

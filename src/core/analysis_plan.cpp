#include "core/analysis_plan.hpp"

#include "analysis/shape_inference.hpp"
#include "obs/span.hpp"
#include "support/error.hpp"
#include "tensor/dtype.hpp"

namespace proof {

AnalysisPlan build_analysis_plan(const backends::Engine& engine,
                                 const backends::BuildPlan& plan,
                                 const mapping::LayerMapping& mapping) {
  AnalysisPlan out;
  out.skeleton = engine.analysis_graph().clone_warm();
  out.build_plan = plan;
  // Extracted against the skeleton itself, so the interned tensor ids the
  // recipes cache (kernel boundaries) are valid in every clone_warm() of it.
  out.recipes = backends::extract_layer_recipes(out.skeleton, engine.layers(),
                                                out.build_plan);
  out.mapping = mapping;
  // Pre-resolve every mapping entry's model nodes against the skeleton:
  // node numbering is positional, so the ids hold in every clone_warm copy.
  out.mapping_node_ids.reserve(mapping.entries.size());
  for (const mapping::LayerMapEntry& entry : mapping.entries) {
    std::vector<NodeId> ids;
    ids.reserve(entry.model_nodes.size());
    for (const std::string& name : entry.model_nodes) {
      const NodeId id = out.skeleton.find_node(name);
      PROOF_CHECK(id != kInvalidNode,
                  "analysis plan: mapped node '" << name << "' missing from skeleton");
      ids.push_back(id);
    }
    out.mapping_node_ids.push_back(std::move(ids));
  }
  out.mapping_coverage = mapping.node_coverage(out.skeleton.num_nodes());
  out.unmapped_layers = mapping.count(mapping::MapMethod::kUnmapped);
  out.stream_policy = engine.stream_policy();
  out.backend_id = engine.backend_id();
  // The skeleton is copied concurrently by instantiations; materialize every
  // lazy index now so those copies never race on an index rebuild.
  out.skeleton.warm_indices();
  return out;
}

bool plan_compatible(const AnalysisPlan& plan, const Graph& model) {
  const Graph& s = plan.skeleton;
  if (s.num_nodes() != model.num_nodes() || s.inputs() != model.inputs() ||
      s.outputs() != model.outputs()) {
    return false;
  }
  const std::vector<Node>& sn = s.nodes();
  const std::vector<Node>& mn = model.nodes();
  for (size_t i = 0; i < sn.size(); ++i) {
    if (sn[i].name != mn[i].name || sn[i].op_type != mn[i].op_type ||
        sn[i].inputs != mn[i].inputs || sn[i].outputs != mn[i].outputs) {
      return false;
    }
  }
  const Graph::TensorMap& st = s.tensors();
  const Graph::TensorMap& mt = model.tensors();
  if (st.size() != mt.size()) {
    return false;
  }
  auto si = st.begin();
  auto mi = mt.begin();
  for (; si != st.end(); ++si, ++mi) {
    const TensorDesc& sd = si->second;
    const TensorDesc& md = mi->second;
    if (si->first != mi->first || sd.is_param != md.is_param ||
        sd.shape.rank() != md.shape.rank()) {
      return false;
    }
    // Param shapes are structural (they size the weights kernels stream);
    // param *dtypes* are exempt — the skeleton's were float-converted when
    // the canonical engine was built, the model's are the source dtypes.
    if (sd.is_param && sd.shape.dims() != md.shape.dims()) {
      return false;
    }
  }
  return true;
}

Graph instantiate_plan_graph(const AnalysisPlan& plan, const Graph& model,
                             const backends::BuildConfig& config) {
  Graph g = [&] {
    PROOF_SPAN("instantiate.copy");
    return plan.skeleton.clone_warm();
  }();
  g.set_name(model.name());
  // The skeleton's shape-carrying attrs were batch-rewritten when the
  // canonical cell was prepared; restore the model's originals so the
  // set_batch_size below rewrites them against the model's actual batch.
  // Only "shape"/"sizes" attrs can diverge between compatible graphs
  // (plan_compatible pins everything else; set_batch_size touches nothing
  // else), so restoration is limited to nodes carrying them.
  const std::vector<Node>& src = model.nodes();
  std::vector<Node>& dst = g.nodes();
  for (size_t i = 0; i < dst.size(); ++i) {
    if (dst[i].attrs.has("shape") || dst[i].attrs.has("sizes")) {
      dst[i].attrs = src[i].attrs;
    }
  }
  // Restore the model's input descs (shape AND dtype; floats convert to the
  // build precision exactly as prepare_model's convert_float_dtype does).
  for (const std::string& in : model.inputs()) {
    TensorDesc desc = model.tensor(in);
    if (dtype_is_float(desc.dtype)) {
      desc.dtype = config.dtype;
    }
    g.set_tensor(std::move(desc));
  }
  // One shape-inference pass: infer_shapes overwrites every node-output desc
  // (shape and dtype) in topo order, so the result equals a fresh
  // prepare_model(model, config) graph bit-for-bit.
  {
    PROOF_SPAN("instantiate.infer");
    set_batch_size(g, config.batch);
  }
  return g;
}

std::vector<backends::BackendLayer> replay_plan_layers(
    const AnalysisPlan& plan, const Graph& g, const hw::PlatformDesc& platform,
    const std::vector<NodeAnalysis>* analyses) {
  backends::LoweringOptions options;
  options.arch = platform.arch;
  std::vector<backends::BackendLayer> layers;
  layers.reserve(plan.recipes.size());
  for (const backends::LayerRecipe& recipe : plan.recipes) {
    layers.push_back(backends::replay_layer_recipe(g, recipe, options, analyses));
  }
  return layers;
}

}  // namespace proof

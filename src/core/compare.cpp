#include "core/compare.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/units.hpp"

namespace proof {

ReportDelta compare_reports(const ProfileReport& baseline,
                            const ProfileReport& candidate) {
  PROOF_CHECK(baseline.total_latency_s > 0.0 && candidate.total_latency_s > 0.0,
              "cannot compare reports with zero latency");
  ReportDelta d;
  d.baseline_name = baseline.model_name + "@" + baseline.platform_name;
  d.candidate_name = candidate.model_name + "@" + candidate.platform_name;
  d.speedup = baseline.total_latency_s / candidate.total_latency_s;
  d.throughput_ratio =
      candidate.throughput_per_s() / std::max(1e-12, baseline.throughput_per_s());
  d.flop_ratio = candidate.roofline.end_to_end.flops /
                 std::max(1.0, baseline.roofline.end_to_end.flops);
  d.bytes_ratio = candidate.roofline.end_to_end.bytes /
                  std::max(1.0, baseline.roofline.end_to_end.bytes);
  d.power_delta_w = candidate.power_w - baseline.power_w;
  const double base_eff = baseline.throughput_per_s() / std::max(1e-9, baseline.power_w);
  const double cand_eff =
      candidate.throughput_per_s() / std::max(1e-9, candidate.power_w);
  d.efficiency_ratio = cand_eff / std::max(1e-12, base_eff);

  for (const LayerReport& layer : candidate.layers) {
    d.class_latency_delta_s[layer.cls] += layer.latency_s;
  }
  for (const LayerReport& layer : baseline.layers) {
    d.class_latency_delta_s[layer.cls] -= layer.latency_s;
  }
  return d;
}

std::string delta_text(const ReportDelta& d) {
  std::ostringstream out;
  out << "baseline:  " << d.baseline_name << "\n";
  out << "candidate: " << d.candidate_name << "\n";
  out << "speedup: " << units::fixed(d.speedup, 2)
      << "x  throughput: " << units::fixed(d.throughput_ratio, 2)
      << "x  FLOP: " << units::fixed(d.flop_ratio, 2)
      << "x  DRAM traffic: " << units::fixed(d.bytes_ratio, 2) << "x\n";
  out << "power: " << (d.power_delta_w >= 0 ? "+" : "")
      << units::fixed(d.power_delta_w, 1)
      << " W  perf/W: " << units::fixed(d.efficiency_ratio, 2) << "x\n";
  out << "latency shift by workload class (candidate - baseline):\n";
  for (const auto& [cls, delta] : d.class_latency_delta_s) {
    if (std::abs(delta) < 1e-9) {
      continue;
    }
    out << "  " << op_class_name(cls) << ": " << (delta >= 0 ? "+" : "")
        << units::ms(delta) << "\n";
  }
  return out.str();
}

}  // namespace proof

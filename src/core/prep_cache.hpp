// Preparation cache: memoized backend preparation for sweep workloads.
//
// A profile run decomposes into
//   (a) backend graph optimization (fusion planning)      — batch-independent
//   (b) lowering to an Engine with sized kernels           — batch-dependent
//   (c) AnalyzeRepresentation / OAR construction           — batch-dependent
//   (d) layer mapping (name / I/O-search / dependency)     — batch-independent
//   (e) latency simulation + roofline assembly             — clock-dependent
// and only (e) depends on the DVFS clock state.  Sweep matrices
// (model x batch x precision x clock) therefore redo enormous amounts of
// identical work when run naively; the paper's "negligible cost" claim for
// the analytical path (§4.2) only survives at production sweep sizes with
// memoization.
//
// Two cache levels, both keyed on a structural fingerprint of the model:
//  * plan level   (model, backend, platform, dtype):  the BuildPlan from (a)
//    and the LayerMapping from (d) — reused across batch sizes; a 12-point
//    batch sweep runs fusion planning and the mapping search once.
//  * engine level (model, backend, platform, dtype, batch): the fully built
//    PreparedEngine from (a)-(d) — reused across clock settings, metric
//    modes and repeated runs (clock/power searches, distributed partition
//    searches, report regeneration).
// Shape-dependent metrics (kernel work sizes, per-node FLOP/bytes) are always
// recomputed per batch; cached artifacts are immutable after construction and
// shared across threads.
//
// Disable with PROOF_PREP_CACHE=0 (or set_enabled(false)) to get the
// build-everything-every-time behaviour; results are identical either way.
//
// A third, shape-polymorphic level sits behind the engine level: the
// AnalysisPlan cache (core/analysis_plan.hpp).  It is keyed on a
// *shape-erased* structural fingerprint (FingerprintMode::kStructural) that
// hashes op types / attributes / connectivity but symbolizes batch and
// sequence dims, so every cell of a sweep grid that differs only in batch or
// KV position — and every decode-step graph of the same LLM config at a
// different position — shares one frozen structure phase (fusion partition,
// lowering recipes, layer mapping, stream policy).  A plan hit replaces the
// full prepare pipeline with a cheap instantiation: one graph copy, one shape
// inference pass, closed-form kernel re-evaluation, and a mapping replay.
// Disable with PROOF_PLAN_CACHE=0 (or set_plan_cache_enabled(false)) for the
// A/B legacy path; reports are byte-identical either way.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "analysis/analyze_representation.hpp"
#include "analysis/optimized_representation.hpp"
#include "backends/backend.hpp"
#include "mapping/layer_mapping.hpp"

namespace proof {

/// Everything a profile run needs that does not depend on clocks: the built
/// engine plus analysis representations and the layer mapping.  Immutable
/// and address-stable once published (oar holds a pointer to ar).
class PreparedEngine {
 public:
  PreparedEngine(backends::Engine engine_in, mapping::LayerMapping mapping_in);

  /// Tag for the plan-cache instantiation path: the engine's analysis graph
  /// was produced by instantiating a frozen AnalysisPlan and is already
  /// validated + shape-inferred, so AR construction skips both.
  struct PreInferredTag {};
  PreparedEngine(backends::Engine engine_in, mapping::LayerMapping mapping_in,
                 PreInferredTag tag);

  /// As above, adopting an AR the instantiation already built (over the
  /// engine's shared analysis graph) instead of constructing one here.
  PreparedEngine(backends::Engine engine_in, mapping::LayerMapping mapping_in,
                 AnalyzeRepresentation ar_in, PreInferredTag tag);

  PreparedEngine(const PreparedEngine&) = delete;
  PreparedEngine& operator=(const PreparedEngine&) = delete;

  backends::Engine engine;
  AnalyzeRepresentation ar;
  OptimizedAnalyzeRepresentation oar;
  mapping::LayerMapping mapping;
  double mapping_coverage = 0.0;
  size_t unmapped_layers = 0;
  /// Wall time of AR/OAR construction + mapping when this entry was built
  /// (reported verbatim on cache hits, mirroring the paper's §4.2 overhead
  /// accounting for the work actually performed once).
  double analysis_time_s = 0.0;
};

struct PrepCacheStats {
  size_t engine_hits = 0;    ///< full (a)-(d) skipped
  size_t engine_misses = 0;
  size_t plan_hits = 0;      ///< fusion planning + mapping search skipped
  size_t plan_misses = 0;
  size_t evictions = 0;      ///< entries dropped by the FIFO memory backstop

  // Shape-polymorphic AnalysisPlan level (structural-fingerprint keyed).
  // When the plan cache is enabled its hits/misses also count into
  // plan_hits/plan_misses above — a plan-cache hit skips the same fusion
  // planning + mapping search the legacy exact-fingerprint level skipped.
  size_t plan_cache_hits = 0;        ///< frozen plan instantiated per cell
  size_t plan_cache_misses = 0;      ///< full structure phase built + frozen
  size_t plan_cache_evictions = 0;   ///< plans dropped by the FIFO backstop
  size_t plan_cache_collisions = 0;  ///< fingerprint hit, verification failed
  uint64_t plan_cache_build_ns = 0;  ///< cumulative structure-phase build time

  [[nodiscard]] double engine_hit_rate() const {
    const size_t total = engine_hits + engine_misses;
    return total == 0 ? 0.0 : static_cast<double>(engine_hits) / static_cast<double>(total);
  }
  [[nodiscard]] double plan_hit_rate() const {
    const size_t total = plan_hits + plan_misses;
    return total == 0 ? 0.0 : static_cast<double>(plan_hits) / static_cast<double>(total);
  }
};

/// How much of a graph a fingerprint keys on.
enum class FingerprintMode : uint8_t {
  /// Name, I/O, nodes (names, op types, attributes) and the full tensor
  /// table (dtype, every dim, param flag).  Keys engine-level entries.
  kExact,
  /// Shape-erased: same structure (op types, attributes, connectivity, param
  /// shapes) but the graph name is dropped and non-param tensors contribute
  /// only their rank — batch and sequence/position dims are symbolized.
  /// Every batch size of a model, and every KV position of an LLM decode
  /// step, map to the same structural fingerprint.  Keys AnalysisPlans.
  kStructural,
};

/// Structural fingerprint of a model graph.  Weights do not enter profiling
/// and are excluded in both modes.
[[nodiscard]] uint64_t graph_fingerprint(
    const Graph& model, FingerprintMode mode = FingerprintMode::kExact);

/// Both fingerprints of a model, computed in one traversal.  Sweeps hoist
/// this out of their inner loops and hand it to Profiler::run / the cache so
/// per-cell lookups skip re-hashing the (shared, read-only) model graph.
struct GraphKeys {
  uint64_t exact = 0;
  uint64_t structural = 0;
};
[[nodiscard]] GraphKeys compute_graph_keys(const Graph& model);

class PrepCache {
 public:
  /// Process-wide instance shared by every Profiler.
  static PrepCache& instance();

  PrepCache();
  ~PrepCache();
  PrepCache(const PrepCache&) = delete;
  PrepCache& operator=(const PrepCache&) = delete;

  /// Returns the prepared engine for (model, backend, platform, config),
  /// building at most once per key even under concurrent callers (other
  /// threads wait on the winner's in-flight build).  When the cache is
  /// disabled every call builds privately and records no stats.  `keys`, when
  /// non-null, supplies precomputed fingerprints (sweeps hoist the hashing
  /// out of their inner loops); it must describe `model` exactly.
  [[nodiscard]] std::shared_ptr<const PreparedEngine> get_or_prepare(
      const Graph& model, const backends::Backend& backend,
      const hw::PlatformDesc& platform, const backends::BuildConfig& config,
      const GraphKeys* keys = nullptr);

  /// Drops every cached entry (stats are kept; use reset_stats()).
  void clear();

  [[nodiscard]] PrepCacheStats stats() const;
  void reset_stats();

  /// Runtime switch; initial value comes from PROOF_PREP_CACHE ("0"/"false"
  /// disables).  Disabling does not clear existing entries.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const;

  /// Ready engine-level entries cached right now.
  [[nodiscard]] size_t size() const;

  /// FIFO eviction bound on engine-level entries (0 = unbounded).  Initial
  /// value comes from PROOF_PREP_CACHE_CAP (default 512).  Long-running
  /// daemons tune this to bound resident memory; shrinking evicts the oldest
  /// entries immediately.
  [[nodiscard]] size_t capacity() const;
  void set_capacity(size_t capacity);

  /// Shape-polymorphic AnalysisPlan level.  Runtime switch; initial value
  /// comes from PROOF_PLAN_CACHE ("0"/"false"/"off" disables).  Disabling
  /// falls back to the legacy exact-fingerprint plan level (the seed path)
  /// without clearing existing entries; results are byte-identical either
  /// way — this is the A/B mode bench_plan_cache exercises.
  void set_plan_cache_enabled(bool enabled);
  [[nodiscard]] bool plan_cache_enabled() const;

  /// Ready AnalysisPlans cached right now.
  [[nodiscard]] size_t plan_cache_size() const;

  /// FIFO eviction bound on AnalysisPlans (0 = unbounded).  Initial value
  /// comes from PROOF_PLAN_CACHE_CAP (default 128).
  [[nodiscard]] size_t plan_cache_capacity() const;
  void set_plan_cache_capacity(size_t capacity);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Uncached preparation: the exact (a)-(d) pipeline the cache memoizes.
[[nodiscard]] std::shared_ptr<const PreparedEngine> prepare_engine(
    const Graph& model, const backends::Backend& backend,
    const hw::PlatformDesc& platform, const backends::BuildConfig& config);

}  // namespace proof

#include "core/report_text.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "report/table.hpp"
#include "support/units.hpp"

namespace proof {

std::string summary_text(const ProfileReport& report) {
  const roofline::Point& e2e = report.roofline.end_to_end;
  std::ostringstream out;
  out << "model: " << report.model_name << "  backend: " << report.backend_name
      << "  platform: " << report.platform_name << "\n";
  out << "dtype: " << dtype_name(report.options.dtype)
      << "  batch: " << report.options.batch << "  metrics: "
      << (report.counter_profiling_time_s > 0.0 ? "measured (counters)"
                                                : "predicted (analytical)")
      << "\n";
  out << "latency: " << units::ms(report.total_latency_s)
      << "  throughput: " << units::fixed(report.throughput_per_s(), 0)
      << " samples/s\n";
  out << "FLOP: " << units::gflop(e2e.flops)
      << "  memory: " << units::megabytes(e2e.bytes)
      << "  AI: " << units::fixed(e2e.arithmetic_intensity(), 2) << " FLOP/B\n";
  out << "attained: " << units::tflops(e2e.attained_flops()) << " / "
      << units::gbps(e2e.attained_bandwidth()) << "  bound: "
      << (report.roofline.ceilings.memory_bound(e2e) ? "memory" : "compute")
      << "  roofline efficiency: "
      << units::fixed(report.roofline.roofline_efficiency() * 100.0, 1) << "%\n";
  out << "power: " << units::fixed(report.power_w, 1)
      << " W  mapping coverage: "
      << units::fixed(report.mapping_coverage * 100.0, 1) << "% ("
      << report.unmapped_layers << " unmapped layers)\n";
  if (report.critical_path) {
    const critpath::Report& cp = *report.critical_path;
    out << "streams: " << cp.num_streams
        << "  critical path: " << units::ms(cp.critical_path_ns / 1e9)
        << "  (" << units::fixed(cp.parallel_speedup, 2)
        << "x vs serial, " << cp.sync_count << " sync edges, "
        << cp.critical_layers.size() << " of " << cp.layers.size()
        << " layers critical)\n";
  }
  if (report.counter_profiling_time_s > 0.0) {
    out << "counter profiling overhead: "
        << units::fixed(report.counter_profiling_time_s, 0) << " s\n";
  }
  return out.str();
}

std::string layer_table_text(const ProfileReport& report, size_t max_rows) {
  // Multi-stream reports rank layers by criticality — the layers that gate
  // the critical path come first, regardless of raw latency.  Serial reports
  // keep the seed's execution order and column set.
  const bool ranked = report.critical_path.has_value();
  std::vector<std::string> header = {"backend layer", "nodes",  "class",
                                     "latency",       "share",  "FLOP/s",
                                     "BW",            "AI",     "mapped via"};
  if (ranked) {
    header.push_back("slack");
    header.push_back("crit");
  }
  report::TextTable table(header);

  std::vector<size_t> order(report.layers.size());
  std::iota(order.begin(), order.end(), size_t{0});
  if (ranked) {
    const std::vector<critpath::LayerStats>& stats = report.critical_path->layers;
    const auto criticality = [&](size_t i) {
      return i < stats.size() ? stats[i].criticality : 0.0;
    };
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (criticality(a) != criticality(b)) {
        return criticality(a) > criticality(b);
      }
      return report.layers[a].latency_s > report.layers[b].latency_s;
    });
  }

  size_t rows = 0;
  for (const size_t i : order) {
    const LayerReport& layer = report.layers[i];
    const roofline::Point& pt = report.roofline.layers[i];
    if (max_rows > 0 && rows >= max_rows) {
      break;
    }
    ++rows;
    std::string name = layer.backend_layer;
    if (name.size() > 42) {
      name = name.substr(0, 39) + "...";
    }
    std::vector<std::string> row = {
        name, std::to_string(layer.model_nodes.size()),
        std::string(op_class_name(layer.cls)), units::ms(layer.latency_s),
        units::fixed(pt.latency_share * 100.0, 1) + "%",
        units::tflops(pt.attained_flops()),
        units::gbps(pt.attained_bandwidth()),
        units::fixed(pt.arithmetic_intensity(), 1),
        std::string(mapping::map_method_name(layer.method))};
    if (ranked) {
      const std::vector<critpath::LayerStats>& stats =
          report.critical_path->layers;
      const bool have = i < stats.size();
      row.push_back(have ? units::ms(stats[i].slack_ns / 1e9) : "-");
      row.push_back(have ? units::fixed(stats[i].criticality, 2) : "-");
    }
    table.add_row(row);
  }
  return table.to_string();
}

std::string stack_text(const ProfileReport& report, const std::string& filter) {
  std::ostringstream out;
  const auto matches = [&](const LayerReport& layer) {
    if (filter.empty()) {
      return true;
    }
    if (layer.backend_layer.find(filter) != std::string::npos) {
      return true;
    }
    for (const std::string& node : layer.model_nodes) {
      if (node.find(filter) != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  size_t shown = 0;
  for (const LayerReport& layer : report.layers) {
    if (!matches(layer)) {
      continue;
    }
    ++shown;
    out << "backend layer: " << layer.backend_layer << "  ["
        << op_class_name(layer.cls) << ", " << units::ms(layer.latency_s)
        << ", mapped via " << mapping::map_method_name(layer.method) << "]\n";
    if (layer.model_nodes.empty()) {
      out << "  model design: "
          << (layer.is_reorder ? "(backend-inserted conversion layer)" : "(none)")
          << "\n";
    } else {
      out << "  model design: ";
      for (size_t i = 0; i < layer.model_nodes.size(); ++i) {
        out << (i > 0 ? " + " : "") << layer.model_nodes[i];
      }
      out << "\n";
    }
    out << "  device kernels:";
    for (const std::string& kernel : layer.kernels) {
      out << " " << kernel;
    }
    out << "\n";
  }
  if (shown == 0) {
    out << "(no backend layer matches '" << filter << "')\n";
  }
  return out.str();
}

}  // namespace proof

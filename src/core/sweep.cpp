#include "core/sweep.hpp"

#include <sstream>

#include "report/table.hpp"
#include "support/error.hpp"
#include "support/units.hpp"

namespace proof {

BatchSweep sweep_batches(const ProfileOptions& base, const Graph& model,
                         std::vector<int64_t> candidates, double knee_tolerance) {
  if (candidates.empty()) {
    for (int64_t b = 1; b <= 2048; b *= 2) {
      candidates.push_back(b);
    }
  }
  PROOF_CHECK(knee_tolerance >= 0.0 && knee_tolerance < 1.0,
              "knee_tolerance must be in [0, 1)");
  BatchSweep sweep;
  double best_throughput = 0.0;
  for (const int64_t batch : candidates) {
    ProfileOptions opt = base;
    opt.batch = batch;
    const ProfileReport r = Profiler(opt).run(model);
    BatchPoint point;
    point.batch = batch;
    point.latency_s = r.total_latency_s;
    point.throughput_per_s = r.throughput_per_s();
    point.attained_flops = r.roofline.end_to_end.attained_flops();
    best_throughput = std::max(best_throughput, point.throughput_per_s);
    sweep.points.push_back(point);
  }
  for (const BatchPoint& point : sweep.points) {
    if (point.throughput_per_s >= (1.0 - knee_tolerance) * best_throughput) {
      sweep.optimal_batch = point.batch;
      break;
    }
  }
  return sweep;
}

std::string sweep_text(const BatchSweep& sweep) {
  report::TextTable table({"batch", "latency", "throughput", "attained"});
  for (const BatchPoint& p : sweep.points) {
    std::string batch = std::to_string(p.batch);
    if (p.batch == sweep.optimal_batch) {
      batch += " *";
    }
    table.add_row({batch, units::ms(p.latency_s),
                   units::fixed(p.throughput_per_s, 0) + "/s",
                   units::tflops(p.attained_flops)});
  }
  std::ostringstream out;
  out << table.to_string();
  out << "* optimal batch (throughput knee): " << sweep.optimal_batch << "\n";
  return out.str();
}

}  // namespace proof

#include "core/sweep.hpp"

#include <algorithm>
#include <sstream>

#include "core/prep_cache.hpp"
#include "core/sweep_axis.hpp"
#include "hw/platform.hpp"
#include "models/zoo.hpp"
#include "obs/span.hpp"
#include "report/table.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "support/units.hpp"

namespace proof {

BatchSweep sweep_batches(const ProfileOptions& base, const Graph& model,
                         std::vector<int64_t> candidates, double knee_tolerance) {
  if (candidates.empty()) {
    for (int64_t b = 1; b <= 2048; b *= 2) {
      candidates.push_back(b);
    }
  }
  PROOF_CHECK(knee_tolerance >= 0.0 && knee_tolerance < 1.0,
              "knee_tolerance must be in [0, 1)");

  // Validate: keep positive batches, first occurrence of each value.
  sweep_axis::AxisSpec spec;
  spec.context = "sweep_batches";
  spec.what = "batch candidates";
  spec.empty_hint = "need at least one positive batch size";
  const std::vector<int64_t> valid = sweep_axis::clean_axis(candidates, spec);

  sweep_axis::warm_shared_graph(model);
  // Every cell profiles the same graph; hash it once instead of per cell.
  const GraphKeys keys = compute_graph_keys(model);
  PROOF_SPAN("sweep.batches");
  PROOF_COUNT("sweep.points", valid.size());
  BatchSweep sweep;
  sweep.points = ThreadPool::global().parallel_map(
      valid.size(), [&](size_t i) {
        ProfileOptions opt = base;
        opt.batch = valid[i];
        const ProfileReport r = Profiler(opt).run(model, &keys);
        BatchPoint point;
        point.batch = valid[i];
        point.latency_s = r.total_latency_s;
        point.throughput_per_s = r.throughput_per_s();
        point.attained_flops = r.roofline.end_to_end.attained_flops();
        return point;
      });

  sweep.optimal_batch = select_optimal_batch(sweep.points, knee_tolerance);
  return sweep;
}

int64_t select_optimal_batch(const std::vector<BatchPoint>& points,
                             double knee_tolerance) {
  PROOF_CHECK(knee_tolerance >= 0.0 && knee_tolerance < 1.0,
              "knee_tolerance must be in [0, 1)");
  double best_throughput = 0.0;
  for (const BatchPoint& point : points) {
    best_throughput = std::max(best_throughput, point.throughput_per_s);
  }
  for (const BatchPoint& point : points) {
    if (point.throughput_per_s >= (1.0 - knee_tolerance) * best_throughput) {
      return point.batch;
    }
  }
  return 0;
}

std::string sweep_text(const BatchSweep& sweep) {
  if (sweep.points.empty()) {
    return "(empty sweep: no batch points)\n";
  }
  report::TextTable table({"batch", "latency", "throughput", "attained"});
  for (const BatchPoint& p : sweep.points) {
    std::string batch = std::to_string(p.batch);
    if (p.batch == sweep.optimal_batch) {
      batch += " *";
    }
    table.add_row({batch, units::ms(p.latency_s),
                   units::fixed(p.throughput_per_s, 0) + "/s",
                   units::tflops(p.attained_flops)});
  }
  std::ostringstream out;
  out << table.to_string();
  out << "* optimal batch (throughput knee): " << sweep.optimal_batch << "\n";
  return out.str();
}

ZooSweep sweep_zoo(const ProfileOptions& base,
                   std::vector<std::string> model_ids) {
  if (model_ids.empty()) {
    for (const models::ModelSpec& spec : models::model_zoo()) {
      model_ids.push_back(spec.id);
    }
  }
  PROOF_SPAN("sweep.zoo");
  PROOF_COUNT("sweep.points", model_ids.size());
  ZooSweep sweep;
  sweep.points = ThreadPool::global().parallel_map(
      model_ids.size(), [&](size_t i) {
        ZooSweepPoint point;
        point.model_id = model_ids[i];
        point.display = model_ids[i];
        try {
          point.display = models::model_spec(model_ids[i]).display;
          const ProfileReport r = Profiler(base).run_zoo(model_ids[i]);
          point.latency_s = r.total_latency_s;
          point.throughput_per_s = r.throughput_per_s();
          point.attained_flops = r.roofline.end_to_end.attained_flops();
          point.mapping_coverage = r.mapping_coverage;
        } catch (const Error& e) {
          point.error = e.what();  // e.g. unsupported op on this platform
        }
        return point;
      });
  return sweep;
}

std::string zoo_sweep_text(const ZooSweep& sweep) {
  if (sweep.points.empty()) {
    return "(empty sweep: no models)\n";
  }
  report::TextTable table(
      {"model", "latency", "throughput", "attained", "coverage"});
  for (const ZooSweepPoint& p : sweep.points) {
    if (!p.error.empty()) {
      table.add_row({p.display, "failed", "-", "-", "-"});
      continue;
    }
    table.add_row({p.display, units::ms(p.latency_s),
                   units::fixed(p.throughput_per_s, 0) + "/s",
                   units::tflops(p.attained_flops),
                   units::fixed(p.mapping_coverage * 100.0, 1) + "%"});
  }
  return table.to_string();
}

ClockSweep sweep_clocks(const ProfileOptions& base, const Graph& model,
                        std::vector<double> gpu_mhz_steps) {
  if (gpu_mhz_steps.empty()) {
    const hw::PlatformDesc& platform =
        hw::PlatformRegistry::instance().get(base.platform_id);
    gpu_mhz_steps = platform.gpu_clock.available_mhz;
  }
  PROOF_CHECK(!gpu_mhz_steps.empty(),
              "platform exposes no GPU clock steps to sweep");
  std::sort(gpu_mhz_steps.begin(), gpu_mhz_steps.end());

  sweep_axis::warm_shared_graph(model);
  // Clock changes touch nothing structural (and nothing shape-dependent
  // either — every cell reuses one cached engine); hash the graph once.
  const GraphKeys keys = compute_graph_keys(model);
  PROOF_SPAN("sweep.clocks");
  PROOF_COUNT("sweep.points", gpu_mhz_steps.size());
  ClockSweep sweep;
  sweep.points = ThreadPool::global().parallel_map(
      gpu_mhz_steps.size(), [&](size_t i) {
        ProfileOptions opt = base;
        opt.clocks.gpu_mhz = gpu_mhz_steps[i];
        const ProfileReport r = Profiler(opt).run(model, &keys);
        ClockPoint point;
        point.gpu_mhz = gpu_mhz_steps[i];
        point.latency_s = r.total_latency_s;
        point.power_w = r.power_w;
        point.throughput_per_s = r.throughput_per_s();
        return point;
      });
  return sweep;
}

double search_gpu_clock_under_power(const ProfileOptions& base,
                                    const Graph& model, double power_budget_w,
                                    ClockSweep* sweep_out) {
  PROOF_CHECK(power_budget_w > 0.0, "power budget must be positive");
  const ClockSweep sweep = sweep_clocks(base, model, {});
  // Highest step under budget; every step over budget -> the lowest step
  // (the closest the hardware can get to compliance).
  double selected = sweep.points.front().gpu_mhz;
  for (const ClockPoint& p : sweep.points) {
    if (p.power_w <= power_budget_w) {
      selected = p.gpu_mhz;
    }
  }
  if (sweep_out != nullptr) {
    sweep_out->points.insert(sweep_out->points.end(), sweep.points.begin(),
                             sweep.points.end());
  }
  return selected;
}

}  // namespace proof

// Chrome-trace timeline export (chrome://tracing / Perfetto).
//
// The paper obtains kernel-to-layer correspondence through Nsight Systems'
// timeline; this emits the equivalent view of a profiled run: one track of
// backend layers and one track of device kernels, aligned on the simulated
// timeline, each event annotated with the mapped model-design nodes.
#pragma once

#include <string>
#include <vector>

#include "core/profiler.hpp"
#include "obs/span.hpp"

namespace proof {

/// Serializes the run as a Chrome trace-event JSON document ("traceEvents"
/// array with complete 'X' events; timestamps in microseconds).
[[nodiscard]] std::string report_to_chrome_trace(const ProfileReport& report);

/// Same document plus a second process ("proof self-profile") rendering the
/// profiler's own spans, one track per OS thread — parallel sweep work shows
/// up as real per-thread lanes.  Pass obs::trace_events().
[[nodiscard]] std::string report_to_chrome_trace(
    const ProfileReport& report, const std::vector<obs::TraceEvent>& self_spans);

void save_chrome_trace(const std::string& trace, const std::string& path);

}  // namespace proof

// Chrome-trace timeline export (chrome://tracing / Perfetto).
//
// The paper obtains kernel-to-layer correspondence through Nsight Systems'
// timeline; this emits the equivalent view of a profiled run.  Serial-mode
// reports render as one track of backend layers plus one track of device
// kernels, tiled by a running cursor.  Multi-stream reports (profiled with
// options.streams != 1) render one lane per execution stream under pid 1,
// kernels nested inside their layer's slice, and a flow arrow per
// cross-stream sync edge; layer events carry slack/criticality args from the
// critical-path analysis.  See docs/TRACING.md.
#pragma once

#include <string>
#include <vector>

#include "core/profiler.hpp"
#include "obs/span.hpp"

namespace proof {

/// Serializes the run as a Chrome trace-event JSON document ("traceEvents"
/// array with complete 'X' events; timestamps in microseconds).
[[nodiscard]] std::string report_to_chrome_trace(const ProfileReport& report);

/// Same document plus a second process ("proof self-profile") rendering the
/// profiler's own spans, one track per OS thread — parallel sweep work shows
/// up as real per-thread lanes.  Pass obs::trace_events().
[[nodiscard]] std::string report_to_chrome_trace(
    const ProfileReport& report, const std::vector<obs::TraceEvent>& self_spans);

void save_chrome_trace(const std::string& trace, const std::string& path);

}  // namespace proof

// Profiling sweeps: batch-size selection, full-zoo runs and DVFS searches.
//
// The paper's Figure-4 methodology picks "a batch size ... that fully
// utilizes the hardware" per device; `sweep_batches` automates that choice by
// sweeping candidate batch sizes and selecting the knee of the throughput
// curve.  `sweep_zoo` runs the whole Table-3 model zoo under one
// configuration, and `sweep_clocks` / `search_gpu_clock_under_power`
// implement the §4.6 DVFS tuning procedure.
//
// Every sweep fans its points out over the global thread pool
// (support/thread_pool.hpp) and writes results by point index, so output is
// byte-identical to the serial order regardless of --jobs.
#pragma once

#include <vector>

#include "core/profiler.hpp"

namespace proof {

struct BatchPoint {
  int64_t batch = 0;
  double latency_s = 0.0;
  double throughput_per_s = 0.0;
  double attained_flops = 0.0;
};

struct BatchSweep {
  std::vector<BatchPoint> points;
  /// Smallest batch whose throughput is within `knee_tolerance` of the best.
  int64_t optimal_batch = 0;
};

/// Profiles `model` at each candidate batch (default: powers of two 1..2048)
/// and selects the saturation knee.  `knee_tolerance` = 0.05 keeps the
/// smallest batch within 5 % of peak throughput.  Candidates must be
/// positive; duplicates are dropped (first occurrence wins) and an explicit
/// list with no valid candidate throws ConfigError.
[[nodiscard]] BatchSweep sweep_batches(const ProfileOptions& base,
                                       const Graph& model,
                                       std::vector<int64_t> candidates = {},
                                       double knee_tolerance = 0.05);

/// The knee-selection rule on its own: the smallest batch whose throughput is
/// within `knee_tolerance` of the best point.  Returns 0 for an empty sweep.
/// Shared by sweep_batches and the serve daemon's incremental sweep, which
/// profiles points one at a time (streaming them out) rather than as one
/// parallel fan-out.
[[nodiscard]] int64_t select_optimal_batch(const std::vector<BatchPoint>& points,
                                           double knee_tolerance = 0.05);

/// Text rendering of a sweep.
[[nodiscard]] std::string sweep_text(const BatchSweep& sweep);

// --- full-zoo sweep ----------------------------------------------------------

struct ZooSweepPoint {
  std::string model_id;
  std::string display;              ///< Table-3 display name
  double latency_s = 0.0;
  double throughput_per_s = 0.0;
  double attained_flops = 0.0;
  double mapping_coverage = 0.0;
  /// Set when the model failed to build/lower on this platform (the paper's
  /// NPU observation); the numeric fields are zero in that case.
  std::string error;
};

struct ZooSweep {
  std::vector<ZooSweepPoint> points;  ///< zoo order (Table 3 indices)
};

/// Profiles every zoo model (default: all Table-3 entries) under `base`.
/// Per-model build failures are recorded in `error` instead of aborting the
/// sweep.  Points come back in the requested order regardless of --jobs.
[[nodiscard]] ZooSweep sweep_zoo(const ProfileOptions& base,
                                 std::vector<std::string> model_ids = {});

/// Text rendering of a zoo sweep.
[[nodiscard]] std::string zoo_sweep_text(const ZooSweep& sweep);

// --- DVFS sweeps (§4.6) ------------------------------------------------------

struct ClockPoint {
  double gpu_mhz = 0.0;
  double latency_s = 0.0;
  double power_w = 0.0;
  double throughput_per_s = 0.0;
};

struct ClockSweep {
  std::vector<ClockPoint> points;  ///< ascending gpu_mhz
};

/// Profiles `model` at each GPU clock step (default: every step the
/// platform's gpu_clock domain offers), holding the rest of `base.clocks`
/// fixed.
[[nodiscard]] ClockSweep sweep_clocks(const ProfileOptions& base,
                                      const Graph& model,
                                      std::vector<double> gpu_mhz_steps = {});

/// §4.6 power-budget search: evaluates the platform's GPU clock steps and
/// returns the highest clock whose modelled board power stays within
/// `power_budget_w` (when every step busts the budget, the LOWEST step — the
/// closest the hardware can get to compliance — not 0).  Unlike the paper's
/// serial binary search this evaluates candidate steps concurrently — same
/// result, one pool fan-out instead of log2(n) round trips.
///
/// Surprise to note: when `sweep_out` is non-null the evaluated points are
/// APPENDED to `sweep_out->points` — existing points are kept, not replaced,
/// so callers can accumulate several searches (e.g. per power budget) into
/// one ClockSweep for a combined table.  `sweep_out->points` therefore ends
/// up sorted by clock only within each appended segment, and
/// `sweep_out`'s other fields are never touched.  Pass an empty ClockSweep
/// for plain capture semantics.  Pinned by SweepClocks.PowerSearchAppendsToSweepOut.
[[nodiscard]] double search_gpu_clock_under_power(const ProfileOptions& base,
                                                  const Graph& model,
                                                  double power_budget_w,
                                                  ClockSweep* sweep_out = nullptr);

}  // namespace proof

// Batch-size sweeps and optimal-batch selection.
//
// The paper's Figure-4 methodology picks "a batch size ... that fully
// utilizes the hardware" per device; this utility automates that choice by
// sweeping candidate batch sizes and selecting the knee of the throughput
// curve.
#pragma once

#include <vector>

#include "core/profiler.hpp"

namespace proof {

struct BatchPoint {
  int64_t batch = 0;
  double latency_s = 0.0;
  double throughput_per_s = 0.0;
  double attained_flops = 0.0;
};

struct BatchSweep {
  std::vector<BatchPoint> points;
  /// Smallest batch whose throughput is within `knee_tolerance` of the best.
  int64_t optimal_batch = 0;
};

/// Profiles `model` at each candidate batch (default: powers of two 1..2048)
/// and selects the saturation knee.  `knee_tolerance` = 0.05 keeps the
/// smallest batch within 5 % of peak throughput.
[[nodiscard]] BatchSweep sweep_batches(const ProfileOptions& base,
                                       const Graph& model,
                                       std::vector<int64_t> candidates = {},
                                       double knee_tolerance = 0.05);

/// Text rendering of a sweep.
[[nodiscard]] std::string sweep_text(const BatchSweep& sweep);

}  // namespace proof

// Text rendering of profile reports (the dataviewer's CLI output).
#pragma once

#include <string>

#include "core/profiler.hpp"

namespace proof {

/// One-paragraph end-to-end summary: model, backend, platform, latency,
/// throughput, attained FLOP/s and bandwidth, roofline bound, power.
[[nodiscard]] std::string summary_text(const ProfileReport& report);

/// Per-backend-layer table: name, mapped nodes, class, latency (+share),
/// FLOP/s, bandwidth, arithmetic intensity, mapping method.
[[nodiscard]] std::string layer_table_text(const ProfileReport& report,
                                           size_t max_rows = 0);

/// Full-stack drill-down (paper Figure 3): for layers matching `filter`
/// (substring of the backend-layer name or of any mapped model node; empty =
/// all layers), prints model-design nodes -> backend layer -> device kernels.
[[nodiscard]] std::string stack_text(const ProfileReport& report,
                                     const std::string& filter = "");

}  // namespace proof

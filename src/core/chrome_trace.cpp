#include "core/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace proof {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string report_to_chrome_trace(const ProfileReport& report) {
  return report_to_chrome_trace(report, {});
}

std::string report_to_chrome_trace(
    const ProfileReport& report,
    const std::vector<obs::TraceEvent>& self_spans) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& name, int tid, double start_us,
                        double dur_us, const std::string& args_json) {
    if (!first) {
      out << ',';
    }
    first = false;
    out << "{\"name\":\"" << json_escape(name)
        << "\",\"cat\":\"proof\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
        << ",\"ts\":" << start_us << ",\"dur\":" << dur_us << ",\"args\":{"
        << args_json << "}}";
  };

  // Track metadata.
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\""
      << json_escape(report.model_name + " on " + report.platform_name)
      << "\"}},";
  out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
         "\"args\":{\"name\":\"backend layers\"}},";
  out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
         "\"args\":{\"name\":\"device kernels\"}}";
  first = false;

  double cursor_us = 0.0;
  for (size_t i = 0; i < report.layers.size(); ++i) {
    const LayerReport& layer = report.layers[i];
    const roofline::Point& pt = report.roofline.layers[i];
    const double dur_us = layer.latency_s * 1e6;
    std::ostringstream args;
    args.precision(4);
    args << "\"class\":\"" << op_class_name(layer.cls) << "\",\"mapped_via\":\""
         << mapping::map_method_name(layer.method) << "\",\"model_nodes\":\""
         << json_escape(strings::join(layer.model_nodes, " + "))
         << "\",\"ai\":" << pt.arithmetic_intensity()
         << ",\"gflops\":" << layer.flops / 1e9;
    emit(layer.backend_layer, 1, cursor_us, dur_us, args.str());
    // Kernel sub-events share the layer's span proportionally.
    const size_t kernels = layer.kernels.size();
    if (kernels > 0) {
      const double slice = dur_us / static_cast<double>(kernels);
      for (size_t k = 0; k < kernels; ++k) {
        emit(layer.kernels[k], 2, cursor_us + slice * static_cast<double>(k),
             slice, "\"layer\":\"" + json_escape(layer.backend_layer) + "\"");
      }
    }
    cursor_us += dur_us;
  }

  // Self-profile process: the profiler's own pipeline spans on their real OS
  // threads (pid 2), so parallel sweeps render as per-thread lanes.
  if (!self_spans.empty()) {
    out << ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
           "\"args\":{\"name\":\"proof self-profile\"}}";
    uint32_t max_tid = 0;
    for (const obs::TraceEvent& event : self_spans) {
      max_tid = std::max(max_tid, event.tid);
    }
    for (uint32_t tid = 1; tid <= max_tid; ++tid) {
      out << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":" << tid
          << ",\"args\":{\"name\":\"thread " << tid << "\"}}";
    }
    for (const obs::TraceEvent& event : self_spans) {
      out << ",{\"name\":\"" << json_escape(event.name)
          << "\",\"cat\":\"proof_self\",\"ph\":\"X\",\"pid\":2,\"tid\":"
          << event.tid << ",\"ts\":" << static_cast<double>(event.start_ns) / 1e3
          << ",\"dur\":" << static_cast<double>(event.dur_ns) / 1e3 << "}";
    }
  }
  out << "]}";
  return out.str();
}

void save_chrome_trace(const std::string& trace, const std::string& path) {
  std::ofstream out(path);
  PROOF_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << trace << "\n";
}

}  // namespace proof

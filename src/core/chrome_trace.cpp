#include "core/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace proof {

namespace {

// All string interpolation goes through json::escape (support/json.cpp) —
// the trace emitter used to carry its own incomplete copy that dropped \t,
// \r, \b, \f and other control characters, producing invalid JSON for any
// model whose node names contained them.

/// Streams one complete ('X') event; `args_json` is pre-serialized.
class EventStream {
 public:
  explicit EventStream(std::ostringstream& out) : out_(out) {}

  void raw(const std::string& json) {
    if (!first_) {
      out_ << ',';
    }
    first_ = false;
    out_ << json;
  }

  void complete(const std::string& name, const char* cat, int pid, int tid,
                double start_us, double dur_us, const std::string& args_json) {
    raw("");  // separator bookkeeping only
    out_ << "{\"name\":\"" << json::escape(name) << "\",\"cat\":\"" << cat
         << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"ts\":" << start_us << ",\"dur\":" << dur_us << ",\"args\":{"
         << args_json << "}}";
  }

  void thread_name(int pid, int tid, const std::string& name) {
    raw("");
    out_ << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
         << json::escape(name) << "\"}}";
  }

  /// One half of a flow arrow ('s' start / 'f' finish); Chrome pairs the two
  /// halves by (cat, name, id).
  void flow(char phase, size_t id, int tid, double ts_us) {
    raw("");
    out_ << "{\"name\":\"sync\",\"cat\":\"proof_sync\",\"ph\":\"" << phase
         << "\",\"id\":" << id << ",\"pid\":1,\"tid\":" << tid
         << ",\"ts\":" << ts_us;
    if (phase == 'f') {
      out_ << ",\"bp\":\"e\"";  // bind to the enclosing slice's end
    }
    out_ << "}";
  }

 private:
  std::ostringstream& out_;
  bool first_ = true;
};

std::string layer_args(const ProfileReport& report, size_t layer_index) {
  const LayerReport& layer = report.layers[layer_index];
  const roofline::Point& pt = report.roofline.layers[layer_index];
  std::ostringstream args;
  args.precision(4);
  args << "\"class\":\"" << op_class_name(layer.cls) << "\",\"mapped_via\":\""
       << mapping::map_method_name(layer.method) << "\",\"model_nodes\":\""
       << json::escape(strings::join(layer.model_nodes, " + "))
       << "\",\"ai\":" << pt.arithmetic_intensity()
       << ",\"gflops\":" << layer.flops / 1e9;
  return args.str();
}

/// Seed-faithful serial emission: one "backend layers" lane, one "device
/// kernels" lane, a running cursor tiling the total latency.
void emit_serial(EventStream& events, const ProfileReport& report) {
  events.thread_name(1, 1, "backend layers");
  events.thread_name(1, 2, "device kernels");
  double cursor_us = 0.0;
  for (size_t i = 0; i < report.layers.size(); ++i) {
    const LayerReport& layer = report.layers[i];
    const double dur_us = layer.latency_s * 1e6;
    events.complete(layer.backend_layer, "proof", 1, 1, cursor_us, dur_us,
                    layer_args(report, i));
    // Kernel sub-events share the layer's span proportionally.
    const size_t kernels = layer.kernels.size();
    if (kernels > 0) {
      const double slice = dur_us / static_cast<double>(kernels);
      for (size_t k = 0; k < kernels; ++k) {
        events.complete(layer.kernels[k], "proof", 1, 2,
                        cursor_us + slice * static_cast<double>(k), slice,
                        "\"layer\":\"" + json::escape(layer.backend_layer) +
                            "\"");
      }
    }
    cursor_us += dur_us;
  }
}

/// Multi-stream emission: one lane per stream under pid 1 at the scheduled
/// timestamps, device kernels nested inside their layer's slice, and a flow
/// arrow per cross-stream sync edge.
void emit_timeline(EventStream& events, const ProfileReport& report) {
  const ExecutionTimeline& timeline = *report.timeline;
  for (int s = 0; s < timeline.num_streams; ++s) {
    events.thread_name(1, s + 1,
                       timeline.lane_name + " " + std::to_string(s));
  }
  for (const TimelineEvent& event : timeline.events) {
    if (event.layer < 0 ||
        static_cast<size_t>(event.layer) >= report.layers.size()) {
      continue;
    }
    const size_t li = static_cast<size_t>(event.layer);
    const LayerReport& layer = report.layers[li];
    const double start_us = event.start_ns / 1e3;
    const double dur_us = event.dur_ns / 1e3;
    std::string args = layer_args(report, li);
    {
      std::ostringstream extra;
      extra.precision(6);
      extra << ",\"stream\":" << event.stream;
      if (report.critical_path &&
          li < report.critical_path->layers.size()) {
        const critpath::LayerStats& stats = report.critical_path->layers[li];
        extra << ",\"slack_us\":" << stats.slack_ns / 1e3
              << ",\"criticality\":" << stats.criticality
              << ",\"on_critical_path\":"
              << (stats.on_critical_path ? "true" : "false");
      }
      args += extra.str();
    }
    events.complete(layer.backend_layer, "proof", 1, event.stream + 1,
                    start_us, dur_us, args);
    // Kernels nest inside the layer slice on the same stream lane.
    const size_t kernels = layer.kernels.size();
    if (kernels > 0) {
      const double slice = dur_us / static_cast<double>(kernels);
      for (size_t k = 0; k < kernels; ++k) {
        events.complete(layer.kernels[k], "proof", 1, event.stream + 1,
                        start_us + slice * static_cast<double>(k), slice,
                        "\"layer\":\"" + json::escape(layer.backend_layer) +
                            "\"");
      }
    }
  }
  // Sync flow arrows: recorded at the producer's completion, consumed at the
  // dependent layer's dispatch.
  std::vector<const TimelineEvent*> event_of_layer(report.layers.size(),
                                                   nullptr);
  for (const TimelineEvent& event : timeline.events) {
    if (event.layer >= 0 &&
        static_cast<size_t>(event.layer) < event_of_layer.size()) {
      event_of_layer[static_cast<size_t>(event.layer)] = &event;
    }
  }
  for (size_t i = 0; i < timeline.syncs.size(); ++i) {
    const SyncEvent& sync = timeline.syncs[i];
    if (sync.from_layer < 0 || sync.to_layer < 0 ||
        static_cast<size_t>(sync.from_layer) >= event_of_layer.size() ||
        static_cast<size_t>(sync.to_layer) >= event_of_layer.size()) {
      continue;
    }
    const TimelineEvent* from = event_of_layer[static_cast<size_t>(sync.from_layer)];
    const TimelineEvent* to = event_of_layer[static_cast<size_t>(sync.to_layer)];
    if (from == nullptr || to == nullptr) {
      continue;
    }
    events.flow('s', i, from->stream + 1, from->end_ns() / 1e3);
    events.flow('f', i, to->stream + 1, to->start_ns / 1e3);
  }
}

}  // namespace

std::string report_to_chrome_trace(const ProfileReport& report) {
  return report_to_chrome_trace(report, {});
}

std::string report_to_chrome_trace(
    const ProfileReport& report,
    const std::vector<obs::TraceEvent>& self_spans) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  EventStream events(out);

  // Track metadata.
  events.raw(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"" +
      json::escape(report.model_name + " on " + report.platform_name) +
      "\"}}");
  if (report.timeline) {
    emit_timeline(events, report);
  } else {
    emit_serial(events, report);
  }

  // Self-profile process: the profiler's own pipeline spans on their real OS
  // threads (pid 2), so parallel sweeps render as per-thread lanes.
  if (!self_spans.empty()) {
    events.raw(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
        "\"args\":{\"name\":\"proof self-profile\"}}");
    uint32_t max_tid = 0;
    for (const obs::TraceEvent& event : self_spans) {
      max_tid = std::max(max_tid, event.tid);
    }
    for (uint32_t tid = 1; tid <= max_tid; ++tid) {
      events.thread_name(2, static_cast<int>(tid),
                         "thread " + std::to_string(tid));
    }
    for (const obs::TraceEvent& event : self_spans) {
      events.raw("");
      out << "{\"name\":\"" << json::escape(event.name)
          << "\",\"cat\":\"proof_self\",\"ph\":\"X\",\"pid\":2,\"tid\":"
          << event.tid << ",\"ts\":" << static_cast<double>(event.start_ns) / 1e3
          << ",\"dur\":" << static_cast<double>(event.dur_ns) / 1e3 << "}";
    }
  }
  out << "]}";
  return out.str();
}

void save_chrome_trace(const std::string& trace, const std::string& path) {
  std::ofstream out(path);
  PROOF_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << trace << "\n";
  out.flush();
  // A full disk or a closed pipe only surfaces on the stream state after the
  // write — checking good() at open time alone silently drops the trace.
  PROOF_CHECK(out.good(), "failed writing Chrome trace to '" << path << "'");
}

}  // namespace proof

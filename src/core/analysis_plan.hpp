// Shape-polymorphic analysis plans (the third PrepCache level).
//
// Every structural decision a profile run makes — fusion partition, lowering
// recipes (layer/kernel names, fused members, segmentation), layer mapping,
// stream policy — depends only on the graph's *structure*: op types,
// attributes, connectivity, parameter shapes.  Batch size, KV position and
// DVFS clocks only change tensor shapes, and every shape-dependent number the
// analysis emits (FLOPs, bytes, latency, power, roofline terms) is closed-form
// in those shapes.  An AnalysisPlan freezes the structure phase once per
// shape-erased structural fingerprint (FingerprintMode::kStructural) so sweep
// inner loops replace the full prepare pipeline with a cheap instantiation:
//
//   1. copy the frozen skeleton graph (canonical prepared graph),
//   2. restore the cell model's inputs + shape-carrying attrs,
//   3. one shape-inference pass (set_batch_size),
//   4. replay the layer recipes through the normal kernel-costing code,
//   5. replay the frozen mapping.
//
// The instantiated engine is byte-identical to a full prepare of the same
// (model, config): both paths end with the same pure shape-inference pass over
// identical (inputs, params, attrs) and cost kernels through the same code.
// plan_compatible() verifies a fingerprint hit structurally (hash collisions
// fall back to a full build), and any structural rewrite — fusion toggles,
// `_mod` graph surgery, QDQ quantization — changes the structural fingerprint,
// so stale plans are unreachable by construction.
#pragma once

#include <string>
#include <vector>

#include "backends/backend.hpp"
#include "backends/lowering.hpp"
#include "mapping/layer_mapping.hpp"

namespace proof {

/// Frozen structure phase of a profile run, shared by every shape
/// instantiation of a structural fingerprint.  Immutable once published.
struct AnalysisPlan {
  /// Canonical prepared graph (first cell's batch/dtype), warm-indexed.
  /// Instantiation copies it and re-infers shapes in place.
  Graph skeleton;
  backends::BuildPlan build_plan;
  std::vector<backends::LayerRecipe> recipes;
  mapping::LayerMapping mapping;
  /// Per-mapping-entry model node ids, resolved against the skeleton at
  /// build time.  Node numbering is positional and clone_warm-stable, so
  /// apply_mapping can take these instead of re-resolving names per cell.
  std::vector<std::vector<NodeId>> mapping_node_ids;
  /// mapping.node_coverage(skeleton.num_nodes()) / mapping.count(kUnmapped),
  /// frozen here — both depend only on the frozen mapping and node count.
  double mapping_coverage = 0.0;
  size_t unmapped_layers = 0;
  StreamPolicy stream_policy;
  std::string backend_id;
};

/// Freezes the structure phase of a canonically built engine.  `plan` and
/// `mapping` are the BuildPlan / LayerMapping the engine was built with.
[[nodiscard]] AnalysisPlan build_analysis_plan(const backends::Engine& engine,
                                               const backends::BuildPlan& plan,
                                               const mapping::LayerMapping& mapping);

/// Structural verification of a fingerprint hit: node names/op types/IO,
/// graph inputs/outputs, tensor names/param flags/ranks and param dims must
/// all match the skeleton (param dtypes are exempt — the skeleton's were
/// float-converted at build).  False means a hash collision; callers fall
/// back to a full build.
[[nodiscard]] bool plan_compatible(const AnalysisPlan& plan, const Graph& model);

/// Instantiates the skeleton for one cell: restores `model`'s input descs
/// (float dtypes converted to config.dtype) and shape-carrying attrs, then
/// runs set_batch_size (one shape-inference pass).  The result is
/// byte-identical to prepare_model(model, config, platform)'s graph.
[[nodiscard]] Graph instantiate_plan_graph(const AnalysisPlan& plan,
                                           const Graph& model,
                                           const backends::BuildConfig& config);

/// Replays the frozen layer recipes against an instantiated graph, re-running
/// the shape-dependent kernel costing for `platform`'s architecture.
/// `analyses` (optional) shares the per-node evaluations an
/// AnalyzeRepresentation over `g` already made; see replay_layer_recipe.
[[nodiscard]] std::vector<backends::BackendLayer> replay_plan_layers(
    const AnalysisPlan& plan, const Graph& g, const hw::PlatformDesc& platform,
    const std::vector<NodeAnalysis>* analyses = nullptr);

}  // namespace proof

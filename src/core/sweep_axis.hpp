// Shared sweep-grid utilities: axis candidate validation and read-only graph
// warm-up, deduplicated between sweep.cpp and decode_sweep.cpp.
#pragma once

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "support/error.hpp"

namespace proof::sweep_axis {

/// Validation policy for one sweep grid axis.
struct AxisSpec {
  std::string context;  ///< error-message prefix, e.g. "sweep_decode"
  std::string what;     ///< axis name in messages, e.g. "decode positions"
  /// Throw on a non-positive candidate (grid axes) instead of silently
  /// dropping it (user-supplied batch candidate lists).
  bool reject_nonpositive = false;
  /// Sort ascending (grid axes) instead of keeping first-seen order.
  bool sorted = false;
  /// Parenthesized hint of the empty-axis ConfigError.
  std::string empty_hint = "need at least one positive value";
};

/// Returns the validated, deduplicated axis. Throws ConfigError
/// "<context>: <what> must be positive, got N" (when reject_nonpositive) and
/// "<context>: no valid <what> (<empty_hint>)" for an empty result.
inline std::vector<int64_t> clean_axis(const std::vector<int64_t>& values,
                                       const AxisSpec& spec) {
  std::vector<int64_t> valid;
  std::set<int64_t> seen;
  for (const int64_t v : values) {
    if (v <= 0) {
      if (spec.reject_nonpositive) {
        throw ConfigError(spec.context + ": " + spec.what +
                          " must be positive, got " + std::to_string(v));
      }
      continue;
    }
    if (seen.insert(v).second) {
      valid.push_back(v);
    }
  }
  if (valid.empty()) {
    throw ConfigError(spec.context + ": no valid " + spec.what + " (" +
                      spec.empty_hint + ")");
  }
  if (spec.sorted) {
    std::sort(valid.begin(), valid.end());
  }
  return valid;
}

/// Materializes a shared model's lazy lookup indices before a parallel
/// region so concurrent const lookups on it are pure reads (the indices are
/// rebuilt on first use otherwise — a data race across threads).
inline void warm_shared_graph(const Graph& model) { model.warm_indices(); }

}  // namespace proof::sweep_axis

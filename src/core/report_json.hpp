// JSON export of profile reports — the machine-readable interchange format
// for external dataviewers and CI tracking.
#pragma once

#include <string>

#include "core/profiler.hpp"

namespace proof {

/// Serializes the full report (options, end-to-end aggregates, ceilings and
/// every backend layer with its model-design mapping) as a JSON document.
[[nodiscard]] std::string report_to_json(const ProfileReport& report);

void save_json(const std::string& json, const std::string& path);

}  // namespace proof

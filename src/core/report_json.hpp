// JSON export of profile reports — the machine-readable interchange format
// for external dataviewers and CI tracking.
#pragma once

#include <string>

#include "core/profiler.hpp"

namespace proof {

/// Serializes the full report (options, end-to-end aggregates, ceilings and
/// every backend layer with its model-design mapping) as a JSON document.
///
/// With `include_self_profile` the document gains a "self_profile" section —
/// the process-wide observability snapshot (obs::self_profile_json) recording
/// where the profiler itself spent time.  Off by default: the self-profile is
/// wall-clock-dependent, and the default output stays byte-reproducible for
/// golden-regression diffing.
///
/// A non-empty `optimization_section` (a complete JSON value, from
/// opt::optimization_section_json) is spliced in as the "optimization" field
/// — the guarded-optimizer history for `proof optimize` reports.  Empty (the
/// default) emits no such field, keeping plain-profile documents unchanged.
[[nodiscard]] std::string report_to_json(
    const ProfileReport& report, bool include_self_profile = false,
    const std::string& optimization_section = "");

void save_json(const std::string& json, const std::string& path);

}  // namespace proof

// JSON export of profile reports — the machine-readable interchange format
// for external dataviewers and CI tracking.
#pragma once

#include <string>

#include "core/profiler.hpp"

namespace proof {

/// Serializes the full report (options, end-to-end aggregates, ceilings and
/// every backend layer with its model-design mapping) as a JSON document.
///
/// With `include_self_profile` the document gains a "self_profile" section —
/// the process-wide observability snapshot (obs::self_profile_json) recording
/// where the profiler itself spent time.  Off by default: the self-profile is
/// wall-clock-dependent, and the default output stays byte-reproducible for
/// golden-regression diffing.
[[nodiscard]] std::string report_to_json(const ProfileReport& report,
                                         bool include_self_profile = false);

void save_json(const std::string& json, const std::string& path);

}  // namespace proof

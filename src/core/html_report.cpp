#include "core/html_report.hpp"

#include <fstream>
#include <sstream>

#include "report/svg_roofline.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/units.hpp"

namespace proof::report {

namespace {

std::string escape_html(const std::string& text) {
  std::string out = strings::replace_all(text, "&", "&amp;");
  out = strings::replace_all(out, "<", "&lt;");
  out = strings::replace_all(out, ">", "&gt;");
  return out;
}

const char* kStyle = R"(
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif; margin: 2em;
       color: #222; max-width: 1100px; }
h1 { font-size: 1.5em; border-bottom: 2px solid #444; padding-bottom: .3em; }
h2 { font-size: 1.2em; margin-top: 2em; }
table { border-collapse: collapse; font-size: .85em; margin: 1em 0; }
th, td { border: 1px solid #ccc; padding: .3em .6em; text-align: right; }
th { background: #f0f0f0; }
td:first-child, th:first-child { text-align: left; }
.summary { display: flex; flex-wrap: wrap; gap: 1em; margin: 1em 0; }
.stat { background: #f7f7f9; border: 1px solid #ddd; border-radius: 6px;
        padding: .6em 1em; }
.stat b { display: block; font-size: 1.15em; }
.stat span { font-size: .75em; color: #666; }
.reorder { color: #888; font-style: italic; }
.memory { color: #0a58ca; }
.compute { color: #b02a37; }
footer { margin-top: 3em; font-size: .75em; color: #888; }
)";

void emit_stat(std::ostringstream& out, const std::string& value,
               const std::string& label) {
  out << "<div class='stat'><b>" << escape_html(value) << "</b><span>"
      << escape_html(label) << "</span></div>\n";
}

void emit_section(std::ostringstream& out, const HtmlSection& section) {
  const ProfileReport& r = *section.report;
  const roofline::Point& e2e = r.roofline.end_to_end;
  out << "<h2>" << escape_html(section.title) << "</h2>\n";
  out << "<p>" << escape_html(r.model_name) << " &middot; "
      << escape_html(r.backend_name) << " &middot; "
      << escape_html(r.platform_name) << " &middot; "
      << dtype_name(r.options.dtype) << ", batch " << r.options.batch
      << " &middot; metrics: "
      << (r.counter_profiling_time_s > 0.0 ? "measured (counters)"
                                           : "predicted (analytical)")
      << "</p>\n";

  out << "<div class='summary'>\n";
  emit_stat(out, units::ms(r.total_latency_s), "latency / iteration");
  emit_stat(out, units::fixed(r.throughput_per_s(), 0) + " /s", "throughput");
  emit_stat(out, units::tflops(e2e.attained_flops()), "attained compute");
  emit_stat(out, units::gbps(e2e.attained_bandwidth()), "attained bandwidth");
  emit_stat(out, units::fixed(e2e.arithmetic_intensity(), 1) + " FLOP/B",
            "arithmetic intensity");
  emit_stat(out,
            r.roofline.ceilings.memory_bound(e2e) ? "memory" : "compute",
            "roofline bound");
  emit_stat(out, units::fixed(r.power_w, 1) + " W", "board power");
  emit_stat(out, units::fixed(r.mapping_coverage * 100.0, 1) + " %",
            "mapping coverage");
  out << "</div>\n";

  SvgOptions svg;
  svg.title = section.title;
  out << render_roofline_svg(r.roofline, svg);

  out << "<table>\n<tr><th>backend layer</th><th>model-design nodes</th>"
         "<th>class</th><th>latency</th><th>share</th><th>FLOP/s</th>"
         "<th>bandwidth</th><th>AI</th><th>bound</th><th>mapped via</th></tr>\n";
  for (size_t i = 0; i < r.layers.size(); ++i) {
    const LayerReport& layer = r.layers[i];
    const roofline::Point& pt = r.roofline.layers[i];
    const bool mem_bound = r.roofline.ceilings.memory_bound(pt);
    out << "<tr" << (layer.is_reorder ? " class='reorder'" : "") << "><td>"
        << escape_html(layer.backend_layer) << "</td><td>";
    if (layer.model_nodes.empty()) {
      out << (layer.is_reorder ? "(backend inserted)" : "-");
    } else if (layer.model_nodes.size() <= 4) {
      out << escape_html(strings::join(layer.model_nodes, ", "));
    } else {
      out << escape_html(layer.model_nodes.front()) << " &hellip; "
          << escape_html(layer.model_nodes.back()) << " ("
          << layer.model_nodes.size() << " nodes)";
    }
    out << "</td><td>" << op_class_name(layer.cls) << "</td><td>"
        << units::ms(layer.latency_s) << "</td><td>"
        << units::fixed(pt.latency_share * 100.0, 1) << "%</td><td>"
        << units::tflops(pt.attained_flops()) << "</td><td>"
        << units::gbps(pt.attained_bandwidth()) << "</td><td>"
        << units::fixed(pt.arithmetic_intensity(), 1) << "</td><td class='"
        << (mem_bound ? "memory'>memory" : "compute'>compute") << "</td><td>"
        << mapping::map_method_name(layer.method) << "</td></tr>\n";
  }
  out << "</table>\n";
}

}  // namespace

std::string render_html_report(const std::string& page_title,
                               const std::vector<HtmlSection>& sections) {
  std::ostringstream out;
  out << "<!doctype html>\n<html><head><meta charset='utf-8'><title>"
      << escape_html(page_title) << "</title><style>" << kStyle
      << "</style></head>\n<body>\n<h1>" << escape_html(page_title) << "</h1>\n";
  for (const HtmlSection& section : sections) {
    PROOF_CHECK(section.report != nullptr, "null report in HTML section");
    emit_section(out, section);
  }
  out << "<footer>Generated by PRoof (C++ reproduction of Wu et al., ICPP 2024)."
         "</footer>\n</body></html>\n";
  return out.str();
}

std::string render_html_report(const ProfileReport& report) {
  const std::string title =
      report.model_name + " on " + report.platform_name;
  return render_html_report("PRoof report: " + title, {{title, &report}});
}

void save_html(const std::string& html, const std::string& path) {
  std::ofstream out(path);
  PROOF_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << html;
}

}  // namespace proof::report

// HTML dataviewer (paper Figure 1's "PRoof dataviewer").
//
// Renders one or more profile analyses into a single self-contained HTML
// file: run summary, end-to-end stats, the roofline chart (inline SVG) and a
// sortable per-backend-layer table with the model-design mapping.
#pragma once

#include <string>
#include <vector>

#include "core/profiler.hpp"

namespace proof::report {

struct HtmlSection {
  std::string title;          ///< e.g. "ResNet-50 on NVIDIA A100"
  const ProfileReport* report = nullptr;
};

/// Renders a full dataviewer page for the given sections.
[[nodiscard]] std::string render_html_report(const std::string& page_title,
                                             const std::vector<HtmlSection>& sections);

/// Convenience: single-report page.
[[nodiscard]] std::string render_html_report(const ProfileReport& report);

void save_html(const std::string& html, const std::string& path);

}  // namespace proof::report

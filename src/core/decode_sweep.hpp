// LLM serving sweep: batch size x decode position, per phase.
//
// Autoregressive generation splits into a prefill pass (prompt length S,
// GEMM-dominated) and a long run of decode steps whose KV cache — and with
// it the bytes per step — grows with the position.  This sweep profiles the
// prefill graph once per batch and the decode-step graph at every
// (batch, position) grid point, then reports:
//   * tokens/s vs batch curves (one curve per decode position),
//   * per-phase time-based rooflines (roofline/time_roofline.hpp) at a
//     representative point, and
//   * the decode-bound-ness headline: the fraction of decode time that is
//     bandwidth-bound at the smallest batch.
//
// Points fan out over the global ThreadPool and are written by index, so the
// output is byte-identical regardless of --jobs (the determinism contract
// every sweep in this module honors).  Backend preparations hit the shared
// PrepCache, so the B x P grid re-prepares each distinct graph only once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/profiler.hpp"
#include "roofline/time_roofline.hpp"

namespace proof {

struct DecodeSweepOptions {
  std::string config_id = "gpt2";   ///< models::llm_config id
  std::string platform_id;          ///< required
  std::string backend_id;           ///< empty = platform default runtime
  DType dtype = DType::kF16;
  int64_t prefill_len = 512;        ///< prompt length S for the prefill phase
  std::vector<int64_t> batches = {1, 2, 4, 8};
  std::vector<int64_t> positions = {64, 256, 512, 1024};  ///< S_past grid
};

/// One decode-step grid point.
struct DecodePoint {
  int64_t batch = 0;
  int64_t position = 0;             ///< S_past at this step
  double latency_s = 0.0;           ///< one decode step
  double tokens_per_s = 0.0;        ///< batch / latency_s
  double flops = 0.0;
  double bytes = 0.0;
  double arithmetic_intensity = 0.0;
  /// Share of roofline-bound time in bandwidth-bound layers (time roofline).
  double bandwidth_bound_fraction = 0.0;
  bool bandwidth_bound = false;     ///< fraction > 0.5
};

/// One prefill point (per batch).
struct PrefillPoint {
  int64_t batch = 0;
  double latency_s = 0.0;
  double tokens_per_s = 0.0;        ///< batch * prefill_len / latency_s
  double bandwidth_bound_fraction = 0.0;
};

struct DecodeSweep {
  DecodeSweepOptions options;
  std::string model_display;        ///< e.g. "GPT-2 small (decoder)"
  std::string platform_name;
  std::string backend_name;

  std::vector<PrefillPoint> prefill;    ///< options.batches order
  std::vector<DecodePoint> points;      ///< batch-major over positions

  /// Per-phase time-roofline views at the representative point: prefill at
  /// the smallest batch; decode at the smallest batch and largest position.
  roofline::TimeAnalysis prefill_time;
  roofline::TimeAnalysis decode_time;

  /// Headline decode-bound-ness: latency-weighted bandwidth-bound fraction
  /// over the smallest-batch decode points.
  double decode_bound_fraction = 0.0;
  [[nodiscard]] bool decode_bandwidth_bound() const {
    return decode_bound_fraction > 0.5;
  }
};

/// Runs the sweep.  Throws ConfigError for unknown configs/platforms, empty
/// or non-positive grids, and platforms that cannot lower the model.
[[nodiscard]] DecodeSweep sweep_decode(const DecodeSweepOptions& options);

/// Text rendering: tokens/s-vs-batch table, per-phase time-roofline tables,
/// bound-ness summary.
[[nodiscard]] std::string decode_sweep_text(const DecodeSweep& sweep);

/// Deterministic JSON section (no wall-clock fields) for goldens and the
/// serve method.
[[nodiscard]] std::string decode_sweep_json(const DecodeSweep& sweep);

// --- all-platforms summary ---------------------------------------------------

/// One platform's row of the cross-platform decode summary.
struct PlatformDecodeSummary {
  std::string platform_id;
  std::string platform_name;
  double decode_bound_fraction = 0.0;   ///< at the smallest batch
  bool decode_bandwidth_bound = false;
  double decode_tokens_per_s = 0.0;     ///< smallest batch, largest position
  double prefill_latency_s = 0.0;       ///< smallest batch
  /// Set when the platform cannot run the model (e.g. the NPU compiler
  /// rejecting activation ops); numeric fields are zero then.
  std::string error;
};

/// Runs `sweep_decode` on every registry platform (or `platform_ids` when
/// non-empty), capturing per-platform failures instead of aborting.
[[nodiscard]] std::vector<PlatformDecodeSummary> sweep_decode_platforms(
    const DecodeSweepOptions& base, std::vector<std::string> platform_ids = {});

/// Text rendering of the cross-platform summary.
[[nodiscard]] std::string decode_platforms_text(
    const std::vector<PlatformDecodeSummary>& rows);

/// Deterministic JSON array of the cross-platform summary.
[[nodiscard]] std::string decode_platforms_json(
    const std::vector<PlatformDecodeSummary>& rows);

}  // namespace proof

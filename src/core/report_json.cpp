#include "core/report_json.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "core/json_writer.hpp"
#include "obs/self_profile.hpp"
#include "support/error.hpp"

namespace proof {

std::string report_to_json(const ProfileReport& report,
                           bool include_self_profile,
                           const std::string& optimization_section) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.field("model", report.model_name);
  w.field("backend", report.backend_name);
  w.field("platform", report.platform_name);
  w.field("dtype", std::string(dtype_name(report.options.dtype)));
  w.field("batch", static_cast<int64_t>(report.options.batch));
  w.field("metrics",
          std::string(report.counter_profiling_time_s > 0.0 ? "measured"
                                                            : "predicted"));
  w.field("latency_s", report.total_latency_s);
  w.field("throughput_per_s", report.throughput_per_s());
  w.field("power_w", report.power_w);
  w.field("mapping_coverage", report.mapping_coverage);
  w.field("analysis_time_s", report.analysis_time_s);
  w.field("counter_profiling_time_s", report.counter_profiling_time_s);

  const roofline::Point& e2e = report.roofline.end_to_end;
  w.field("flops", e2e.flops);
  w.field("bytes", e2e.bytes);
  w.field("arithmetic_intensity", e2e.arithmetic_intensity());
  w.field("attained_flops", e2e.attained_flops());
  w.field("attained_bandwidth", e2e.attained_bandwidth());
  w.field("peak_flops", report.roofline.ceilings.peak_flops);
  w.field("peak_bandwidth", report.roofline.ceilings.peak_bw);
  w.field("memory_bound", report.roofline.ceilings.memory_bound(e2e));

  w.begin_array("layers");
  for (size_t i = 0; i < report.layers.size(); ++i) {
    const LayerReport& layer = report.layers[i];
    const roofline::Point& pt = report.roofline.layers[i];
    w.begin_object();
    w.field("name", layer.backend_layer);
    w.field("class", std::string(op_class_name(layer.cls)));
    w.field("mapped_via", std::string(mapping::map_method_name(layer.method)));
    w.field("is_reorder", layer.is_reorder);
    w.field("latency_s", layer.latency_s);
    w.field("latency_share", pt.latency_share);
    w.field("flops", layer.flops);
    w.field("bytes", layer.bytes);
    w.field("arithmetic_intensity", pt.arithmetic_intensity());
    w.field("attained_flops", pt.attained_flops());
    w.begin_array("model_nodes");
    for (const std::string& node : layer.model_nodes) {
      w.string_element(node);
    }
    w.end_array();
    w.begin_array("kernels");
    for (const std::string& kernel : layer.kernels) {
      w.string_element(kernel);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  // Multi-stream runs: the critical-path analysis over the emitted execution
  // timeline.  Serial-mode reports omit the section entirely, keeping them
  // byte-identical to the pre-timeline goldens.
  if (report.critical_path) {
    const critpath::Report& cp = *report.critical_path;
    w.begin_object("critical_path");
    w.field("num_streams", static_cast<int64_t>(cp.num_streams));
    w.field("critical_path_ns", cp.critical_path_ns);
    w.field("makespan_ns", cp.makespan_ns);
    w.field("serial_sum_ns", cp.serial_sum_ns);
    w.field("parallel_speedup", cp.parallel_speedup);
    w.field("sync_count", static_cast<int64_t>(cp.sync_count));
    w.field("dag_edges", static_cast<int64_t>(cp.edge_count));
    w.begin_array("critical_layers");
    for (const int layer : cp.critical_layers) {
      if (layer >= 0 && static_cast<size_t>(layer) < report.layers.size()) {
        w.string_element(report.layers[static_cast<size_t>(layer)].backend_layer);
      }
    }
    w.end_array();
    w.begin_array("layers");
    for (const critpath::LayerStats& stats : cp.layers) {
      w.begin_object();
      const std::string name =
          stats.layer >= 0 &&
                  static_cast<size_t>(stats.layer) < report.layers.size()
              ? report.layers[static_cast<size_t>(stats.layer)].backend_layer
              : std::string();
      w.field("name", name);
      w.field("stream", static_cast<int64_t>(stats.stream));
      w.field("start_ns", stats.start_ns);
      w.field("dur_ns", stats.dur_ns);
      w.field("slack_ns", stats.slack_ns);
      w.field("criticality", stats.criticality);
      w.field("on_critical_path", stats.on_critical_path);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  if (!optimization_section.empty()) {
    w.raw_field("optimization", optimization_section);
  }
  if (include_self_profile) {
    w.raw_field("self_profile", obs::self_profile_json());
  }
  w.end_object();
  return out.str();
}

void save_json(const std::string& json, const std::string& path) {
  std::ofstream out(path);
  PROOF_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << json << "\n";
  out.flush();
  PROOF_CHECK(out.good(), "failed writing JSON to '" << path << "'");
}

}  // namespace proof

#include "core/prep_cache.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>
#include <variant>

#include "backends/prepare.hpp"
#include "obs/span.hpp"
#include "support/error.hpp"

namespace proof {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- structural fingerprint --------------------------------------------------

class Fnv {
 public:
  void mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<unsigned char>((v >> (8 * i)) & 0xFFu));
    }
  }
  void mix(const std::string& s) {
    mix(static_cast<uint64_t>(s.size()));
    for (const char c : s) {
      byte(static_cast<unsigned char>(c));
    }
  }
  void mix(double d) {
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }
  [[nodiscard]] uint64_t value() const { return hash_; }

 private:
  void byte(unsigned char b) {
    hash_ ^= b;
    hash_ *= 0x100000001B3ull;
  }
  uint64_t hash_ = 0xCBF29CE484222325ull;
};

void mix_attrs(Fnv& fnv, const AttrMap& attrs) {
  for (const auto& [key, value] : attrs.raw()) {
    fnv.mix(key);
    fnv.mix(static_cast<uint64_t>(value.index()));
    if (const auto* i = std::get_if<int64_t>(&value)) {
      fnv.mix(static_cast<uint64_t>(*i));
    } else if (const auto* d = std::get_if<double>(&value)) {
      fnv.mix(*d);
    } else if (const auto* s = std::get_if<std::string>(&value)) {
      fnv.mix(*s);
    } else if (const auto* is = std::get_if<std::vector<int64_t>>(&value)) {
      fnv.mix(static_cast<uint64_t>(is->size()));
      for (const int64_t v : *is) {
        fnv.mix(static_cast<uint64_t>(v));
      }
    } else if (const auto* ds = std::get_if<std::vector<double>>(&value)) {
      fnv.mix(static_cast<uint64_t>(ds->size()));
      for (const double v : *ds) {
        fnv.mix(v);
      }
    }
  }
}

}  // namespace

uint64_t graph_fingerprint(const Graph& model) {
  Fnv fnv;
  fnv.mix(model.name());
  for (const std::string& in : model.inputs()) {
    fnv.mix(in);
  }
  for (const std::string& out : model.outputs()) {
    fnv.mix(out);
  }
  fnv.mix(static_cast<uint64_t>(model.num_nodes()));
  for (const Node& node : model.nodes()) {
    fnv.mix(node.name);
    fnv.mix(node.op_type);
    for (const std::string& t : node.inputs) {
      fnv.mix(t);
    }
    for (const std::string& t : node.outputs) {
      fnv.mix(t);
    }
    mix_attrs(fnv, node.attrs);
  }
  for (const auto& [name, desc] : model.tensors()) {
    fnv.mix(name);
    fnv.mix(static_cast<uint64_t>(desc.dtype));
    fnv.mix(static_cast<uint64_t>(desc.is_param ? 1 : 0));
    for (const int64_t dim : desc.shape.dims()) {
      fnv.mix(static_cast<uint64_t>(dim));
    }
  }
  return fnv.value();
}

// --- PreparedEngine ----------------------------------------------------------

PreparedEngine::PreparedEngine(backends::Engine engine_in,
                               mapping::LayerMapping mapping_in)
    : engine(std::move(engine_in)),
      ar(engine.analysis_graph()),
      oar(ar),
      mapping(std::move(mapping_in)) {}

// --- PrepCache ---------------------------------------------------------------

namespace {

/// Forces a graph's lazy name/producer/consumer indices to exist so every
/// later const lookup on a shared entry is a pure read (the indices are
/// rebuilt on first use otherwise — a data race across threads).
void warm_graph_indices(const Graph& g) { g.warm_indices(); }

struct PlanEntry {
  backends::BuildPlan plan;
  mapping::LayerMapping mapping;
};

using PlanKey = std::tuple<uint64_t, std::string, std::string, DType>;
using EngineKey = std::tuple<uint64_t, std::string, std::string, DType, int64_t>;

bool env_enables_cache() {
  const char* env = std::getenv("PROOF_PREP_CACHE");
  if (env == nullptr) {
    return true;
  }
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0 ||
           std::strcmp(env, "off") == 0);
}

/// Default FIFO eviction bound (memory backstop); PROOF_PREP_CACHE_CAP
/// overrides it at startup, set_capacity() at runtime.
size_t env_capacity() {
  const char* env = std::getenv("PROOF_PREP_CACHE_CAP");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0') {
      return static_cast<size_t>(v);  // 0 = unbounded
    }
  }
  return 512;
}

/// Builds a PreparedEngine, reusing `cached_plan`'s fusion plan + mapping when
/// provided; fills `*out_plan` (when non-null) for plan-level publication.
std::shared_ptr<const PreparedEngine> build_prepared(
    const Graph& model, const backends::Backend& backend,
    const hw::PlatformDesc& platform, const backends::BuildConfig& config,
    const PlanEntry* cached_plan, std::optional<PlanEntry>* out_plan) {
  Graph prepared = backends::prepare_model(model, config, platform);
  backends::BuildPlan plan = [&] {
    PROOF_SPAN("prepare.plan");
    return cached_plan != nullptr ? cached_plan->plan : backend.plan(prepared);
  }();
  backends::Engine engine = [&] {
    PROOF_SPAN("prepare.lower");
    return backend.lower(std::move(prepared), plan, config, platform);
  }();

  PROOF_SPAN("prepare.analysis");
  const double t0 = now_s();
  auto entry = std::make_shared<PreparedEngine>(std::move(engine),
                                                mapping::LayerMapping{});
  if (cached_plan != nullptr) {
    entry->mapping = cached_plan->mapping;
    mapping::apply_mapping(entry->engine, entry->oar, entry->mapping);
  } else {
    entry->mapping = mapping::map_layers(entry->engine, entry->oar);
  }
  entry->mapping_coverage = entry->mapping.node_coverage(entry->ar.num_nodes());
  entry->unmapped_layers = entry->mapping.count(mapping::MapMethod::kUnmapped);
  entry->analysis_time_s = now_s() - t0;

  // Shared entries are read concurrently; materialize every lazy index now.
  warm_graph_indices(entry->engine.analysis_graph());
  warm_graph_indices(entry->ar.graph());

  if (out_plan != nullptr) {
    *out_plan = PlanEntry{std::move(plan), entry->mapping};
  }
  return entry;
}

}  // namespace

std::shared_ptr<const PreparedEngine> prepare_engine(
    const Graph& model, const backends::Backend& backend,
    const hw::PlatformDesc& platform, const backends::BuildConfig& config) {
  return build_prepared(model, backend, platform, config, nullptr, nullptr);
}

struct PrepCache::Impl {
  mutable std::mutex mu;
  bool enabled = env_enables_cache();
  size_t capacity = env_capacity();
  PrepCacheStats stats;
  std::map<EngineKey, std::shared_future<std::shared_ptr<const PreparedEngine>>>
      engines;
  std::list<EngineKey> engine_order;  ///< insertion order, for FIFO eviction
  std::map<PlanKey, std::shared_future<std::shared_ptr<const PlanEntry>>> plans;
};

PrepCache::PrepCache() : impl_(std::make_unique<Impl>()) {}
PrepCache::~PrepCache() = default;

PrepCache& PrepCache::instance() {
  // Leaked singleton: cached engines may be referenced from arbitrary threads
  // at shutdown, so never run the destructor.
  static PrepCache* cache = new PrepCache();
  return *cache;
}

void PrepCache::clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->engines.clear();
  impl_->engine_order.clear();
  impl_->plans.clear();
}

PrepCacheStats PrepCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

void PrepCache::reset_stats() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->stats = PrepCacheStats{};
}

void PrepCache::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->enabled = enabled;
}

bool PrepCache::enabled() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->enabled;
}

size_t PrepCache::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->engines.size();
}

size_t PrepCache::capacity() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->capacity;
}

void PrepCache::set_capacity(size_t capacity) {
  size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->capacity = capacity;
    // Shrink immediately: drop the oldest ready entries until within bound.
    while (impl_->capacity != 0 &&
           impl_->engine_order.size() > impl_->capacity) {
      const EngineKey victim = impl_->engine_order.front();
      impl_->engine_order.pop_front();
      impl_->engines.erase(victim);
      ++impl_->stats.evictions;
      ++evicted;
    }
  }
  if (evicted > 0) {
    PROOF_COUNT("prep_cache.evictions", evicted);
  }
}

std::shared_ptr<const PreparedEngine> PrepCache::get_or_prepare(
    const Graph& model, const backends::Backend& backend,
    const hw::PlatformDesc& platform, const backends::BuildConfig& config) {
  if (!enabled()) {
    return prepare_engine(model, backend, platform, config);
  }

  const uint64_t fp = graph_fingerprint(model);
  const EngineKey ekey{fp, backend.id(), platform.id, config.dtype,
                       config.batch};
  const PlanKey pkey{fp, backend.id(), platform.id, config.dtype};

  // Registered under the lock when this call is the builder for its key, so
  // concurrent callers of the same key wait on the winner's in-flight build.
  std::promise<std::shared_ptr<const PreparedEngine>> engine_promise;
  std::optional<std::promise<std::shared_ptr<const PlanEntry>>> plan_promise;
  std::shared_future<std::shared_ptr<const PlanEntry>> plan_future;
  bool have_plan_future = false;

  std::shared_future<std::shared_ptr<const PreparedEngine>> ready;
  bool is_hit = false;
  {
    // The obs counters are bumped here, inside the same critical section as
    // the struct ledger, so the two stay reconciled: every lookup lands its
    // lookup + (hit xor miss) increments back-to-back under the lock instead
    // of counting the hit only after a potentially long blocking wait on the
    // builder's future — a concurrently sampled stats snapshot (the serve
    // daemon's `stats` endpoint) would otherwise read lookups > hits + misses
    // for the whole duration of a build.
    std::lock_guard<std::mutex> lock(impl_->mu);
    PROOF_COUNT("prep_cache.lookups", 1);
    const auto it = impl_->engines.find(ekey);
    if (it != impl_->engines.end()) {
      ++impl_->stats.engine_hits;
      PROOF_COUNT("prep_cache.hits", 1);
      ready = it->second;
      is_hit = true;
    } else {
      ++impl_->stats.engine_misses;
      PROOF_COUNT("prep_cache.misses", 1);
      ready = impl_->engines.emplace(ekey, engine_promise.get_future().share())
                  .first->second;
      impl_->engine_order.push_back(ekey);
      const auto pit = impl_->plans.find(pkey);
      if (pit != impl_->plans.end()) {
        ++impl_->stats.plan_hits;
        PROOF_COUNT("prep_cache.plan_hits", 1);
        plan_future = pit->second;
        have_plan_future = true;
      } else {
        ++impl_->stats.plan_misses;
        PROOF_COUNT("prep_cache.plan_misses", 1);
        plan_promise.emplace();
        impl_->plans.emplace(pkey, plan_promise->get_future().share());
      }
      // FIFO memory backstop; never evict the entry just inserted.
      while (impl_->capacity != 0 &&
             impl_->engine_order.size() > impl_->capacity) {
        const EngineKey victim = impl_->engine_order.front();
        impl_->engine_order.pop_front();
        if (!(victim == ekey)) {
          impl_->engines.erase(victim);
          ++impl_->stats.evictions;
          PROOF_COUNT("prep_cache.evictions", 1);
        } else {
          impl_->engine_order.push_back(victim);
          break;
        }
      }
    }
  }

  if (is_hit) {
    return ready.get();  // rethrows the builder's exception, if any
  }

  // This call is the builder for its key.
  try {
    const std::shared_ptr<const PlanEntry> plan_entry =
        have_plan_future ? plan_future.get() : nullptr;
    std::optional<PlanEntry> built_plan;
    auto entry =
        build_prepared(model, backend, platform, config, plan_entry.get(),
                       plan_promise.has_value() ? &built_plan : nullptr);
    if (plan_promise.has_value()) {
      plan_promise->set_value(
          std::make_shared<const PlanEntry>(std::move(*built_plan)));
    }
    engine_promise.set_value(entry);
    return entry;
  } catch (...) {
    // Publish the failure to current waiters, then drop the keys so later
    // calls rebuild instead of replaying a stale error.
    if (plan_promise.has_value()) {
      plan_promise->set_exception(std::current_exception());
    }
    engine_promise.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->engines.erase(ekey);
      impl_->engine_order.remove(ekey);
      if (plan_promise.has_value()) {
        impl_->plans.erase(pkey);
      }
    }
    throw;
  }
}

}  // namespace proof
